"""Critical-path analysis (repro.obs.critical_path)."""

import pytest

from repro.mpi import World
from repro.node import Node
from repro.obs import CriticalPathReport, critical_path
from repro.xhc import Xhc

from conftest import small_topo


def run_coll(coll="bcast", observe=True, nranks=8, size=65536):
    node = Node(small_topo(), data_movement=False, observe=observe)
    world = World(node, nranks)
    comm = world.communicator(Xhc())

    def program(comm_, ctx):
        buf = ctx.alloc("b", size)
        if coll == "bcast":
            yield from comm_.bcast(ctx, buf.whole(), 0)
        elif coll == "allreduce":
            from repro.mpi import FLOAT, SUM
            out = ctx.alloc("o", size)
            yield from comm_.allreduce(ctx, buf.whole(), out.whole(),
                                       SUM, FLOAT)
        elif coll == "barrier":
            yield from comm_.barrier(ctx)
    comm.run(program)
    return node


@pytest.mark.parametrize("coll", ["bcast", "allreduce", "barrier"])
def test_phases_tile_simulated_time(coll):
    node = run_coll(coll)
    report = critical_path(node)
    assert isinstance(report, CriticalPathReport)
    assert report.total == pytest.approx(node.engine.now, rel=1e-9)
    # The acceptance bar is 1%; construction makes it exact.
    assert report.phase_sum == pytest.approx(report.total, rel=1e-9)
    assert report.phase_sum == pytest.approx(
        sum(report.by_phase.values()), rel=1e-12)


def test_steps_tile_the_run():
    node = run_coll("bcast")
    report = critical_path(node)
    assert report.steps, "a non-trivial run must have path segments"
    t = 0.0
    for step in sorted(report.steps, key=lambda s: s.start):
        assert step.start == pytest.approx(t, abs=1e-12)
        assert step.end >= step.start
        t = step.end
    assert t == pytest.approx(report.total, rel=1e-9)


def test_wait_phases_attribute_to_flag_family():
    node = run_coll("bcast")
    report = critical_path(node)
    # A broadcast's critical path crosses at least one dependency edge,
    # so some segment is charged to a wait phase.
    assert any(p.startswith("wait:") for p in report.by_phase), report.by_phase


def test_disabled_observability_raises():
    node = run_coll(observe=False)
    with pytest.raises(ValueError):
        critical_path(node)


def test_render_and_json():
    node = run_coll("bcast")
    report = critical_path(node)
    text = report.render()
    assert "critical path" in text
    assert "phase" in text
    detailed = report.render(show_steps=True)
    assert len(detailed) > len(text)
    doc = report.to_json()
    assert doc["total_s"] == pytest.approx(report.total, rel=1e-12)
    assert sum(p["seconds"] for p in doc["phases"]) == pytest.approx(
        report.total, rel=1e-9)
    assert all(set(p) >= {"phase", "seconds", "share"} for p in doc["phases"])


def test_end_track_override():
    node = run_coll("bcast")
    default = critical_path(node)
    explicit = critical_path(node, end_track=default.end_track)
    assert explicit.total == pytest.approx(default.total, rel=1e-12)
    assert [s.phase for s in explicit.steps] == [s.phase for s in default.steps]
