"""Report rendering."""

from repro.bench.osu import OsuSeries
from repro.bench.report import render_rows, render_series_table


def test_series_table():
    a = OsuSeries("alpha")
    a.add(4, 1e-6)
    a.add(1 << 20, 250e-6)
    b = OsuSeries("beta")
    b.add(4, 2e-6)
    text = render_series_table("My Title", [a, b])
    lines = text.splitlines()
    assert lines[0] == "My Title"
    assert "alpha" in lines[2] and "beta" in lines[2]
    assert any("1.00" in l and "2.00" in l for l in lines)
    assert any(l.strip().startswith("1M") for l in lines)
    # Missing cell rendered as '-'.
    assert any("250.00" in l and "-" in l for l in lines)


def test_series_helpers():
    s = OsuSeries("x")
    s.add(64, 3e-6)
    assert s.us(64) == 3.0
    assert s.sizes == [64]


def test_render_rows_alignment():
    text = render_rows("T", ["a", "bb"], [[1, 2.5], ["x", 3.25]])
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "2.50" in text and "3.25" in text
    # All data rows equal width.
    widths = {len(l) for l in lines[2:]}
    assert len(widths) == 1


def test_render_rows_empty():
    text = render_rows("T", ["a"], [])
    assert "a" in text


def test_series_chart():
    from repro.bench.report import render_series_chart
    a = OsuSeries("fast")
    b = OsuSeries("slow")
    for size, (fa, sl) in {4: (1e-6, 8e-6), 1024: (2e-6, 64e-6)}.items():
        a.add(size, fa)
        b.add(size, sl)
    art = render_series_chart("Chart", [a, b], width=30)
    lines = art.splitlines()
    assert lines[0] == "Chart"
    fast_bars = [l for l in lines if l.strip().startswith("fast")]
    slow_bars = [l for l in lines if l.strip().startswith("slow")]
    assert len(fast_bars) == len(slow_bars) == 2
    # Slower series draws longer bars.
    assert fast_bars[0].count("#") < slow_bars[0].count("#")
    assert "log scale" in art


def test_series_chart_empty():
    from repro.bench.report import render_series_chart
    assert "no data" in render_series_chart("T", [OsuSeries("x")])


def test_size_formatting():
    from repro.bench.report import _fmt_size
    assert _fmt_size(4) == "4"
    assert _fmt_size(2048) == "2K"
    assert _fmt_size(4 << 20) == "4M"
    assert _fmt_size(1500) == "1500"


def test_series_table_json_mirrors_text():
    from repro.bench.report import series_table_json
    a = OsuSeries("alpha")
    a.add(4, 1e-6)
    a.add(1 << 20, 250e-6)
    b = OsuSeries("beta")
    b.add(4, 2e-6)
    doc = series_table_json("My Title", [a, b])
    assert doc["title"] == "My Title"
    assert doc["columns"] == ["alpha", "beta"]
    assert doc["rows"][0] == {"size": 4, "values": [1.0, 2.0]}
    # Missing cell is None where the text table shows '-'.
    assert doc["rows"][1] == {"size": 1 << 20, "values": [250.0, None]}


def test_rows_table_json_mirrors_text():
    from repro.bench.report import rows_table_json
    doc = rows_table_json("T", ["name", "us"], [["x", 1.5], ["y", 2.5]])
    assert doc["columns"] == ["name", "us"]
    assert doc["rows"] == [{"name": "x", "us": 1.5}, {"name": "y", "us": 2.5}]


def test_write_json_creates_directories(tmp_path):
    import json
    from repro.bench.report import write_json
    path = tmp_path / "nested" / "out.json"
    write_json(path, {"k": [1, 2]})
    assert json.loads(path.read_text()) == {"k": [1, 2]}
