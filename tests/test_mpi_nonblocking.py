"""Non-blocking collectives: overlap, chaining, mixing with blocking."""

import numpy as np
import pytest

from repro.mpi import FLOAT, SUM, World
from repro.mpi.colls import Tuned
from repro.node import Node
from repro.sim import primitives as P
from repro.xhc import Xhc

from conftest import small_topo


def make(component_factory=Xhc, nranks=8):
    node = Node(small_topo())
    world = World(node, nranks)
    return node, world, world.communicator(component_factory())


@pytest.mark.parametrize("factory", [Xhc, Tuned])
def test_iallreduce_correct(factory):
    node, world, comm = make(factory)
    out = {}

    def program(comm_, ctx):
        me = comm_.rank_of(ctx)
        s = ctx.alloc("s", 4096)
        r = ctx.alloc("r", 4096)
        s.view().as_dtype(np.float32)[:] = me + 1
        req = comm_.iallreduce(ctx, s.whole(), r.whole(), SUM, FLOAT)
        yield P.Compute(1e-6)          # overlapped work
        yield from req.wait()
        out[me] = r.view().as_dtype(np.float32).copy()
    comm.run(program)
    assert all(np.all(v == sum(range(1, 9))) for v in out.values())


def test_overlap_hides_collective_time():
    """Compute issued between start and wait overlaps the collective."""
    def run(overlapped):
        node, world, comm = make(Xhc)
        finish = {}

        def program(comm_, ctx):
            me = comm_.rank_of(ctx)
            s = ctx.alloc("s", 65536)
            r = ctx.alloc("r", 65536)
            if overlapped:
                req = comm_.iallreduce(ctx, s.whole(), r.whole(), SUM, FLOAT)
                yield P.Compute(50e-6)
                yield from req.wait()
            else:
                yield from comm_.allreduce(ctx, s.whole(), r.whole(),
                                           SUM, FLOAT)
                yield P.Compute(50e-6)
            finish[me] = ctx.now
        comm.run(program)
        return max(finish.values())
    assert run(True) < run(False)


def test_multiple_outstanding_preserve_order():
    node, world, comm = make(Xhc)
    out = {}

    def program(comm_, ctx):
        me = comm_.rank_of(ctx)
        bufs = [ctx.alloc(f"b{i}", 512) for i in range(3)]
        reqs = []
        for i, buf in enumerate(bufs):
            if me == 0:
                buf.fill(i + 1)
            reqs.append(comm_.ibcast(ctx, buf.whole(), 0))
        for req in reqs:
            yield from req.wait()
        out[me] = [int(b.data[0]) for b in bufs]
    comm.run(program)
    assert all(v == [1, 2, 3] for v in out.values())


def test_blocking_joins_the_chain():
    """A blocking collective issued after an outstanding non-blocking one
    must not overtake it."""
    node, world, comm = make(Xhc)
    out = {}

    def program(comm_, ctx):
        me = comm_.rank_of(ctx)
        a = ctx.alloc("a", 256)
        b = ctx.alloc("b", 256)
        if me == 0:
            a.fill(7)
            b.fill(9)
        req = comm_.ibcast(ctx, a.whole(), 0)
        yield from comm_.bcast(ctx, b.whole(), 0)   # joins the chain
        yield from req.wait()
        out[me] = (int(a.data[0]), int(b.data[0]))
    comm.run(program)
    assert all(v == (7, 9) for v in out.values())


def test_done_probe():
    node, world, comm = make(Xhc, nranks=2)
    seen = []

    def program(comm_, ctx):
        buf = ctx.alloc("b", 64)
        req = comm_.ibarrier(ctx)
        seen.append(req.done())
        yield from req.wait()
        seen.append(req.done())
    comm.run(program)
    assert seen.count(True) >= 2          # done after wait, always
    assert all(isinstance(x, bool) for x in seen)


def test_ireduce():
    node, world, comm = make(Xhc)
    out = {}

    def program(comm_, ctx):
        me = comm_.rank_of(ctx)
        s = ctx.alloc("s", 1024)
        r = ctx.alloc("r", 1024)
        s.view().as_dtype(np.float32)[:] = 2.0
        req = comm_.ireduce(ctx, s.whole(), r.whole(), SUM, FLOAT, root=0)
        yield from req.wait()
        if me == 0:
            out["v"] = r.view().as_dtype(np.float32).copy()
    comm.run(program)
    assert np.all(out["v"] == 16.0)
