"""Deadlock detection: wait-for cycles at drain, proactively under
check='deadlock', and via the run-loop watchdog (no more hung pytest)."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.node import Node
from repro.sim import primitives as P
from repro.sim.syncobj import Flag

from conftest import small_topo


def _circular_wait(node):
    """Two ranks, each waiting on the flag the other should set."""
    f0 = Flag("dl.f0", owner_core=0)
    f1 = Flag("dl.f1", owner_core=1)

    def p0():
        yield P.WaitFlag(f1, 1)
        yield P.SetFlag(f0, 1)

    def p1():
        yield P.WaitFlag(f0, 1)
        yield P.SetFlag(f1, 1)

    node.engine.spawn(p0(), core=0, name="rank0")
    node.engine.spawn(p1(), core=1, name="rank1")


def test_drain_reports_cycle_even_unchecked():
    """check=None still names the wait-for cycle at queue drain."""
    node = Node(small_topo(), data_movement=False)
    _circular_wait(node)
    with pytest.raises(DeadlockError, match="wait-for cycle") as exc_info:
        node.engine.run()
    exc = exc_info.value
    assert set(exc.cycle) == {"rank0", "rank1"}
    assert "rank0" in str(exc) and "rank1" in str(exc)
    assert "dl.f0" in str(exc) or "dl.f1" in str(exc)


def test_proactive_raises_at_block_time():
    """check='deadlock' raises when the cycle closes, not at drain — a
    third process with pending work does not mask it."""
    node = Node(small_topo(), data_movement=False, check="deadlock")
    _circular_wait(node)

    def busy():
        yield P.Compute(1.0)

    node.engine.spawn(busy(), core=2, name="busy")
    with pytest.raises(DeadlockError, match="wait-for cycle") as exc_info:
        node.engine.run()
    assert set(exc_info.value.cycle) == {"rank0", "rank1"}
    # Raised the moment the second rank blocked, long before the busy
    # process's 1 s of compute drained.
    assert node.engine.now < 0.5


def test_no_false_positive_when_waker_alive():
    """A pending (not yet blocked) writer on the owner core keeps the
    proactive analysis quiet."""
    node = Node(small_topo(), data_movement=False, check="deadlock")
    flag = Flag("ok.f", owner_core=0)

    def writer():
        yield P.Compute(1e-5)
        yield P.SetFlag(flag, 1)

    def waiter():
        yield P.WaitFlag(flag, 1)

    node.engine.spawn(writer(), core=0, name="writer")
    node.engine.spawn(waiter(), core=1, name="waiter")
    node.engine.run()
    assert all(p.state.name == "DONE" for p in node.engine.processes)


def test_watchdog_flags_livelock_spin():
    """An unbounded compute slices forever; the watchdog turns the former
    pytest hang into a SimulationError."""
    node = Node(small_topo(), data_movement=False)
    node.engine.watchdog_every = 5_000

    def spinner():
        yield P.Compute(float("inf"))

    node.engine.spawn(spinner(), core=0, name="spinner")
    with pytest.raises(SimulationError, match="watchdog"):
        node.engine.run()


def test_watchdog_reports_deadlock_behind_a_spin():
    """Blocked-forever processes are reported as a DeadlockError with the
    cycle even while an unrelated event chain keeps the queue busy."""
    node = Node(small_topo(), data_movement=False)
    node.engine.watchdog_every = 5_000
    _circular_wait(node)
    with pytest.raises(DeadlockError, match="wait-for cycle") as exc_info:
        def spinner():
            yield P.Compute(float("inf"))
        node.engine.spawn(spinner(), core=2, name="spinner")
        node.engine.run()
    assert set(exc_info.value.cycle) == {"rank0", "rank1"}


def test_dead_end_wait_is_reported():
    """A wait whose owner core has no alive process: no cycle, but still
    a deadlock (dead-end chain)."""
    node = Node(small_topo(), data_movement=False)
    flag = Flag("never.f", owner_core=5)

    def waiter():
        yield P.WaitFlag(flag, 1)

    node.engine.spawn(waiter(), core=1, name="lonely")
    with pytest.raises(DeadlockError, match="lonely"):
        node.engine.run()


def test_in_flight_wakeup_is_not_a_deadlock():
    """A proc whose satisfying write already scheduled its resume is
    BLOCKED+waking; the analysis must not count it as stuck."""
    from repro.check.deadlock import find_deadlock

    node = Node(small_topo(), data_movement=False, check="deadlock")
    flag = Flag("wk.f", owner_core=0)
    seen = []

    def writer():
        yield P.SetFlag(flag, 1)
        # At this instant the waiter is still BLOCKED but waking.
        seen.append(find_deadlock(node.engine))
        yield P.Compute(1e-6)

    def waiter():
        yield P.WaitFlag(flag, 1)

    node.engine.spawn(waiter(), core=1, name="waiter")
    node.engine.spawn(writer(), core=0, name="writer")
    node.engine.run()
    assert seen == [None]
    assert all(p.state.name == "DONE" for p in node.engine.processes)
