"""Lint rules RC101-RC105 (repro.check.lint)."""

import pytest

from repro.check import lint
from repro.check.lint import (check_fingerprint, compute_fingerprint,
                              lint_file, run_lint, write_fingerprint)


def _lint_src(tmp_path, rel, source):
    """Drop ``source`` at ``tmp/<rel>`` and lint it as if the tmp dir
    were the repo root (so ``src/repro/...`` paths count as in-package)."""
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return lint_file(path, repo_root=tmp_path)


def _rules(findings):
    return [f.rule for f in findings]


def test_rc101_wall_clock_in_sim_path(tmp_path):
    findings = _lint_src(tmp_path, "src/repro/sim/x.py",
                         "import time\nfrom datetime import datetime\n")
    assert _rules(findings) == ["RC101", "RC101"]
    assert "wall clock" in findings[0].message


def test_rc101_not_applied_outside_package(tmp_path):
    findings = _lint_src(tmp_path, "tests/helper.py", "import time\n")
    assert findings == []


def test_rc102_random(tmp_path):
    src = ("import random\n"
           "import numpy as np\n"
           "def f():\n"
           "    return np.random.rand()\n")
    findings = _lint_src(tmp_path, "src/repro/xhc/x.py", src)
    assert _rules(findings) == ["RC102", "RC102"]


def test_rc103_mutable_default_everywhere(tmp_path):
    src = ("def f(a, b=[]):\n    pass\n"
           "def g(*, c={}):\n    pass\n"
           "h = lambda x=set(): x\n"
           "def ok(d=None, e=(), f=0):\n    pass\n")
    findings = _lint_src(tmp_path, "tests/helper.py", src)
    assert _rules(findings) == ["RC103", "RC103", "RC103"]


def test_rc104_pokes_only_in_algorithm_scopes(tmp_path):
    src = ("def f(flag, view):\n"
           "    flag.value = 1\n"
           "    view.array()[0:4] = 0\n")
    findings = _lint_src(tmp_path, "src/repro/xhc/x.py", src)
    assert _rules(findings) == ["RC104", "RC104"]
    assert "SetFlag" in findings[0].message
    # The engine/sync internals legitimately implement the pokes.
    assert _lint_src(tmp_path, "src/repro/sync/x.py", src) == []


def test_suppression_comment(tmp_path):
    src = ("import time  # lint: disable=RC101\n"
           "import random  # lint: disable=RC101, RC102\n")
    findings = _lint_src(tmp_path, "src/repro/sim/x.py", src)
    assert findings == []


def test_suppression_is_per_rule(tmp_path):
    src = "import time  # lint: disable=RC102\n"
    findings = _lint_src(tmp_path, "src/repro/sim/x.py", src)
    assert _rules(findings) == ["RC101"]


def test_syntax_error_reported_not_raised(tmp_path):
    findings = _lint_src(tmp_path, "src/repro/sim/x.py", "def f(:\n")
    assert _rules(findings) == ["syntax"]


def test_fingerprint_manifest_is_fresh():
    """The committed manifest matches the sources and SIM_VERSION."""
    assert check_fingerprint() == []


def test_fingerprint_detects_unbumped_change(monkeypatch):
    from repro.check import _sim_fingerprint as manifest
    tampered = dict(manifest.FINGERPRINT)
    tampered["sim/engine.py"] = "0" * 64
    monkeypatch.setattr(manifest, "FINGERPRINT", tampered)
    findings = check_fingerprint()
    assert _rules(findings) == ["RC105"]
    assert "bump" in findings[0].message
    assert "sim/engine.py" in findings[0].message


def test_fingerprint_detects_stale_manifest(monkeypatch):
    monkeypatch.setattr(lint, "_current_sim_version", lambda: 9999)
    findings = check_fingerprint()
    assert _rules(findings) == ["RC105"]
    assert "stale" in findings[0].message


def test_write_fingerprint_roundtrip(tmp_path):
    (tmp_path / "check").mkdir()
    out = write_fingerprint(tmp_path)
    assert out == tmp_path / "check" / "_sim_fingerprint.py"
    ns = {}
    exec(out.read_text(encoding="utf-8"), ns)
    # tmp root has none of the watched files
    assert set(ns["FINGERPRINT"]) == set(lint.SIM_FINGERPRINT_FILES)
    assert all(v == "missing" for v in ns["FINGERPRINT"].values())


def test_compute_fingerprint_ignores_formatting(tmp_path):
    (tmp_path / "sim").mkdir(parents=True)
    target = tmp_path / "sim" / "engine.py"
    target.write_text("def f(x):\n    return x + 1\n")
    for rel in lint.SIM_FINGERPRINT_FILES:
        if rel != "sim/engine.py":
            p = tmp_path / rel
            p.parent.mkdir(parents=True, exist_ok=True)
            p.write_text("")
    before = compute_fingerprint(tmp_path)
    # Comments and whitespace don't change the AST.
    target.write_text("# a comment\ndef f(x):\n    return x + 1\n")
    assert compute_fingerprint(tmp_path) == before
    # A semantic change does.
    target.write_text("def f(x):\n    return x + 2\n")
    assert compute_fingerprint(tmp_path) != before


def test_whole_tree_is_clean():
    """Satellite requirement: the repo itself passes its own lint."""
    report = run_lint()
    assert report.ok, "\n".join(str(f) for f in report)


def test_explicit_paths(tmp_path):
    bad = tmp_path / "src" / "repro" / "sim" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import time\n")
    report = run_lint(paths=[str(bad)], repo_root=tmp_path,
                      fingerprint=False)
    assert not report.ok
    assert _rules(report) == ["RC101"]
