"""Lint rules RC101-RC106 (repro.check.lint)."""

import pytest

from repro.check import lint
from repro.check.lint import (check_fingerprint, compute_fingerprint,
                              lint_file, run_lint, write_fingerprint)


def _lint_src(tmp_path, rel, source):
    """Drop ``source`` at ``tmp/<rel>`` and lint it as if the tmp dir
    were the repo root (so ``src/repro/...`` paths count as in-package)."""
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return lint_file(path, repo_root=tmp_path)


def _rules(findings):
    return [f.rule for f in findings]


def test_rc101_wall_clock_in_sim_path(tmp_path):
    findings = _lint_src(tmp_path, "src/repro/sim/x.py",
                         "import time\nfrom datetime import datetime\n")
    assert _rules(findings) == ["RC101", "RC101"]
    assert "wall clock" in findings[0].message


def test_rc101_not_applied_outside_package(tmp_path):
    findings = _lint_src(tmp_path, "tests/helper.py", "import time\n")
    assert findings == []


def test_rc102_random(tmp_path):
    src = ("import random\n"
           "import numpy as np\n"
           "def f():\n"
           "    return np.random.rand()\n")
    findings = _lint_src(tmp_path, "src/repro/xhc/x.py", src)
    assert _rules(findings) == ["RC102", "RC102"]


def test_rc103_mutable_default_everywhere(tmp_path):
    src = ("def f(a, b=[]):\n    pass\n"
           "def g(*, c={}):\n    pass\n"
           "h = lambda x=set(): x\n"
           "def ok(d=None, e=(), f=0):\n    pass\n")
    findings = _lint_src(tmp_path, "tests/helper.py", src)
    assert _rules(findings) == ["RC103", "RC103", "RC103"]


def test_rc104_pokes_only_in_algorithm_scopes(tmp_path):
    src = ("def f(flag, view):\n"
           "    flag.value = 1\n"
           "    view.array()[0:4] = 0\n")
    findings = _lint_src(tmp_path, "src/repro/xhc/x.py", src)
    assert _rules(findings) == ["RC104", "RC104"]
    assert "SetFlag" in findings[0].message
    # The engine/sync internals legitimately implement the pokes.
    assert _lint_src(tmp_path, "src/repro/sync/x.py", src) == []


def test_suppression_comment(tmp_path):
    src = ("import time  # lint: disable=RC101\n"
           "import random  # lint: disable=RC101, RC102\n")
    findings = _lint_src(tmp_path, "src/repro/sim/x.py", src)
    assert findings == []


def test_suppression_is_per_rule(tmp_path):
    src = "import time  # lint: disable=RC102\n"
    findings = _lint_src(tmp_path, "src/repro/sim/x.py", src)
    assert _rules(findings) == ["RC101"]


def test_syntax_error_reported_not_raised(tmp_path):
    findings = _lint_src(tmp_path, "src/repro/sim/x.py", "def f(:\n")
    assert _rules(findings) == ["syntax"]


def test_fingerprint_manifest_is_fresh():
    """The committed manifest matches the sources and SIM_VERSION."""
    assert check_fingerprint() == []


def test_fingerprint_detects_unbumped_change(monkeypatch):
    from repro.check import _sim_fingerprint as manifest
    tampered = dict(manifest.FINGERPRINT)
    tampered["sim/engine.py"] = "0" * 64
    monkeypatch.setattr(manifest, "FINGERPRINT", tampered)
    findings = check_fingerprint()
    assert _rules(findings) == ["RC105"]
    assert "bump" in findings[0].message
    assert "sim/engine.py" in findings[0].message


def test_fingerprint_detects_stale_manifest(monkeypatch):
    monkeypatch.setattr(lint, "_current_sim_version", lambda: 9999)
    findings = check_fingerprint()
    assert _rules(findings) == ["RC105"]
    assert "stale" in findings[0].message


def test_write_fingerprint_roundtrip(tmp_path):
    (tmp_path / "check").mkdir()
    out = write_fingerprint(tmp_path)
    assert out == tmp_path / "check" / "_sim_fingerprint.py"
    ns = {}
    exec(out.read_text(encoding="utf-8"), ns)
    # tmp root has none of the watched files
    assert set(ns["FINGERPRINT"]) == set(lint.SIM_FINGERPRINT_FILES)
    assert all(v == "missing" for v in ns["FINGERPRINT"].values())


def test_compute_fingerprint_ignores_formatting(tmp_path):
    (tmp_path / "sim").mkdir(parents=True)
    target = tmp_path / "sim" / "engine.py"
    target.write_text("def f(x):\n    return x + 1\n")
    for rel in lint.SIM_FINGERPRINT_FILES:
        if rel != "sim/engine.py":
            p = tmp_path / rel
            p.parent.mkdir(parents=True, exist_ok=True)
            p.write_text("")
    before = compute_fingerprint(tmp_path)
    # Comments and whitespace don't change the AST.
    target.write_text("# a comment\ndef f(x):\n    return x + 1\n")
    assert compute_fingerprint(tmp_path) == before
    # A semantic change does.
    target.write_text("def f(x):\n    return x + 2\n")
    assert compute_fingerprint(tmp_path) != before


def test_whole_tree_is_clean():
    """Satellite requirement: the repo itself passes its own lint."""
    report = run_lint()
    assert report.ok, "\n".join(str(f) for f in report)


def test_explicit_paths(tmp_path):
    bad = tmp_path / "src" / "repro" / "sim" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import time\n")
    report = run_lint(paths=[str(bad)], repo_root=tmp_path,
                      fingerprint=False)
    assert not report.ok
    assert _rules(report) == ["RC101"]


# -- RC106: per-event allocations in hot-path functions ----------------------

def test_rc106_allocations_in_hot_path(tmp_path):
    src = (
        "def step(self, x):  # hot-path\n"
        "    a = [x]\n"
        "    b = {1: x}\n"
        "    c = {x}\n"
        "    d = [i for i in range(x)]\n"
        "    e = f\"{x}\"\n"
        "    g = \"{}\".format(x)\n"
        "    h = \"%s\" % x\n"
        "    return a, b, c, d, e, g, h\n"
    )
    findings = _lint_src(tmp_path, "src/repro/sim/x.py", src)
    assert _rules(findings) == ["RC106"] * 7


def test_rc106_marker_on_preceding_line(tmp_path):
    src = ("# hot-path\n"
           "def step(x):\n"
           "    return [x]\n")
    findings = _lint_src(tmp_path, "src/repro/sim/x.py", src)
    assert _rules(findings) == ["RC106"]


def test_rc106_marker_on_multiline_signature(tmp_path):
    src = ("def step(a,\n"
           "         b):  # hot-path\n"
           "    return [a, b]\n")
    findings = _lint_src(tmp_path, "src/repro/sim/x.py", src)
    assert _rules(findings) == ["RC106"]


def test_rc106_unmarked_function_is_free(tmp_path):
    src = ("def cold(x):\n"
           "    return [x], {1: x}, f\"{x}\"\n")
    findings = _lint_src(tmp_path, "src/repro/sim/x.py", src)
    assert findings == []


def test_rc106_suppression(tmp_path):
    src = ("def step(x):  # hot-path\n"
           "    cold = [x]  # lint: disable=RC106\n"
           "    return cold\n")
    findings = _lint_src(tmp_path, "src/repro/sim/x.py", src)
    assert findings == []


def test_rc106_annotations_not_flagged(tmp_path):
    # The [] inside Callable[[], None] is an ast.List; annotations never
    # execute per event and must not trip the rule.
    src = ("from typing import Callable, Optional\n"
           "def step(x, then: Optional[Callable[[], None]]) -> None:"
           "  # hot-path\n"
           "    return then\n")
    findings = _lint_src(tmp_path, "src/repro/sim/x.py", src)
    assert findings == []


def test_rc106_nested_closure_inherits_hot_scope(tmp_path):
    src = ("def plan(x):  # hot-path\n"
           "    def complete():\n"
           "        return [x]\n"
           "    return complete\n")
    findings = _lint_src(tmp_path, "src/repro/sim/x.py", src)
    assert _rules(findings) == ["RC106"]


def test_rc106_store_context_list_not_flagged(tmp_path):
    src = ("def step(pair):  # hot-path\n"
           "    [a, b] = pair\n"
           "    return a + b\n")
    findings = _lint_src(tmp_path, "src/repro/sim/x.py", src)
    assert findings == []


def test_rc106_hot_paths_in_tree_are_clean():
    """The real marked hot paths lint clean (cold branches suppressed)."""
    report = run_lint(fingerprint=False)
    rc106 = [f for f in report if f.rule == "RC106"]
    assert rc106 == [], [str(f) for f in rc106]
