"""The sharded result store: layout, atomicity, eviction, concurrency."""

import json
import os
import subprocess
import sys
import warnings

import pytest

import repro
from repro.exec import RunRequest, SIM_VERSION, ResultCache, cache_key
from repro.exec.cache import LEGACY_FLAT_NAME, store_layout
from repro.exec.store import ShardedStore, _atomic_write_json


def _entry(latency=1e-6, tag=0):
    payload = RunRequest("epyc-1p", "bcast", 64 + tag, 8).payload()
    return cache_key(payload), {"latency_s": latency, "request": payload,
                                "sim_version": SIM_VERSION}


def _fill(store, n, version=SIM_VERSION):
    digests = []
    for i in range(n):
        digest, entry = _entry(tag=i)
        store.write(version, digest, entry)
        digests.append(digest)
    return digests


# -- layout ------------------------------------------------------------------


def test_entries_shard_by_digest_prefix(tmp_path):
    store = ShardedStore(tmp_path)
    digest, entry = _entry()
    path = store.write(SIM_VERSION, digest, entry)
    assert path == os.path.join(
        str(tmp_path), "objects", f"v{SIM_VERSION}", digest[:2],
        digest + ".json")
    assert os.path.isfile(path)
    assert store.read(SIM_VERSION, digest) == entry


def test_generations_are_separate_subtrees(tmp_path):
    store = ShardedStore(tmp_path)
    digest, entry = _entry()
    store.write(SIM_VERSION, digest, entry)
    store.write(SIM_VERSION + 1, digest, entry)
    assert store.count(SIM_VERSION) == 1
    assert store.count(SIM_VERSION + 1) == 1
    assert store.totals() == (2, store.totals()[1])


def test_store_layout_resolves_legacy_json_paths(tmp_path):
    root, flat = store_layout(str(tmp_path / "cache"))
    assert root == str(tmp_path / "cache")
    assert flat == str(tmp_path / "cache" / LEGACY_FLAT_NAME)
    # A *.json path names the same store as its directory.
    root2, flat2 = store_layout(str(tmp_path / "cache" / LEGACY_FLAT_NAME))
    assert root2 == root
    assert flat2 == flat
    assert store_layout("cache.json") == (".", "cache.json")


# -- atomic writes -----------------------------------------------------------


def test_writes_are_atomic_no_tmp_litter(tmp_path):
    store = ShardedStore(tmp_path)
    _fill(store, 8)
    leftovers = [name for _dir, _sub, names in os.walk(tmp_path)
                 for name in names if name.endswith(".tmp")]
    assert leftovers == []


def test_failed_write_leaves_no_partial_entry(tmp_path, monkeypatch):
    # If the dump itself explodes mid-write, neither the entry nor its
    # tmp sibling may survive.
    class Boom(RuntimeError):
        pass

    real_dumps = json.dumps

    def exploding_dumps(payload, **kwargs):
        raise Boom()

    monkeypatch.setattr(json, "dumps", exploding_dumps)
    with pytest.raises(Boom):
        _atomic_write_json(str(tmp_path / "x" / "entry.json"), {"a": 1})
    monkeypatch.setattr(json, "dumps", real_dumps)
    assert list(os.listdir(tmp_path / "x")) == []


# -- corruption quarantine ---------------------------------------------------


def test_corrupt_entry_is_a_miss_and_quarantined(tmp_path):
    store = ShardedStore(tmp_path)
    digest, entry = _entry()
    path = store.write(SIM_VERSION, digest, entry)
    with open(path, "w") as fh:
        fh.write('{"latency_s": 1e-')  # truncated mid-token
    with pytest.warns(RuntimeWarning, match="quarantined"):
        assert store.read(SIM_VERSION, digest) is None
    assert not os.path.exists(path)
    quarantined = os.listdir(store.quarantine_root)
    assert quarantined == [digest + ".json.corrupt"]
    # And the store keeps working: a rewrite serves again.
    store.write(SIM_VERSION, digest, entry)
    assert store.read(SIM_VERSION, digest) == entry


def test_entry_without_latency_is_quarantined(tmp_path):
    store = ShardedStore(tmp_path)
    digest, _entry_ = _entry()
    path = store.entry_path(SIM_VERSION, digest)
    _atomic_write_json(path, {"not": "a result"})
    with pytest.warns(RuntimeWarning):
        assert store.read(SIM_VERSION, digest) is None
    assert not os.path.exists(path)


def test_quarantine_names_never_collide(tmp_path):
    store = ShardedStore(tmp_path)
    digest, entry = _entry()
    for _ in range(3):
        path = store.write(SIM_VERSION, digest, entry)
        with open(path, "w") as fh:
            fh.write("garbage")
        with pytest.warns(RuntimeWarning):
            store.read(SIM_VERSION, digest)
    assert sorted(os.listdir(store.quarantine_root)) == [
        digest + ".json.corrupt",
        digest + ".json.corrupt.1",
        digest + ".json.corrupt.2",
    ]


# -- eviction ----------------------------------------------------------------


def test_evict_by_entry_count_drops_oldest_first(tmp_path):
    store = ShardedStore(tmp_path, max_entries=3)
    digests = _fill(store, 5)
    # Deterministic recency: stamp strictly increasing mtimes.
    for i, digest in enumerate(digests):
        path = store.entry_path(SIM_VERSION, digest)
        os.utime(path, ns=(1_000_000 * i, 1_000_000 * i))
    assert store.evict() == 2
    survivors = store.digests(SIM_VERSION)
    assert survivors == set(digests[2:])


def test_evict_by_bytes(tmp_path):
    store = ShardedStore(tmp_path)
    digests = _fill(store, 4)
    for i, digest in enumerate(digests):
        path = store.entry_path(SIM_VERSION, digest)
        os.utime(path, ns=(1_000_000 * i, 1_000_000 * i))
    _count, size = store.totals()
    per_entry = size // 4
    store.max_bytes = per_entry * 2 + 1  # room for two entries only
    assert store.evict() == 2
    assert store.totals()[0] == 2
    assert store.digests(SIM_VERSION) == set(digests[2:])


def test_reads_refresh_lru_recency(tmp_path):
    store = ShardedStore(tmp_path, max_entries=1)
    digests = _fill(store, 2)
    for i, digest in enumerate(digests):
        path = store.entry_path(SIM_VERSION, digest)
        os.utime(path, ns=(1_000_000 * i, 1_000_000 * i))
    # Touch the *older* entry via a read: it becomes the survivor.
    assert store.read(SIM_VERSION, digests[0]) is not None
    store.evict()
    assert store.digests(SIM_VERSION) == {digests[0]}


def test_stale_generations_age_out_via_eviction(tmp_path):
    store = ShardedStore(tmp_path, max_entries=2)
    old = _fill(store, 2, version=SIM_VERSION - 1)
    for digest in old:
        path = store.entry_path(SIM_VERSION - 1, digest)
        os.utime(path, ns=(0, 0))
    new = _fill(store, 2)
    store.evict()
    assert store.count(SIM_VERSION - 1) == 0
    assert store.digests(SIM_VERSION) == set(new)


def test_unbounded_store_never_evicts(tmp_path):
    store = ShardedStore(tmp_path)
    _fill(store, 10)
    assert store.evict() == 0
    assert store.count(SIM_VERSION) == 10


# -- ledger ------------------------------------------------------------------


def test_ledger_totals_match_filesystem(tmp_path):
    store = ShardedStore(tmp_path)
    _fill(store, 5)
    ledger = store.save_ledger()
    count, size = store.totals()
    assert ledger["entries"] == count == 5
    assert ledger["bytes"] == size
    on_disk = json.load(open(store.ledger_path))
    assert on_disk == ledger


def test_ledger_counters_accumulate_across_instances(tmp_path):
    store = ShardedStore(tmp_path, max_entries=1)
    _fill(store, 3)
    store.evict()
    ledger = store.save_ledger()
    assert ledger["evictions"] == 2
    # A second instance folds its own evictions on top.
    again = ShardedStore(tmp_path, max_entries=0)
    again.evict()
    ledger = again.save_ledger()
    assert ledger["evictions"] == 3
    assert ledger["entries"] == 0


def test_unreadable_ledger_is_quarantined_not_fatal(tmp_path):
    store = ShardedStore(tmp_path)
    with open(store.ledger_path, "w") as fh:
        fh.write("{broken")
    with pytest.warns(RuntimeWarning):
        assert store.load_ledger() == {}
    assert store.save_ledger()["entries"] == 0


# -- migration ---------------------------------------------------------------


def _flat_cache(path, n=3):
    entries = {}
    for i in range(n):
        digest, entry = _entry(tag=i)
        entries[digest] = entry
    with open(path, "w") as fh:
        json.dump({"sim_version": SIM_VERSION, "entries": entries}, fh)
    return set(entries)


def test_flat_migration_imports_every_entry(tmp_path):
    flat = tmp_path / LEGACY_FLAT_NAME
    digests = _flat_cache(flat)
    store = ShardedStore(tmp_path)
    assert store.migrate_flat(flat) == 3
    assert store.digests(SIM_VERSION) == digests
    # The flat file is left in place (it may be a committed artifact).
    assert flat.is_file()


def test_flat_migration_is_idempotent(tmp_path):
    flat = tmp_path / LEGACY_FLAT_NAME
    _flat_cache(flat)
    store = ShardedStore(tmp_path)
    assert store.migrate_flat(flat) == 3
    # Same flat-file state: stamped in the ledger, not re-imported.
    assert store.migrate_flat(flat) == 0
    assert ShardedStore(tmp_path).migrate_flat(flat) == 0
    # A *changed* flat file (new size/mtime) re-imports; content
    # addressing makes the rewrite harmless.
    _flat_cache(flat, n=4)
    assert ShardedStore(tmp_path).migrate_flat(flat) == 4
    assert ShardedStore(tmp_path).count(SIM_VERSION) == 4


def test_corrupt_flat_cache_is_quarantined(tmp_path):
    flat = tmp_path / LEGACY_FLAT_NAME
    with open(flat, "w") as fh:
        fh.write("not json at all")
    store = ShardedStore(tmp_path)
    with pytest.warns(RuntimeWarning):
        assert store.migrate_flat(flat) == 0
    assert not flat.exists()
    assert os.listdir(store.quarantine_root)


def test_result_cache_migrates_legacy_flat_on_open(tmp_path):
    flat = tmp_path / LEGACY_FLAT_NAME
    _flat_cache(flat)
    # Opening by the legacy *file* path or by the root directory both
    # find the migrated entries.
    for spec in (flat, tmp_path):
        cache = ResultCache(spec)
        assert len(cache) == 3
        assert cache.get(RunRequest("epyc-1p", "bcast", 64, 8).payload()) \
            == pytest.approx(1e-6)


# -- cross-process consistency -----------------------------------------------

_WRITER = """
import sys
from repro.exec import RunRequest, SIM_VERSION
from repro.exec.cache import ResultCache

which, root = sys.argv[1], sys.argv[2]
cache = ResultCache(root)
base = 0 if which == "a" else 100
for i in range(5):
    payload = RunRequest("epyc-1p", "bcast", 1024 + base + i, 8).payload()
    cache.put(payload, 1e-6 * (i + 1))
cache.save()
print(len(cache))
"""


def _run_writer(which, root):
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = {**os.environ, "PYTHONPATH": src}
    return subprocess.run([sys.executable, "-c", _WRITER, which, str(root)],
                          env=env, capture_output=True, text=True)


def test_two_processes_writing_lose_no_entries(tmp_path):
    # Two separate interpreters write disjoint entry sets into one root
    # concurrently; the union must land intact and the ledger must
    # describe exactly the files on disk (no double-counted bytes).
    import threading
    results = {}

    def run(which):
        results[which] = _run_writer(which, tmp_path)

    threads = [threading.Thread(target=run, args=(w,)) for w in ("a", "b")]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    for which, proc in results.items():
        assert proc.returncode == 0, proc.stderr

    store = ShardedStore(tmp_path)
    count, size = store.totals()
    assert count == 10
    real_size = sum(
        os.path.getsize(os.path.join(dirpath, name))
        for dirpath, _subdirs, names in os.walk(
            os.path.join(tmp_path, "objects"))
        for name in names)
    ledger = store.load_ledger()
    # Whichever save landed last described the actual files.
    assert ledger["bytes"] <= real_size
    assert ledger["entries"] <= count
    final = store.save_ledger()
    assert final["entries"] == 10
    assert final["bytes"] == real_size


def test_concurrent_eviction_converges_without_errors(tmp_path):
    # Pre-populate, then let two processes evict the same over-full
    # store; races on unlink are tolerated and the bound holds after.
    cache = ResultCache(tmp_path)
    for i in range(12):
        cache.put(RunRequest("epyc-1p", "bcast", 2048 + i, 8).payload(),
                  1e-6)
    cache.save()

    code = """
import sys
from repro.exec.store import ShardedStore
store = ShardedStore(sys.argv[1], max_entries=4)
store.evict()
store.save_ledger()
"""
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = {**os.environ, "PYTHONPATH": src}
    procs = [subprocess.Popen([sys.executable, "-c", code, str(tmp_path)],
                              env=env, stderr=subprocess.PIPE)
             for _ in range(2)]
    for proc in procs:
        _out, err = proc.communicate(timeout=60)
        assert proc.returncode == 0, err.decode()
    store = ShardedStore(tmp_path)
    count, _size = store.totals()
    assert count == 4
    assert store.save_ledger()["entries"] == 4


# -- the ResultCache facade over the store -----------------------------------


def test_cache_len_covers_memory_and_disk(tmp_path):
    cache = ResultCache(tmp_path)
    payload = RunRequest("epyc-1p", "bcast", 64, 8).payload()
    cache.put(payload, 1e-6)
    assert len(cache) == 1          # dirty, not yet flushed
    cache.save()
    assert len(cache) == 1
    other = ResultCache(tmp_path)
    assert len(other) == 1          # visible to a fresh instance


def test_cache_eviction_bounds_apply_on_save(tmp_path):
    cache = ResultCache(tmp_path, max_entries=2)
    for i in range(5):
        cache.put(RunRequest("epyc-1p", "bcast", 64 + i, 8).payload(), 1e-6)
    cache.save()
    info = cache.store_info()
    assert info["entries"] == 2
    assert info["max_entries"] == 2


def test_store_info_shape(tmp_path):
    cache = ResultCache(tmp_path, max_bytes=1 << 20)
    cache.put(RunRequest("epyc-1p", "bcast", 64, 8).payload(), 1e-6)
    cache.save()
    info = cache.store_info()
    assert info["root"] == str(tmp_path)
    assert info["entries"] == 1
    assert info["bytes"] > 0
    assert info["current_version_entries"] == 1
    assert info["sim_version"] == SIM_VERSION
    assert ResultCache().store_info() is None


def test_reads_do_not_warn_on_healthy_store(tmp_path):
    cache = ResultCache(tmp_path)
    payload = RunRequest("epyc-1p", "bcast", 64, 8).payload()
    cache.put(payload, 1e-6)
    cache.save()
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert ResultCache(tmp_path).get(payload) == pytest.approx(1e-6)


# -- eviction/quarantine visibility (warnings + lifetime totals) --------------


def test_eviction_warns_with_counts_and_accumulates_totals(tmp_path):
    store = ShardedStore(tmp_path, max_entries=3)
    _fill(store, 5)
    assert store.evictions_total == 0
    with pytest.warns(RuntimeWarning,
                      match=r"evicted 2 result-cache entries .* \(2 total"):
        assert store.evict() == 2
    assert store.evictions_total == 2
    # A second round keeps counting from where the first left off.
    _fill(store, 5)
    with pytest.warns(RuntimeWarning, match=r"\(4 total this process\)"):
        store.evict()
    assert store.evictions_total == 4
    # The non-total ledger counter resets on save; the total does not.
    store.save_ledger()
    assert store.evictions_total == 4


def test_noop_eviction_does_not_warn(tmp_path):
    store = ShardedStore(tmp_path, max_entries=100)
    _fill(store, 3)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert store.evict() == 0
    assert store.evictions_total == 0


def test_quarantine_total_counts_lifetime(tmp_path):
    store = ShardedStore(tmp_path)
    digests = _fill(store, 2)
    for digest in digests:
        with open(store.entry_path(SIM_VERSION, digest), "w") as fh:
            fh.write("{corrupt")
    with pytest.warns(RuntimeWarning, match=r"\(1 total this process\)"):
        assert store.read(SIM_VERSION, digests[0]) is None
    with pytest.warns(RuntimeWarning, match=r"\(2 total this process\)"):
        assert store.read(SIM_VERSION, digests[1]) is None
    assert store.quarantined_total == 2


def test_result_cache_stats_snapshot(tmp_path):
    from repro.exec import CacheStats

    cache = ResultCache(tmp_path, max_entries=2)
    payloads = [RunRequest("epyc-1p", "bcast", 64 + i, 8).payload()
                for i in range(4)]
    assert cache.get(payloads[0]) is None          # miss
    for p in payloads:
        cache.put(p, 1e-6)
    assert cache.get(payloads[3]) == pytest.approx(1e-6)   # hit
    with pytest.warns(RuntimeWarning):
        cache.save()                                # evicts down to 2
    stats = cache.stats()
    assert isinstance(stats, CacheStats)
    assert stats.hits == 1
    assert stats.misses == 1
    assert stats.evictions == 2
    assert stats.quarantined == 0
    assert stats.hit_rate == pytest.approx(0.5)
    d = stats.as_dict()
    assert d["hits"] == 1 and d["hit_rate"] == pytest.approx(0.5)


def test_memory_only_cache_stats_are_zeroed():
    from repro.exec import CacheStats

    cache = ResultCache()
    stats = cache.stats()
    assert stats == CacheStats(hits=0, misses=0, entries=0,
                               evictions=0, quarantined=0)
    assert stats.hit_rate == 0.0
