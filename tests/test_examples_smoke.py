"""Smoke-run the example scripts (opt-in: REPRO_RUN_EXAMPLES=1).

The examples take minutes in total, so the default suite only checks they
parse and carry docstrings (see test_repo_consistency); setting
``REPRO_RUN_EXAMPLES=1`` executes them end-to-end.
"""

import os
import pathlib
import runpy
import subprocess
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent
EXAMPLES = sorted((ROOT / "examples").glob("*.py"))

run_examples = pytest.mark.skipif(
    not os.environ.get("REPRO_RUN_EXAMPLES"),
    reason="set REPRO_RUN_EXAMPLES=1 to execute the examples",
)


def test_examples_compile():
    for path in EXAMPLES:
        compile(path.read_text(), str(path), "exec")


@run_examples
@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(path):
    proc = subprocess.run(
        [sys.executable, str(path)], capture_output=True, text=True,
        timeout=900, cwd=ROOT,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "examples must print something"
