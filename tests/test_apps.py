"""Application skeletons: termination, accounting, component sensitivity."""

import pytest

from repro.apps import run_cntk, run_miniamr, run_pisvm
from repro.bench.components import COMPONENTS

pytestmark = pytest.mark.slow


def test_pisvm_runs_and_accounts():
    res = run_pisvm("epyc-1p", COMPONENTS["xhc-tree"], "xhc-tree",
                    nranks=16, iterations=5)
    assert res.total_time > 0
    assert 0 < res.collective_time < res.total_time
    assert 0 < res.mpi_fraction < 1
    assert res.nranks == 16 and res.component == "xhc-tree"


def test_pisvm_component_sensitivity():
    """A slower collective stack shows up in total time (Fig. 12)."""
    fast = run_pisvm("epyc-1p", COMPONENTS["xhc-tree"], "xhc-tree",
                     nranks=16, iterations=6)
    slow = run_pisvm("epyc-1p", COMPONENTS["sm"], "sm",
                     nranks=16, iterations=6)
    assert slow.total_time > fast.total_time


def test_miniamr_configs():
    a = run_miniamr("epyc-1p", COMPONENTS["xhc-tree"], "xhc-tree",
                    nranks=16, config="default")
    b = run_miniamr("epyc-1p", COMPONENTS["xhc-tree"], "xhc-tree",
                    nranks=16, config="refine-1k")
    assert a.total_time > 0 and b.total_time > 0
    # The aggressive config is far more Allreduce-bound (SSV-D3).
    assert b.mpi_fraction > a.mpi_fraction


def test_miniamr_unknown_config():
    with pytest.raises(KeyError):
        run_miniamr("epyc-1p", COMPONENTS["tuned"], config="nope")


def test_cntk_gradient_size_drives_time():
    small = run_cntk("epyc-1p", COMPONENTS["xhc-tree"], "xhc-tree",
                     nranks=16, minibatches=2, gradient_bytes=1 << 20)
    large = run_cntk("epyc-1p", COMPONENTS["xhc-tree"], "xhc-tree",
                     nranks=16, minibatches=2, gradient_bytes=4 << 20)
    assert large.collective_time > small.collective_time


def test_default_nranks_fills_machine():
    res = run_pisvm("epyc-1p", COMPONENTS["tuned"], "tuned", iterations=2)
    assert res.nranks == 32
