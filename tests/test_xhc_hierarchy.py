"""XHC hierarchy construction (Fig. 2 and SSV-C's level counts)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.topology import get_system
from repro.xhc import XhcConfig, build_hierarchy
from repro.xhc.hierarchy import Hierarchy

from conftest import small_topo

TOKENS = XhcConfig().tokens()  # numa+socket


def full_machine(system):
    topo = get_system(system)
    return topo, list(range(topo.n_cores))


def test_level_counts_match_paper():
    """numa+socket: 3 levels on the dual-socket systems, 2 on Epyc-1P."""
    for system, levels in (("epyc-1p", 2), ("epyc-2p", 3), ("arm-n1", 3)):
        topo, cores = full_machine(system)
        h = build_hierarchy(topo, cores, TOKENS, root=0)
        assert h.n_levels == levels, system


def test_fig2_structure_epyc2p():
    topo, cores = full_machine("epyc-2p")
    h = build_hierarchy(topo, cores, TOKENS, root=0)
    assert [len(level) for level in h.levels] == [8, 2, 1]
    assert all(len(g.members) == 8 for g in h.levels[0])
    assert all(len(g.members) == 4 for g in h.levels[1])
    assert h.levels[2][0].members == [0, 32]


def test_root_is_always_top_leader():
    topo, cores = full_machine("epyc-2p")
    for root in (0, 10, 63):
        h = build_hierarchy(topo, cores, TOKENS, root=root)
        assert h.levels[-1][0].leader == root
        assert h.parent(root) is None
        # Root leads a group at every level it appears in.
        assert len(h.led_groups[root]) == h.n_levels


def test_flat_hierarchy():
    topo, cores = full_machine("epyc-1p")
    h = build_hierarchy(topo, cores, [], root=5)
    assert h.n_levels == 1
    assert h.levels[0][0].members == list(range(32))
    assert h.levels[0][0].leader == 5
    assert len(h.children(5)) == 31


def test_every_rank_has_exactly_one_pull_parent():
    topo, cores = full_machine("epyc-2p")
    h = build_hierarchy(topo, cores, TOKENS, root=0)
    for r in range(64):
        if r == 0:
            assert h.parent(r) is None
        else:
            assert h.parent(r) is not None
    # Children lists partition all non-root ranks.
    all_children = [c for r in range(64) for c, _ in h.children(r)]
    assert sorted(all_children) == [r for r in range(64) if r != 0]


def test_table2_edge_counts():
    """The XHC-tree pattern of Table II: 1 inter-socket, 6 inter-NUMA,
    56 intra-NUMA edges on Epyc-2P, independent of root."""
    from repro.topology.distance import message_distance_label
    topo, cores = full_machine("epyc-2p")
    for root in (0, 10):
        h = build_hierarchy(topo, cores, TOKENS, root=root)
        counts = {"intra-numa": 0, "inter-numa": 0, "inter-socket": 0}
        for r in range(64):
            p = h.parent(r)
            if p is not None:
                counts[message_distance_label(topo, cores[p], cores[r])] += 1
        assert counts == {"intra-numa": 56, "inter-numa": 6,
                          "inter-socket": 1}


def test_degenerate_levels_are_skipped():
    # One rank per NUMA node: the numa level groups are singletons.
    topo = small_topo()
    cores = [0, 4, 8, 12]  # one core per numa
    h = build_hierarchy(topo, cores, TOKENS, root=0)
    # numa level skipped; socket level groups 2+2; top level.
    assert [len(level) for level in h.levels] == [2, 1]


def test_single_rank():
    topo = small_topo()
    h = build_hierarchy(topo, [3], TOKENS, root=0)
    assert h.n_levels == 1
    assert h.children(0) == []


def test_irregular_rank_subsets():
    topo = small_topo()
    cores = [0, 1, 2, 5, 6, 13]
    h = build_hierarchy(topo, cores, TOKENS, root=2)
    # All ranks reachable.
    reach = {2}
    for r in range(len(cores)):
        p = h.parent(r)
        if p is not None:
            reach.add(r)
    assert reach == set(range(len(cores)))


@settings(max_examples=25, deadline=None)
@given(nranks=st.integers(2, 32), root=st.integers(0, 31), data=st.data())
def test_hierarchy_properties(nranks, root, data):
    """Property: valid tree over arbitrary core subsets and roots."""
    topo = get_system("epyc-1p")
    cores = data.draw(st.permutations(range(32)))[:nranks]
    root = root % nranks
    h = build_hierarchy(topo, list(cores), TOKENS, root=root)
    # (a) the root is the unique parentless rank
    parentless = [r for r in range(nranks) if h.parent(r) is None]
    assert parentless == [root]
    # (b) following parents always terminates at the root
    for r in range(nranks):
        seen = set()
        cur = r
        while cur is not None:
            assert cur not in seen
            seen.add(cur)
            cur = h.parent(cur)
        assert root in seen
    # (c) pull levels are consistent with group levels
    for r in range(nranks):
        if r != root:
            g = h.member_group[r]
            assert g.leader == h.parent(r)
            assert h.pull_level(r) == g.level
