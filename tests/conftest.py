"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpi import FLOAT, SUM, World
from repro.node import Node
from repro.options import RunOptions
from repro.shmem.smsc import SmscConfig
from repro.sim import primitives as P
from repro.topology import build_symmetric, get_system


def small_topo(name="mini", sockets=2, numa_per_socket=2, cores_per_numa=4,
               cores_per_llc=2):
    """A small hierarchical machine for fast tests (16 cores)."""
    return build_symmetric(name, sockets, numa_per_socket, cores_per_numa,
                           cores_per_llc)


def run_bcast(component_factory, *, topo=None, nranks=8, size=256, root=0,
              iters=2, mapping="core", smsc=None, data_movement=True,
              pattern=None):
    """Run ``iters`` broadcasts and return per-rank payloads + timings.

    The root's buffer is rewritten (simulated) before every iteration so
    cache state behaves like a real application.
    """
    topo = topo if topo is not None else small_topo()
    node = Node(topo, options=RunOptions(data_movement=data_movement))
    world = World(node, nranks, mapping=mapping, smsc=smsc)
    comm = world.communicator(component_factory())
    out = {}

    def program(comm_, ctx):
        me = comm_.rank_of(ctx)
        buf = ctx.alloc("buf", size)
        scratch = ctx.alloc("scratch", size)
        for it in range(iters):
            if me == root:
                yield P.Copy(src=scratch.whole(), dst=buf.whole())
                if pattern is None:
                    buf.fill(100 + it)
                else:
                    pattern(buf, it)
            t0 = ctx.now
            yield from comm_.bcast(ctx, buf.whole(), root)
            out[me] = dict(latency=ctx.now - t0,
                           data=None if buf.data is None else buf.data.copy())
    comm.run(program)
    return out, node


def run_allreduce(component_factory, *, topo=None, nranks=8, size=256,
                  iters=2, mapping="core", smsc=None, data_movement=True,
                  op=SUM, dtype=FLOAT):
    topo = topo if topo is not None else small_topo()
    node = Node(topo, options=RunOptions(data_movement=data_movement))
    world = World(node, nranks, mapping=mapping, smsc=smsc)
    comm = world.communicator(component_factory())
    out = {}

    def program(comm_, ctx):
        me = comm_.rank_of(ctx)
        sbuf = ctx.alloc("s", size)
        rbuf = ctx.alloc("r", size)
        scratch = ctx.alloc("scr", size)
        for it in range(iters):
            yield P.Copy(src=scratch.whole(), dst=sbuf.whole())
            if sbuf.data is not None:
                sbuf.view().as_dtype(dtype.np_dtype)[:] = me + 1 + it
            t0 = ctx.now
            yield from comm_.allreduce(ctx, sbuf.whole(), rbuf.whole(),
                                       op, dtype)
            out[me] = dict(
                latency=ctx.now - t0,
                data=None if rbuf.data is None
                else rbuf.view().as_dtype(dtype.np_dtype).copy(),
            )
    comm.run(program)
    return out, node


def assert_bcast_correct(out, nranks, expected_value):
    assert len(out) == nranks
    for rank, rec in out.items():
        assert np.all(rec["data"] == expected_value), f"rank {rank} corrupt"


def assert_allreduce_correct(out, nranks, iters=2):
    expect = sum(range(1, nranks + 1)) + (iters - 1) * nranks
    assert len(out) == nranks
    for rank, rec in out.items():
        assert np.all(rec["data"] == expect), f"rank {rank} wrong sum"


@pytest.fixture
def mini_topo():
    return small_topo()


@pytest.fixture
def mini_node(mini_topo):
    return Node(mini_topo)


@pytest.fixture
def epyc1p():
    return get_system("epyc-1p")
