"""Decision tables: bucketing, lookup fallback, JSON round-trip."""

from repro.tune.table import DecisionTable, bucket_of, default_table_path
from repro.xhc import XhcConfig


def test_bucket_of():
    assert bucket_of(1) == 1
    assert bucket_of(1024) == 1024
    assert bucket_of(1025) == 2048
    assert bucket_of(100_000) == 131072


def test_record_and_exact_lookup():
    table = DecisionTable()
    cfg = XhcConfig(hierarchy="numa", chunk_size=16384)
    table.record("Epyc-2P", "bcast", 65536, cfg, 1.2e-5, baseline_s=1.5e-5,
                 nranks=64)
    # Case-insensitive on system; any size in the bucket resolves.
    assert table.lookup("epyc-2p", "bcast", 65536) == cfg
    assert table.lookup("EPYC-2P", "bcast", 40_000) == cfg
    assert ("epyc-2p", "bcast", 65536) in table


def test_nearest_bucket_fallback():
    table = DecisionTable()
    small = XhcConfig(hierarchy="flat")
    large = XhcConfig(hierarchy="numa+socket", chunk_size=16384)
    table.record("sys", "bcast", 1024, small, 1e-6)
    table.record("sys", "bcast", 1048576, large, 1e-4)
    assert table.lookup("sys", "bcast", 2048) == small
    assert table.lookup("sys", "bcast", 262144) == large
    # Other collectives/systems never borrow entries.
    assert table.lookup("sys", "allreduce", 1024) is None
    assert table.lookup("other", "bcast", 1024) is None


def test_json_round_trip(tmp_path):
    table = DecisionTable()
    table.record("epyc-1p", "bcast", 1024,
                 XhcConfig(hierarchy="l3+numa", chunk_size=(4096, 16384, 65536)),
                 2e-6, baseline_s=3e-6, nranks=32)
    table.record("arm-n1", "allreduce", 1048576,
                 XhcConfig(hierarchy="numa+socket", cico_threshold=0),
                 5e-5, nranks=160)
    path = tmp_path / "table.json"
    table.save(path)

    loaded = DecisionTable.load(path)
    assert len(loaded) == len(table) == 2
    for (s, c, b), entry in table.entries.items():
        assert loaded.entries[(s, c, b)]["config"] == entry["config"]
        assert loaded.lookup(s, c, b) == table.lookup(s, c, b)
    # Tuple chunk sizes survive the list round-trip as tuples.
    cfg = loaded.lookup("epyc-1p", "bcast", 1024)
    assert cfg.chunk_size == (4096, 16384, 65536)


def test_merge_overwrites_shared_keys():
    a, b = DecisionTable(), DecisionTable()
    a.record("sys", "bcast", 1024, XhcConfig(hierarchy="flat"), 2e-6)
    b.record("sys", "bcast", 1024, XhcConfig(hierarchy="numa"), 1e-6)
    b.record("sys", "bcast", 4096, XhcConfig(hierarchy="numa"), 1e-6)
    a.merge(b)
    assert len(a) == 2
    assert a.lookup("sys", "bcast", 1024).hierarchy == "numa"


def test_default_table_path_env(tmp_path, monkeypatch):
    table = DecisionTable()
    table.record("sys", "bcast", 64, XhcConfig(), 1e-6)
    path = tmp_path / "t.json"
    table.save(path)
    monkeypatch.setenv("REPRO_TUNED_TABLE", str(path))
    assert default_table_path() == str(path)
    monkeypatch.setenv("REPRO_TUNED_TABLE", str(tmp_path / "missing.json"))
    assert default_table_path() is None
