"""Gather / Scatter / Allgather across components (tuned + XHC extension)."""

import numpy as np
import pytest

from repro.mpi import World
from repro.mpi.colls import Tuned
from repro.node import Node
from repro.xhc import Xhc

from conftest import small_topo

COMPONENTS = {"tuned": Tuned, "xhc": Xhc}


def run(kind, factory, nranks=8, block=512, root=0, iters=2):
    node = Node(small_topo())
    world = World(node, nranks)
    comm = world.communicator(factory())
    out = {}

    def program(comm_, ctx):
        me = comm_.rank_of(ctx)
        for it in range(iters):
            if kind == "gather":
                s = ctx.alloc(f"s{it}", block)
                r = ctx.alloc(f"r{it}", block * nranks) if me == root else None
                s.data[:] = me + 1 + it
                yield from comm_.gather(ctx, s.whole(),
                                        None if r is None else r.whole(),
                                        root)
                if me == root:
                    out[it] = r.data.copy()
            elif kind == "scatter":
                s = ctx.alloc(f"s{it}", block * nranks) if me == root else None
                r = ctx.alloc(f"r{it}", block)
                if me == root:
                    for q in range(nranks):
                        s.data[q * block:(q + 1) * block] = q + 1 + it
                yield from comm_.scatter(ctx,
                                         None if s is None else s.whole(),
                                         r.whole(), root)
                out.setdefault(it, {})[me] = r.data.copy()
            else:  # allgather
                s = ctx.alloc(f"s{it}", block)
                r = ctx.alloc(f"r{it}", block * nranks)
                s.data[:] = me + 1 + it
                yield from comm_.allgather(ctx, s.whole(), r.whole())
                out.setdefault(it, {})[me] = r.data.copy()
    comm.run(program)
    return out


@pytest.mark.parametrize("name", sorted(COMPONENTS))
@pytest.mark.parametrize("root", [0, 3])
def test_gather(name, root):
    out = run("gather", COMPONENTS[name], root=root)
    for it, data in out.items():
        for q in range(8):
            assert np.all(data[q * 512:(q + 1) * 512] == q + 1 + it), (q, it)


@pytest.mark.parametrize("name", sorted(COMPONENTS))
@pytest.mark.parametrize("root", [0, 5])
def test_scatter(name, root):
    out = run("scatter", COMPONENTS[name], root=root)
    for it, per_rank in out.items():
        for me, data in per_rank.items():
            assert np.all(data == me + 1 + it), (me, it)


@pytest.mark.parametrize("name", sorted(COMPONENTS))
def test_allgather(name):
    out = run("allgather", COMPONENTS[name])
    for it, per_rank in out.items():
        for me, data in per_rank.items():
            for q in range(8):
                assert np.all(data[q * 512:(q + 1) * 512] == q + 1 + it)


@pytest.mark.parametrize("name", sorted(COMPONENTS))
def test_odd_rank_count(name):
    out = run("allgather", COMPONENTS[name], nranks=7, block=96)
    for it, per_rank in out.items():
        for me, data in per_rank.items():
            for q in range(7):
                assert np.all(data[q * 96:(q + 1) * 96] == q + 1 + it)


def test_large_blocks_single_copy():
    node_events = {}
    out = run("gather", Xhc, block=64 * 1024, iters=1)
    data = out[0]
    for q in range(8):
        assert np.all(data[q * 65536:(q + 1) * 65536] == q + 1)


def test_buffer_size_validation():
    from repro.errors import MPIError
    node = Node(small_topo())
    world = World(node, 4)
    comm = world.communicator(Tuned())

    def program(comm_, ctx):
        me = comm_.rank_of(ctx)
        s = ctx.alloc("s", 64)
        r = ctx.alloc("r", 64)  # too small for gather at root
        yield from comm_.gather(ctx, s.whole(),
                                r.whole() if me == 0 else None, 0)
    with pytest.raises(MPIError, match="gather receive"):
        comm.run(program)
