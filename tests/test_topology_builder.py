"""Topology builders: symmetric helper and manual construction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TopologyError
from repro.topology import ObjKind, TopologyBuilder, build_symmetric


def test_manual_irregular_tree():
    b = TopologyBuilder("weird")
    s = b.socket()
    n0 = b.numa(s)
    b.cores(n0, 3)
    n1 = b.numa(s)
    llc = b.llc(n1)
    b.cores(llc, 2)
    topo = b.build()
    assert topo.n_cores == 5
    assert topo.llc_of_core(0) is None
    assert topo.llc_of_core(3).index == 0


def test_symmetric_requires_positive_counts():
    with pytest.raises(TopologyError):
        build_symmetric("bad", 0, 1, 1)
    with pytest.raises(TopologyError):
        build_symmetric("bad", 1, 1, 0)


def test_symmetric_llc_divisibility():
    with pytest.raises(TopologyError):
        build_symmetric("bad", 1, 1, 6, cores_per_llc=4)


def test_cores_count_validation():
    b = TopologyBuilder()
    s = b.socket()
    n = b.numa(s)
    with pytest.raises(TopologyError):
        b.cores(n, 0)


@settings(max_examples=30, deadline=None)
@given(
    sockets=st.integers(1, 3),
    numa=st.integers(1, 3),
    per_llc=st.sampled_from([None, 1, 2, 4]),
    llcs_per_numa=st.integers(1, 3),
)
def test_symmetric_shape_invariants(sockets, numa, per_llc, llcs_per_numa):
    """Property: counts of every level multiply out exactly."""
    cores_per_numa = (per_llc or 2) * llcs_per_numa
    topo = build_symmetric("prop", sockets, numa, cores_per_numa, per_llc)
    assert topo.n_cores == sockets * numa * cores_per_numa
    assert topo.count(ObjKind.SOCKET) == sockets
    assert topo.count(ObjKind.NUMA) == sockets * numa
    if per_llc is None:
        assert topo.count(ObjKind.LLC) == 0
    else:
        assert topo.count(ObjKind.LLC) == topo.n_cores // per_llc
    # Depth-first core numbering: consecutive cores share a NUMA node
    # except at NUMA boundaries.
    for i in range(topo.n_cores - 1):
        same = topo.numa_of_core(i) is topo.numa_of_core(i + 1)
        assert same == ((i + 1) % cores_per_numa != 0)


def test_machine_attrs_carried():
    topo = build_symmetric("x", 1, 1, 2, machine_attrs={"arch": "test"})
    assert topo.machine.attrs["arch"] == "test"
