"""xbrc component: flat XPMEM reduction, slice ownership, min granularity."""

import numpy as np

from repro.mpi import FLOAT, SUM, World
from repro.mpi.colls import Xbrc
from repro.node import Node

from conftest import assert_allreduce_correct, run_allreduce, small_topo


def test_allreduce_correct_across_sizes():
    for size in (16, 2048, 60_000):
        out, _ = run_allreduce(Xbrc, nranks=8, size=size, iters=2)
        assert_allreduce_correct(out, 8)


def test_uses_direct_xpmem_reduction():
    _, node = run_allreduce(Xbrc, nranks=8, size=60_000, iters=1)
    assert node.xpmem.attaches > 0


def test_min_slice_serializes_small_messages():
    """Below min_slice, a single rank reduces everything (linearization)."""
    node = Node(small_topo())
    world = World(node, 8)
    comp = Xbrc(min_slice=1024)
    comm = world.communicator(comp)
    done_flags = comp.done

    def program(comm_, ctx):
        me = comm_.rank_of(ctx)
        sbuf = ctx.alloc("s", 64)
        rbuf = ctx.alloc("r", 64)
        sbuf.view().as_dtype(np.float32)[:] = 1.0
        yield from comm_.allreduce(ctx, sbuf.whole(), rbuf.whole(),
                                   SUM, FLOAT)
    comm.run(program)
    # Everyone sets done (monotonic), but only rank 0 owned a slice; the
    # others' slices were empty — verify through the partition helper.
    from repro.mpi.colls.base import partition
    assert len(partition(64, 8, minimum=1024)) == 1


def test_reduce_into_root_buffer():
    node = Node(small_topo())
    world = World(node, 8)
    comm = world.communicator(Xbrc())
    got = {}

    def program(comm_, ctx):
        me = comm_.rank_of(ctx)
        sbuf = ctx.alloc("s", 8192)
        rbuf = ctx.alloc("r", 8192) if me == 3 else None
        sbuf.view().as_dtype(np.float32)[:] = me + 1
        for _ in range(2):
            yield from comm_.reduce(ctx, sbuf.whole(),
                                    None if rbuf is None else rbuf.whole(),
                                    SUM, FLOAT, root=3)
        if me == 3:
            got["v"] = rbuf.view().as_dtype(np.float32).copy()
    comm.run(program)
    assert (got["v"] == sum(range(1, 9))).all()


def test_odd_rank_count():
    out, _ = run_allreduce(Xbrc, nranks=7, size=10_000, iters=2)
    assert_allreduce_correct(out, 7)
