"""The tenant-fair scheduler: round-robin chunks, FIFO within tenants."""

import pytest

from repro.exec import RunRequest
from repro.serve import FairScheduler


def _reqs(n, base=64):
    return [RunRequest("epyc-1p", "bcast", base + i, 8) for i in range(n)]


def _drain_order(sched):
    """Execute everything, returning the (tenant, job id) of each chunk."""
    order = []
    while True:
        item = sched.next_chunk()
        if item is None:
            break
        job, indices = item
        order.append((job.tenant, job.id))
        sched.record(job, indices, [object()] * len(indices))
    return order


def test_jobs_split_into_batch_sized_chunks():
    sched = FairScheduler(batch_size=3)
    job = sched.submit("a", _reqs(7))
    assert [len(c) for c in job.chunks] == [3, 3, 1]
    assert [i for c in job.chunks for i in c] == list(range(7))


def test_batch_size_must_be_positive():
    with pytest.raises(ValueError):
        FairScheduler(batch_size=0)


def test_round_robin_across_tenants():
    sched = FairScheduler(batch_size=2)
    sched.submit("alice", _reqs(6))       # 3 chunks
    sched.submit("bob", _reqs(4))         # 2 chunks
    tenants = [t for t, _j in _drain_order(sched)]
    assert tenants == ["alice", "bob", "alice", "bob", "alice"]


def test_small_tenant_not_starved_by_large_sweep():
    sched = FairScheduler(batch_size=2)
    sched.submit("whale", _reqs(100))     # 50 chunks
    sched.submit("minnow", _reqs(2))      # 1 chunk
    order = _drain_order(sched)
    # The minnow's single chunk runs second, not 51st.
    assert order[1] == ("minnow", 2)


def test_fifo_within_one_tenant():
    sched = FairScheduler(batch_size=2)
    first = sched.submit("a", _reqs(4))
    second = sched.submit("a", _reqs(2))
    order = [j for _t, j in _drain_order(sched)]
    assert order == [first.id, first.id, second.id]


def test_tenant_rejoins_rotation_at_the_back():
    sched = FairScheduler(batch_size=2)
    sched.submit("a", _reqs(2))
    job, indices = sched.next_chunk()
    sched.record(job, indices, [object()] * len(indices))
    assert sched.next_chunk() is None
    assert sched.idle()
    # Resubmitting re-enters cleanly after the queue was emptied.
    sched.submit("a", _reqs(2))
    assert sched.next_chunk() is not None


def test_record_counts_new_cached_and_errors():
    class R:
        def __init__(self, cached=False, error=None):
            self.cached = cached
            self.error = error

    sched = FairScheduler(batch_size=4)
    job = sched.submit("a", _reqs(4))
    _job, indices = sched.next_chunk()
    sched.record(job, indices, [R(), R(cached=True), R(error="boom"), None])
    assert (job.new, job.cached, job.errors) == (1, 1, 2)
    assert job.finished
    assert sched.completed == 1


def test_zero_request_job_finishes_immediately():
    sched = FairScheduler()
    job = sched.submit("a", [])
    assert job.finished
    assert sched.idle()
    assert sched.next_chunk() is None


def test_pending_accounting_and_tenants_snapshot():
    sched = FairScheduler(batch_size=2)
    sched.submit("a", _reqs(5))
    sched.submit("b", _reqs(2))
    assert sched.pending_chunks == 4
    assert sched.pending_requests == 7
    snap = sched.tenants()
    assert snap["a"] == {"jobs": 1, "chunks": 3, "requests": 5}
    assert snap["b"] == {"jobs": 1, "chunks": 1, "requests": 2}
    _drain_order(sched)
    assert sched.tenants() == {}
    assert sched.pending_requests == 0


def test_dispatched_but_unfinished_job_stays_tracked():
    # A job whose chunks are all handed out (but none recorded) must
    # still appear in the pending-request accounting: the daemon's drain
    # logic relies on it.
    sched = FairScheduler(batch_size=2)
    job = sched.submit("a", _reqs(2))
    _job, indices = sched.next_chunk()
    assert sched.idle()                   # no chunks left to hand out
    assert sched.pending_requests == 2    # but nothing recorded yet
    sched.record(job, indices, [object(), object()])
    assert sched.pending_requests == 0
