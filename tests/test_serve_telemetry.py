"""End-to-end service telemetry: a real daemon, concurrent tenants,
the metrics/trace protocol ops, and the rotated event log.

The span-tree assertions are the heart of this module: two tenants
submitting simultaneously must still come out as *separate, coherent*
lifecycle trees (the daemon executes one chunk at a time, and each
tree lives on its own Perfetto track), with per-tenant counters that
only ever go up.
"""

import asyncio
import json
import os
import shutil
import tempfile
import threading

import pytest

from repro.exec import RunRequest, SIM_VERSION
from repro.obs.export import validate_chrome_trace
from repro.obs.metrics import validate_prometheus
from repro.serve import ServeClient, ServeDaemon, ServeError


class DaemonFixture:
    def __init__(self, **kwargs):
        self.dir = tempfile.mkdtemp(prefix="rst")
        self.socket_path = os.path.join(self.dir, "d.sock")
        kwargs.setdefault("cache", os.path.join(self.dir, "cache"))
        kwargs.setdefault("state_dir", self.dir)
        kwargs.setdefault("tables_root", os.path.join(self.dir, "tuned"))
        self.daemon = ServeDaemon(self.socket_path, **kwargs)
        self.thread = threading.Thread(
            target=lambda: asyncio.run(self.daemon.run()), daemon=True)

    def start(self):
        self.thread.start()
        for _ in range(200):
            if os.path.exists(self.socket_path):
                return self
            threading.Event().wait(0.02)
        raise RuntimeError("daemon socket never appeared")

    def stop(self):
        if self.thread.is_alive():
            try:
                with ServeClient(self.socket_path, timeout=10) as client:
                    client.shutdown()
            except ServeError:
                pass
            self.thread.join(timeout=10)
        shutil.rmtree(self.dir, ignore_errors=True)


@pytest.fixture
def served():
    fixture = DaemonFixture(workers=0, batch_size=2)
    fixture.start()
    yield fixture
    fixture.stop()


def _payloads(sizes=(64, 4096), component="xhc-tree"):
    return [RunRequest("epyc-1p", "bcast", size, 8, component=component,
                       warmup=1, iters=2).payload() for size in sizes]


# -- the metrics op -----------------------------------------------------------


def test_metrics_op_counts_match_submitted_work(served):
    payloads = _payloads()
    with ServeClient(served.socket_path) as client:
        client.submit(payloads, tenant="alice")
        client.submit(payloads, tenant="bob")    # warm: all cache hits
        reply = client.metrics()

    assert reply["op"] == "metrics"
    assert reply["telemetry"] is True
    m = reply["metrics"]
    assert m["serve.jobs.submitted"]["value"] == 2
    assert m["serve.jobs.completed"]["value"] == 2
    assert m["serve.results.cached"]["value"] == len(payloads)
    # One end-to-end latency observation per job; percentiles present
    # and consistent with the histogram's own range.
    hist = m["serve.job.latency_seconds"]
    assert hist["count"] == 2
    assert hist["min"] <= hist["p50"] <= hist["p95"] <= hist["p99"] \
        <= hist["max"]
    # Queue-wait + per-chunk phases were observed.
    assert m["serve.job.queue_wait_seconds"]["count"] == 2
    assert m["serve.chunk.execute_seconds"]["count"] >= 2
    assert m["serve.exec.cache_lookup_seconds"]["count"] >= 2
    assert m["serve.exec.worker_execute_seconds"]["count"] >= 1
    # Cache gauges mirror the executor's cache.
    assert m["serve.cache.hits"]["value"] == len(payloads)
    assert m["serve.cache.entries"]["value"] == len(payloads)


def test_metrics_op_prometheus_is_valid_and_consistent(served):
    with ServeClient(served.socket_path) as client:
        client.submit(_payloads(), tenant="alice")
        reply = client.metrics()
    text = reply["prometheus"]
    assert validate_prometheus(text) == []
    assert "# TYPE serve_jobs_submitted counter" in text
    assert "serve_jobs_submitted 1" in text
    assert 'serve_job_latency_seconds_bucket{le="+Inf"} 1' in text
    assert "serve_job_latency_seconds_count 1" in text
    assert "serve_tenant_jobs_alice 1" in text


def test_metrics_event_log_reported_and_on_disk(served):
    with ServeClient(served.socket_path) as client:
        client.submit(_payloads(), tenant="alice")
        reply = client.metrics()
    info = reply["event_log"]
    assert info["path"] == os.path.join(served.dir, "events.jsonl")
    assert info["written"] >= 3            # submit + chunk(s) + done
    assert os.path.exists(info["path"])
    with open(info["path"]) as fh:
        kinds = [json.loads(line)["event"] for line in fh]
    assert kinds[0] == "submit"
    assert kinds[-1] == "done"
    assert "chunk" in kinds


# -- the trace op -------------------------------------------------------------


def test_trace_op_returns_valid_perfetto_doc(served):
    with ServeClient(served.socket_path) as client:
        done = client.submit(_payloads(), tenant="alice")
        reply = client.trace(done["job"])
    doc = reply["trace"]
    assert validate_chrome_trace(doc) == []
    xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    names = {e["name"] for e in xs}
    assert {"job", "queue-wait", "chunk", "publish"} <= names
    assert {"cache-lookup", "worker-execute"} <= names
    assert all(e["tid"] == done["job"] for e in xs)
    assert reply["jobs"] == [done["job"]]


def test_trace_op_unknown_job_is_an_error(served):
    with ServeClient(served.socket_path) as client:
        client.submit(_payloads(), tenant="alice")
        with pytest.raises(ServeError, match="no trace for job"):
            client.trace(999)
        with pytest.raises(ServeError, match="bad job id"):
            client.request({"op": "trace", "job": "not-an-int"})


def test_trace_op_before_any_job_is_an_error(served):
    with ServeClient(served.socket_path) as client:
        with pytest.raises(ServeError, match="no jobs traced yet"):
            client.trace()


# -- concurrency: two tenants at once -----------------------------------------


def test_concurrent_tenants_produce_separate_coherent_span_trees(served):
    """Two tenants submit simultaneously; their chunks interleave on the
    daemon's single worker, but each job's span tree must stay on its
    own track, properly nested, with no spans leaking across jobs."""
    alice_payloads = _payloads(sizes=tuple(64 * (i + 1) for i in range(6)))
    bob_payloads = _payloads(sizes=(96, 97, 98, 99))
    done = {}

    def run(tenant, payloads):
        with ServeClient(served.socket_path, timeout=60) as client:
            done[tenant] = client.submit(payloads, tenant=tenant)

    threads = [threading.Thread(target=run, args=("alice", alice_payloads)),
               threading.Thread(target=run, args=("bob", bob_payloads))]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert all(not t.is_alive() for t in threads)
    assert done["alice"]["stats"]["errors"] == 0
    assert done["bob"]["stats"]["errors"] == 0

    with ServeClient(served.socket_path) as client:
        reply = client.trace()
        metrics = client.metrics()["metrics"]

    doc = reply["trace"]
    assert validate_chrome_trace(doc) == []
    xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    job_ids = {done["alice"]["job"], done["bob"]["job"]}
    assert {e["tid"] for e in xs} == job_ids
    # One pid per tenant, and both jobs landed on different pids.
    pid_by_tid = {}
    for e in xs:
        pid_by_tid.setdefault(e["tid"], set()).add(e["pid"])
    assert all(len(pids) == 1 for pids in pid_by_tid.values())
    assert pid_by_tid[done["alice"]["job"]] != pid_by_tid[done["bob"]["job"]]

    # Per-track coherence: on each job's track, sibling chunk spans must
    # not overlap in time (the daemon runs one chunk at a time), and the
    # root job span must cover every other span on the track.
    for tid in job_ids:
        track = [e for e in xs if e["tid"] == tid]
        root = [e for e in track if e["name"] == "job"]
        assert len(root) == 1
        lo = root[0]["ts"] - 1e-3
        hi = root[0]["ts"] + root[0]["dur"] + 1e-3
        for e in track:
            assert lo <= e["ts"] and e["ts"] + e["dur"] <= hi
        chunks = sorted((e for e in track if e["name"] == "chunk"),
                        key=lambda e: e["ts"])
        for a, b in zip(chunks, chunks[1:]):
            assert a["ts"] + a["dur"] <= b["ts"] + 1e-3

    # Monotone per-tenant counters, consistent with the scheduler.
    for tenant, njobs in (("alice", 1), ("bob", 1)):
        assert metrics[f"serve.tenant.jobs.{tenant}"]["value"] == njobs
        assert metrics[f"serve.tenant.completed.{tenant}"]["value"] == njobs
    assert metrics["serve.job.latency_seconds"]["count"] == 2


def test_tenant_counters_are_monotone_across_submits(served):
    values = []
    with ServeClient(served.socket_path) as client:
        for i in range(3):
            client.submit(_payloads(sizes=(64 + i,)), tenant="alice")
            m = client.metrics()["metrics"]
            values.append((m["serve.tenant.jobs.alice"]["value"],
                           m["serve.tenant.completed.alice"]["value"]))
    assert values == [(1, 1), (2, 2), (3, 3)]


# -- the extended status op ---------------------------------------------------


def test_status_gains_cache_inflight_and_tenant_totals(served):
    with ServeClient(served.socket_path) as client:
        client.submit(_payloads(), tenant="alice")
        client.submit(_payloads(), tenant="bob")
        status = client.status()
    # The PR-5 keys survive untouched (protocol stays v1)...
    assert status["protocol"] == 1
    assert status["queue"]["pending_requests"] == 0
    assert status["store"]["entries"] == 2
    assert status["metrics"]["serve.jobs.completed"]["value"] == 2
    # ...and the new ones sit alongside.
    assert status["queue"]["inflight_chunks"] == 0
    assert status["queue"]["tenant_totals"] == {
        "alice": {"submitted": 1, "completed": 1},
        "bob": {"submitted": 1, "completed": 1},
    }
    cache = status["cache"]
    assert cache["hits"] == 2                # bob's warm re-submit
    assert cache["misses"] == 2              # alice's cold run
    assert cache["entries"] == 2
    assert cache["evictions"] == 0
    assert cache["quarantined"] == 0
    assert cache["hit_rate"] == pytest.approx(0.5)


def test_request_ledger_carries_wall_seconds(served):
    with ServeClient(served.socket_path) as client:
        client.submit(_payloads(), tenant="alice")
    from repro.serve import RequestLog
    jobs = [r for r in RequestLog(served.dir).records()
            if r.get("kind") == "job"]
    assert len(jobs) == 1
    assert jobs[0]["wall_s"] is not None
    assert jobs[0]["wall_s"] >= 0


# -- telemetry off ------------------------------------------------------------


def test_daemon_with_telemetry_off_still_serves():
    fixture = DaemonFixture(workers=0, telemetry=False)
    fixture.start()
    try:
        with ServeClient(fixture.socket_path) as client:
            done = client.submit(_payloads(), tenant="alice")
            assert done["stats"]["errors"] == 0
            with pytest.raises(ServeError, match="telemetry is disabled"):
                client.trace(done["job"])
            reply = client.metrics()
        assert reply["telemetry"] is False
        # The core PR-5 counters still exist; the lifecycle histograms
        # were never registered.
        assert reply["metrics"]["serve.jobs.completed"]["value"] == 1
        assert "serve.job.latency_seconds" not in reply["metrics"]
        assert fixture.daemon.executor.on_timing is None
        assert not os.path.exists(
            os.path.join(fixture.dir, "events.jsonl"))
    finally:
        fixture.stop()


def test_bare_executor_has_no_timing_hook():
    from repro.exec import Executor
    with Executor(workers=0) as ex:
        assert ex.on_timing is None
        results = ex.run_many(
            [RunRequest.from_payload(p) for p in _payloads()])
    assert all(r is not None for r in results)


def test_sim_results_identical_with_and_without_telemetry():
    """Telemetry is wall-clock only: simulated latencies must be
    bit-identical whether or not the hook is installed."""
    from repro.exec import Executor

    reqs = [RunRequest.from_payload(p) for p in _payloads()]
    with Executor(workers=0) as plain:
        baseline = [r.latency_s for r in plain.run_many(reqs)]
    calls = []
    with Executor(workers=0) as hooked:
        hooked.on_timing = lambda phase, secs, n: calls.append(phase)
        timed = [r.latency_s for r in hooked.run_many(reqs)]
    assert timed == baseline
    assert "cache-lookup" in calls
    assert "worker-execute" in calls
    assert SIM_VERSION == 3
