"""Synchronization substrate: flag placement, barriers, atomics allocator."""

import pytest

from repro.errors import DeadlockError
from repro.node import Node
from repro.sim import primitives as P
from repro.sync import AtomicAllocator, FlagAllocator, flat_barrier, rmb, wmb
from repro.sync.barriers import FlatBarrierState

from conftest import small_topo


def test_flag_group_shared_line():
    alloc = FlagAllocator("t.")
    flags = alloc.flag_group(["a", "b", "c"], owner_core=0,
                             placement="shared")
    assert len({f.line.id for f in flags}) == 1
    assert all(f.owner_core == 0 for f in flags)
    assert flags[0].name.startswith("t.")


def test_flag_group_separate_lines():
    alloc = FlagAllocator()
    flags = alloc.flag_group(["a", "b", "c"], owner_core=0,
                             placement="separate")
    assert len({f.line.id for f in flags}) == 3


def test_unknown_placement():
    with pytest.raises(ValueError):
        FlagAllocator().flag_group(["a"], 0, placement="diagonal")


def test_shared_line_write_invalidates_sibling_readers():
    """Writing one flag of a shared line evicts readers of all of them."""
    node = Node(small_topo(), data_movement=False)
    a, b = FlagAllocator().flag_group(["a", "b"], owner_core=0,
                                      placement="shared")
    done = []
    def reader():
        yield P.WaitFlag(a, 1)
        # b shares the line: reading it now is a fresh fetch either way,
        # but the line state must be coherent.
        yield P.WaitFlag(b, 0)
        done.append(node.engine.now)
    def writer():
        yield P.Compute(1e-6)
        yield P.SetFlag(a, 1)
    node.engine.spawn(reader(), core=5)
    node.engine.spawn(writer(), core=0)
    node.engine.run()
    assert done and 5 in a.line.holders


def test_memory_barriers_are_cheap_compute():
    assert isinstance(wmb(), P.Compute)
    assert rmb().seconds < 1e-7


def test_flat_barrier_synchronizes():
    node = Node(small_topo(), data_movement=False)
    cores = list(range(6))
    state = FlatBarrierState(cores)
    after = {}
    def prog(i):
        yield P.Compute((i + 1) * 1e-6)  # staggered arrivals
        yield from flat_barrier(state, i, episode=0)
        after[i] = node.engine.now
    for i in cores:
        node.engine.spawn(prog(i), core=i)
    node.engine.run()
    # Nobody leaves before the last arrival (6us).
    assert min(after.values()) >= 6e-6


def test_flat_barrier_multiple_episodes():
    node = Node(small_topo(), data_movement=False)
    cores = [0, 1, 2]
    state = FlatBarrierState(cores)
    def prog(i):
        for ep in range(3):
            yield from flat_barrier(state, i, episode=ep)
    for i in cores:
        node.engine.spawn(prog(i), core=i)
    node.engine.run()  # no deadlock


def test_atomic_allocator_namespacing():
    atom = AtomicAllocator("ns.").atomic("ctr", home_core=2)
    assert atom.name == "ns.ctr"
    assert atom.line.owner_core == 2
