"""TunedXhc: decision-table dispatch over per-size Xhc delegates."""

import pytest

from repro.mpi.colls import TunedXhc
from repro.tune.table import DecisionTable
from repro.xhc import XhcConfig

from conftest import (assert_allreduce_correct, assert_bcast_correct,
                      run_allreduce, run_bcast)

SMALL_CFG = XhcConfig(hierarchy="flat", cico_threshold=4096)
LARGE_CFG = XhcConfig(hierarchy="l3+numa", chunk_size=16384)
REDUCE_CFG = XhcConfig(hierarchy="numa", chunk_size=16384)


def mini_table():
    table = DecisionTable()
    table.record("mini", "bcast", 1024, SMALL_CFG, 1e-6)
    table.record("mini", "bcast", 100_000, LARGE_CFG, 2e-6)
    table.record("mini", "allreduce", 100_000, REDUCE_CFG, 3e-6)
    return table


def make_tuned():
    return TunedXhc(table=mini_table())


@pytest.mark.parametrize("size", [64, 1024, 9000, 100_000])
def test_bcast_correct_across_buckets(size):
    out, _ = run_bcast(make_tuned, nranks=16, size=size, iters=2)
    assert_bcast_correct(out, 16, 101)


@pytest.mark.parametrize("size", [64, 9000, 100_000])
def test_allreduce_correct_across_buckets(size):
    out, _ = run_allreduce(make_tuned, nranks=16, size=size, iters=2)
    assert_allreduce_correct(out, 16, iters=2)


def test_dispatch_picks_size_specific_config():
    comp = make_tuned()
    out, _ = run_bcast(lambda: comp, nranks=16, size=100_000)
    assert comp.config_for("bcast", 64) == SMALL_CFG
    assert comp.config_for("bcast", 100_000) == LARGE_CFG
    # Untuned sizes fall back to the nearest tuned bucket, not the default.
    assert comp.config_for("bcast", 10_000_000) == LARGE_CFG


def test_multiple_delegates_share_one_communicator():
    """Small and large bcasts in one run bind two Xhc instances to the
    same communicator; each must keep private ledgers (regression for the
    shared rank_state ledger)."""
    comp = make_tuned()
    out, _ = run_bcast(lambda: comp, nranks=16, size=64, iters=2)
    assert_bcast_correct(out, 16, 101)
    out, _unused = None, None
    assert comp.config_for("bcast", 64) == SMALL_CFG
    out2, _ = run_bcast(make_tuned, nranks=16, size=100_000, iters=2)
    assert_bcast_correct(out2, 16, 101)


def test_empty_table_uses_fallback():
    fallback = XhcConfig(hierarchy="socket")
    comp = TunedXhc(table=DecisionTable(), fallback=fallback)
    assert comp.fallback == fallback
    out, _ = run_bcast(lambda: comp, nranks=8, size=1024)
    assert_bcast_correct(out, 8, 101)
    assert comp.config_for("bcast", 1024) == fallback


def test_alias_collectives_follow_swept_shapes():
    comp = make_tuned()
    run_bcast(lambda: comp, nranks=8, size=64)  # trigger setup
    assert comp.config_for("reduce", 100_000) == REDUCE_CFG
    assert comp.config_for("gather", 100_000) == LARGE_CFG
    assert comp.config_for("barrier", 1) == SMALL_CFG


def test_depth_mismatch_degrades_to_fallback():
    """A chunk tuple tuned at another rank count may not match this
    communicator's hierarchy depth; dispatch degrades to the fallback
    instead of raising mid-collective."""
    table = DecisionTable()
    # Valid at 16 ranks (3 levels) but not at 8 ranks, where the socket
    # level is degenerate and only 2 levels build.
    table.record("mini", "bcast", 1024,
                 XhcConfig(hierarchy="numa+socket", chunk_size=(1024,) * 3),
                 1e-6)
    comp = TunedXhc(table=table)
    out, _ = run_bcast(lambda: comp, nranks=8, size=1024, iters=2)
    assert_bcast_correct(out, 8, 101)
    assert comp._delegates[comp.config_for("bcast", 1024)].cfg \
        == comp.fallback
