"""Application skeletons: the communication *mix* must match the paper.

SSV-A characterizes each application: PiSvM's MPI time is dominated by
Broadcast; miniAMR's refine step is small Allreduces; CNTK is large
gradient Allreduces. These tests pin those properties, because the app
results (Figs. 12-14) are only meaningful if the mixes are right.
"""

import pytest

from repro.apps import run_cntk, run_miniamr, run_pisvm
from repro.apps.pisvm import BCAST_BYTES
from repro.apps.miniamr import CONFIGS
from repro.apps.cntk import GRADIENT_BYTES
from repro.bench.components import COMPONENTS

pytestmark = pytest.mark.slow


def test_pisvm_is_bcast_dominated():
    """Paper: 'The majority of PiSvM's MPI communication time is inside
    MPI_Bcast.'"""
    assert BCAST_BYTES > 1024          # medium payload working sets
    res = run_pisvm("epyc-1p", COMPONENTS["xhc-tree"], "xhc-tree",
                    nranks=16, iterations=8)
    # The convergence allreduce is 8 bytes vs a 48K bcast: bcast dominates
    # bytes by construction; the time split follows.
    assert res.collective_time > 0


def test_miniamr_configs_match_paper():
    """Default: tens of bytes per call; refine-1k: ~1 KB per call."""
    assert CONFIGS["default"]["allreduce_bytes"] < 100
    assert CONFIGS["refine-1k"]["allreduce_bytes"] == 1024
    # The aggressive config calls allreduce more often per unit compute.
    dflt = CONFIGS["default"]
    agg = CONFIGS["refine-1k"]
    assert (agg["allreduces_per_step"] / agg["compute"]
            > dflt["allreduces_per_step"] / dflt["compute"])


def test_cntk_gradients_are_large():
    assert GRADIENT_BYTES >= 4 << 20


def test_warmup_excluded_from_totals():
    """The measured epoch must not include the first-attach costs."""
    cold = run_cntk("epyc-1p", COMPONENTS["xhc-tree"], "xhc-tree",
                    nranks=16, minibatches=2, gradient_bytes=2 << 20)
    # Per-minibatch cost should be stable: 4 minibatches ~ 2x the 2-batch
    # total (within 30%), which fails if a warmup-sized constant leaks in.
    warm = run_cntk("epyc-1p", COMPONENTS["xhc-tree"], "xhc-tree",
                    nranks=16, minibatches=4, gradient_bytes=2 << 20)
    ratio = warm.total_time / cold.total_time
    assert 1.6 < ratio < 2.4


def test_mpi_fraction_bounded():
    for runner, kw in ((run_pisvm, dict(iterations=4)),
                       (run_miniamr, dict(config="default")),
                       (run_cntk, dict(minibatches=2))):
        res = runner("epyc-1p", COMPONENTS["tuned"], "tuned", nranks=16,
                     **kw)
        assert 0.0 < res.mpi_fraction < 0.9, runner.__name__
