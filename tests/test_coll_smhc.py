"""smhc component: socket-aware staging, CICO-only data path."""

import numpy as np

from repro.mpi import World
from repro.mpi.colls import Smhc
from repro.node import Node

from conftest import (assert_allreduce_correct, assert_bcast_correct,
                      run_allreduce, run_bcast, small_topo)


def test_flat_and_tree_bcast():
    for tree in (False, True):
        out, node = run_bcast(lambda: Smhc(tree=tree), nranks=16,
                              size=70_000, iters=2)
        assert_bcast_correct(out, 16, 101)
        assert node.xpmem.attaches == 0  # never single-copy


def test_tree_roles_socket_leaders():
    node = Node(small_topo())
    world = World(node, 16)
    comp = Smhc(tree=True)
    world.communicator(comp)
    # Two sockets of 8 ranks each.
    assert comp.sockets == [list(range(8)), list(range(8, 16))]
    parent, consumers = comp._roles(0, root=0)
    assert parent is None
    assert 8 in consumers          # the other socket's leader
    assert set(range(1, 8)) <= set(consumers)
    parent8, consumers8 = comp._roles(8, root=0)
    assert parent8 == 0
    assert consumers8 == list(range(9, 16))
    parent9, consumers9 = comp._roles(9, root=0)
    assert parent9 == 8 and consumers9 == []


def test_tree_roles_follow_the_root():
    node = Node(small_topo())
    world = World(node, 16)
    comp = Smhc(tree=True)
    world.communicator(comp)
    parent, consumers = comp._roles(10, root=10)
    assert parent is None
    # Root serves its whole socket plus the other socket's leader.
    assert 0 in consumers and set(range(8, 16)) - {10} <= set(consumers)


def test_allreduce_flat_and_tree():
    for tree in (False, True):
        out, _ = run_allreduce(lambda: Smhc(tree=tree), nranks=16,
                               size=50_000, iters=2)
        assert_allreduce_correct(out, 16)


def test_reduce():
    from repro.mpi import FLOAT, SUM
    node = Node(small_topo())
    world = World(node, 8)
    comm = world.communicator(Smhc(tree=True))
    got = {}

    def program(comm_, ctx):
        me = comm_.rank_of(ctx)
        sbuf = ctx.alloc("s", 4096)
        rbuf = ctx.alloc("r", 4096)
        sbuf.view().as_dtype(np.float32)[:] = me
        for _ in range(2):
            yield from comm_.reduce(ctx, sbuf.whole(), rbuf.whole(),
                                    SUM, FLOAT, root=1)
        if me == 1:
            got["v"] = rbuf.view().as_dtype(np.float32).copy()
    comm.run(program)
    assert (got["v"] == sum(range(8))).all()


def test_barrier():
    node = Node(small_topo())
    world = World(node, 6)
    comm = world.communicator(Smhc(tree=True))

    def program(comm_, ctx):
        for _ in range(3):
            yield from comm_.barrier(ctx)
    comm.run(program)  # terminates without deadlock
