"""Cache residency model: high-water prefixes, invalidation, eviction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.cache import CacheKind, CacheLevel, CacheSystem
from repro.memory.model import model_for
from repro.node import Node

from conftest import small_topo


def make_system():
    topo = small_topo()
    return CacheSystem(topo, model_for(topo)), topo


def alloc_buf(node_or_sys, size, rank=0, core=0):
    node = Node(small_topo(), data_movement=False)
    return node.new_address_space(rank, core).alloc("b", size)


def test_read_inserts_into_private_and_shared():
    sys_, topo = make_system()
    buf = alloc_buf(sys_, 4096)
    sys_.record_read(0, buf, 4096)
    assert sys_.private[0].high_water(buf) == 4096
    shared = sys_.shared_cache_of(0)
    assert shared.high_water(buf) == 4096
    assert shared in sys_.holders_of(buf)


def test_write_invalidates_other_holders():
    sys_, topo = make_system()
    buf = alloc_buf(sys_, 4096)
    sys_.record_read(0, buf, 4096)
    sys_.record_read(5, buf, 4096)
    sys_.record_write(9, buf, 4096)
    assert sys_.private[0].high_water(buf) == 0
    assert sys_.private[5].high_water(buf) == 0
    assert sys_.private[9].high_water(buf) == 4096


def test_hit_bytes_prefix_semantics():
    """A consumer behind a producer hits; a reader ahead of it misses."""
    sys_, topo = make_system()
    buf = alloc_buf(sys_, 1 << 20)
    sys_.record_write(0, buf, 64 * 1024)  # producer wrote 64K so far
    lvl = sys_.private[0]
    assert lvl.hit_bytes(buf, 0, 16384) == 16384          # behind: hit
    assert lvl.hit_bytes(buf, 60 * 1024, 8192) == 4096     # straddling
    assert lvl.hit_bytes(buf, 128 * 1024, 16384) == 0      # ahead: miss


def test_trailing_window_of_oversized_buffer():
    """Scanning past capacity keeps only the tail resident (LRU thrash)."""
    topo = small_topo()
    model = model_for(topo)
    lvl = CacheLevel(CacheKind.PRIVATE, model.l2_size, [0])
    sys_, _ = make_system()
    buf = alloc_buf(sys_, 4 * model.l2_size)
    lvl.insert(buf, buf.size, sys_)
    # Head of the buffer fell out of the window:
    assert lvl.hit_bytes(buf, 0, 4096) == 0
    # Tail is still present:
    assert lvl.hit_bytes(buf, buf.size - 4096, 4096) == 4096


def test_lru_eviction_under_pressure():
    sys_, topo = make_system()
    lvl = sys_.private[0]
    bufs = [alloc_buf(sys_, lvl.capacity // 2) for _ in range(4)]
    for b in bufs:
        lvl.insert(b, b.size, sys_)
    # Capacity holds ~2 of them; the oldest must be gone.
    assert lvl.high_water(bufs[0]) == 0
    assert lvl.high_water(bufs[-1]) == bufs[-1].size
    assert lvl.used <= lvl.capacity


def test_drop_removes_everywhere():
    sys_, topo = make_system()
    buf = alloc_buf(sys_, 4096)
    sys_.record_read(0, buf, 4096)
    sys_.record_read(12, buf, 4096)
    sys_.drop(buf)
    assert not sys_.holders_of(buf)


def test_flush_all():
    sys_, topo = make_system()
    buf = alloc_buf(sys_, 4096)
    sys_.record_read(3, buf, 4096)
    sys_.flush_all()
    assert sys_.private[3].high_water(buf) == 0
    assert sys_.private[3].used == 0


def test_shared_cache_assignment_llc_vs_slc():
    from repro.topology import get_system
    epyc = get_system("epyc-1p")
    cs = CacheSystem(epyc, model_for(epyc))
    assert cs.shared_cache_of(0).kind is CacheKind.GROUP
    arm = get_system("arm-n1")
    cs_arm = CacheSystem(arm, model_for(arm))
    assert cs_arm.shared_cache_of(0).kind is CacheKind.SLC
    # Whole socket shares one SLC.
    assert cs_arm.shared_cache_of(0) is cs_arm.shared_cache_of(79)
    assert cs_arm.shared_cache_of(0) is not cs_arm.shared_cache_of(80)


@settings(max_examples=40, deadline=None)
@given(ops=st.lists(
    st.tuples(st.integers(0, 3), st.integers(1, 1 << 16)), min_size=1,
    max_size=20))
def test_total_never_exceeds_capacity(ops):
    """Property: accounting invariant under arbitrary insert sequences."""
    sys_, topo = make_system()
    lvl = sys_.private[0]
    bufs = [alloc_buf(sys_, 1 << 18) for _ in range(4)]
    for idx, upto in ops:
        lvl.insert(bufs[idx], upto, sys_)
        assert 0 <= lvl.used
        assert lvl.used <= lvl.capacity or len(list(lvl.buffers())) == 1
