"""Dynamic race sanitizer: seeded violations are flagged, correct
protocols are clean (repro.check.race wired through Node(check=...))."""

import pytest

from repro.node import Node
from repro.sim import primitives as P
from repro.sim.syncobj import Flag

from conftest import small_topo


def _two_rank_node(check="race"):
    node = Node(small_topo(), data_movement=False, check=check)
    s0 = node.new_address_space(rank=0, core=0)
    s1 = node.new_address_space(rank=1, core=1)
    return node, s0, s1


def _run_protocol(release_before_write: bool, check="race"):
    """Rank 0 publishes a shared buffer and signals with a flag; rank 1
    waits on the flag and reads. ``release_before_write`` seeds the bug:
    the flag store happens before the data write."""
    node, s0, s1 = _two_rank_node(check)
    shared = s0.alloc("pub", 256, shared=True)
    src = s0.alloc("src", 256)
    dst = s1.alloc("dst", 256)
    flag = Flag("proto.ready", owner_core=0)

    def writer():
        if release_before_write:
            yield P.SetFlag(flag, 1)
            yield P.Copy(src=src.whole(), dst=shared.whole())
        else:
            yield P.Copy(src=src.whole(), dst=shared.whole())
            yield P.SetFlag(flag, 1)

    def reader():
        yield P.WaitFlag(flag, 1)
        yield P.Copy(src=shared.whole(), dst=dst.whole())

    node.engine.spawn(writer(), core=0, name="rank0")
    node.engine.spawn(reader(), core=1, name="rank1")
    node.engine.run()
    return node


def test_release_before_write_is_flagged():
    node = _run_protocol(release_before_write=True)
    report = node.check_report
    races = report.by_kind("race")
    assert races, "seeded release-before-write protocol must be flagged"
    f = races[0]
    # The finding names both ranks and the unordered accesses.
    assert set(f.procs) == {"rank0", "rank1"}
    assert "write" in f.message and "read" in f.message
    assert "pub" in f.message
    assert "happens-before" in f.message


def test_correct_protocol_is_clean():
    node = _run_protocol(release_before_write=False)
    assert node.check_report.ok


def test_concurrent_writers_race_without_flag():
    """Two ranks writing the same shared range with no sync at all."""
    node, s0, s1 = _two_rank_node()
    shared = s0.alloc("pub", 128, shared=True)
    a = s0.alloc("a", 128)
    b = s1.alloc("b", 128)

    def w(space_view):
        yield P.Copy(src=space_view, dst=shared.whole())

    node.engine.spawn(w(a.whole()), core=0, name="rank0")
    node.engine.spawn(w(b.whole()), core=1, name="rank1")
    node.engine.run()
    assert node.check_report.by_kind("race")


def test_disjoint_ranges_do_not_race():
    node, s0, s1 = _two_rank_node()
    shared = s0.alloc("pub", 256, shared=True)
    a = s0.alloc("a", 128)
    b = s1.alloc("b", 128)

    def w(src, off):
        yield P.Copy(src=src, dst=shared.view(off, 128))

    node.engine.spawn(w(a.whole(), 0), core=0, name="rank0")
    node.engine.spawn(w(b.whole(), 128), core=1, name="rank1")
    node.engine.run()
    assert node.check_report.ok


def test_spawned_helper_inherits_order():
    """A helper spawned after the write inherits the spawner's clock, so
    its read of the parent's buffer is ordered (no false positive)."""
    node, s0, _ = _two_rank_node()
    shared = s0.alloc("pub", 64, shared=True)
    scratch = s0.alloc("scratch", 64)
    out = s0.alloc("out", 64)

    def helper():
        yield P.Copy(src=shared.whole(), dst=out.whole())

    def parent():
        yield P.Copy(src=scratch.whole(), dst=shared.whole())
        node.engine.spawn(helper(), core=0, name="helper")
        yield P.Compute(1e-6)

    node.engine.spawn(parent(), core=0, name="rank0")
    node.engine.run()
    assert node.check_report.ok


def test_atomic_rmw_orders_handoff():
    """Counter-mediated handoff (sm-style): RMW release + wait acquire."""
    from repro.sim.syncobj import Atomic

    node, s0, s1 = _two_rank_node()
    shared = s0.alloc("pub", 64, shared=True)
    a = s0.alloc("a", 64)
    b = s1.alloc("b", 64)
    counter = Atomic("done", home_core=0)

    def producer():
        yield P.Copy(src=a.whole(), dst=shared.whole())
        yield P.AtomicRMW(counter, 1)

    def consumer():
        yield P.WaitAtomic(counter, 1)
        yield P.Copy(src=shared.whole(), dst=b.whole())

    node.engine.spawn(producer(), core=0, name="rank0")
    node.engine.spawn(consumer(), core=1, name="rank1")
    node.engine.run()
    assert node.check_report.ok


def test_unattached_peer_read_is_flagged():
    """Reading a peer's non-shared buffer without an XPMEM attachment."""
    node, s0, s1 = _two_rank_node()
    private = s0.alloc("priv", 128)          # not shared, never exposed
    dst = s1.alloc("dst", 128)
    flag = Flag("ready", owner_core=0)

    def owner():
        yield P.SetFlag(flag, 1)

    def thief():
        yield P.WaitFlag(flag, 1)
        yield P.Copy(src=private.whole(), dst=dst.whole())

    node.engine.spawn(owner(), core=0, name="rank0")
    node.engine.spawn(thief(), core=1, name="rank1")
    node.engine.run()
    findings = node.check_report.by_kind("xpmem")
    assert findings
    assert "attachment" in findings[0].message
    assert "rank1" in findings[0].procs


def test_attached_peer_read_is_clean():
    node, s0, s1 = _two_rank_node()
    private = s0.alloc("priv", 128)
    dst = s1.alloc("dst", 128)
    flag = Flag("ready", owner_core=0)

    def owner():
        yield from node.xpmem.expose(private)
        yield P.SetFlag(flag, 1)

    def peer():
        yield P.WaitFlag(flag, 1)
        yield from node.xpmem.attach(private)
        yield P.Copy(src=private.whole(), dst=dst.whole())

    node.engine.spawn(owner(), core=0, name="rank0")
    node.engine.spawn(peer(), core=1, name="rank1")
    node.engine.run()
    assert node.check_report.ok


def test_use_after_detach_is_flagged():
    node, s0, s1 = _two_rank_node()
    private = s0.alloc("priv", 128)
    dst = s1.alloc("dst", 128)
    flag = Flag("ready", owner_core=0)

    def owner():
        yield from node.xpmem.expose(private)
        yield P.SetFlag(flag, 1)

    def peer():
        yield P.WaitFlag(flag, 1)
        yield from node.xpmem.attach(private)
        yield P.Copy(src=private.whole(), dst=dst.whole())
        yield from node.xpmem.detach(private)
        yield P.Copy(src=private.whole(), dst=dst.whole())  # stale mapping

    node.engine.spawn(owner(), core=0, name="rank0")
    node.engine.spawn(peer(), core=1, name="rank1")
    node.engine.run()
    assert node.check_report.by_kind("xpmem")


def test_check_off_has_no_checker():
    node = Node(small_topo(), data_movement=False)
    assert node.engine.checker is None
    assert node.check_report.ok


def test_unknown_check_mode_rejected():
    from repro.errors import SimulationError
    with pytest.raises(SimulationError, match="check mode"):
        Node(small_topo(), data_movement=False, check="everything")


def test_findings_carry_span_context():
    """With observe on, findings name the enclosing span."""
    node = Node(small_topo(), data_movement=False, observe="spans",
                check="race")
    s0 = node.new_address_space(rank=0, core=0)
    s1 = node.new_address_space(rank=1, core=1)
    shared = s0.alloc("pub", 64, shared=True)
    a = s0.alloc("a", 64)
    b = s1.alloc("b", 64)

    def w(src, name, rank):
        with node.obs.span(name, rank=rank):
            yield P.Copy(src=src, dst=shared.whole())

    node.engine.spawn(w(a.whole(), "phase.write", 0), core=0, name="rank0")
    node.engine.spawn(w(b.whole(), "phase.write", 1), core=1, name="rank1")
    node.engine.run()
    races = node.check_report.by_kind("race")
    assert races and races[0].span == "phase.write(rank=1)"
