"""Golden-latency snapshots: simulated time must be bit-identical.

The perf work (pricing memoization, CopyBatch, fast handler tables,
inlined cache accounting) is only admissible because it provably does not
move simulated time. These fixtures pin bcast+allreduce latencies for
every modeled system at five sizes, as ``float.hex`` strings — any
future "optimization" that drifts a result by even one ulp fails here.

Regenerating a fixture is a deliberate act: it means simulated semantics
changed, which also requires a SIM_VERSION bump (rule RC105) so exec's
promoted result cache and tune's decision tables are invalidated
together. The SIM_VERSION pin below keeps the two in lockstep: if you
bump the version, this test reminds you that the goldens (and the bench
baselines) describe the previous semantics.
"""

import json
from pathlib import Path

import pytest

from repro.bench.components import make_component
from repro.bench.osu import run_collective

GOLDEN_DIR = Path(__file__).parent / "golden"

SYSTEMS = ("epyc-1p", "epyc-2p", "arm-n1")

# Simulated-semantics version the fixtures were recorded under. The 2->3
# bump introduced the array engine (whose latencies deliberately differ,
# see docs/performance.md and tests/test_engine_parity.py); the
# event-engine semantics these fixtures pin are unchanged, so the values
# carried over verbatim.
GOLDEN_SIM_VERSION = 3


def _fixture(system: str) -> dict:
    path = GOLDEN_DIR / f"latency_{system}.json"
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def test_sim_version_matches_goldens():
    """The goldens pin semantics for SIM_VERSION 3; a bump must come
    with regenerated fixtures (and invalidates exec's promoted cache)."""
    from repro.exec.cache import SIM_VERSION
    assert SIM_VERSION == GOLDEN_SIM_VERSION, (
        "SIM_VERSION changed: regenerate tests/golden/latency_*.json "
        "and re-record bench baselines for the new semantics"
    )


def test_fingerprint_manifest_matches_sim_version():
    """exec cache entries are keyed by SIM_VERSION; the RC105 manifest
    must agree so stale entries cannot masquerade as current."""
    from repro.check import _sim_fingerprint as manifest
    from repro.exec.cache import SIM_VERSION
    assert manifest.SIM_VERSION == SIM_VERSION


@pytest.mark.parametrize("system", SYSTEMS)
@pytest.mark.parametrize("kind", ("bcast", "allreduce"))
def test_golden_latencies(system, kind):
    fix = _fixture(system)
    expected = fix["latencies"][kind]
    for size_str, want_hex in sorted(expected.items(), key=lambda kv:
                                     int(kv[0])):
        size = int(size_str)
        got = run_collective(
            kind, system, fix["nranks"],
            lambda: make_component(fix["component"]),
            size, warmup=fix["warmup"], iters=fix["iters"],
            modify=fix["modify"], mapping=fix["mapping"],
        )
        assert float.hex(got) == want_hex, (
            f"{system}/{kind}/{size}: simulated latency drifted "
            f"({float.hex(got)} != golden {want_hex}); if this change "
            f"is intentional, bump SIM_VERSION and regenerate the "
            f"fixture"
        )


def test_fixtures_cover_all_systems():
    for system in SYSTEMS:
        fix = _fixture(system)
        assert set(fix["latencies"]) == {"bcast", "allreduce"}
        for kind in fix["latencies"]:
            assert len(fix["latencies"][kind]) == 5
