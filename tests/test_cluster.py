"""Inter-node extension: cluster topology, network pricing, collectives."""

import numpy as np
import pytest

from repro.cluster import ClusterParams, NetworkParams, build_cluster
from repro.errors import TopologyError
from repro.mpi import FLOAT, SUM, World
from repro.node import Node
from repro.topology import Distance, ObjKind, classify_distance
from repro.xhc import Xhc


def test_cluster_topology_shape():
    node, topo, model = build_cluster(n_nodes=4, numa_per_node=2,
                                      cores_per_numa=4)
    assert topo.count(ObjKind.SOCKET) == 4      # socket == node boundary
    assert topo.n_cores == 4 * 2 * 4
    assert topo.machine.attrs["kind"] == "cluster"
    assert topo.machine.attrs["cores_per_node"] == 8


def test_network_pricing():
    net = NetworkParams(latency=3e-6, bandwidth=5e9)
    node, topo, model = build_cluster(
        ClusterParams(n_nodes=2, numa_per_node=1, cores_per_numa=4,
                      cores_per_llc=None, network=net))
    assert model.lat[Distance.CROSS_SOCKET] == 3e-6
    assert model.bw[Distance.CROSS_SOCKET] == 5e9
    # Intra-node pricing unchanged (Epyc-like).
    assert model.lat[Distance.INTRA_NUMA] < 1e-6


def test_cross_node_transfer_costs_network():
    node, topo, model = build_cluster(n_nodes=2, numa_per_node=1,
                                      cores_per_numa=4, cores_per_llc=None)
    from repro.sim import primitives as P
    src_space = node.new_address_space(0, 0)
    src = src_space.alloc("src", 1 << 20)
    times = {}
    for reader, label in ((1, "local"), (4, "remote")):
        sp = node.new_address_space(reader, reader)
        dst = sp.alloc("dst", 1 << 20)
        def prog(r=reader, d=dst, label=label):
            t0 = node.engine.now
            yield P.Copy(src=src.whole(), dst=d.whole())
            times[label] = node.engine.now - t0
        node.engine.spawn(prog(), core=reader)
        node.engine.run()
    assert times["remote"] > times["local"] * 1.2


def test_xhc_builds_node_level_hierarchy():
    node, topo, model = build_cluster(n_nodes=4)
    world = World(node, topo.n_cores)
    comp = Xhc()  # numa+socket => numa + node levels
    comm = world.communicator(comp)
    hier = comp._hierarchy(comm, 0)
    assert hier.n_levels == 3
    assert len(hier.levels[1]) == 4        # one group per node
    assert len(hier.levels[2][0].members) == 4  # the node leaders


@pytest.mark.parametrize("nranks_per_node", [4])
def test_cluster_bcast_and_allreduce_correct(nranks_per_node):
    node, topo, model = build_cluster(n_nodes=3, numa_per_node=1,
                                      cores_per_numa=nranks_per_node,
                                      cores_per_llc=None)
    world = World(node, topo.n_cores)
    comm = world.communicator(Xhc())

    def program(comm_, ctx):
        me = comm_.rank_of(ctx)
        buf = ctx.alloc("b", 4096)
        s = ctx.alloc("s", 1024)
        r = ctx.alloc("r", 1024)
        if me == 0:
            buf.fill(5)
        yield from comm_.bcast(ctx, buf.whole(), 0)
        assert np.all(buf.data == 5)
        s.view().as_dtype(np.float32)[:] = me
        yield from comm_.allreduce(ctx, s.whole(), r.whole(), SUM, FLOAT)
        assert np.all(r.view().as_dtype(np.float32)
                      == sum(range(topo.n_cores)))
    comm.run(program)


def test_hierarchy_beats_flat_across_nodes():
    """The point of SSVII: node-aware hierarchy pays off on a cluster."""
    from repro.bench.osu import run_collective

    def lat(hierarchy):
        node, topo, _ = build_cluster(n_nodes=4)
        return run_collective(
            "bcast", "unused", topo.n_cores,
            lambda: Xhc(hierarchy=hierarchy), 1 << 20,
            warmup=1, iters=3, node=node)
    assert lat("numa+socket") < lat("flat") / 2


def test_params_validation():
    with pytest.raises(TopologyError):
        build_cluster(n_nodes=0)
    with pytest.raises(TopologyError):
        build_cluster(ClusterParams(n_nodes=2), n_nodes=3)
