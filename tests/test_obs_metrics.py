"""Metrics registry (repro.obs.metrics) + its wiring into the simulator."""

import pytest

from repro.mpi import World
from repro.node import Node
from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               NULL_METRIC, NULL_METRICS,
                               NullMetricsRegistry)
from repro.sim.trace import bytes_by_distance
from repro.xhc import Xhc

from conftest import small_topo


def run_bcast(observe=True, nranks=8, size=4096):
    node = Node(small_topo(), data_movement=False, observe=observe)
    world = World(node, nranks)
    comm = world.communicator(Xhc())

    def program(comm_, ctx):
        buf = ctx.alloc("b", size)
        yield from comm_.bcast(ctx, buf.whole(), 0)
    comm.run(program)
    return node


# -- primitives ---------------------------------------------------------------


def test_counter_gauge_histogram():
    c = Counter("c", "help text")
    c.inc()
    c.inc(41)
    assert c.value == 42

    g = Gauge("g")
    g.set(10.0)
    g.inc(5)
    g.dec(2.5)
    assert g.value == 12.5

    h = Histogram("h", scale=1.0)
    for v in (0.5, 1.0, 3.0, 100.0):
        h.observe(v)
    assert h.count == 4
    assert h.sum == pytest.approx(104.5)
    assert h.mean == pytest.approx(104.5 / 4)
    assert h.min == 0.5 and h.max == 100.0
    # <=1 lands in bucket 0; (2,4] in bucket 2; (64,128] in bucket 7.
    assert h.buckets[0] == 2
    assert h.buckets[2] == 1
    assert h.buckets[7] == 1


def test_registry_get_or_create_and_type_check():
    reg = MetricsRegistry()
    a = reg.counter("x.count", "first")
    b = reg.counter("x.count", "second registration ignored")
    assert a is b
    assert a.help == "first"
    with pytest.raises(TypeError):
        reg.gauge("x.count")
    assert reg.value("x.count") == 0
    assert reg.value("missing", default=-1) == -1
    assert reg.get("missing") is None


def test_registry_snapshot_and_render():
    reg = MetricsRegistry()
    reg.counter("b.two").inc(7)
    reg.gauge("a.one").set(1.5)
    reg.histogram("c.three", scale=2.0).observe(3.0)
    names = [m.name for m in reg]
    assert names == sorted(names)
    snap = reg.snapshot()
    assert snap["b.two"] == {"type": "counter", "value": 7}
    assert snap["a.one"]["value"] == 1.5
    assert snap["c.three"]["count"] == 1
    text = reg.render()
    assert "b.two" in text and "counter" in text
    assert reg.render(prefix="zz") == "(no metrics recorded)"


def test_null_registry_is_inert():
    reg = NullMetricsRegistry()
    handle = reg.counter("anything")
    assert handle is NULL_METRIC
    handle.inc()
    handle.set(5)
    handle.observe(1.0)
    assert handle.value == 0
    assert len(reg) == 0
    assert reg.snapshot() == {}
    assert list(reg) == []
    assert "disabled" in reg.render()
    assert NULL_METRICS.counter("x") is NULL_METRIC


# -- simulator wiring ---------------------------------------------------------


def test_observed_run_populates_registry():
    node = run_bcast()
    m = node.obs.metrics
    assert m.value("messages.count") == 7
    assert m.value("messages.bytes") == 7 * 4096
    assert m.value("xpmem.attaches") == node.xpmem.attaches
    assert m.value("xpmem.makes") == node.xpmem.makes
    assert m.value("flags.sets") > 0
    assert m.value("flags.wakeups") > 0
    hist = m.get("flags.wait_seconds")
    assert hist is not None and hist.count == m.value("flags.blocked_waits")


def test_message_bytes_by_distance_matches_trace():
    node = run_bcast(size=1000)
    by_trace = bytes_by_distance(node)
    m = node.obs.metrics
    for label, nbytes in by_trace.items():
        assert m.value(f"message.bytes.{label}") == nbytes
    total = sum(by_trace.values())
    assert m.value("messages.bytes") == total == 7 * 1000


def test_regcache_and_smsc_metrics():
    node = run_bcast(size=200_000)  # large -> single-copy path
    m = node.obs.metrics
    assert m.value("regcache.misses") > 0
    assert m.value("smsc.copies") > 0
    assert m.value("smsc.bytes") > 0


def test_disabled_run_registers_nothing():
    node = run_bcast(observe=False)
    assert not node.obs.enabled
    assert node.obs.metrics.snapshot() == {}
    # Legacy attribute counters still work without the registry.
    assert node.xpmem.attaches > 0
