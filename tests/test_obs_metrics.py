"""Metrics registry (repro.obs.metrics) + its wiring into the simulator."""

import pytest

from repro.mpi import World
from repro.node import Node
from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               NULL_METRIC, NULL_METRICS,
                               NullMetricsRegistry, prometheus_name,
                               validate_prometheus)
from repro.sim.trace import bytes_by_distance
from repro.xhc import Xhc

from conftest import small_topo


def run_bcast(observe=True, nranks=8, size=4096):
    node = Node(small_topo(), data_movement=False, observe=observe)
    world = World(node, nranks)
    comm = world.communicator(Xhc())

    def program(comm_, ctx):
        buf = ctx.alloc("b", size)
        yield from comm_.bcast(ctx, buf.whole(), 0)
    comm.run(program)
    return node


# -- primitives ---------------------------------------------------------------


def test_counter_gauge_histogram():
    c = Counter("c", "help text")
    c.inc()
    c.inc(41)
    assert c.value == 42

    g = Gauge("g")
    g.set(10.0)
    g.inc(5)
    g.dec(2.5)
    assert g.value == 12.5

    h = Histogram("h", scale=1.0)
    for v in (0.5, 1.0, 3.0, 100.0):
        h.observe(v)
    assert h.count == 4
    assert h.sum == pytest.approx(104.5)
    assert h.mean == pytest.approx(104.5 / 4)
    assert h.min == 0.5 and h.max == 100.0
    # <=1 lands in bucket 0; (2,4] in bucket 2; (64,128] in bucket 7.
    assert h.buckets[0] == 2
    assert h.buckets[2] == 1
    assert h.buckets[7] == 1


def test_registry_get_or_create_and_type_check():
    reg = MetricsRegistry()
    a = reg.counter("x.count", "first")
    b = reg.counter("x.count", "second registration ignored")
    assert a is b
    assert a.help == "first"
    with pytest.raises(TypeError):
        reg.gauge("x.count")
    assert reg.value("x.count") == 0
    assert reg.value("missing", default=-1) == -1
    assert reg.get("missing") is None


def test_registry_snapshot_and_render():
    reg = MetricsRegistry()
    reg.counter("b.two").inc(7)
    reg.gauge("a.one").set(1.5)
    reg.histogram("c.three", scale=2.0).observe(3.0)
    names = [m.name for m in reg]
    assert names == sorted(names)
    snap = reg.snapshot()
    assert snap["b.two"] == {"type": "counter", "value": 7}
    assert snap["a.one"]["value"] == 1.5
    assert snap["c.three"]["count"] == 1
    text = reg.render()
    assert "b.two" in text and "counter" in text
    assert reg.render(prefix="zz") == "(no metrics recorded)"


def test_null_registry_is_inert():
    reg = NullMetricsRegistry()
    handle = reg.counter("anything")
    assert handle is NULL_METRIC
    handle.inc()
    handle.set(5)
    handle.observe(1.0)
    assert handle.value == 0
    assert len(reg) == 0
    assert reg.snapshot() == {}
    assert list(reg) == []
    assert "disabled" in reg.render()
    assert NULL_METRICS.counter("x") is NULL_METRIC


# -- streaming quantiles ------------------------------------------------------


def test_quantile_empty_and_bounds():
    h = Histogram("h")
    assert h.quantile(0.5) is None
    assert h.percentiles() == {"p50": None, "p95": None, "p99": None}
    h.observe(4.0)
    with pytest.raises(ValueError):
        h.quantile(1.5)
    with pytest.raises(ValueError):
        h.quantile(-0.1)


def test_quantile_single_observation_is_exact():
    h = Histogram("h")
    h.observe(7.0)
    # Clamping to [min, max] makes every quantile the one observed value.
    for q in (0.0, 0.5, 0.99, 1.0):
        assert h.quantile(q) == 7.0


def test_quantile_bounds_estimates_within_one_bucket():
    import math

    h = Histogram("h", scale=1.0)
    values = [float(v) for v in range(1, 101)]   # 1..100
    for v in values:
        h.observe(v)
    for q in (0.5, 0.95, 0.99):
        exact = values[math.ceil(q * len(values)) - 1]
        est = h.quantile(q)
        # The estimate interpolates inside the power-of-two bucket that
        # holds the exact rank, so it is within a factor of two of the
        # exact answer and clamped to the observed range.
        assert h.min <= est <= h.max
        assert exact / 2 <= est <= exact * 2


def test_quantiles_are_monotone_in_q():
    h = Histogram("h", scale=1e-6)
    for v in (3e-6, 5e-5, 1e-4, 2e-3, 0.5, 0.5, 0.02):
        h.observe(v)
    qs = [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99]
    estimates = [h.quantile(q) for q in qs]
    assert estimates == sorted(estimates)
    pcts = h.percentiles()
    assert set(pcts) == {"p50", "p95", "p99"}
    assert pcts["p50"] <= pcts["p95"] <= pcts["p99"]


def test_snapshot_includes_percentiles():
    reg = MetricsRegistry()
    h = reg.histogram("lat", scale=1e-6)
    for v in (1e-5, 2e-5, 4e-3):
        h.observe(v)
    entry = reg.snapshot()["lat"]
    assert entry["count"] == 3
    for key in ("p50", "p95", "p99"):
        assert h.min <= entry[key] <= h.max


# -- Prometheus exposition ----------------------------------------------------


def test_prometheus_name_sanitizes():
    assert prometheus_name("serve.jobs.completed") == "serve_jobs_completed"
    assert prometheus_name("a-b c") == "a_b_c"
    assert prometheus_name("0abc").startswith("_")


def test_to_prometheus_round_trips_through_validator():
    reg = MetricsRegistry()
    reg.counter("serve.jobs.submitted", "jobs accepted").inc(3)
    reg.gauge("serve.queue.depth.alice", "pending").set(2.5)
    h = reg.histogram("serve.job.latency_seconds", "e2e", scale=1e-6)
    for v in (1e-5, 3e-4, 3e-4, 0.02):
        h.observe(v)
    text = reg.to_prometheus()
    assert validate_prometheus(text) == []
    assert "# TYPE serve_jobs_submitted counter" in text
    assert "serve_jobs_submitted 3" in text
    assert "serve_queue_depth_alice 2.5" in text
    assert 'serve_job_latency_seconds_bucket{le="+Inf"} 4' in text
    assert "serve_job_latency_seconds_count 4" in text
    # prefix filtering
    only = reg.to_prometheus(prefix="serve.queue")
    assert "serve_queue_depth_alice" in only
    assert "serve_jobs_submitted" not in only
    assert NullMetricsRegistry().to_prometheus() == ""


def test_validate_prometheus_flags_problems():
    assert validate_prometheus("foo 1\n") == []
    assert validate_prometheus("") == []
    bad = validate_prometheus("foo bar\n")
    assert any("non-numeric" in e for e in bad)
    bad = validate_prometheus("!! 1\n")
    assert any("unparseable" in e for e in bad)
    bad = validate_prometheus("# TYPE foo flavor\nfoo 1\n")
    assert any("unknown TYPE" in e for e in bad)
    non_cumulative = ('h_bucket{le="1"} 5\n'
                      'h_bucket{le="2"} 3\n'
                      'h_bucket{le="+Inf"} 5\n'
                      "h_count 5\n")
    bad = validate_prometheus(non_cumulative)
    assert any("non-cumulative" in e for e in bad)
    mismatched = ('h_bucket{le="+Inf"} 5\n'
                  "h_count 4\n")
    bad = validate_prometheus(mismatched)
    assert any("_count" in e for e in bad)


# -- simulator wiring ---------------------------------------------------------


def test_observed_run_populates_registry():
    node = run_bcast()
    m = node.obs.metrics
    assert m.value("messages.count") == 7
    assert m.value("messages.bytes") == 7 * 4096
    assert m.value("xpmem.attaches") == node.xpmem.attaches
    assert m.value("xpmem.makes") == node.xpmem.makes
    assert m.value("flags.sets") > 0
    assert m.value("flags.wakeups") > 0
    hist = m.get("flags.wait_seconds")
    assert hist is not None and hist.count == m.value("flags.blocked_waits")


def test_message_bytes_by_distance_matches_trace():
    node = run_bcast(size=1000)
    by_trace = bytes_by_distance(node)
    m = node.obs.metrics
    for label, nbytes in by_trace.items():
        assert m.value(f"message.bytes.{label}") == nbytes
    total = sum(by_trace.values())
    assert m.value("messages.bytes") == total == 7 * 1000


def test_regcache_and_smsc_metrics():
    node = run_bcast(size=200_000)  # large -> single-copy path
    m = node.obs.metrics
    assert m.value("regcache.misses") > 0
    assert m.value("smsc.copies") > 0
    assert m.value("smsc.bytes") > 0


def test_disabled_run_registers_nothing():
    node = run_bcast(observe=False)
    assert not node.obs.enabled
    assert node.obs.metrics.snapshot() == {}
    # Legacy attribute counters still work without the registry.
    assert node.xpmem.attaches > 0
