"""Array-mode engine unit tests: gating, determinism, vectorization.

Complements tests/test_engine_parity.py (which pins latencies and
event-vs-array deltas): this file covers the opt-in surface itself —
numpy gating, instrumentation incompatibility, run(until=...) refusal,
bit-stable determinism, and the scalar/vector sweep equivalence that
makes ``ARRAY_VEC_MIN`` a pure performance knob.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro import compat
from repro.bench.osu import run_collective
from repro.errors import ConfigError, SimulationError
from repro.node import Node
from repro.options import RunOptions
from repro.topology import get_system
from repro.xhc.component import Xhc

SRC = str(Path(__file__).resolve().parent.parent / "src")


def _bcast_latency(size=65536, **opt_kw):
    return run_collective(
        "bcast", "epyc-1p", 32, Xhc, size, warmup=1, iters=2,
        options=RunOptions(engine="array", **opt_kw))


def test_array_engine_requires_numpy(monkeypatch):
    """engine="array" without numpy is a ConfigError naming the perf
    extra, raised at Node construction — not an ImportError mid-run."""
    monkeypatch.setattr(compat, "_NUMPY", None)
    monkeypatch.setattr(compat, "_NUMPY_CHECKED", True)
    with pytest.raises(ConfigError, match=r"repro\[perf\]"):
        Node(get_system("epyc-1p"),
             options=RunOptions(engine="array", data_movement=False))


@pytest.mark.parametrize("kw", [
    {"observe": True},
    {"check": True},
    {"record_copies": True},
])
def test_array_engine_rejects_instrumentation(kw):
    """Observation/checking walk per-event state the batched pricer
    never materializes; the combination is refused up front."""
    pytest.importorskip("numpy")
    with pytest.raises(ConfigError, match="instrumented|observe|check"):
        Node(get_system("epyc-1p"),
             options=RunOptions(engine="array", **kw))


def test_array_engine_rejects_run_until():
    pytest.importorskip("numpy")
    node = Node(get_system("epyc-1p"), options=RunOptions(engine="array"))
    with pytest.raises(SimulationError, match="until"):
        node.engine.run(until=1.0)


def test_unknown_engine_name():
    with pytest.raises(ConfigError, match="unknown engine"):
        RunOptions(engine="warp")


def test_array_engine_deterministic():
    """Two identical runs agree to the bit (float.hex), including all
    heap/dict iteration inside the batched pricer."""
    pytest.importorskip("numpy")
    a = _bcast_latency()
    b = _bcast_latency()
    assert float.hex(a) == float.hex(b)


def test_scalar_and_vector_sweeps_agree():
    """ARRAY_VEC_MIN only selects an implementation: forcing every run
    through the scalar sweep (threshold above any run length) or through
    the vector sweep (threshold 1) yields bit-identical latencies. The
    span endpoints and pricing expressions are deliberately written with
    identical FP operation order in both paths; this is the guard."""
    pytest.importorskip("numpy")
    from repro.sim.array_engine import ArrayEngine
    baseline = _bcast_latency()
    results = {}
    saved = ArrayEngine.ARRAY_VEC_MIN
    try:
        for label, threshold in (("scalar", 1 << 30), ("vector", 1)):
            ArrayEngine.ARRAY_VEC_MIN = threshold
            results[label] = _bcast_latency()
    finally:
        ArrayEngine.ARRAY_VEC_MIN = saved
    assert float.hex(results["scalar"]) == float.hex(baseline)
    assert float.hex(results["vector"]) == float.hex(baseline)


def test_array_engine_handles_small_and_large_sizes():
    """Smoke both regimes: tiny messages (no lowerable runs — pure
    event-equivalent walking) and large ones (ChunkRun sweeps park and
    resume processes across stalls) complete and return positive time."""
    pytest.importorskip("numpy")
    for size in (64, 512, 1 << 20):
        lat = _bcast_latency(size=size)
        assert lat > 0.0


def test_event_engine_never_imports_numpy():
    """The default engine must stay stdlib-pure: a fresh interpreter
    that builds a Node, runs a collective, and touches the result cache
    with engine="event" may not have numpy in sys.modules."""
    code = (
        "import sys\n"
        "from repro.bench.osu import run_collective\n"
        "from repro.xhc.component import Xhc\n"
        "from repro.options import RunOptions\n"
        "lat = run_collective('bcast', 'epyc-1p', 8, Xhc, 4096,\n"
        "    warmup=0, iters=1,\n"
        "    options=RunOptions(engine='event', data_movement=False))\n"
        "assert lat > 0.0\n"
        "bad = [m for m in sys.modules if m.split('.')[0] == 'numpy']\n"
        "assert not bad, f'event engine pulled in {bad}'\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", code],
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
        capture_output=True, text=True, timeout=120)
    assert proc.returncode == 0, proc.stderr


def test_engine_name_in_cache_key():
    """Array results must never satisfy an event-engine cache lookup:
    the engine name is part of the request payload the cache keys on."""
    from repro.exec.request import RunRequest
    ev = RunRequest(system="epyc-1p", collective="bcast", size=4096,
                    nranks=8, options=RunOptions(engine="event",
                                                 data_movement=False))
    ar = RunRequest(system="epyc-1p", collective="bcast", size=4096,
                    nranks=8, options=RunOptions(engine="array",
                                                 data_movement=False))
    assert ev.payload() != ar.payload()
    assert "array" in str(ar.payload())
