"""End-to-end shape assertions for the paper's headline claims.

These run the actual figure drivers in quick mode and assert the
qualitative relationships the paper reports — who wins, in which regime,
and roughly by how much. EXPERIMENTS.md records the quantitative runs.
"""

import numpy as np
import pytest

from repro.bench import (fig1a_domains, fig1b_congestion, fig4_atomics,
                         table2_message_counts)
from repro.bench.components import COMPONENTS
from repro.bench.osu import run_collective

pytestmark = pytest.mark.slow


def test_fig1a_distance_ordering():
    res = fig1a_domains(quick=True)
    for system in ("epyc-1p", "epyc-2p"):
        assert res.data[(system, "cache-local")] \
            < res.data[(system, "intra-numa")] \
            < res.data[(system, "cross-numa")]
    assert res.data[("epyc-2p", "cross-numa")] \
        < res.data[("epyc-2p", "cross-socket")]
    # ARM-N1: intra- and cross-NUMA effectively identical (SSIII-A).
    arm_ratio = (res.data[("arm-n1", "cross-numa")]
                 / res.data[("arm-n1", "intra-numa")])
    assert arm_ratio < 1.05


def test_fig1b_flat_congests_hierarchy_does_not():
    res = fig1b_congestion(quick=True)
    flat_growth = res.data[("flat", 32)] / res.data[("flat", 8)]
    hier_growth = (res.data[("hierarchical", 32)]
                   / res.data[("hierarchical", 8)])
    assert flat_growth > 3.0
    assert hier_growth < 2.0


def test_fig4_atomics_collapse():
    res = fig4_atomics(quick=True)
    ratio_at_160 = res.data[("atomics", 160)] / res.data[("single-writer", 160)]
    ratio_at_10 = res.data[("atomics", 10)] / res.data[("single-writer", 10)]
    assert ratio_at_160 > 8      # paper: 23x; shape = drastic divergence
    assert ratio_at_160 > ratio_at_10 * 2


def test_table2_xhc_invariance_and_tuned_sensitivity():
    res = table2_message_counts(quick=True)
    xhc_rows = [res.data[("xhc-tree", s)] for s in
                ("map-core", "map-numa", "root=10")]
    assert all(r == xhc_rows[0] for r in xhc_rows)
    assert xhc_rows[0] == {"intra-numa": 56, "inter-numa": 6,
                           "inter-socket": 1}
    tuned_core = res.data[("tuned", "map-core")]
    tuned_numa = res.data[("tuned", "map-numa")]
    assert tuned_numa["inter-socket"] > tuned_core["inter-socket"]
    assert tuned_numa["inter-numa"] > tuned_core["inter-numa"]


def test_small_message_flat_vs_tree_epyc_vs_arm():
    """SSV-D1: on the Epycs, the LLC-assisted flag propagation keeps
    XHC-flat competitive with XHC-tree for small messages (the paper even
    finds it slightly ahead; our model reproduces the near-parity, see
    EXPERIMENTS.md); on ARM-N1 flat collapses outright (no shared LLC —
    every reader queues at the single home of the root's flag)."""
    def lat(system, nranks, comp):
        return run_collective("bcast", system, nranks, COMPONENTS[comp], 4,
                              warmup=2, iters=6)
    flat_epyc = lat("epyc-1p", 32, "xhc-flat")
    tree_epyc = lat("epyc-1p", 32, "xhc-tree")
    assert flat_epyc < tree_epyc * 2
    flat_arm = lat("arm-n1", 160, "xhc-flat")
    tree_arm = lat("arm-n1", 160, "xhc-tree")
    assert tree_arm < flat_arm
    assert flat_arm / tree_arm > 3
    # The divergence is the machine's, not the algorithm's: flat degrades
    # far more on ARM-N1 than on Epyc-1P relative to its tree variant.
    assert (flat_arm / tree_arm) > (flat_epyc / tree_epyc) * 2


def test_fig10_flag_cacheline_placement():
    """Fig. 10: packing per-member flags on one line keeps the flat tree
    fast (hardware assist); separating the lines serializes the fan-in at
    the leader; the hierarchical tree barely cares either way."""
    from repro.xhc import Xhc

    def lat(hierarchy, layout):
        return run_collective(
            "bcast", "epyc-1p", 32,
            lambda: Xhc(hierarchy=hierarchy, flag_layout=layout),
            4, warmup=2, iters=6)
    flat_shared = lat("flat", "multi-shared")
    flat_sep = lat("flat", "multi-separate")
    tree_shared = lat("numa+socket", "multi-shared")
    tree_sep = lat("numa+socket", "multi-separate")
    assert flat_sep > flat_shared * 1.1
    assert abs(tree_sep - tree_shared) / tree_shared < 0.25


def test_bcast_xhc_tree_beats_shared_memory_schemes():
    """Fig. 8: single-copy + hierarchy vs CICO schemes at large sizes."""
    size = 1 << 20
    xhc = run_collective("bcast", "epyc-1p", 32, COMPONENTS["xhc-tree"],
                         size, warmup=1, iters=3)
    smhc = run_collective("bcast", "epyc-1p", 32, COMPONENTS["smhc-flat"],
                          size, warmup=1, iters=3)
    sm = run_collective("bcast", "epyc-1p", 32, COMPONENTS["sm"],
                        size, warmup=1, iters=3)
    assert xhc < smhc / 2
    assert xhc < sm / 3


def test_allreduce_xhc_tree_leads_midrange():
    """Fig. 11: XHC-tree ahead of tuned/ucc/xbrc at 64 KiB."""
    size = 64 * 1024
    lats = {
        comp: run_collective("allreduce", "epyc-2p", 64, COMPONENTS[comp],
                             size, warmup=1, iters=3)
        for comp in ("tuned", "ucc", "xbrc", "xhc-flat", "xhc-tree")
    }
    assert lats["xhc-tree"] == min(lats.values())
    assert lats["xbrc"] > lats["xhc-tree"] * 2
    # XBRC behaves like XHC-flat (both flat, single-copy; SSV-D2).
    assert 0.3 < lats["xbrc"] / lats["xhc-flat"] < 3


def test_sm_catastrophic_on_arm():
    """Fig. 8c/11c: atomics-based sm is prohibitive on the dense node."""
    sm = run_collective("bcast", "arm-n1", 160, COMPONENTS["sm"], 4,
                        warmup=1, iters=2)
    tuned = run_collective("bcast", "arm-n1", 160, COMPONENTS["tuned"], 4,
                           warmup=1, iters=2)
    assert sm > tuned * 20


def test_regcache_hit_ratio_high_in_apps():
    """SSV-D3: stable buffers make the registration cache >99% effective."""
    from repro.mpi import World, SUM, FLOAT
    from repro.node import Node
    from repro.topology import get_system
    from repro.sim import primitives as P
    node = Node(get_system("epyc-1p"), data_movement=False)
    world = World(node, 16)
    from repro.xhc import Xhc
    comm = world.communicator(Xhc())

    def program(comm_, ctx):
        s = ctx.alloc("s", 64 * 1024)
        r = ctx.alloc("r", 64 * 1024)
        for _ in range(30):
            yield from comm_.allreduce(ctx, s.whole(), r.whole(), SUM, FLOAT)
    comm.run(program)
    ratios = [ctx.smsc.regcache.hit_ratio for ctx in world.ranks
              if ctx.smsc.regcache.hits + ctx.smsc.regcache.misses > 0]
    assert ratios and min(ratios) > 0.9
