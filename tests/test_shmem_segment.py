"""Shared segments: region reservation and bounds."""

import pytest

from repro.errors import ShmemError
from repro.node import Node
from repro.shmem.segment import SharedSegment

from conftest import small_topo


def make_space():
    return Node(small_topo(), data_movement=False).new_address_space(0, 0)


def test_reserve_and_region():
    seg = SharedSegment(make_space(), "seg", 1024)
    a = seg.reserve("a", 100)
    b = seg.reserve("b", 200)
    assert a.length == 100 and b.length == 200
    assert seg.region("a").offset == a.offset
    assert seg.has_region("b")
    # Alignment: regions start on 64-byte boundaries.
    assert a.offset % 64 == 0 and b.offset % 64 == 0
    assert b.offset >= a.offset + a.length


def test_regions_do_not_overlap():
    seg = SharedSegment(make_space(), "seg", 4096)
    views = [seg.reserve(f"r{i}", 65) for i in range(10)]
    spans = sorted((v.offset, v.offset + v.length) for v in views)
    for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
        assert e1 <= s2


def test_duplicate_region_rejected():
    seg = SharedSegment(make_space(), "seg", 1024)
    seg.reserve("a", 10)
    with pytest.raises(ShmemError):
        seg.reserve("a", 10)


def test_overflow_rejected():
    seg = SharedSegment(make_space(), "seg", 128)
    seg.reserve("a", 100)
    with pytest.raises(ShmemError):
        seg.reserve("b", 100)


def test_unknown_region():
    seg = SharedSegment(make_space(), "seg", 128)
    with pytest.raises(ShmemError):
        seg.region("nope")


def test_segment_buffer_is_shared():
    seg = SharedSegment(make_space(), "seg", 128)
    assert seg.buf.shared
