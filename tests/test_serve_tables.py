"""Served decision tables: warm cache, etag invalidation, listings."""

import json
import os

from repro.serve import TableServer
from repro.tune.table import DecisionTable, bucket_of
from repro.xhc import XhcConfig


def _write_table(path, *, systems=("epyc-1p",), latency=2e-6):
    table = DecisionTable()
    for system in systems:
        table.record(system, "bcast", 65536,
                     XhcConfig(hierarchy="numa"), latency,
                     baseline_s=2 * latency, nranks=16)
        table.record(system, "allreduce", 1024,
                     XhcConfig(hierarchy="flat"), latency)
    table.save(path)
    return table


def test_lookup_serves_config_with_etag(tmp_path):
    path = tmp_path / "decision_table.json"
    _write_table(path)
    server = TableServer(tmp_path)
    decision = server.lookup("epyc-1p", "bcast", 65536)
    assert decision["config"]["hierarchy"] == "numa"
    assert decision["bucket"] == bucket_of(65536)
    assert decision["exact_bucket"] is True
    assert decision["table"] == os.path.abspath(path)
    st = os.stat(path)
    assert decision["etag"] == f"{st.st_mtime_ns}-{st.st_size}"
    assert decision["latency_us"] is not None


def test_nearest_bucket_fallback_is_flagged(tmp_path):
    _write_table(tmp_path / "decision_table.json")
    server = TableServer(tmp_path)
    decision = server.lookup("epyc-1p", "bcast", 128)  # only 64K tuned
    assert decision["bucket"] == bucket_of(65536)
    assert decision["exact_bucket"] is False


def test_missing_table_and_missing_entry_return_none(tmp_path):
    server = TableServer(tmp_path)
    assert server.lookup("epyc-1p", "bcast", 64) is None
    _write_table(tmp_path / "decision_table.json")
    assert server.lookup("arm-n1", "bcast", 64) is None


def test_warm_cache_reloads_only_on_etag_change(tmp_path):
    path = tmp_path / "decision_table.json"
    _write_table(path)
    server = TableServer(tmp_path)
    for _ in range(5):
        server.lookup("epyc-1p", "bcast", 65536)
    assert server.reloads == 1            # warm after the first stat

    # Rewrite the table (new mtime/size): exactly one more reload, and
    # the *new* content is served.
    _write_table(path, latency=9e-6)
    os.utime(path, ns=(os.stat(path).st_mtime_ns + 1_000_000,) * 2)
    decision = server.lookup("epyc-1p", "bcast", 65536)
    assert server.reloads == 2
    assert decision["latency_us"] == 9.0
    server.lookup("epyc-1p", "bcast", 65536)
    assert server.reloads == 2


def test_deleted_table_stops_being_served(tmp_path):
    path = tmp_path / "decision_table.json"
    _write_table(path)
    server = TableServer(tmp_path)
    assert server.lookup("epyc-1p", "bcast", 65536) is not None
    os.unlink(path)
    assert server.lookup("epyc-1p", "bcast", 65536) is None
    assert server.stats()["warm_tables"] == 0


def test_available_skips_non_table_json(tmp_path):
    _write_table(tmp_path / "decision_table.json",
                 systems=("epyc-1p", "arm-n1"))
    # A cache file and plain garbage share the directory in real repos.
    with open(tmp_path / "cache.json", "w") as fh:
        json.dump({"entries": {"ab": {"latency_s": 1e-6}}}, fh)
    with open(tmp_path / "notes.json", "w") as fh:
        fh.write("[1, 2, 3]")
    server = TableServer(tmp_path)
    listed = server.available()
    assert [os.path.basename(t["table"]) for t in listed] \
        == ["decision_table.json"]
    assert listed[0]["entries"] == 4
    assert listed[0]["systems"] == ["arm-n1", "epyc-1p"]


def test_stats_counts_lookups(tmp_path):
    _write_table(tmp_path / "decision_table.json")
    server = TableServer(tmp_path)
    server.lookup("epyc-1p", "bcast", 64)
    server.lookup("epyc-1p", "allreduce", 64)
    stats = server.stats()
    assert stats["lookups"] == 2
    assert stats["warm_tables"] == 1
