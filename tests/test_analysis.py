"""Analytical estimates vs the event simulation: agreement bands."""

import pytest

from repro.analysis import (chain_bcast_estimate, flat_bcast_estimate,
                            hierarchical_bcast_estimate, loggp_of,
                            p2p_estimate, ring_allreduce_estimate)
from repro.memory.model import model_for
from repro.node import Node
from repro.sim import primitives as P
from repro.topology import Distance, get_system

from conftest import small_topo


def simulate_copy(topo, reader_core, src_core, nbytes):
    node = Node(topo, data_movement=False)
    src = node.new_address_space(0, src_core).alloc("src", nbytes)
    dst = node.new_address_space(1, reader_core).alloc("dst", nbytes)
    out = {}

    def prog():
        t0 = node.engine.now
        yield P.Copy(src=src.whole(), dst=dst.whole())
        out["t"] = node.engine.now - t0
    node.engine.spawn(prog(), core=reader_core)
    node.engine.run()
    return out["t"]


@pytest.mark.parametrize("pair", [(0, 2), (0, 4), (0, 8)])
def test_p2p_agreement(pair):
    """Uncontended point-to-point within 40% of the closed form."""
    topo = small_topo()
    model = model_for(topo)
    nbytes = 1 << 20
    predicted = p2p_estimate(topo, model, pair[0], pair[1], nbytes)
    simulated = simulate_copy(topo, pair[1], pair[0], nbytes)
    assert predicted == pytest.approx(simulated, rel=0.4)


def test_flat_fanout_agreement():
    """Concurrent readers: simulation lands within 2x of the bound."""
    topo = get_system("epyc-1p")
    model = model_for(topo)
    nbytes = 1 << 20
    node = Node(topo, data_movement=False)
    src = node.new_address_space(0, 0).alloc("src", nbytes)
    finish = {}

    def prog(r):
        sp = node.new_address_space(r, r)
        dst = sp.alloc("dst", nbytes)
        yield P.Copy(src=src.whole(), dst=dst.whole())
        finish[r] = node.engine.now
    for r in range(1, 32):
        node.engine.spawn(prog(r), core=r)
    node.engine.run()
    simulated = max(finish.values())
    predicted = flat_bcast_estimate(topo, model, list(range(32)), 0, nbytes)
    assert predicted / 2 < simulated < predicted * 2.5


def test_chain_estimate_monotonic_and_ordered():
    topo = get_system("epyc-2p")
    model = model_for(topo)
    cores = list(range(16))
    small = chain_bcast_estimate(topo, model, cores, 1 << 16, 1 << 15)
    big = chain_bcast_estimate(topo, model, cores, 1 << 20, 1 << 15)
    assert big > small
    # Finer segments shorten the fill-dominated regime.
    coarse = chain_bcast_estimate(topo, model, cores, 1 << 20, 1 << 20)
    fine = chain_bcast_estimate(topo, model, cores, 1 << 20, 1 << 14)
    assert fine < coarse


def test_hierarchical_estimate_vs_flat():
    """The hierarchy's analytical bound beats the flat bound at scale —
    the Fig. 1b statement, in closed form."""
    topo = get_system("epyc-2p")
    model = model_for(topo)
    nbytes = 1 << 20
    flat = flat_bcast_estimate(topo, model, list(range(64)), 0, nbytes)
    hier = hierarchical_bcast_estimate(
        topo, model,
        [Distance.CROSS_SOCKET, Distance.CROSS_NUMA, Distance.INTRA_NUMA],
        nbytes, 16 * 1024)
    assert hier < flat


def test_ring_estimate_scales_with_steps():
    topo = get_system("epyc-1p")
    model = model_for(topo)
    t8 = ring_allreduce_estimate(topo, model, list(range(8)), 1 << 20)
    t32 = ring_allreduce_estimate(topo, model, list(range(32)), 1 << 20)
    assert t8 > 0 and t32 > 0
    # More ranks -> smaller slices but more steps; with per-step overhead
    # the large ring costs more.
    t32_oh = ring_allreduce_estimate(topo, model, list(range(32)), 1 << 20,
                                     overhead_per_step=2e-6)
    assert t32_oh > t32


def test_loggp_extraction():
    model = model_for(get_system("epyc-1p"))
    p = loggp_of(model, Distance.INTRA_NUMA)
    assert p.L == model.lat[Distance.INTRA_NUMA]
    assert p.transfer(0) == p.L
    # 12e9 bytes at 12 GB/s is one second of gap time.
    assert p.transfer(12_000_000_000) == pytest.approx(p.L + 1.0, rel=0.01)


def test_degenerate_inputs():
    topo = small_topo()
    model = model_for(topo)
    assert flat_bcast_estimate(topo, model, [0], 0, 100) == 0.0
    assert chain_bcast_estimate(topo, model, [0], 100, 10) == 0.0
    assert ring_allreduce_estimate(topo, model, [3], 100) == 0.0
    assert hierarchical_bcast_estimate(topo, model, [], 100, 10) == 0.0
