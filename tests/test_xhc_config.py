"""XHC configuration surface."""

import pytest

from repro.errors import ConfigError
from repro.topology.objects import ObjKind
from repro.xhc import XhcConfig


def test_defaults_match_paper():
    cfg = XhcConfig()
    assert cfg.hierarchy == "numa+socket"
    assert cfg.cico_threshold == 1024      # SSIV-C: defaults to 1 KB
    assert cfg.flag_layout == "single"


def test_tokens_parse():
    assert XhcConfig(hierarchy="numa+socket").tokens() == \
        [ObjKind.NUMA, ObjKind.SOCKET]
    assert XhcConfig(hierarchy="l3+numa+socket").tokens() == \
        [ObjKind.LLC, ObjKind.NUMA, ObjKind.SOCKET]
    assert XhcConfig(hierarchy="flat").tokens() == []


def test_unknown_token_rejected():
    with pytest.raises(ConfigError):
        XhcConfig(hierarchy="numa+hyperlane")


def test_chunk_per_level():
    cfg = XhcConfig(chunk_size=(8192, 16384, 65536))
    assert cfg.chunk_for_level(0) == 8192
    assert cfg.chunk_for_level(2) == 65536
    assert cfg.chunk_for_level(9) == 65536  # clamps to last
    scalar = XhcConfig(chunk_size=4096)
    assert scalar.chunk_for_level(5) == 4096


def test_invalid_values_rejected():
    with pytest.raises(ConfigError):
        XhcConfig(chunk_size=0)
    with pytest.raises(ConfigError):
        XhcConfig(chunk_size=(1024, -1))
    with pytest.raises(ConfigError):
        XhcConfig(cico_threshold=-1)
    with pytest.raises(ConfigError):
        XhcConfig(flag_layout="triple")
    with pytest.raises(ConfigError):
        XhcConfig(reduce_min=0)
    with pytest.raises(ConfigError):
        XhcConfig(cico_ring=1)


def test_chunk_tuple_longer_than_possible_depth_rejected():
    # 'numa+socket' can build at most 3 levels on any topology; 'flat'
    # exactly one. Over-long tuples can never match and fail eagerly.
    with pytest.raises(ConfigError, match="at most"):
        XhcConfig(chunk_size=(1, 2, 3, 4))
    with pytest.raises(ConfigError, match="at most"):
        XhcConfig(hierarchy="flat", chunk_size=(4096, 8192))


def test_validate_depth():
    cfg = XhcConfig(chunk_size=(8192, 16384, 65536))
    cfg.validate_depth(3)  # exact match passes
    with pytest.raises(ConfigError, match="3 per-level"):
        cfg.validate_depth(2)
    XhcConfig(chunk_size=4096).validate_depth(7)  # scalar fits any depth


def test_frozen():
    cfg = XhcConfig()
    with pytest.raises(Exception):
        cfg.cico_threshold = 5
