"""XHC's future-work extensions (SSVII): Reduce and Barrier."""

import numpy as np
import pytest

from repro.mpi import FLOAT, SUM, World
from repro.node import Node
from repro.sim import primitives as P
from repro.xhc import Xhc

from conftest import small_topo


def run_reduce(nranks=8, size=4096, root=0, iters=2, hierarchy="numa+socket"):
    node = Node(small_topo())
    world = World(node, nranks)
    comm = world.communicator(Xhc(hierarchy=hierarchy))
    got = {}

    def program(comm_, ctx):
        me = comm_.rank_of(ctx)
        sbuf = ctx.alloc("s", size)
        rbuf = ctx.alloc("r", size) if me == root else None
        for it in range(iters):
            sbuf.view().as_dtype(np.float32)[:] = me + 1
            yield from comm_.reduce(ctx, sbuf.whole(),
                                    None if rbuf is None else rbuf.whole(),
                                    SUM, FLOAT, root=root)
        if me == root:
            got["v"] = rbuf.view().as_dtype(np.float32).copy()
    comm.run(program)
    return got["v"], nranks


@pytest.mark.parametrize("size", [16, 2048, 50_000])
def test_reduce_correct(size):
    v, n = run_reduce(size=size)
    assert np.all(v == sum(range(1, n + 1)))


@pytest.mark.parametrize("root", [0, 5, 7])
def test_reduce_roots(root):
    v, n = run_reduce(root=root)
    assert np.all(v == sum(range(1, n + 1)))


def test_reduce_flat():
    v, n = run_reduce(hierarchy="flat", size=10_000)
    assert np.all(v == sum(range(1, n + 1)))


def test_barrier_blocks_until_all_arrive():
    node = Node(small_topo())
    world = World(node, 12)
    comm = world.communicator(Xhc())
    after = {}

    def program(comm_, ctx):
        me = comm_.rank_of(ctx)
        yield P.Compute((me + 1) * 1e-6)
        yield from comm_.barrier(ctx)
        after[me] = ctx.now
    comm.run(program)
    assert min(after.values()) >= 12e-6


def test_barrier_repeated_episodes():
    node = Node(small_topo())
    world = World(node, 8)
    comm = world.communicator(Xhc())
    counter = {"phase": 0}

    def program(comm_, ctx):
        for _ in range(4):
            yield from comm_.barrier(ctx)
    comm.run(program)  # no deadlock, no single-writer violation


def test_barrier_flat_variant():
    node = Node(small_topo())
    world = World(node, 8)
    comm = world.communicator(Xhc(hierarchy="flat"))

    def program(comm_, ctx):
        for _ in range(2):
            yield from comm_.barrier(ctx)
    comm.run(program)
