"""Topology object tree: structure, queries, validation."""

import pytest

from repro.errors import TopologyError
from repro.topology import ObjKind, Topology, build_symmetric
from repro.topology.objects import TopoObject

from conftest import small_topo


def test_counts_per_kind():
    topo = small_topo()  # 2 sockets x 2 numa x 4 cores, 2-core LLCs
    assert topo.n_cores == 16
    assert topo.count(ObjKind.SOCKET) == 2
    assert topo.count(ObjKind.NUMA) == 4
    assert topo.count(ObjKind.LLC) == 8
    assert topo.count(ObjKind.MACHINE) == 1


def test_core_indices_are_dense_and_ordered():
    topo = small_topo()
    assert [c.index for c in topo.cores] == list(range(16))
    for i in range(16):
        assert topo.core(i).index == i


def test_core_index_out_of_range():
    topo = small_topo()
    with pytest.raises(TopologyError):
        topo.core(16)
    with pytest.raises(TopologyError):
        topo.ancestor_of_core(-1, ObjKind.NUMA)


def test_ancestor_lookup():
    topo = small_topo()
    assert topo.numa_of_core(0).index == 0
    assert topo.numa_of_core(5).index == 1
    assert topo.socket_of_core(7).index == 0
    assert topo.socket_of_core(8).index == 1
    assert topo.llc_of_core(2).index == 1
    assert topo.llc_of_core(3).index == 1


def test_machine_ancestor_is_machine():
    topo = small_topo()
    assert topo.ancestor_of_core(3, ObjKind.MACHINE) is topo.machine
    assert topo.ancestor_of_core(3, ObjKind.CORE) is topo.core(3)


def test_cpuset_partition():
    """NUMA cpusets partition the machine's cores exactly."""
    topo = small_topo()
    seen = set()
    for numa in topo.objects(ObjKind.NUMA):
        cpuset = numa.cpuset()
        assert not cpuset & seen
        seen |= cpuset
    assert seen == set(range(16))


def test_common_ancestor_kinds():
    topo = small_topo()
    assert topo.common_ancestor(0, 1).kind == ObjKind.LLC
    assert topo.common_ancestor(0, 2).kind == ObjKind.NUMA
    assert topo.common_ancestor(0, 4).kind == ObjKind.SOCKET
    assert topo.common_ancestor(0, 8).kind == ObjKind.MACHINE


def test_group_cores_by_covers_everything():
    topo = small_topo()
    groups = topo.group_cores_by(ObjKind.NUMA)
    assert sorted(c for g in groups for c in g) == list(range(16))
    assert all(len(g) == 4 for g in groups)


def test_no_llc_machine_has_no_llc_groups():
    topo = build_symmetric("noLLC", 1, 2, 3, cores_per_llc=None)
    assert not topo.has_llc
    assert topo.llc_of_core(0) is None
    assert topo.count(ObjKind.LLC) == 0


def test_root_must_be_machine():
    stray = TopoObject(ObjKind.SOCKET, 0)
    with pytest.raises(TopologyError):
        Topology(stray)


def test_describe_mentions_counts():
    topo = small_topo()
    text = topo.describe()
    assert "cores=16" in text and "numa=4" in text and "sockets=2" in text


def test_filter_cores():
    topo = small_topo()
    odd = topo.filter_cores(lambda c: c.index % 2 == 1)
    assert odd == list(range(1, 16, 2))
