"""MCA-like parameter registry."""

import pytest

from repro.errors import ConfigError
from repro.params import Param, ParamRegistry, ParamSet, non_negative, positive

REG = ParamRegistry([
    Param("chunk", 16384, "pipeline chunk", positive),
    Param("threshold", 1024, "cico threshold", non_negative),
    Param("label", "xhc", "free-form"),
])


def test_defaults():
    params = ParamSet(REG)
    assert params["chunk"] == 16384
    assert params["label"] == "xhc"


def test_overrides_and_validation():
    params = ParamSet(REG, {"chunk": 4096})
    assert params["chunk"] == 4096
    with pytest.raises(ConfigError):
        ParamSet(REG, {"chunk": -1})
    with pytest.raises(ConfigError):
        ParamSet(REG, {"nope": 1})


def test_duplicate_declaration_rejected():
    reg = ParamRegistry([Param("a", 1)])
    with pytest.raises(ConfigError):
        reg.declare(Param("a", 2))


def test_copy_with():
    params = ParamSet(REG, {"chunk": 4096})
    derived = params.copy_with(threshold=0)
    assert derived["chunk"] == 4096
    assert derived["threshold"] == 0
    assert params["threshold"] == 1024


def test_merged_registries():
    extra = ParamRegistry([Param("radix", 4, check=positive)])
    merged = REG.merged(extra)
    assert "radix" in merged and "chunk" in merged
    with pytest.raises(ConfigError):
        REG.merged(ParamRegistry([Param("chunk", 1)]))


def test_as_dict_and_overridden():
    params = ParamSet(REG, {"label": "flat"})
    assert params.overridden() == {"label": "flat"}
    full = params.as_dict()
    assert full["chunk"] == 16384 and full["label"] == "flat"


def test_get_with_default():
    params = ParamSet(REG)
    assert params.get("chunk") == 16384
    assert params.get("missing", 7) == 7
