"""XHC Broadcast: paths, pipelining, acknowledgments, flag layouts."""

import numpy as np
import pytest

from repro.mpi import World
from repro.node import Node
from repro.sim import primitives as P
from repro.xhc import Xhc, XhcConfig

from conftest import assert_bcast_correct, run_bcast, small_topo


def test_cico_path_below_threshold():
    out, node = run_bcast(Xhc, nranks=8, size=1024, iters=2)
    assert_bcast_correct(out, 8, 101)
    assert node.xpmem.attaches == 0


def test_single_copy_path_above_threshold():
    out, node = run_bcast(Xhc, nranks=8, size=1025, iters=2)
    assert_bcast_correct(out, 8, 101)
    assert node.xpmem.attaches > 0


def test_threshold_configurable():
    out, node = run_bcast(lambda: Xhc(cico_threshold=4096), nranks=8,
                          size=4000, iters=1)
    assert_bcast_correct(out, 8, 100)
    assert node.xpmem.attaches == 0


def test_pipelining_with_tiny_chunks():
    out, _ = run_bcast(lambda: Xhc(chunk_size=512), nranks=8, size=10_000,
                       iters=2)
    assert_bcast_correct(out, 8, 101)


def test_per_level_chunk_sizes():
    # 16 ranks on the mini topology build 3 levels (numa, socket, top).
    out, _ = run_bcast(lambda: Xhc(chunk_size=(1024, 4096, 16384)),
                       nranks=16, size=20_000, iters=2)
    assert_bcast_correct(out, 16, 101)


def test_chunk_tuple_depth_mismatch_rejected():
    """Regression: a per-level tuple that does not match the built
    hierarchy's depth must fail loudly at setup, not misbehave inside
    the collective."""
    from repro.errors import ConfigError

    node = Node(small_topo())
    world = World(node, 16)
    with pytest.raises(ConfigError, match="per-level"):
        world.communicator(Xhc(chunk_size=(1024, 4096)))


def test_flag_layout_variants_correct():
    for layout in ("single", "multi-shared", "multi-separate"):
        for hierarchy in ("flat", "numa+socket"):
            out, _ = run_bcast(
                lambda: Xhc(hierarchy=hierarchy, flag_layout=layout),
                nranks=8, size=256, iters=3)
            assert_bcast_correct(out, 8, 102)


def test_multi_shared_uses_one_line_per_leader():
    node = Node(small_topo())
    world = World(node, 8)
    comp = Xhc(hierarchy="flat", flag_layout="multi-shared")
    comm = world.communicator(comp)

    def program(comm_, ctx):
        buf = ctx.alloc("b", 64)
        yield from comm_.bcast(ctx, buf.whole(), 0)
    comm.run(program)
    lines = {f.line.id for f in comp._avail_multi.values()}
    assert len(lines) == 1


def test_multi_separate_uses_one_line_per_child():
    node = Node(small_topo())
    world = World(node, 8)
    comp = Xhc(hierarchy="flat", flag_layout="multi-separate")
    comm = world.communicator(comp)

    def program(comm_, ctx):
        buf = ctx.alloc("b", 64)
        yield from comm_.bcast(ctx, buf.whole(), 0)
    comm.run(program)
    lines = {f.line.id for f in comp._avail_multi.values()}
    assert len(lines) == 7


def test_message_pattern_is_root_invariant():
    """Table II: XHC-tree's edge distances do not change with the root."""
    from repro.topology.distance import message_distance_label

    def pattern(root):
        out, node = run_bcast(Xhc, nranks=16, size=2048, iters=1, root=root)
        counts = {"intra-numa": 0, "inter-numa": 0, "inter-socket": 0}
        for _t, label, m in node.engine.trace:
            if label == "message":
                counts[message_distance_label(node.topo, m["src"],
                                              m["dst"])] += 1
        return counts
    assert pattern(0) == pattern(9)


def test_varying_sizes_across_ops():
    """CICO and single-copy ops interleave on one communicator."""
    node = Node(small_topo())
    world = World(node, 8)
    comm = world.communicator(Xhc())

    def program(comm_, ctx):
        me = comm_.rank_of(ctx)
        for it, size in enumerate([64, 40_000, 512, 9_000, 100]):
            buf = ctx.alloc(f"b{it}", size)
            if me == 0:
                buf.fill(it + 1)
            yield from comm_.bcast(ctx, buf.whole(), 0)
            assert np.all(buf.data == it + 1)
    comm.run(program)


def test_deferred_ack_ring_reuses_slots_safely():
    """More back-to-back CICO ops than ring slots, values must not tear."""
    node = Node(small_topo())
    world = World(node, 8)
    comm = world.communicator(Xhc(cico_ring=2))

    def program(comm_, ctx):
        me = comm_.rank_of(ctx)
        buf = ctx.alloc("b", 128)
        for it in range(10):
            if me == 0:
                buf.fill(it)
            yield from comm_.bcast(ctx, buf.whole(), 0)
            assert np.all(buf.data == it), f"iteration {it} torn"
    comm.run(program)


def test_zero_and_single_rank_degenerate():
    node = Node(small_topo())
    world = World(node, 1)
    comm = world.communicator(Xhc())

    def program(comm_, ctx):
        buf = ctx.alloc("b", 64)
        yield from comm_.bcast(ctx, buf.whole(), 0)
        yield P.Compute(0)
    comm.run(program)
