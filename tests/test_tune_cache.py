"""Content-addressed result cache: hit/miss accounting + persistence.

The cache lives in ``repro.exec.cache`` now; this suite imports it through
the ``repro.tune.cache`` compatibility shim on purpose, so a regression in
the shim fails loudly here.
"""

from repro.tune.cache import SIM_VERSION, ResultCache, cache_key


def payload(**kw):
    base = dict(system="epyc-1p", collective="bcast", size=1024, nranks=32,
                mapping="core", warmup=1, iters=3,
                config={"hierarchy": "numa"})
    base.update(kw)
    return base


def test_key_is_content_addressed():
    assert cache_key(payload()) == cache_key(payload())
    # Any field change changes the digest.
    for change in (dict(size=2048), dict(nranks=16), dict(iters=4),
                   dict(config={"hierarchy": "flat"})):
        assert cache_key(payload(**change)) != cache_key(payload())


def test_hit_miss_accounting():
    cache = ResultCache()
    assert cache.get(payload()) is None
    assert (cache.hits, cache.misses) == (0, 1)
    cache.put(payload(), 1.5e-6)
    assert cache.get(payload()) == 1.5e-6
    assert (cache.hits, cache.misses) == (1, 1)
    assert cache.hit_rate == 0.5


def test_persistence_round_trip(tmp_path):
    path = tmp_path / "sub" / "cache.json"
    cache = ResultCache(path)
    cache.put(payload(), 2e-6)
    cache.put(payload(size=4096), 3e-6)
    cache.save()

    warm = ResultCache(path)
    assert len(warm) == 2
    assert warm.get(payload()) == 2e-6
    assert warm.get(payload(size=4096)) == 3e-6
    assert warm.misses == 0


def test_sim_version_mismatch_discards(tmp_path, monkeypatch):
    path = tmp_path / "cache.json"
    cache = ResultCache(path)
    cache.put(payload(), 2e-6)
    cache.save()

    # The behavior lives in repro.exec.cache (the shim only re-exports),
    # so the version check must be patched at its home module.
    import repro.exec.cache as cache_mod
    monkeypatch.setattr(cache_mod, "SIM_VERSION", SIM_VERSION + 1)
    stale = ResultCache(path)
    assert len(stale) == 0  # old entries must not be served


def test_unpersisted_cache_save_is_noop():
    ResultCache().save()  # no path -> silently does nothing
