"""Search-space generation: validity on every modeled system."""

import pytest

from repro.topology import get_system
from repro.tune.space import (PAPER_DEFAULT, chunk_candidates,
                              config_from_dict, config_to_dict,
                              generate_space, hierarchy_candidates,
                              hierarchy_depth)
from repro.xhc import build_hierarchy
from repro.xhc.config import XhcConfig

SYSTEMS = ["epyc-1p", "epyc-2p", "arm-n1"]


@pytest.mark.parametrize("system", SYSTEMS)
def test_hierarchy_candidates_build_on_their_machine(system):
    """Every generated ordering must build a real hierarchy at full and
    partial rank counts — the core validity contract of the space."""
    topo = get_system(system)
    cands = hierarchy_candidates(topo)
    assert "flat" in cands
    assert len(cands) == len(set(cands))
    for hierarchy in cands:
        for nranks in (topo.n_cores, topo.n_cores // 2, 5):
            cfg = XhcConfig(hierarchy=hierarchy)
            cores = list(range(min(nranks, topo.n_cores)))
            hier = build_hierarchy(topo, cores, cfg.tokens(), 0)
            assert hier.n_levels >= 1
            # Every rank appears exactly once per level's membership.
            seen = sorted(m for g in hier.levels[0] for m in g.members)
            assert seen == cores


def test_candidates_respect_topology():
    # arm-n1 has no LLC subdivision -> no "l3" token anywhere.
    arm = hierarchy_candidates(get_system("arm-n1"))
    assert not any("l3" in h for h in arm)
    # epyc-1p is single-socket -> no "socket" token.
    e1 = hierarchy_candidates(get_system("epyc-1p"))
    assert not any("socket" in h for h in e1)
    # epyc-2p has all three levels.
    e2 = hierarchy_candidates(get_system("epyc-2p"))
    assert "l3+numa+socket" in e2


def test_orderings_are_inner_to_outer_only():
    for system in SYSTEMS:
        for h in hierarchy_candidates(get_system(system)):
            tokens = h.split("+")
            order = {"flat": -1, "l3": 0, "numa": 1, "socket": 2}
            assert tokens == sorted(tokens, key=order.__getitem__)


@pytest.mark.parametrize("system", SYSTEMS)
def test_generate_space_valid_configs(system):
    """Every config in the space constructs, includes the paper default
    first, and has chunk tuples matching its hierarchy's depth."""
    topo = get_system(system)
    for size in (1024, 262144):
        space = generate_space(topo, topo.n_cores, "bcast", size)
        assert space[0] == PAPER_DEFAULT
        assert len(space) == len(set(space))
        for cfg in space:
            depth = hierarchy_depth(topo, cfg.hierarchy, topo.n_cores)
            if isinstance(cfg.chunk_size, tuple):
                assert len(cfg.chunk_size) == depth
            # Round-trips through the JSON form unchanged.
            assert config_from_dict(config_to_dict(cfg)) == cfg


def test_small_vs_large_open_different_dimensions():
    topo = get_system("epyc-2p")
    small = generate_space(topo, topo.n_cores, "bcast", 256)
    large = generate_space(topo, topo.n_cores, "bcast", 1048576)
    # Small messages sweep CICO thresholds and flag layouts...
    assert len({c.cico_threshold for c in small}) > 1
    assert len({c.flag_layout for c in small}) > 1
    # ...but never pipeline chunking (beyond the default).
    assert all(c.chunk_size == PAPER_DEFAULT.chunk_size for c in small)
    # Large messages sweep chunks, not thresholds/layouts.
    assert len({c.chunk_size for c in large}) > 1
    assert all(c.flag_layout == "single" for c in large
               if c != PAPER_DEFAULT)


def test_quick_mode_shrinks_space():
    topo = get_system("epyc-2p")
    full = generate_space(topo, topo.n_cores, "bcast", 1048576)
    quick = generate_space(topo, topo.n_cores, "bcast", 1048576, quick=True)
    assert PAPER_DEFAULT in quick
    assert len(quick) < len(full)


def test_chunk_candidates_collapse_oversized():
    # All grid chunks >= size behave identically (no pipelining): only
    # one oversized representative may appear.
    cands = chunk_candidates(1, 1024)
    assert len([c for c in cands if isinstance(c, int) and c >= 1024]) == 1
    # Non-uniform tuples appear only for multi-level hierarchies.
    assert all(isinstance(c, int) for c in chunk_candidates(1, 1048576))
    deep = chunk_candidates(3, 1048576)
    assert any(isinstance(c, tuple) and len(c) == 3 for c in deep)
