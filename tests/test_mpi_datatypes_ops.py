"""MPI datatypes and reduction operators."""

import numpy as np
import pytest

from repro.errors import MPIError
from repro.mpi import BYTE, DOUBLE, FLOAT, INT, MAX, MIN, PROD, SUM


def test_itemsizes():
    assert BYTE.itemsize == 1
    assert INT.itemsize == 4
    assert FLOAT.itemsize == 4
    assert DOUBLE.itemsize == 8


def test_count_of():
    assert FLOAT.count_of(16) == 4
    with pytest.raises(MPIError):
        FLOAT.count_of(6)


def test_np_dtypes():
    assert FLOAT.np_dtype == np.float32
    assert DOUBLE.np_dtype == np.float64
    assert INT.np_dtype == np.int32


def test_ops_apply():
    a = np.array([1.0, 5.0])
    b = np.array([3.0, 2.0])
    assert (SUM(a, b) == [4.0, 7.0]).all()
    assert (PROD(a, b) == [3.0, 10.0]).all()
    assert (MAX(a, b) == [3.0, 5.0]).all()
    assert (MIN(a, b) == [1.0, 2.0]).all()


def test_op_names():
    assert SUM.name == "MPI_SUM"
    assert MAX.name == "MPI_MAX"
