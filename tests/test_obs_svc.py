"""Service-layer telemetry (repro.obs.svc): event log, span trees,
Perfetto export — driven with a fake clock, no daemon involved."""

import json
import os

import pytest

from repro.obs.export import validate_chrome_trace
from repro.obs.metrics import MetricsRegistry, validate_prometheus
from repro.obs.svc import EventLog, JobTrace, ServiceTelemetry


class FakeJob:
    def __init__(self, id, tenant, total):
        self.id = id
        self.tenant = tenant
        self.requests = [None] * total
        self.new = 0
        self.cached = 0
        self.errors = 0

    @property
    def total(self):
        return len(self.requests)


class FakeResult:
    def __init__(self, cached=False, error=None):
        self.cached = cached
        self.error = error


class FakeClock:
    """Deterministic wall clock the tests advance by hand."""

    def __init__(self):
        self.t = 100.0

    def __call__(self):
        return self.t

    def tick(self, dt=1.0):
        self.t += dt


def make_telemetry(tmp_path=None, **kw):
    clock = FakeClock()
    tel = ServiceTelemetry(MetricsRegistry(), tmp_path, clock=clock, **kw)
    return tel, clock


def run_job(tel, clock, job, chunks=2, cached_per_chunk=0):
    """Drive one job through the full lifecycle hook sequence."""
    tel.job_submitted(job)
    per_chunk = max(1, job.total // chunks)
    for c in range(chunks):
        clock.tick(0.5)                      # queue / schedule wait
        indices = list(range(per_chunk))
        tel.chunk_started(job, indices)
        clock.tick(0.1)
        tel.executor_phase("cache-lookup", 0.01, len(indices))
        tel.executor_phase("worker-execute", 0.09, len(indices))
        results = [FakeResult(cached=i < cached_per_chunk)
                   for i in range(per_chunk)]
        tel.chunk_finished(job, indices, results, 0.1)
    clock.tick(0.05)
    tel.job_finished(job)


# -- EventLog -----------------------------------------------------------------


def test_event_log_appends_compact_json_lines(tmp_path):
    log = EventLog(tmp_path / "events.jsonl")
    log.append({"event": "submit", "job": 1})
    log.append({"event": "done", "job": 1})
    lines = (tmp_path / "events.jsonl").read_text().splitlines()
    assert len(lines) == 2
    assert json.loads(lines[0]) == {"event": "submit", "job": 1}
    assert log.written == 2
    assert log.rotations == 0
    assert log.records() == [{"event": "submit", "job": 1},
                             {"event": "done", "job": 1}]


def test_event_log_rotates_at_size_and_bounds_segments(tmp_path):
    path = tmp_path / "events.jsonl"
    log = EventLog(path, max_bytes=200, keep=2)
    for i in range(50):
        log.append({"event": "chunk", "n": i})
    assert log.rotations > 0
    segments = log.segments()
    # live file + at most `keep` closed segments, newest first
    assert segments[0] == str(path)
    assert len(segments) <= 3
    for segment in segments:
        assert os.path.getsize(segment) <= 200 + 40
    # Records survive rotation in order (oldest retained first), and the
    # newest record is always present.
    ns = [r["n"] for r in log.records()]
    assert ns == sorted(ns)
    assert ns[-1] == 49


def test_event_log_skips_corrupt_lines_and_none_path(tmp_path):
    path = tmp_path / "events.jsonl"
    log = EventLog(path)
    log.append({"ok": 1})
    with open(path, "a") as fh:
        fh.write("{torn json\n")
        fh.write("[1, 2]\n")
    log.append({"ok": 2})
    assert log.records() == [{"ok": 1}, {"ok": 2}]

    disabled = EventLog(None)
    disabled.append({"never": "written"})
    assert disabled.segments() == []
    assert disabled.records() == []
    assert disabled.written == 0


# -- lifecycle span trees -----------------------------------------------------


def test_job_lifecycle_builds_expected_span_tree(tmp_path):
    tel, clock = make_telemetry(tmp_path)
    job = FakeJob(1, "alice", 4)
    run_job(tel, clock, job, chunks=2)

    trace = tel.get_trace(1)
    assert trace.finished
    assert trace.wall_s == pytest.approx(1.25)
    names = [s.name for s in trace.spans]
    # Tree contents: root job, queue-wait, 2 chunks, each with lookup +
    # execute children, and a publish tail.
    assert names.count("job") == 1
    assert names.count("queue-wait") == 1
    assert names.count("chunk") == 2
    assert names.count("cache-lookup") == 2
    assert names.count("worker-execute") == 2
    assert names.count("publish") == 1
    by_name = {}
    for span in trace.spans:
        by_name.setdefault(span.name, []).append(span)
    root = by_name["job"][0]
    assert root.parent is None
    assert by_name["queue-wait"][0].parent == root.id
    for chunk in by_name["chunk"]:
        assert chunk.parent == root.id
    chunk_ids = {c.id for c in by_name["chunk"]}
    for name in ("cache-lookup", "worker-execute"):
        for span in by_name[name]:
            assert span.parent in chunk_ids
    assert by_name["publish"][0].parent == root.id
    # Every span is closed and every track is the job id.
    for span in trace.spans:
        assert span.end is not None and span.end >= span.start
        assert span.track == 1


def test_metrics_feed_from_lifecycle(tmp_path):
    tel, clock = make_telemetry(tmp_path)
    run_job(tel, clock, FakeJob(1, "alice", 4), chunks=2,
            cached_per_chunk=1)
    m = tel.metrics
    assert m.value("serve.tenant.jobs.alice") == 1
    assert m.value("serve.tenant.completed.alice") == 1
    assert m.get("serve.job.latency_seconds").count == 1
    assert m.get("serve.job.queue_wait_seconds").count == 1
    assert m.get("serve.chunk.execute_seconds").count == 2
    assert m.get("serve.exec.cache_lookup_seconds").count == 2
    assert m.get("serve.exec.worker_execute_seconds").count == 2
    assert m.value("serve.worker.busy_seconds") == pytest.approx(0.2)
    assert m.value("serve.inflight.chunks") == 0
    # The whole registry round-trips through the Prometheus emitter.
    assert validate_prometheus(m.to_prometheus()) == []


def test_event_log_records_lifecycle(tmp_path):
    tel, clock = make_telemetry(tmp_path)
    run_job(tel, clock, FakeJob(1, "alice", 4), chunks=2)
    kinds = [r["event"] for r in tel.events.records()]
    assert kinds == ["submit", "chunk", "chunk", "done"]
    done = tel.events.records()[-1]
    assert done["job"] == 1
    assert done["tenant"] == "alice"
    assert done["wall_s"] == pytest.approx(1.25)


def test_disabled_telemetry_is_inert(tmp_path):
    tel, clock = make_telemetry(tmp_path, enabled=False)
    run_job(tel, clock, FakeJob(1, "alice", 2), chunks=1)
    assert tel.job_ids() == []
    assert tel.trace_doc() is None
    assert tel.metrics.snapshot() == {}
    assert not os.path.exists(os.path.join(str(tmp_path), "events.jsonl"))


def test_trace_retention_evicts_oldest(tmp_path):
    tel, clock = make_telemetry(tmp_path, max_traces=3)
    for i in range(1, 6):
        run_job(tel, clock, FakeJob(i, "t", 2), chunks=1)
    assert tel.job_ids() == [3, 4, 5]
    assert tel.get_trace(1) is None
    assert tel.job_wall(1) is None
    assert tel.job_wall(5) is not None


# -- Perfetto export ----------------------------------------------------------


def test_trace_doc_validates_and_maps_tenants_to_pids(tmp_path):
    tel, clock = make_telemetry(tmp_path)
    run_job(tel, clock, FakeJob(1, "alice", 4), chunks=2)
    run_job(tel, clock, FakeJob(2, "bob", 2), chunks=1)

    doc = tel.trace_doc()
    assert validate_chrome_trace(doc) == []
    events = doc["traceEvents"]
    xs = [e for e in events if e["ph"] == "X"]
    # One tid (= job id) per job; one pid per tenant.
    assert {e["tid"] for e in xs} == {1, 2}
    assert len({e["pid"] for e in xs}) == 2
    names = {e["args"]["name"] for e in events
             if e["ph"] == "M" and e["name"] == "process_name"}
    assert names == {"tenant alice", "tenant bob"}
    other = doc["otherData"]
    assert other["tool"] == "repro.obs.svc"
    assert other["jobs"] == 2
    assert "serve.job.latency_seconds" in other["metrics"]

    single = tel.trace_doc(2)
    assert validate_chrome_trace(single) == []
    assert {e["tid"] for e in single["traceEvents"]
            if e["ph"] == "X"} == {2}
    assert tel.trace_doc(99) is None


def test_trace_doc_closes_open_spans_at_now(tmp_path):
    tel, clock = make_telemetry(tmp_path)
    job = FakeJob(1, "alice", 4)
    tel.job_submitted(job)
    clock.tick(0.5)
    tel.chunk_started(job, [0, 1])          # chunk still open
    clock.tick(0.2)
    doc = tel.trace_doc()
    assert validate_chrome_trace(doc) == []
    xs = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
    # Open spans (job, chunk) are synthetically closed at "now" in the
    # export only; the live trace still has them on the stack.
    assert {"job", "queue-wait", "chunk"} <= set(xs)
    assert xs["chunk"]["dur"] == pytest.approx(0.2e6)
    assert tel.get_trace(1).stack  # still open in the live structure


def test_job_trace_wall_none_until_finished():
    trace = JobTrace(1, "t", 2, submitted_at=0.0)
    assert not trace.finished
    assert trace.wall_s is None
