"""The unified run API surface: RunOptions, deprecations, __all__."""

import warnings

import pytest

import repro
from repro import Node, RunOptions
from repro.exec import Executor, get_executor, using_executor
from repro.options import DEFAULT_OPTIONS, resolve_options


def _topo():
    from repro.topology import build_symmetric
    return build_symmetric("mini", 2, 2, 4, 2)


def test_options_equivalent_to_legacy_kwargs():
    topo = _topo()
    new = Node(topo, options=RunOptions(data_movement=False,
                                        observe="spans", check="race"))
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        old = Node(topo, data_movement=False, observe="spans", check="race")
    assert new.options == old.options
    assert new.data_movement is old.data_movement is False
    assert new.engine.obs is not None and old.engine.obs is not None


def test_legacy_kwargs_warn_exactly_once_per_call():
    topo = _topo()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        Node(topo, data_movement=False, observe="spans")
    deprecations = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1
    message = str(deprecations[0].message)
    # One warning names every legacy kwarg used, so the fix is one edit.
    assert "data_movement" in message and "observe" in message
    assert "options=RunOptions" in message


def test_options_plus_legacy_kwargs_is_an_error():
    with pytest.raises(TypeError):
        Node(_topo(), options=RunOptions(), data_movement=False)


def test_resolve_options_passthrough():
    opts = RunOptions(record_copies=True)
    assert resolve_options(opts) is opts
    assert resolve_options(None) is DEFAULT_OPTIONS


def test_run_options_with():
    base = RunOptions(data_movement=False)
    varied = base.with_(check="full")
    assert varied.check == "full" and not varied.data_movement
    assert base.check is None          # frozen: original untouched
    assert not base.instrumented and varied.instrumented


def test_node_default_options_unchanged():
    node = Node(_topo())
    assert node.options == DEFAULT_OPTIONS
    assert node.data_movement is True


def test_ambient_executor_scoping():
    default = get_executor()
    assert default.workers == 0
    scoped = Executor(workers=0)
    with using_executor(scoped) as active:
        assert active is scoped
        assert get_executor() is scoped
    assert get_executor() is not scoped
    scoped.close()


def test_public_surface_exports():
    for name in ("Node", "RunOptions", "World", "Xhc", "XhcConfig",
                 "Executor", "ResultCache", "RunRequest", "RunResult",
                 "run", "run_inline", "run_many", "using_executor",
                 "get_system", "build_symmetric",
                 "bench", "check", "exec", "obs", "tune"):
        assert name in repro.__all__, name
        assert getattr(repro, name) is not None


def test_sweeps_pick_up_the_ambient_executor(tmp_path):
    # An osu sweep deep inside a figure driver must hit the scoped
    # executor's cache without any parameter threading.
    from repro.bench.osu import osu_bcast
    with Executor(workers=0, cache=tmp_path / "c.json") as ex, \
            using_executor(ex):
        osu_bcast("epyc-1p", 8, "xhc-tree", sizes=(64, 1024), iters=2)
        assert ex.simulations == 2
        osu_bcast("epyc-1p", 8, "xhc-tree", sizes=(64, 1024), iters=2)
        assert ex.simulations == 2      # second sweep fully cached
        assert ex.cache.hits == 2


def test_legacy_callable_component_still_sweeps():
    # Factory callables cannot be addressed by the cache; the sweep falls
    # back to the inline path and still produces the same curve.
    from repro.bench.components import COMPONENTS, make_component
    from repro.bench.osu import osu_bcast
    by_name = osu_bcast("epyc-1p", 8, "xhc-tree", sizes=(1024,), iters=2)
    by_callable = osu_bcast("epyc-1p", 8, COMPONENTS["xhc-tree"],
                            sizes=(1024,), iters=2)
    assert by_name.latency == by_callable.latency
    assert callable(make_component)


def test_check_runner_reports_through_exec():
    from repro.check.runner import run_sanitized
    report = run_sanitized(system="epyc-1p", colls=("bcast",),
                           sizes=(1024,), nranks=8, iters=1)
    assert report.ok  # the shipped protocols are clean


def test_trace_runner_returns_live_node():
    from repro.obs.runner import run_traced
    node = run_traced("epyc-1p", "bcast", size=4096, nranks=8)
    assert node.obs.spans
    assert node.engine.now > 0
