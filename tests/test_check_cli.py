"""`python -m repro check` end-to-end (lint + sanitizer smoke)."""

import json

from repro.cli import main


def test_check_lint_exits_zero_on_repo(capsys):
    assert main(["check", "--lint"]) == 0
    out = capsys.readouterr().out
    assert "clean" in out


def test_check_lint_exits_nonzero_on_violation(tmp_path, capsys):
    bad = tmp_path / "src" / "repro" / "sim" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import time\nimport random\n")
    assert main(["check", "--lint", "--paths", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "RC101" in out and "RC102" in out


def test_check_race_smoke_is_clean(capsys):
    rc = main(["check", "--race", "--nranks", "4",
               "--colls", "bcast", "--sizes", "256"])
    assert rc == 0
    assert "clean" in capsys.readouterr().out


def test_check_json_output(tmp_path):
    out = tmp_path / "findings.json"
    rc = main(["check", "--deadlock", "--nranks", "4",
               "--colls", "bcast", "--sizes", "256",
               "--json", str(out)])
    assert rc == 0
    payload = json.loads(out.read_text())
    assert payload["findings"] == []
