"""The sweep daemon end-to-end: protocol, caching, fairness, drain.

Each fixture runs a real :class:`ServeDaemon` event loop on a background
thread, talking over an AF_UNIX socket in a *short* tmp dir (the 108-char
sun_path limit rules out pytest's deep tmp_path).
"""

import asyncio
import os
import shutil
import tempfile
import threading

import pytest

from repro.exec import Executor, RunRequest, SIM_VERSION
from repro.serve import (PROTOCOL_VERSION, ServeClient, ServeDaemon,
                         ServeError, ServeUnreachable)
from repro.tune.table import DecisionTable
from repro.xhc import XhcConfig


class DaemonFixture:
    def __init__(self, **kwargs):
        self.dir = tempfile.mkdtemp(prefix="rsv")
        self.socket_path = os.path.join(self.dir, "d.sock")
        kwargs.setdefault("cache", os.path.join(self.dir, "cache"))
        kwargs.setdefault("state_dir", self.dir)
        kwargs.setdefault("tables_root", os.path.join(self.dir, "tuned"))
        self.daemon = ServeDaemon(self.socket_path, **kwargs)
        self.thread = threading.Thread(
            target=lambda: asyncio.run(self.daemon.run()), daemon=True)

    def start(self):
        self.thread.start()
        for _ in range(200):
            if os.path.exists(self.socket_path):
                return self
            threading.Event().wait(0.02)
        raise RuntimeError("daemon socket never appeared")

    def stop(self):
        if self.thread.is_alive():
            try:
                with ServeClient(self.socket_path, timeout=10) as client:
                    client.shutdown()
            except ServeError:
                pass
            self.thread.join(timeout=10)
        shutil.rmtree(self.dir, ignore_errors=True)


@pytest.fixture
def served():
    fixture = DaemonFixture(workers=0, batch_size=2)
    fixture.start()
    yield fixture
    fixture.stop()


def _payloads(sizes=(64, 4096), component="xhc-tree"):
    return [RunRequest("epyc-1p", "bcast", size, 8, component=component,
                       warmup=1, iters=2).payload() for size in sizes]


# -- protocol basics ---------------------------------------------------------


def test_ping_reports_versions(served):
    with ServeClient(served.socket_path) as client:
        pong = client.ping()
    assert pong["ok"] is True
    assert pong["protocol"] == PROTOCOL_VERSION
    assert pong["sim_version"] == SIM_VERSION


def test_unknown_op_is_an_error_not_a_hangup(served):
    with ServeClient(served.socket_path) as client:
        with pytest.raises(ServeError, match="op"):
            client.request({"op": "frobnicate"})
        # The connection survives the error: the next op still answers.
        assert client.ping()["ok"] is True


def test_submit_requires_requests(served):
    with ServeClient(served.socket_path) as client:
        with pytest.raises(ServeError):
            client.request({"op": "submit", "tenant": "a", "requests": []})


def test_malformed_request_payload_is_rejected(served):
    with ServeClient(served.socket_path) as client:
        with pytest.raises(ServeError, match="unknown request field"):
            client.submit([{"system": "epyc-1p", "bogus_field": 1}])


def test_unreachable_daemon_raises_exit_code_2(tmp_path):
    client = ServeClient(str(tmp_path / "nowhere.sock"), timeout=0.5)
    with pytest.raises(ServeUnreachable) as excinfo:
        client.ping()
    assert excinfo.value.exit_code == 2
    assert "serve start" in str(excinfo.value)


# -- serving results ---------------------------------------------------------


def test_served_results_match_direct_executor_exactly(served):
    payloads = _payloads()
    events = []
    with ServeClient(served.socket_path) as client:
        done = client.submit(payloads, tenant="alice",
                             on_event=events.append)

    assert [e["event"] for e in events] == ["accepted"] + \
        ["progress"] * (len(events) - 1)
    assert done["stats"] == {"requests": 2, "new": 2, "cached": 0,
                             "errors": 0}
    with Executor(workers=0) as ex:
        direct = ex.run_many([RunRequest.from_payload(p)
                              for p in payloads])
    # Byte-identical answers: same latencies, same hashes as the
    # requests' own content addresses.
    for res, ref, payload in zip(done["results"], direct, payloads):
        assert res["latency_s"] == ref.latency_s
        assert res["provenance"]["request_hash"] \
            == RunRequest.from_payload(payload).key()
        assert res["provenance"]["sim_version"] == SIM_VERSION
        assert res["provenance"]["cache"] == "miss"


def test_warm_resubmit_serves_entirely_from_cache(served):
    payloads = _payloads()
    with ServeClient(served.socket_path) as client:
        cold = client.submit(payloads, tenant="alice")
    with ServeClient(served.socket_path) as client:
        warm = client.submit(payloads, tenant="bob")
    assert warm["stats"]["new"] == 0
    assert warm["stats"]["cached"] == len(payloads)
    assert [r["latency_s"] for r in warm["results"]] \
        == [r["latency_s"] for r in cold["results"]]
    assert all(r["provenance"]["cache"] == "hit" for r in warm["results"])


def test_cache_survives_daemon_restart():
    fixture = DaemonFixture(workers=0)
    fixture.start()
    payloads = _payloads()
    try:
        with ServeClient(fixture.socket_path) as client:
            client.submit(payloads)
        with ServeClient(fixture.socket_path) as client:
            client.shutdown()
        fixture.thread.join(timeout=10)

        # Same state dir, fresh daemon: everything is a hit.
        reborn = ServeDaemon(fixture.socket_path, workers=0,
                             cache=os.path.join(fixture.dir, "cache"),
                             state_dir=fixture.dir)
        thread = threading.Thread(
            target=lambda: asyncio.run(reborn.run()), daemon=True)
        thread.start()
        for _ in range(200):
            if os.path.exists(fixture.socket_path):
                break
            threading.Event().wait(0.02)
        with ServeClient(fixture.socket_path) as client:
            warm = client.submit(payloads)
            client.shutdown()
        thread.join(timeout=10)
        assert warm["stats"]["new"] == 0
        assert warm["stats"]["cached"] == len(payloads)
    finally:
        fixture.stop()


def test_component_error_is_per_request_not_fatal(served):
    good = _payloads(sizes=(64,))
    bad = _payloads(sizes=(64,), component="no-such-component")
    with ServeClient(served.socket_path) as client:
        done = client.submit(bad + good, tenant="a")
    assert done["stats"]["errors"] == 1
    by_component = {r["request"]["component"]: r for r in done["results"]}
    assert by_component["no-such-component"]["latency_s"] is None
    assert by_component["no-such-component"]["provenance"]["cache"] \
        == "error"
    assert "error" in by_component["no-such-component"]
    assert by_component["xhc-tree"]["latency_s"] is not None


# -- fairness ----------------------------------------------------------------


def test_two_concurrent_tenants_both_make_progress(served):
    # A whale (10 requests) and a minnow (2) submit together; the
    # minnow must finish long before the whale's tail, because chunk
    # dispatch round-robins across tenants (batch_size=2 here).
    whale_payloads = _payloads(sizes=tuple(64 * (i + 1) for i in range(10)))
    minnow_payloads = _payloads(sizes=(96, 97))
    order = []
    results = {}

    def run(tenant, payloads):
        with ServeClient(served.socket_path, timeout=60) as client:
            results[tenant] = client.submit(payloads, tenant=tenant)
        order.append(tenant)

    whale = threading.Thread(target=run, args=("whale", whale_payloads))
    whale.start()
    # Make sure the whale's job is queued first.
    for _ in range(200):
        if served.daemon.scheduler.submitted >= 1:
            break
        threading.Event().wait(0.01)
    minnow = threading.Thread(target=run, args=("minnow", minnow_payloads))
    minnow.start()
    minnow.join(timeout=120)
    whale.join(timeout=120)
    assert not minnow.is_alive() and not whale.is_alive()

    assert results["minnow"]["stats"]["errors"] == 0
    assert results["whale"]["stats"]["errors"] == 0
    assert results["whale"]["stats"]["requests"] == 10
    # If the minnow had been starved behind the whale, it would have
    # finished last every time; interleaving lets it finish first.
    if order[0] == "whale":
        # Tolerate the race where the whale drained before the minnow
        # was even accepted — but the minnow must still have been served.
        assert results["minnow"]["stats"]["requests"] == 2


def test_status_reports_queue_store_and_metrics(served):
    with ServeClient(served.socket_path) as client:
        client.submit(_payloads())
        status = client.status()
    assert status["protocol"] == PROTOCOL_VERSION
    assert status["sim_version"] == SIM_VERSION
    assert status["accepting"] is True
    assert status["store"]["entries"] == 2
    assert status["executor"]["simulations"] == 2
    assert status["metrics"]["serve.jobs.completed"]["value"] == 1
    assert status["queue"]["pending_requests"] == 0
    # Telemetry-era additions (protocol still v1; old keys untouched).
    assert status["queue"]["inflight_chunks"] == 0
    assert status["queue"]["tenant_totals"]["default"] \
        == {"submitted": 1, "completed": 1}
    assert status["cache"]["misses"] == 2
    assert status["cache"]["evictions"] == 0


# -- served tables -----------------------------------------------------------


def test_tables_endpoint_serves_and_lists(served):
    tables_dir = os.path.join(served.dir, "tuned")
    table = DecisionTable()
    table.record("epyc-1p", "bcast", 65536, XhcConfig(hierarchy="numa"),
                 2e-6, baseline_s=4e-6, nranks=16)
    os.makedirs(tables_dir, exist_ok=True)
    table.save(os.path.join(tables_dir, "decision_table.json"))

    with ServeClient(served.socket_path) as client:
        found = client.tables("epyc-1p", "bcast", 65536)
        missing = client.tables("arm-n1", "bcast", 64)
        listing = client.tables()
    assert found["found"] is True
    assert found["decision"]["config"]["hierarchy"] == "numa"
    assert found["decision"]["etag"]
    assert missing["found"] is False
    assert len(listing["tables"]) == 1
    assert listing["tables"][0]["entries"] == 1


# -- graceful shutdown -------------------------------------------------------


def test_shutdown_drains_inflight_jobs():
    fixture = DaemonFixture(workers=0, batch_size=1)
    fixture.start()
    payloads = _payloads(sizes=tuple(64 + i for i in range(6)))
    done_holder = {}

    def submit():
        with ServeClient(fixture.socket_path, timeout=60) as client:
            done_holder["done"] = client.submit(payloads, tenant="a")

    try:
        submitter = threading.Thread(target=submit)
        submitter.start()
        for _ in range(400):
            if fixture.daemon.scheduler.submitted >= 1:
                break
            threading.Event().wait(0.01)
        # Shutdown while the job is (likely) still running chunks: the
        # submitter must still receive its full done event.
        with ServeClient(fixture.socket_path, timeout=60) as client:
            bye = client.shutdown()
        submitter.join(timeout=120)
        fixture.thread.join(timeout=30)
        assert not submitter.is_alive()
        assert bye["event"] == "bye"
        done = done_holder["done"]
        assert done["stats"]["requests"] == len(payloads)
        assert done["stats"]["errors"] == 0
        # The socket is gone: the daemon is actually down.
        assert not os.path.exists(fixture.socket_path)
    finally:
        fixture.stop()


def test_submit_after_drain_is_refused():
    fixture = DaemonFixture(workers=0)
    fixture.start()
    try:
        with ServeClient(fixture.socket_path) as client:
            client.shutdown()
        fixture.thread.join(timeout=10)
        with pytest.raises(ServeUnreachable):
            ServeClient(fixture.socket_path, timeout=0.5).ping()
    finally:
        fixture.stop()


def test_request_ledger_written_per_job(served):
    with ServeClient(served.socket_path) as client:
        client.submit(_payloads(), tenant="alice")
    from repro.serve import RequestLog
    records = RequestLog(served.dir).records()
    jobs = [r for r in records if r.get("kind") == "job"]
    assert len(jobs) == 1
    assert jobs[0]["tenant"] == "alice"
    assert jobs[0]["requests"] == 2
    assert len(jobs[0]["request_hashes"]) == 2
