"""The perf work's equivalence guarantees (docs/performance.md).

Every optimization in the hot-path pass claims to be invisible to
simulated time. These tests check each claim in isolation — batching,
the fast handler table, the pricing memo, smsc step emission, the
bounded topology memo — so a future regression names its culprit
instead of just failing a golden snapshot.
"""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.node import Node
from repro.options import RunOptions
from repro.sim import primitives as P
from repro.sim.syncobj import Atomic, Flag, wait_group

from conftest import small_topo


def _hex(x: float) -> str:
    return float.hex(x)


# -- CopyBatch: batched steps == the same steps yielded one at a time -------

def _batch_world():
    node = Node(small_topo())
    a_sp = node.new_address_space(0, 0)
    b_sp = node.new_address_space(1, 1)
    src = a_sp.alloc("src", 64 * 1024)
    dst = b_sp.alloc("dst", 64 * 1024)
    acc = b_sp.alloc("acc", 64 * 1024)
    flag = Flag("t.avail", owner_core=1)
    steps = (
        P.Copy(src=src.whole(), dst=dst.whole()),
        P.Compute(3e-6),
        P.Reduce(srcs=(src.whole(), dst.whole()), dst=acc.whole(),
                 op=np.add, dtype=np.float32),
        P.SetFlag(flag, 7),
        P.Copy(src=acc.view(0, 4096), dst=dst.view(0, 4096)),
    )
    return node, steps, flag


def test_copybatch_bit_identical_to_unbatched():
    node_a, steps_a, flag_a = _batch_world()

    def unbatched():
        for step in steps_a:
            yield step
    node_a.engine.spawn(unbatched(), core=1)
    t_unbatched = node_a.engine.run()
    assert flag_a.value == 7

    node_b, steps_b, flag_b = _batch_world()

    def batched():
        yield P.CopyBatch(steps_b)
    node_b.engine.spawn(batched(), core=1)
    t_batched = node_b.engine.run()
    assert flag_b.value == 7

    assert _hex(t_batched) == _hex(t_unbatched)


def test_copybatch_runs_on_full_handler_table_too():
    """Observed runs route batches through the instrumented handlers;
    the simulated end time still matches the fast path exactly."""
    node_a, steps_a, _ = _batch_world()

    def batched_a():
        yield P.CopyBatch(steps_a)
    node_a.engine.spawn(batched_a(), core=1)
    t_fast = node_a.engine.run()

    node_b = Node(small_topo(), options=RunOptions(record_copies=True))
    a_sp = node_b.new_address_space(0, 0)
    b_sp = node_b.new_address_space(1, 1)
    src = a_sp.alloc("src", 64 * 1024)
    dst = b_sp.alloc("dst", 64 * 1024)
    acc = b_sp.alloc("acc", 64 * 1024)
    flag = Flag("t.avail", owner_core=1)
    steps_b = (
        P.Copy(src=src.whole(), dst=dst.whole()),
        P.Compute(3e-6),
        P.Reduce(srcs=(src.whole(), dst.whole()), dst=acc.whole(),
                 op=np.add, dtype=np.float32),
        P.SetFlag(flag, 7),
        P.Copy(src=acc.view(0, 4096), dst=dst.view(0, 4096)),
    )

    def batched_b():
        yield P.CopyBatch(steps_b)
    node_b.engine.spawn(batched_b(), core=1)
    t_full = node_b.engine.run()

    assert _hex(t_full) == _hex(t_fast)


def test_copybatch_rejects_waits():
    node = Node(small_topo())
    flag = Flag("t.f", owner_core=0)

    def prog():
        yield P.CopyBatch((P.WaitFlag(flag, 1),))
    node.engine.spawn(prog(), core=0)
    with pytest.raises(SimulationError):
        node.engine.run()


def test_copybatch_rejects_atomic_rmw():
    node = Node(small_topo())
    atom = Atomic("t.a", home_core=0)

    def prog():
        yield P.CopyBatch((P.AtomicRMW(atom, 1),))
    node.engine.spawn(prog(), core=0)
    with pytest.raises(SimulationError):
        node.engine.run()


def test_empty_copybatch_is_a_noop():
    node = Node(small_topo())

    def prog():
        yield P.CopyBatch(())
        yield P.Compute(1e-6)
    node.engine.spawn(prog(), core=0)
    assert node.engine.run() == pytest.approx(1e-6)


# -- fast vs instrumented handler tables ------------------------------------

def _collective_latency(**kwargs):
    from repro.bench.components import make_component
    from repro.bench.osu import run_collective
    return run_collective(
        "bcast", "epyc-1p", 16, lambda: make_component("xhc-tree"),
        65536, warmup=1, iters=2, **kwargs)


def test_fast_and_full_tables_price_identically():
    plain = _collective_latency()
    recorded = _collective_latency(options=RunOptions(record_copies=True))
    assert _hex(recorded) == _hex(plain)


def test_observed_run_prices_identically():
    plain = _collective_latency()
    observed = _collective_latency(options=RunOptions(observe="spans"))
    assert _hex(observed) == _hex(plain)


# -- pricing memo -----------------------------------------------------------

def test_pricing_memo_on_off_bit_identical(monkeypatch):
    on = _collective_latency()
    monkeypatch.setattr(Node, "_pricing_memo_enabled", False)
    off = _collective_latency()
    assert _hex(off) == _hex(on)


def test_span_signature_reflects_holders_and_spans():
    node = Node(small_topo())
    sp = node.new_address_space(0, 0)
    buf = sp.alloc("sig", 8 * 1024)
    caches = node.caches
    assert caches.span_signature(buf, 0, 4096) == ()
    caches.record_read(0, buf, 4096)
    sig = caches.span_signature(buf, 0, 4096)
    # Private L2 of core 0 plus its shared cache each cover the span.
    levels = dict(zip(sig[0::2], sig[1::2]))
    assert all(n == 4096 for n in levels.values())
    # A disjoint span has no coverage: holders with zero hit are omitted.
    assert caches.span_signature(buf, 4096, 4096) == ()
    # Extending the prefix changes the signature for the larger span.
    caches.record_read(0, buf, 8192)
    sig2 = caches.span_signature(buf, 0, 8192)
    assert dict(zip(sig2[0::2], sig2[1::2])) != levels or sig2 != sig


def test_pricing_memo_entries_capped(monkeypatch):
    monkeypatch.setattr(Node, "_MEMO_CAP", 8)
    node = Node(small_topo())
    sp = node.new_address_space(0, 0)
    src = sp.alloc("s", 64 * 1024)
    dst = sp.alloc("d", 64 * 1024)
    for off in range(0, 16 * 1024, 1024):
        node.plan_copy_span(1, src, off, 1024, dst, off, 1024, 1.0)
    assert len(node._copy_memo) <= 8


# -- wait interning ---------------------------------------------------------

def test_wait_group_drops_rank_segments():
    assert wait_group("xhc.avail.3") == "xhc.avail"
    assert wait_group("xhc.ready.3.l2") == "xhc.ready.l2"
    assert wait_group("barrier") == "barrier"
    assert wait_group("7.3") == "7.3"  # all-numeric names kept as-is


def test_flag_and_atomic_wait_keys_are_interned_families():
    assert Flag("xhc.avail.5", owner_core=0).wait_key == "flag xhc.avail"
    assert Atomic("sm.ctr.2", home_core=0).wait_key == "atomic sm.ctr"


def test_wait_record_group_matches_wait_key_family():
    from repro.obs.spans import WaitRecord
    rec = WaitRecord(track=1, target="xhc.ready.3.l2", kind="flag",
                     start=0.0)
    assert rec.group == "xhc.ready.l2"


def test_runstats_wait_breakdown_merged_by_family():
    from repro.bench.components import make_component
    from repro.bench.osu import run_collective
    from repro.sim.stats import collect_stats
    from repro.topology import get_system
    node = Node(get_system("epyc-1p"))
    run_collective("bcast", "epyc-1p", 16,
                   lambda: make_component("xhc-tree"),
                   65536, warmup=0, iters=1, node=node)
    stats = collect_stats(node)
    assert stats.wait_breakdown, "expected blocked time in a 16-rank bcast"
    for key in stats.wait_breakdown:
        kind, _, family = key.partition(" ")
        assert kind in ("flag", "atomic")
        # Interned: no purely-numeric rank segment survives.
        assert not any(seg.isdigit() for seg in family.split("."))
    rendered = stats.render()
    assert "blocked time by wait family" in rendered


# -- bounded topology memo --------------------------------------------------

def test_topo_memo_eviction_keeps_results_identical(monkeypatch):
    from repro.exec import worker

    monkeypatch.setattr(worker, "_TOPO_MEMO_CAP", 2)
    monkeypatch.setattr(worker, "_TOPO_MEMO", {})

    def latency():
        from repro.bench.components import make_component
        from repro.bench.osu import run_collective
        return run_collective(
            "bcast", "epyc-1p", 8, lambda: make_component("xhc-tree"),
            4096, warmup=1, iters=2,
            node=Node(worker.get_topology("epyc-1p")))

    before = latency()
    first = worker.get_topology("epyc-1p")
    # Churn past the cap so epyc-1p is evicted...
    worker.get_topology("epyc-2p")
    worker.get_topology("arm-n1")
    assert "epyc-1p" not in worker._TOPO_MEMO
    assert len(worker._TOPO_MEMO) <= 2
    # ...then a rebuilt topology yields a bit-identical measurement.
    rebuilt = worker.get_topology("epyc-1p")
    assert rebuilt is not first
    assert _hex(latency()) == _hex(before)


def test_topo_memo_hit_refreshes_recency(monkeypatch):
    from repro.exec import worker

    monkeypatch.setattr(worker, "_TOPO_MEMO_CAP", 2)
    monkeypatch.setattr(worker, "_TOPO_MEMO", {})
    a = worker.get_topology("epyc-1p")
    worker.get_topology("epyc-2p")
    assert worker.get_topology("epyc-1p") is a  # touch: now most recent
    worker.get_topology("arm-n1")               # evicts epyc-2p, not 1p
    assert "epyc-1p" in worker._TOPO_MEMO
    assert "epyc-2p" not in worker._TOPO_MEMO


# -- smsc step emission -----------------------------------------------------

def test_reduce_from_steps_matches_generator_path():
    """The batched Reduce emission prices and accounts exactly like the
    generator path it replaces."""
    from repro.shmem.smsc import SmscConfig, SmscEndpoint

    def build():
        node = Node(small_topo())
        owner = node.new_address_space(0, 0)
        peer = node.new_address_space(1, 2)
        src = owner.alloc("src", 64 * 1024)
        dst = peer.alloc("dst", 64 * 1024)
        ep = SmscEndpoint(node, 1, SmscConfig(mechanism="xpmem"))
        node.engine.spawn(node.xpmem.expose(src), core=0)
        node.engine.run()
        return node, ep, src, dst

    def drive(node, gen, core=2):
        node.engine.spawn(gen, core=core)
        t0 = node.engine.now
        node.engine.run()
        return node.engine.now - t0

    node_a, ep_a, src_a, dst_a = build()
    node_b, ep_b, src_b, dst_b = build()

    # Cold operands must decline (the attach generator has to run)...
    assert ep_b.reduce_from_steps([src_b.whole()], dst_b.whole(),
                                  op=np.add, dtype=np.float32) is None
    # ...so warm both worlds identically through the generator path.
    drive(node_a, ep_a.reduce_from([src_a.whole()], dst_a.whole(),
                                   op=np.add, dtype=np.float32))
    drive(node_b, ep_b.reduce_from([src_b.whole()], dst_b.whole(),
                                   op=np.add, dtype=np.float32))

    t_gen = drive(node_a, ep_a.reduce_from([src_a.whole()],
                                           dst_a.whole(), op=np.add,
                                           dtype=np.float32))

    steps = ep_b.reduce_from_steps([src_b.whole()], dst_b.whole(),
                                   op=np.add, dtype=np.float32)
    assert steps is not None

    def prog():
        yield P.CopyBatch(steps)
    t_steps = drive(node_b, prog())

    assert _hex(t_steps) == _hex(t_gen)
    # Accounting parity: both paths charged the same regcache traffic.
    assert (ep_b.regcache.hits, ep_b.regcache.misses) == \
        (ep_a.regcache.hits, ep_a.regcache.misses)


def test_reduce_from_steps_declines_unmapped_operands():
    from repro.shmem.smsc import SmscConfig, SmscEndpoint
    node = Node(small_topo())
    owner = node.new_address_space(0, 0)
    peer = node.new_address_space(1, 2)
    src = owner.alloc("src", 64 * 1024)   # never exposed/attached
    dst = peer.alloc("dst", 64 * 1024)
    ep = SmscEndpoint(node, 1, SmscConfig(mechanism="xpmem"))
    hits, misses = ep.regcache.hits, ep.regcache.misses
    assert ep.reduce_from_steps([src.whole()], dst.whole(),
                                op=np.add, dtype=np.float32) is None
    # Declining has no side effects on the cache accounting.
    assert (ep.regcache.hits, ep.regcache.misses) == (hits, misses)


# -- perf harness + CLI -----------------------------------------------------

def test_engine_micro_reports_sane_numbers():
    from repro.perf.harness import run_engine_micro
    rec = run_engine_micro(rounds=50, nprocs=4, repeats=1)
    assert rec["events"] > 0
    assert rec["events_per_sec"] > 0
    assert rec["cpu_s"] > 0


def test_pricing_micro_memo_speeds_up_same_key_calls():
    from repro.perf.harness import run_pricing_micro
    rec = run_pricing_micro(calls=2000, repeats=1)
    assert rec["memo_calls_per_sec"] > 0
    assert rec["cold_calls_per_sec"] > 0
    # Not asserting a magnitude (CI noise); the ratio must be consistent.
    assert rec["memo_speedup"] == pytest.approx(
        rec["memo_calls_per_sec"] / rec["cold_calls_per_sec"])


def test_emit_record_schema(tmp_path):
    from repro.exec.cache import SIM_VERSION
    from repro.perf.harness import (emit_record, run_engine_micro,
                                    run_pricing_micro)
    engine = run_engine_micro(rounds=50, nprocs=4, repeats=1)
    pricing = run_pricing_micro(calls=500, repeats=1)
    macro = {"points": [], "wall_s": 1.0, "cpu_s": 1.0,
             "system": "epyc-1p", "nranks": 32, "iters": 1}
    rec = emit_record(engine, pricing, macro,
                      baseline_wall_s=2.0, baseline_cpu_s=3.0, note="t")
    assert rec["bench_schema"] == 1
    assert rec["kind"] == "perf"
    assert rec["sim_version"] == SIM_VERSION
    assert rec["engine_micro"] is engine
    assert rec["pricing_micro"] is pricing
    assert rec["baseline"]["speedup_wall"] == pytest.approx(2.0)
    assert rec["baseline"]["speedup_cpu"] == pytest.approx(3.0)
    assert rec["note"] == "t"


def test_cli_perf_quick_emits_bench(tmp_path, capsys):
    import json
    from repro.cli import main
    out = tmp_path / "BENCH_perf.json"
    report = tmp_path / "report.json"
    code = main(["perf", "--quick", "--repeats", "1",
                 "--emit-bench", str(out), "--json", str(report)])
    stdout = capsys.readouterr().out
    assert code == 0
    assert "events/s" in stdout
    doc = json.loads(out.read_text())
    assert doc["kind"] == "perf"
    assert doc["macro"]["points"]
    rep = json.loads(report.read_text())
    assert rep["engine_micro"]["events_per_sec"] > 0
