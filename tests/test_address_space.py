"""Address spaces, buffers, views."""

import numpy as np
import pytest

from repro.errors import MemoryModelError
from repro.node import Node

from conftest import small_topo


def space(core=0, rank=0, data=True):
    return Node(small_topo(), data_movement=data).new_address_space(rank, core)


def test_alloc_first_touch_numa():
    sp = space(core=6)  # core 6 -> numa 1
    buf = sp.alloc("x", 128)
    assert buf.home_numa == 1
    assert buf.owner_core == 6


def test_alloc_with_data_plane():
    sp = space()
    buf = sp.alloc("x", 64)
    assert isinstance(buf.data, np.ndarray)
    buf.fill(7)
    assert np.all(buf.data == 7)


def test_alloc_without_data_plane():
    sp = space(data=False)
    buf = sp.alloc("x", 64)
    assert buf.data is None
    buf.fill(7)  # no-op, no crash
    assert buf.view().array() is None


def test_zero_size_rejected():
    sp = space()
    with pytest.raises(MemoryModelError):
        sp.alloc("x", 0)


def test_view_bounds():
    sp = space()
    buf = sp.alloc("x", 100)
    v = buf.view(10, 50)
    assert v.offset == 10 and v.length == 50
    with pytest.raises(MemoryModelError):
        buf.view(60, 50)
    with pytest.raises(MemoryModelError):
        v.sub(45, 10)


def test_view_sub_and_dtype():
    sp = space()
    buf = sp.alloc("x", 64)
    buf.view().as_dtype(np.float32)[:] = 2.5
    sub = buf.view(16, 16)
    assert np.all(sub.as_dtype(np.float32) == 2.5)
    assert sub.sub(4, 8).length == 8
    assert sub.sub(4, 8).offset == 20


def test_free_and_double_free():
    sp = space()
    buf = sp.alloc("x", 64)
    sp.free(buf)
    with pytest.raises(MemoryModelError):
        sp.free(buf)


def test_buffer_ids_unique():
    sp = space()
    a, b = sp.alloc("a", 8), sp.alloc("b", 8)
    assert a.id != b.id


def test_explicit_home_numa():
    sp = space(core=0)
    buf = sp.alloc("x", 8, home_numa=3)
    assert buf.home_numa == 3
