"""The shared executor: batching, caching, pooling, budget, dedupe."""

import pytest

from repro.exec import Executor, RunRequest, run_inline
from repro.exec.executor import Executor as _Executor
from repro.options import RunOptions

SIZES = (64, 1024, 16384)


def _requests(sizes=SIZES, **kw):
    base = dict(system="epyc-1p", collective="bcast", nranks=8,
                component="xhc-tree", warmup=1, iters=2)
    base.update(kw)
    return [RunRequest(size=size, **base) for size in sizes]


def test_inline_matches_direct_run_collective():
    from repro.bench.osu import run_collective
    req = _requests(sizes=(4096,))[0]
    direct = run_collective(
        "bcast", "epyc-1p", 8, lambda: _make_xhc_tree(), 4096,
        warmup=1, iters=2, options=RunOptions(data_movement=False))
    with Executor(workers=0) as ex:
        via_exec = ex.run(req)
    assert via_exec.latency_s == direct


def _make_xhc_tree():
    from repro.bench.components import make_component
    return make_component("xhc-tree")


def test_parallel_results_identical_to_serial():
    reqs = _requests()
    with Executor(workers=0) as serial:
        expect = [r.latency_s for r in serial.run_many(reqs)]
    with Executor(workers=2) as parallel:
        got = [r.latency_s for r in parallel.run_many(reqs)]
    # Bit-identical, not approximately equal: the simulator is
    # deterministic and worker-side topology memoization must not be able
    # to perturb a result.
    assert got == expect


def test_warm_cache_performs_zero_simulations(tmp_path):
    path = tmp_path / "cache.json"
    reqs = _requests()
    with Executor(workers=0, cache=path) as cold:
        first = cold.run_many(reqs)
        assert cold.simulations == len(reqs)
    with Executor(workers=0, cache=path) as warm:
        second = warm.run_many(reqs)
        assert warm.simulations == 0
        assert warm.cache.hits == len(reqs)
    assert [r.latency_s for r in second] == [r.latency_s for r in first]
    assert all(r.cached for r in second)


def test_in_call_dedupe_simulates_once():
    req = _requests(sizes=(1024,))[0]
    with Executor(workers=0) as ex:
        results = ex.run_many([req, req, req])
    assert ex.simulations == 1
    assert [r.latency_s for r in results] == [results[0].latency_s] * 3
    assert [r.cached for r in results] == [False, True, True]


def test_budget_drops_excess_requests():
    reqs = _requests()
    with Executor(workers=0, budget=2) as ex:
        results = ex.run_many(reqs)
    assert ex.simulations == 2
    assert ex.budget_left == 0
    done = [r for r in results if r is not None]
    assert len(done) == 2
    # Request order is preserved: the dropped slot is the tail.
    assert results[-1] is None


def test_make_batches_groups_and_balances():
    reqs = _requests(sizes=(64, 1024, 16384, 262144)) \
        + _requests(sizes=(64, 1024), component="sm")
    todo = list(enumerate(reqs))
    batches = _Executor._make_batches(todo, nworkers=1)
    # 1 worker * 4 batches-per-worker cap, none empty, nothing lost.
    assert 1 <= len(batches) <= 4
    flat = sorted(i for batch in batches for i, _ in batch)
    assert flat == list(range(len(reqs)))
    # Single batch when only one slot is available.
    single = _Executor._make_batches(todo[:3], nworkers=0)
    assert len(single) == 1 and len(single[0]) == 3


def test_pingpong_requests_run():
    req = RunRequest("epyc-1p", "pingpong", 4096, 2, component="tuned",
                     mapping=(0, 4), warmup=1, iters=2)
    with Executor(workers=0) as ex:
        result = ex.run(req)
    assert result.latency_s > 0


def test_pingpong_requires_core_pair():
    with pytest.raises(ValueError):
        RunRequest("epyc-1p", "pingpong", 4096, 2, component="tuned")


def test_unknown_collective_rejected():
    with pytest.raises(ValueError):
        RunRequest("epyc-1p", "scan", 4096, 8)


def test_config_only_valid_for_xhc():
    with pytest.raises(ValueError):
        run_inline(RunRequest("epyc-1p", "bcast", 1024, 8, component="sm",
                              config={"hierarchy": "flat"}))


def test_explicit_config_request():
    req = RunRequest("epyc-1p", "bcast", 1024, 8, component="xhc",
                     config={"hierarchy": "flat",
                             "flag_layout": "multi-separate"})
    with Executor(workers=0) as ex:
        result = ex.run(req)
    assert result.latency_s > 0


def test_instrumented_request_bypasses_cache_and_carries_findings():
    options = RunOptions(data_movement=False, observe="spans", check="full")
    req = RunRequest("epyc-1p", "bcast", 1024, 8, warmup=0, iters=1,
                     options=options)
    assert not req.cacheable
    with Executor(workers=0, cache=None) as ex:
        r1 = ex.run(req)
        r2 = ex.run(req)
    assert ex.simulations == 2          # never answered from cache
    assert not r1.cached and not r2.cached
    assert r1.findings == r2.findings   # (clean protocol: both empty)


def test_run_inline_attaches_live_node():
    req = RunRequest("epyc-1p", "bcast", 1024, 8, warmup=0, iters=1,
                     options=RunOptions(data_movement=False,
                                        observe="spans"))
    result = run_inline(req)
    assert result.node is not None
    assert result.node.obs.spans
    # strip() is what pool transport uses; it must drop the node only.
    stripped = result.strip()
    assert stripped.node is None
    assert stripped.latency_s == result.latency_s


def test_warm_pool_reuse_keeps_results_stable():
    reqs = _requests(sizes=(64, 1024))
    with Executor(workers=2) as ex:
        first = [r.latency_s for r in ex.run_many(reqs)]
        pool = ex._pool
        # Second sweep on different sizes reuses the same pool...
        ex.run_many(_requests(sizes=(4096,)))
        assert ex._pool is pool
        # ...and re-running the originals (cached) returns identical values.
        again = [r.latency_s for r in ex.run_many(reqs)]
    assert again == first


def test_evaluator_rides_the_executor(tmp_path):
    from repro.tune import Evaluator, ResultCache
    from repro.xhc.config import XhcConfig
    cache = ResultCache(tmp_path / "cache.json")
    ev = Evaluator(cache=cache, workers=0)
    configs = [XhcConfig(), XhcConfig(hierarchy="flat")]
    scores = ev.evaluate("epyc-1p", "bcast", 1024, 8, configs,
                         iters=dict(warmup=1, iters=2))
    assert set(scores) == set(configs)
    assert ev.simulations == 2
    # Same evaluation again: all cache hits, zero new simulations.
    again = ev.evaluate("epyc-1p", "bcast", 1024, 8, configs,
                        iters=dict(warmup=1, iters=2))
    assert again == scores
    assert ev.simulations == 2
    ev.close()
