"""Bandwidth resources and contention accounting."""

import pytest

from repro.errors import SimulationError
from repro.memory.model import model_for
from repro.node import Node
from repro.sim import primitives as P
from repro.sim.resources import Resource, ResourcePool
from repro.topology import get_system

from conftest import small_topo


def test_acquire_release_and_peak():
    res = Resource("r", 1e9)
    res.acquire(); res.acquire()
    assert res.active == 2 and res.peak_active == 2
    res.release()
    assert res.active == 1
    assert res.effective_bw() == pytest.approx(1e9)
    res.release()
    with pytest.raises(SimulationError):
        res.release()


def test_zero_bandwidth_rejected():
    with pytest.raises(SimulationError):
        Resource("bad", 0)


def test_pool_structure_epyc():
    topo = get_system("epyc-2p")
    pool = ResourcePool(topo, model_for(topo))
    assert len(pool.dram) == 8
    assert len(pool.llc_port) == 16
    assert len(pool.fabric) == 2
    assert not pool.slc
    assert pool.xlink.bw > 0


def test_pool_structure_arm():
    topo = get_system("arm-n1")
    pool = ResourcePool(topo, model_for(topo))
    assert not pool.llc_port
    assert len(pool.slc) == 2
    assert len(pool.dram) == 8


def test_contention_slows_concurrent_readers():
    """Many readers of one source take longer per-reader than one reader."""
    def read_time(n_readers):
        node = Node(small_topo(), data_movement=False)
        src_space = node.new_address_space(0, 0)
        src = src_space.alloc("src", 1 << 20)
        times = {}
        def prog(r):
            sp = node.new_address_space(r, r)
            dst = sp.alloc("dst", 1 << 20)
            t0 = node.engine.now
            yield P.Copy(src=src.whole(), dst=dst.whole())
            times[r] = node.engine.now - t0
        for r in range(1, n_readers + 1):
            node.engine.spawn(prog(r), core=r)
        node.engine.run()
        return max(times.values())
    assert read_time(8) > read_time(1) * 1.5


def test_bytes_served_accounting():
    node = Node(small_topo(), data_movement=False)
    sp0 = node.new_address_space(0, 0)
    sp1 = node.new_address_space(1, 4)  # a different NUMA node
    src = sp0.alloc("src", 1 << 16)
    dst = sp1.alloc("dst", 1 << 16)
    def prog():
        yield P.Copy(src=src.whole(), dst=dst.whole())
    node.engine.spawn(prog(), core=4)
    node.engine.run()
    assert node.resources.dram[0].bytes_served == 1 << 16


def test_reset_stats():
    topo = small_topo()
    pool = ResourcePool(topo, model_for(topo))
    pool.dram[0].acquire()
    pool.dram[0].bytes_served = 10
    pool.reset_stats()
    assert pool.dram[0].peak_active == 0
    assert pool.dram[0].bytes_served == 0
