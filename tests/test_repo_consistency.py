"""Repository self-consistency: the experiment index, CLI registry and
benchmark targets must stay in sync."""

import pathlib
import re

from repro.cli import FIGURES

ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_every_paper_figure_has_a_benchmark_file():
    bench = {p.name for p in (ROOT / "benchmarks").glob("test_*.py")}
    required = {
        "test_table1_systems.py", "test_fig1a_domains.py",
        "test_fig1b_congestion.py", "test_fig3_smsc_mechanisms.py",
        "test_fig4_atomics.py", "test_fig7_osu_variants.py",
        "test_fig8_bcast.py", "test_fig9_layout_root.py",
        "test_table2_message_counts.py", "test_fig10_cacheline.py",
        "test_fig11_allreduce.py", "test_fig12_pisvm.py",
        "test_fig13_miniamr.py", "test_fig14_cntk.py",
    }
    assert required <= bench, required - bench


def test_design_md_indexes_every_benchmark():
    design = (ROOT / "DESIGN.md").read_text()
    for path in (ROOT / "benchmarks").glob("test_*.py"):
        if path.name == "conftest.py":
            continue
        assert path.name in design or path.stem in design, \
            f"{path.name} missing from DESIGN.md's experiment index"


def test_cli_registry_covers_core_artifacts():
    for key in ["table1", "table2", "fig1a", "fig1b", "fig3", "fig4",
                "fig7", "fig9", "fig10", "fig12", "fig14"]:
        assert key in FIGURES


def test_examples_exist_and_have_docstrings():
    examples = list((ROOT / "examples").glob("*.py"))
    assert len(examples) >= 3
    assert (ROOT / "examples" / "quickstart.py").exists()
    for path in examples:
        head = path.read_text().split('"""')
        assert len(head) >= 2 and len(head[1].strip()) > 40, \
            f"{path.name} needs a real module docstring"


def test_experiments_md_covers_every_figure():
    text = (ROOT / "EXPERIMENTS.md").read_text()
    for token in ("Table I", "Table II", "Fig. 1a", "Fig. 1b", "Fig. 3",
                  "Fig. 4", "Fig. 7", "Fig. 8", "Fig. 9", "Fig. 10",
                  "Fig. 11", "Fig. 12", "Fig. 13", "Fig. 14",
                  "deviation"):
        assert re.search(token, text, re.IGNORECASE), token


def test_public_modules_have_docstrings():
    import importlib
    for name in ("repro", "repro.node", "repro.topology", "repro.memory",
                 "repro.sim", "repro.shmem", "repro.sync", "repro.mpi",
                 "repro.mpi.colls", "repro.xhc", "repro.bench",
                 "repro.apps", "repro.cluster", "repro.analysis",
                 "repro.validate", "repro.cli"):
        mod = importlib.import_module(name)
        assert mod.__doc__ and len(mod.__doc__.strip()) > 30, name
