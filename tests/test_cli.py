"""Command-line interface."""

import json

import pytest

from repro.cli import FIGURES, build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


def test_topo_default(capsys):
    code, out = run_cli(capsys, "topo", "epyc-1p")
    assert code == 0
    assert "cores=32" in out
    assert "XHC hierarchy" in out
    assert "Groups" in out


def test_topo_custom_hierarchy_and_root(capsys):
    code, out = run_cli(capsys, "topo", "epyc-2p",
                        "--hierarchy", "flat", "--root", "5")
    assert code == 0
    assert "1 group(s)" in out


def test_topo_from_spec(tmp_path, capsys):
    spec = {"name": "file-node",
            "symmetric": {"sockets": 1, "numa_per_socket": 2,
                          "cores_per_numa": 2}}
    path = tmp_path / "n.json"
    path.write_text(json.dumps(spec))
    code, out = run_cli(capsys, "topo", "--spec", str(path))
    assert code == 0 and "file-node" in out


def test_bench_bcast(capsys):
    code, out = run_cli(capsys, "bench", "bcast", "--system", "epyc-1p",
                        "--nranks", "8", "--components", "tuned,xhc-tree",
                        "--sizes", "64,4096", "--iters", "2")
    assert code == 0
    assert "tuned" in out and "xhc-tree" in out
    assert "4K" in out


def test_figure_table1(capsys):
    code, out = run_cli(capsys, "figure", "table1")
    assert code == 0
    assert "Epyc-2P" in out


def test_figure_unknown(capsys):
    code = main(["figure", "fig99"])
    assert code == 2


def test_figure_registry_complete():
    # Every paper artifact has a CLI entry.
    for key in ("table1", "table2", "fig1a", "fig1b", "fig3", "fig4",
                "fig7", "fig9", "fig10", "fig12", "fig14"):
        assert key in FIGURES
    assert {"fig8-epyc-1p", "fig8-epyc-2p", "fig8-arm-n1"} <= set(FIGURES)
    assert {"fig11-epyc-1p", "fig11-epyc-2p",
            "fig11-arm-n1"} <= set(FIGURES)


@pytest.mark.slow
def test_app_command(capsys):
    code, out = run_cli(capsys, "app", "miniamr", "--system", "epyc-1p",
                        "--nranks", "8", "--components", "xhc-tree")
    assert code == 0
    assert "xhc-tree" in out and "total_ms" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_bench_json_export(tmp_path, capsys):
    out_path = tmp_path / "bench.json"
    code, out = run_cli(capsys, "bench", "bcast", "--system", "epyc-1p",
                        "--nranks", "8", "--components", "xhc-tree",
                        "--sizes", "64", "--iters", "1",
                        "--json", str(out_path))
    assert code == 0
    doc = json.loads(out_path.read_text())
    assert doc["columns"] == ["xhc-tree"]
    assert doc["rows"][0]["size"] == 64


def test_figure_json_export(tmp_path, capsys):
    out_path = tmp_path / "fig.json"
    code, out = run_cli(capsys, "figure", "table1", "--json", str(out_path))
    assert code == 0
    doc = json.loads(out_path.read_text())
    assert doc["figure"] == "table1"
    assert doc["records"]


def test_tune_command(tmp_path, capsys):
    table_path = tmp_path / "table.json"
    cache_path = tmp_path / "cache.json"
    report_path = tmp_path / "report.json"
    argv = ["tune", "--quick", "--systems", "epyc-1p",
            "--collectives", "bcast", "--sizes", "1024", "--nranks", "8",
            "--workers", "0", "--out", str(table_path),
            "--cache", str(cache_path), "--json", str(report_path)]
    code, out = run_cli(capsys, *argv)
    assert code == 0
    assert "default_us" in out and "tuned_us" in out
    assert "hit rate 0%" in out
    doc = json.loads(table_path.read_text())
    assert doc["entries"]
    report = json.loads(report_path.read_text())
    assert report["simulations"] > 0

    # Warm re-run: the committed cache answers everything.
    code, out = run_cli(capsys, *argv)
    assert code == 0
    assert "simulations: 0 new" in out
    assert "hit rate 100%" in out


def test_tune_resume_skips(tmp_path, capsys):
    table_path = tmp_path / "table.json"
    argv = ["tune", "--quick", "--systems", "epyc-1p",
            "--collectives", "bcast", "--sizes", "1024", "--nranks", "8",
            "--workers", "0", "--out", str(table_path),
            "--cache", str(tmp_path / "cache.json")]
    assert run_cli(capsys, *argv)[0] == 0
    code, out = run_cli(capsys, *argv, "--resume")
    assert code == 0
    assert "resume" in out
    assert "simulations: 0 new" in out


def test_trace_command(tmp_path, capsys):
    out_path = tmp_path / "trace.json"
    # "epyc1p" exercises the forgiving system-name lookup.
    code, out = run_cli(capsys, "trace", "--system", "epyc1p",
                        "--coll", "bcast", "--size", "65536",
                        "--out", str(out_path))
    assert code == 0
    assert "critical path" in out
    assert "xpmem.attach" in out or "copy" in out
    doc = json.loads(out_path.read_text())
    from repro.obs import validate_chrome_trace
    assert validate_chrome_trace(doc) == []


def test_trace_command_json_report(tmp_path, capsys):
    out_path = tmp_path / "trace.json"
    report_path = tmp_path / "critpath.json"
    code, _ = run_cli(capsys, "trace", "--system", "epyc-1p",
                      "--coll", "barrier", "--nranks", "16",
                      "--out", str(out_path), "--json", str(report_path))
    assert code == 0
    report = json.loads(report_path.read_text())
    total = report["total_s"]
    assert total > 0
    phase_sum = sum(p["seconds"] for p in report["phases"])
    assert abs(phase_sum - total) <= 0.01 * total


def test_bench_cache_warm_rerun(tmp_path, capsys):
    cache_path = tmp_path / "sim_cache.json"
    argv = ["bench", "bcast", "--system", "epyc-1p", "--nranks", "8",
            "--components", "xhc-tree", "--sizes", "64,4096",
            "--iters", "1", "--cache", str(cache_path)]
    code, out = run_cli(capsys, *argv)
    assert code == 0
    assert "simulations: 2 new" in out
    # Warm re-run: every point answered from the persisted cache.
    code, out = run_cli(capsys, *argv)
    assert code == 0
    assert "simulations: 0 new" in out
    assert "hit rate 100%" in out


def test_bench_parallel_matches_serial(tmp_path, capsys):
    argv = ["bench", "bcast", "--system", "epyc-1p", "--nranks", "8",
            "--components", "xhc-tree,tuned", "--sizes", "64,4096",
            "--iters", "1", "--json"]
    code, _ = run_cli(capsys, *argv, str(tmp_path / "serial.json"))
    assert code == 0
    code, _ = run_cli(capsys, *argv, str(tmp_path / "parallel.json"),
                      "--parallel", "2")
    assert code == 0
    serial = json.loads((tmp_path / "serial.json").read_text())
    parallel = json.loads((tmp_path / "parallel.json").read_text())
    assert serial == parallel


def test_bench_emit_bench_defaults_to_next_free(tmp_path, capsys,
                                                monkeypatch):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "BENCH_2.json").write_text("{}")
    code, out = run_cli(capsys, "bench", "bcast", "--system", "epyc-1p",
                        "--nranks", "8", "--components", "xhc-tree",
                        "--sizes", "64", "--iters", "1", "--emit-bench")
    assert code == 0
    assert (tmp_path / "BENCH_3.json").exists()
    assert (tmp_path / "BENCH_2.json").read_text() == "{}"  # untouched
    doc = json.loads((tmp_path / "BENCH_3.json").read_text())
    assert doc["tag"] == "BENCH_3"
    assert "exec" in doc


def test_bench_emit_bench(tmp_path, capsys):
    path = tmp_path / "BENCH_X.json"
    code, _ = run_cli(capsys, "bench", "bcast", "--system", "epyc-1p",
                      "--nranks", "8", "--components", "tuned,xhc-tree",
                      "--sizes", "64,4096", "--iters", "1",
                      "--emit-bench", str(path))
    assert code == 0
    doc = json.loads(path.read_text())
    assert doc["bench_schema"] == 1
    assert doc["tag"] == "BENCH_X"
    assert doc["collective"] == "bcast"
    assert doc["nranks"] == 8
    labels = {s["label"] for s in doc["series"]}
    assert labels == {"tuned", "xhc-tree"}
    for series in doc["series"]:
        assert [p["size"] for p in series["points"]] == [64, 4096]
        assert all(p["latency_us"] > 0 for p in series["points"])
