"""Command-line interface."""

import json

import pytest

from repro.cli import FIGURES, build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


def test_topo_default(capsys):
    code, out = run_cli(capsys, "topo", "epyc-1p")
    assert code == 0
    assert "cores=32" in out
    assert "XHC hierarchy" in out
    assert "Groups" in out


def test_topo_custom_hierarchy_and_root(capsys):
    code, out = run_cli(capsys, "topo", "epyc-2p",
                        "--hierarchy", "flat", "--root", "5")
    assert code == 0
    assert "1 group(s)" in out


def test_topo_from_spec(tmp_path, capsys):
    spec = {"name": "file-node",
            "symmetric": {"sockets": 1, "numa_per_socket": 2,
                          "cores_per_numa": 2}}
    path = tmp_path / "n.json"
    path.write_text(json.dumps(spec))
    code, out = run_cli(capsys, "topo", "--spec", str(path))
    assert code == 0 and "file-node" in out


def test_bench_bcast(capsys):
    code, out = run_cli(capsys, "bench", "bcast", "--system", "epyc-1p",
                        "--nranks", "8", "--components", "tuned,xhc-tree",
                        "--sizes", "64,4096", "--iters", "2")
    assert code == 0
    assert "tuned" in out and "xhc-tree" in out
    assert "4K" in out


def test_figure_table1(capsys):
    code, out = run_cli(capsys, "figure", "table1")
    assert code == 0
    assert "Epyc-2P" in out


def test_figure_unknown(capsys):
    code = main(["figure", "fig99"])
    assert code == 2


def test_figure_registry_complete():
    # Every paper artifact has a CLI entry.
    for key in ("table1", "table2", "fig1a", "fig1b", "fig3", "fig4",
                "fig7", "fig9", "fig10", "fig12", "fig14"):
        assert key in FIGURES
    assert {"fig8-epyc-1p", "fig8-epyc-2p", "fig8-arm-n1"} <= set(FIGURES)
    assert {"fig11-epyc-1p", "fig11-epyc-2p",
            "fig11-arm-n1"} <= set(FIGURES)


@pytest.mark.slow
def test_app_command(capsys):
    code, out = run_cli(capsys, "app", "miniamr", "--system", "epyc-1p",
                        "--nranks", "8", "--components", "xhc-tree")
    assert code == 0
    assert "xhc-tree" in out and "total_ms" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
