"""Point-to-point layer: eager, rendezvous, sendrecv, isend, CICO fallback."""

import numpy as np
import pytest

from repro.errors import MPIError
from repro.mpi import World
from repro.mpi.colls import Tuned
from repro.mpi import p2p
from repro.node import Node
from repro.shmem.smsc import SmscConfig

from conftest import small_topo


def make_comm(nranks=4, smsc=None):
    node = Node(small_topo())
    world = World(node, nranks, smsc=smsc)
    comm = world.communicator(Tuned())
    return node, world, comm


def exchange(comm, size, tag=0):
    """Rank 0 sends `size` bytes to rank 1; returns received payload."""
    result = {}

    def program(comm_, ctx):
        me = comm_.rank_of(ctx)
        buf = ctx.alloc("buf", size)
        if me == 0:
            buf.fill(7)
            yield from comm_.send(ctx, buf.whole(), 1, tag)
        elif me == 1:
            yield from comm_.recv(ctx, buf.whole(), 0, tag)
            result["data"] = buf.data.copy()
    comm.run(program)
    return result["data"]


def test_eager_path():
    node, world, comm = make_comm(2)
    data = exchange(comm, 1024)
    assert (data == 7).all()
    # Eager messages go through the shared slot, no xpmem attach.
    assert node.xpmem.attaches == 0


def test_rendezvous_path():
    node, world, comm = make_comm(2)
    data = exchange(comm, 128 * 1024)
    assert (data == 7).all()
    assert node.xpmem.attaches == 1  # receiver mapped the sender's buffer


def test_rendezvous_cico_fallback():
    node, world, comm = make_comm(2, smsc=SmscConfig(mechanism=None))
    data = exchange(comm, 200 * 1024)
    assert (data == 7).all()
    assert node.xpmem.attaches == 0  # pipelined through the shared slot


def test_many_messages_in_order():
    node, world, comm = make_comm(2)
    log = []

    def program(comm_, ctx):
        me = comm_.rank_of(ctx)
        buf = ctx.alloc("buf", 64)
        for i in range(5):
            if me == 0:
                buf.fill(i)
                yield from comm_.send(ctx, buf.whole(), 1)
            else:
                yield from comm_.recv(ctx, buf.whole(), 0)
                log.append(int(buf.data[0]))
    comm.run(program)
    assert log == [0, 1, 2, 3, 4]


def test_mixed_sizes_on_one_channel():
    """Eager and rendezvous interleave with separate sequence spaces."""
    node, world, comm = make_comm(2)
    sizes = [64, 100_000, 32, 70_000, 128]
    received = []

    def program(comm_, ctx):
        me = comm_.rank_of(ctx)
        for i, size in enumerate(sizes):
            buf = ctx.alloc(f"b{i}", size)
            if me == 0:
                buf.fill(i + 1)
                yield from comm_.send(ctx, buf.whole(), 1)
            else:
                yield from comm_.recv(ctx, buf.whole(), 0)
                received.append(int(buf.data[0]))
    comm.run(program)
    assert received == [1, 2, 3, 4, 5]


def test_sendrecv_exchange_no_deadlock():
    node, world, comm = make_comm(2)
    out = {}

    def program(comm_, ctx):
        me = comm_.rank_of(ctx)
        sbuf = ctx.alloc("s", 64 * 1024)
        rbuf = ctx.alloc("r", 64 * 1024)
        sbuf.fill(me + 1)
        peer = 1 - me
        yield from p2p.sendrecv(ctx, comm_, sbuf.whole(), peer,
                                rbuf.whole(), peer)
        out[me] = int(rbuf.data[0])
    comm.run(program)
    assert out == {0: 2, 1: 1}


def test_isend_overlaps_and_completes():
    node, world, comm = make_comm(3)
    got = []

    def program(comm_, ctx):
        me = comm_.rank_of(ctx)
        if me == 0:
            bufs = [ctx.alloc(f"b{i}", 32 * 1024) for i in range(2)]
            reqs = []
            for i, dst in enumerate((1, 2)):
                bufs[i].fill(dst)
                reqs.append(p2p.isend(ctx, comm_, bufs[i].whole(), dst))
            for req in reqs:
                yield from req.wait()
        else:
            buf = ctx.alloc("b", 32 * 1024)
            yield from comm_.recv(ctx, buf.whole(), 0)
            got.append(int(buf.data[0]))
    comm.run(program)
    assert sorted(got) == [1, 2]


def test_truncation_detected():
    node, world, comm = make_comm(2)

    def program(comm_, ctx):
        me = comm_.rank_of(ctx)
        if me == 0:
            buf = ctx.alloc("b", 1024)
            yield from comm_.send(ctx, buf.whole(), 1)
        else:
            small = ctx.alloc("b", 512)
            yield from comm_.recv(ctx, small.whole(), 0)
    with pytest.raises(MPIError, match="truncation"):
        comm.run(program)


def test_self_send_rejected():
    node, world, comm = make_comm(2)

    def program(comm_, ctx):
        if comm_.rank_of(ctx) == 0:
            buf = ctx.alloc("b", 8)
            yield from comm_.send(ctx, buf.whole(), 0)
    with pytest.raises(MPIError, match="self-send"):
        comm.run(program)


def test_message_trace_emitted():
    node, world, comm = make_comm(2)
    exchange(comm, 256)
    msgs = [m for _, label, m in node.engine.trace if label == "message"]
    assert len(msgs) == 1
    assert msgs[0]["src_rank"] == 0 and msgs[0]["dst_rank"] == 1
    assert msgs[0]["proto"] == "eager"
