"""XHC Allreduce: reduction partitioning, pipelining, hierarchy variants."""

import numpy as np
import pytest

from repro.mpi import DOUBLE, FLOAT, MAX, PROD, SUM, World
from repro.node import Node
from repro.xhc import Xhc

from conftest import (assert_allreduce_correct, run_allreduce, small_topo)


@pytest.mark.parametrize("hierarchy", ["flat", "numa", "numa+socket"])
@pytest.mark.parametrize("size", [16, 1024, 5000, 80_000])
def test_correct_across_hierarchies(hierarchy, size):
    out, _ = run_allreduce(lambda: Xhc(hierarchy=hierarchy), nranks=16,
                           size=size, iters=2)
    assert_allreduce_correct(out, 16)


def test_small_message_single_reducer():
    """The minimum-index limit: one member reduces a tiny payload."""
    from repro.xhc.hierarchy import build_hierarchy
    from repro.mpi.datatypes import FLOAT as F
    node = Node(small_topo())
    world = World(node, 8)
    comp = Xhc()
    comm = world.communicator(comp)
    hier = comp._hierarchy(comm, 0)
    group = hier.levels[0][0]
    assignments = [comp._assignment(group, m, 8, F)
                   for m in group.nonleaders]
    assert sum(a is not None for a in assignments) == 1


def test_large_message_work_is_partitioned():
    from repro.mpi.datatypes import FLOAT as F
    node = Node(small_topo())
    world = World(node, 8)
    comp = Xhc()
    comm = world.communicator(comp)
    hier = comp._hierarchy(comm, 0)
    group = hier.levels[0][0]
    assignments = [comp._assignment(group, m, 64 * 1024, F)
                   for m in group.nonleaders]
    assert all(a is not None for a in assignments)
    covered = sorted(assignments)
    assert covered[0][0] == 0 and covered[-1][1] == 64 * 1024


def test_ops_and_dtypes():
    out, _ = run_allreduce(Xhc, nranks=8, size=2048, op=PROD, dtype=DOUBLE,
                           iters=1)
    expect = float(np.prod(np.arange(1, 9, dtype=np.float64)))
    for rec in out.values():
        assert np.all(rec["data"] == expect)
    out, _ = run_allreduce(Xhc, nranks=8, size=2048, op=MAX, dtype=FLOAT,
                           iters=1)
    for rec in out.values():
        assert np.all(rec["data"] == 8)


def test_reduce_min_configurable():
    out, _ = run_allreduce(lambda: Xhc(reduce_min=8), nranks=8, size=512,
                           iters=2)
    assert_allreduce_correct(out, 8)


def test_uneven_sizes_with_odd_ranks():
    for size in (20, 1000, 30_004):
        out, _ = run_allreduce(Xhc, nranks=11, size=size, iters=1)
        assert_allreduce_correct(out, 11, iters=1)


def test_mixed_collectives_sequence():
    """Bcast and allreduce interleave on one XHC communicator."""
    node = Node(small_topo())
    world = World(node, 8)
    comm = world.communicator(Xhc())

    def program(comm_, ctx):
        me = comm_.rank_of(ctx)
        buf = ctx.alloc("b", 4096)
        s = ctx.alloc("s", 4096)
        r = ctx.alloc("r", 4096)
        for it in range(3):
            if me == 2:
                buf.fill(it)
            yield from comm_.bcast(ctx, buf.whole(), 2)
            assert np.all(buf.data == it)
            s.view().as_dtype(np.float32)[:] = me
            yield from comm_.allreduce(ctx, s.whole(), r.whole(), SUM, FLOAT)
            assert np.all(r.view().as_dtype(np.float32) == sum(range(8)))
    comm.run(program)


def test_cico_allreduce_ring_reuse():
    node = Node(small_topo())
    world = World(node, 8)
    comm = world.communicator(Xhc(cico_ring=2))

    def program(comm_, ctx):
        me = comm_.rank_of(ctx)
        s = ctx.alloc("s", 256)
        r = ctx.alloc("r", 256)
        for it in range(8):
            s.view().as_dtype(np.float32)[:] = me + it
            yield from comm_.allreduce(ctx, s.whole(), r.whole(), SUM, FLOAT)
            assert np.all(r.view().as_dtype(np.float32)
                          == sum(range(8)) + 8 * it), f"it {it}"
    comm.run(program)


def test_flat_is_slower_than_tree_for_allreduce():
    """Fig. 11: XHC-flat trails XHC-tree at every size (unlike bcast)."""
    def mean_latency(hierarchy, size):
        out, _ = run_allreduce(lambda: Xhc(hierarchy=hierarchy), nranks=16,
                               size=size, iters=3, data_movement=False)
        return float(np.mean([r["latency"] for r in out.values()]))
    for size in (64, 32_768):
        assert mean_latency("numa+socket", size) < mean_latency("flat", size)
