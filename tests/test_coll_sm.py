"""sm component: atomic-based sync, fragment windows, barrier."""

import pytest

from repro.mpi import World
from repro.mpi.colls import SmColl, Smhc
from repro.node import Node
from repro.sim import primitives as P

from conftest import (assert_allreduce_correct, assert_bcast_correct,
                      run_allreduce, run_bcast, small_topo)


def test_bcast_fragments_large_messages():
    out, node = run_bcast(SmColl, nranks=4, size=100_000, iters=1)
    assert_bcast_correct(out, 4, 100)
    # No single-copy involvement whatsoever: pure CICO.
    assert node.xpmem.attaches == 0


def test_custom_fragment_size():
    out, _ = run_bcast(lambda: SmColl(fragment=1024), nranks=4, size=10_000)
    assert_bcast_correct(out, 4, 101)


def test_atomics_are_used():
    _, node = run_bcast(SmColl, nranks=8, size=64, iters=1)
    # The done-counter is an Atomic hit by every non-root rank.
    comp_free_lines = [p for p in node.engine.processes]
    # Indirect but robust check: contention statistics on the line.
    # (7 children each did one fetch-add.)
    # Re-run explicitly and inspect the component.
    node2 = Node(small_topo())
    from repro.mpi import World
    world = World(node2, 8)
    comp = SmColl()
    comm = world.communicator(comp)

    def program(comm_, ctx):
        buf = ctx.alloc("b", 64)
        yield from comm_.bcast(ctx, buf.whole(), 0)
    comm.run(program)
    assert comp.done[0].value == 7


def test_allreduce_and_reduce():
    out, _ = run_allreduce(SmColl, nranks=6, size=50_000, iters=2)
    assert_allreduce_correct(out, 6)


def test_barrier_counts_episodes():
    node = Node(small_topo())
    world = World(node, 5)
    comp = SmColl()
    comm = world.communicator(comp)

    def program(comm_, ctx):
        for _ in range(3):
            yield from comm_.barrier(ctx)
    comm.run(program)
    assert comp.bar_arrive.value == 3 * 4
    assert comp.bar_release.value == 3


def test_slower_than_single_writer_at_scale():
    """The Fig. 4 relationship on a dense machine (ARM-N1, 40 ranks)."""
    from repro.topology import get_system
    def latency(factory):
        out, _ = run_bcast(factory, topo=get_system("arm-n1"), nranks=40,
                           size=4, iters=3, data_movement=False)
        import numpy as np
        return float(np.mean([r["latency"] for r in out.values()]))
    atomics = latency(SmColl)
    single_writer = latency(lambda: Smhc(tree=False))
    assert atomics > single_writer * 2
