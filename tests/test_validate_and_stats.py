"""Public validation harness + engine statistics."""

import pytest

from repro.mpi import World
from repro.mpi.colls import Tuned
from repro.mpi.colls.base import CollComponent
from repro.node import Node
from repro.sim import primitives as P
from repro.sim.stats import collect_stats
from repro.validate import validate_component
from repro.xhc import Xhc

from conftest import small_topo


def test_builtin_components_validate():
    for factory in (Tuned, Xhc):
        report = validate_component(factory, quick=True)
        assert report.ok, report.render()
        assert len(report.checks) >= 5
        assert "PASS" in report.render()


class BrokenBcast(CollComponent):
    """Delivers nothing (children never copy)."""

    name = "broken"

    def bcast(self, comm, ctx, view, root):
        yield P.Compute(1e-9)

    def allreduce(self, comm, ctx, sview, rview, op, dtype):
        yield P.Copy(src=sview, dst=rview)  # ignores peers!


def test_broken_component_caught():
    report = validate_component(BrokenBcast, quick=True)
    assert not report.ok
    text = report.render()
    assert "FAIL" in text and "corrupt payload" in text
    assert "wrong sum" in text


class Unsupported(CollComponent):
    name = "none"


def test_unsupported_component_reported_not_raised():
    report = validate_component(Unsupported, quick=True)
    assert not report.ok
    assert "MPIError" in report.render()


def test_collect_stats():
    node = Node(small_topo(), data_movement=False)
    world = World(node, 8)
    comm = world.communicator(Xhc())

    def program(comm_, ctx):
        buf = ctx.alloc("b", 65536)
        yield from comm_.bcast(ctx, buf.whole(), 0)
    comm.run(program)
    stats = collect_stats(node)
    assert stats.sim_time > 0
    assert stats.events > 50
    assert stats.processes_done == 8
    assert stats.messages == 7
    assert stats.message_bytes == 7 * 65536
    assert stats.xpmem_attaches > 0
    assert 0 < stats.mean_core_utilization <= 1
    text = stats.render()
    assert "simulated time" in text and "logical messages" in text


def test_stats_empty_engine():
    node = Node(small_topo(), data_movement=False)
    stats = collect_stats(node)
    assert stats.mean_core_utilization == 0.0
    assert stats.events == 0


def test_stats_render_lists_xpmem_detaches():
    node = Node(small_topo(), data_movement=False)
    text = collect_stats(node).render()
    assert "xpmem make/attach" in text
    assert "xpmem detaches" in text


def test_collect_stats_carries_metrics_snapshot():
    def run(observe):
        node = Node(small_topo(), data_movement=False, observe=observe)
        world = World(node, 8)
        comm = world.communicator(Xhc())

        def program(comm_, ctx):
            buf = ctx.alloc("b", 4096)
            yield from comm_.bcast(ctx, buf.whole(), 0)
        comm.run(program)
        return collect_stats(node)

    observed = run(True)
    assert observed.metrics
    assert observed.metrics["messages.count"]["value"] == observed.messages
    text = observed.render()
    assert "messages.count" in text and "flags.sets" in text
    # Histograms render compactly, not as raw dicts.
    assert "buckets" not in text

    plain = run(None)
    assert plain.metrics == {}
    assert "messages.count" not in plain.render()
