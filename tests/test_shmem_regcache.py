"""Registration cache: hits, misses, LRU capacity, statistics."""

from repro.node import Node
from repro.shmem.regcache import RegistrationCache

from conftest import small_topo


def bufs(n, size=64):
    sp = Node(small_topo(), data_movement=False).new_address_space(0, 0)
    return [sp.alloc(f"b{i}", size) for i in range(n)]


def test_miss_then_hit():
    cache = RegistrationCache()
    (buf,) = bufs(1)
    assert not cache.lookup(buf)
    cache.insert(buf)
    assert cache.lookup(buf)
    assert cache.hits == 1 and cache.misses == 1
    assert cache.hit_ratio == 0.5


def test_capacity_evicts_lru():
    cache = RegistrationCache(capacity=2)
    a, b, c = bufs(3)
    for x in (a, b, c):
        cache.lookup(x)
        cache.insert(x)
    assert not cache.lookup(a)       # evicted
    assert cache.lookup(c)
    assert cache.evictions == 1


def test_lookup_refreshes_lru():
    cache = RegistrationCache(capacity=2)
    a, b, c = bufs(3)
    cache.insert(a)
    cache.insert(b)
    cache.lookup(a)        # refresh a
    cache.insert(c)        # evicts b, not a
    assert cache.lookup(a)
    assert not cache.lookup(b)


def test_invalidate():
    cache = RegistrationCache()
    (buf,) = bufs(1)
    cache.insert(buf)
    assert cache.invalidate(buf)
    assert not cache.invalidate(buf)
    assert not cache.lookup(buf)


def test_stats_shape():
    cache = RegistrationCache()
    stats = cache.stats()
    assert set(stats) == {"hits", "misses", "evictions", "entries",
                          "hit_ratio"}
    assert stats["hit_ratio"] == 0.0


def test_high_hit_ratio_under_reuse():
    """Applications reusing buffers see >99% hits (paper SSV-D3)."""
    cache = RegistrationCache()
    (buf,) = bufs(1)
    for _ in range(1000):
        if not cache.lookup(buf):
            cache.insert(buf)
    assert cache.hit_ratio > 0.99
