"""XPMEM service: exposure, attach costs, reuse."""

import pytest

from repro.errors import ShmemError
from repro.node import Node
from repro.sim import primitives as P

from conftest import small_topo


def setup():
    node = Node(small_topo(), data_movement=False)
    sp = node.new_address_space(0, 0)
    return node, sp.alloc("buf", 64 * 1024)


def drive(node, gen, core=1):
    node.engine.spawn(gen, core=core)
    return node.engine.run()


def test_expose_costs_one_syscall_and_is_idempotent():
    node, buf = setup()
    t1 = drive(node, node.xpmem.expose(buf), core=0)
    assert t1 == pytest.approx(node.model.syscall_cost)
    t2 = drive(node, node.xpmem.expose(buf), core=0)
    assert t2 == t1  # no extra cost
    assert node.xpmem.makes == 1


def test_attach_requires_exposure():
    node, buf = setup()
    with pytest.raises(ShmemError):
        drive(node, node.xpmem.attach(buf))


def test_attach_pays_syscall_plus_page_faults():
    node, buf = setup()
    drive(node, node.xpmem.expose(buf), core=0)
    t0 = node.engine.now
    t1 = drive(node, node.xpmem.attach(buf))
    pages = node.pages_of(buf.size)
    expected = node.model.syscall_cost + pages * node.model.page_fault_cost
    assert t1 - t0 == pytest.approx(expected)
    assert node.xpmem.attaches == 1


def test_shared_segments_attach_without_exposure():
    node = Node(small_topo(), data_movement=False)
    sp = node.new_address_space(0, 0)
    shared = sp.alloc("seg", 4096, shared=True)
    drive(node, node.xpmem.attach(shared))  # no raise


def test_detach_cost():
    node, buf = setup()
    drive(node, node.xpmem.expose(buf), core=0)
    t0 = node.engine.now
    t1 = drive(node, node.xpmem.detach(buf))
    assert t1 - t0 == pytest.approx(node.model.xpmem_detach_cost)
    assert node.xpmem.detaches == 1
