"""Provenance blocks, the request ledger, and the rendered manifest."""

import json

from repro.exec import RunRequest, RunResult, SIM_VERSION
from repro.serve import (RequestLog, build_manifest, config_digest,
                         provenance_for, result_to_json, write_manifest)
from repro.serve.manifest import bench_requests
from repro.serve.provenance import job_record
from repro.serve.queue import FairScheduler


def _req(size=1024):
    return RunRequest("epyc-1p", "bcast", size, 16, component="xhc-tree")


def _result(req, *, cached=False, error=None):
    return RunResult(request=req, latency_s=None if error else 1e-6,
                     cached=cached, error=error)


# -- provenance blocks -------------------------------------------------------


def test_request_hash_is_the_store_digest():
    req = _req()
    prov = provenance_for(req, _result(req))
    assert prov["request_hash"] == req.key()
    assert prov["sim_version"] == SIM_VERSION


def test_cache_field_distinguishes_hit_miss_error():
    req = _req()
    assert provenance_for(req, _result(req))["cache"] == "miss"
    assert provenance_for(req, _result(req, cached=True))["cache"] == "hit"
    assert provenance_for(req, _result(req, error="boom"))["cache"] \
        == "error"
    assert provenance_for(req, None)["cache"] == "error"


def test_config_digest_groups_by_component_identity():
    # Same component+config across sizes/systems → same digest; a config
    # change (or dict reordering that *isn't* a change) behaves right.
    a = RunRequest("epyc-1p", "bcast", 64, 16, component="xhc-tree",
                   config={"hierarchy": "numa", "chunk_size": 4096})
    b = RunRequest("arm-n1", "allreduce", 65536, 64, component="xhc-tree",
                   config={"chunk_size": 4096, "hierarchy": "numa"})
    c = RunRequest("epyc-1p", "bcast", 64, 16, component="xhc-tree",
                   config={"hierarchy": "flat", "chunk_size": 4096})
    assert config_digest(a) == config_digest(b)
    assert config_digest(a) != config_digest(c)


def test_result_to_json_wire_shape():
    req = _req()
    ok = result_to_json(req, _result(req, cached=True))
    assert ok["request"] == req.payload()
    assert ok["latency_s"] == 1e-6
    assert ok["cached"] is True
    assert "error" not in ok
    bad = result_to_json(req, _result(req, error="no such component"))
    assert bad["latency_s"] is None
    assert bad["error"] == "no such component"
    assert bad["provenance"]["cache"] == "error"


# -- the request ledger ------------------------------------------------------


def test_request_log_round_trips_and_skips_torn_lines(tmp_path):
    log = RequestLog(tmp_path)
    log.append({"kind": "job", "job": 1})
    log.append({"kind": "job", "job": 2})
    with open(log.path, "a") as fh:
        fh.write('{"kind": "job", "jo')  # a torn line (crash mid-append)
    assert [r["job"] for r in log.records()] == [1, 2]


def test_request_log_without_state_dir_is_inert(tmp_path):
    log = RequestLog(None)
    log.append({"kind": "job"})
    assert log.records() == []


def test_job_record_carries_hashes_and_version():
    sched = FairScheduler(batch_size=2)
    reqs = [_req(64), _req(4096)]
    job = sched.submit("alice", reqs)
    _job, indices = sched.next_chunk()
    sched.record(job, indices,
                 [_result(reqs[0]), _result(reqs[1], cached=True)])
    record = job_record(job, socket_path="/tmp/x.sock")
    assert record["tenant"] == "alice"
    assert record["requests"] == 2
    assert record["new"] == 1
    assert record["cached"] == 1
    assert record["sim_version"] == SIM_VERSION
    assert record["request_hashes"] == [r.key() for r in reqs]


# -- the manifest ------------------------------------------------------------


def _bench_doc():
    return {
        "kind": "bench-sweep",
        "tag": "BENCH_9",
        "title": "MPI_Bcast on epyc-1p (16 ranks, us)",
        "system": "epyc-1p",
        "collective": "bcast",
        "nranks": 16,
        "warmup": 1,
        "iters": 2,
        "series": [
            {"label": "xhc-tree",
             "points": [{"size": 64, "latency_us": 0.3},
                        {"size": 4096, "latency_us": 2.1}]},
            {"label": "sm",
             "points": [{"size": 64, "latency_us": 0.5}]},
        ],
        "exec": {"simulations": 3, "cache_hits": 0, "wall_s": 0.5},
    }


def test_bench_requests_reconstruct_exact_run_parameters():
    reqs = bench_requests(_bench_doc())
    assert len(reqs) == 3
    label, req = reqs[0]
    assert label == "xhc-tree"
    assert (req.system, req.collective, req.size, req.nranks) \
        == ("epyc-1p", "bcast", 64, 16)
    assert (req.warmup, req.iters) == (1, 2)


def test_manifest_links_bench_entry_to_hashes_and_sim_version(tmp_path):
    with open(tmp_path / "BENCH_9.json", "w") as fh:
        json.dump(_bench_doc(), fh)
    text = build_manifest(tmp_path)
    assert f"SIM_VERSION {SIM_VERSION}" in text
    assert "BENCH_9.json" in text
    # At least one reconstructed request hash appears verbatim — the
    # acceptance criterion: a BENCH artifact is traceable to its
    # content-addressed store entries.
    _label, req = bench_requests(_bench_doc())[0]
    assert req.key() in text
    assert "regenerate: `python -m repro bench bcast" in text


def test_manifest_includes_served_jobs(tmp_path):
    log = RequestLog(tmp_path / "serve")
    log.append({"kind": "job", "job": 7, "tenant": "alice", "requests": 3,
                "new": 3, "cached": 0, "errors": 0,
                "sim_version": SIM_VERSION,
                "request_hashes": ["ab" * 32]})
    text = build_manifest(tmp_path, state_dir=str(tmp_path / "serve"))
    assert "tenant `alice`" in text
    assert "3 request(s), 3 new / 0 cached" in text


def test_manifest_survives_empty_repo_and_garbage_records(tmp_path):
    with open(tmp_path / "BENCH_1.json", "w") as fh:
        fh.write("{truncated")
    text = build_manifest(tmp_path)
    assert "unreadable record (skipped)" in text
    assert "(no decision tables found)" in text
    assert "(no serve request ledger found)" in text


def test_write_manifest_creates_parent_dirs(tmp_path):
    out = tmp_path / "deep" / "manifest.md"
    text = write_manifest(out, tmp_path)
    assert out.read_text() == text
    assert text.startswith("# Results manifest")
