"""The promoted result cache: key discipline and the tune shim."""

import json
import os
import subprocess
import sys

import repro
from repro.exec import RunRequest, SIM_VERSION, ResultCache, cache_key
from repro.exec.cache import default_cache_path


def test_key_stable_across_dict_orderings():
    a = RunRequest("epyc-1p", "bcast", 1024, 32,
                   component="xhc", config={"hierarchy": "numa",
                                            "chunk_size": 16384})
    b = RunRequest("epyc-1p", "bcast", 1024, 32,
                   component="xhc", config={"chunk_size": 16384,
                                            "hierarchy": "numa"})
    assert a.key() == b.key()


def test_key_stable_across_process_boundaries():
    # A fresh interpreter (different PYTHONHASHSEED, different dict
    # insertion history) must derive the identical digest — the persistent
    # cache is shared across runs and machines.
    req = RunRequest("epyc-1p", "bcast", 1024, 32,
                     component="xhc", config={"b": 2, "a": 1})
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    code = ("from repro.exec import RunRequest\n"
            "print(RunRequest('epyc-1p', 'bcast', 1024, 32,\n"
            "      component='xhc', config={'a': 1, 'b': 2}).key())")
    env = {**os.environ, "PYTHONPATH": src, "PYTHONHASHSEED": "12345"}
    out = subprocess.run([sys.executable, "-c", code], env=env,
                         capture_output=True, text=True, check=True)
    assert out.stdout.strip() == req.key()


def test_key_includes_sim_version(monkeypatch):
    req = RunRequest("epyc-1p", "bcast", 1024, 32)
    before = req.key()
    import repro.exec.cache as cache_mod
    monkeypatch.setattr(cache_mod, "SIM_VERSION", SIM_VERSION + 1)
    assert req.key() != before


def test_sim_version_bump_misses_cleanly(tmp_path, monkeypatch):
    path = tmp_path / "cache.json"
    cache = ResultCache(path)
    cache.put(RunRequest("epyc-1p", "bcast", 1024, 32).payload(), 2e-6)
    cache.save()
    assert len(ResultCache(path)) == 1

    import repro.exec.cache as cache_mod
    monkeypatch.setattr(cache_mod, "SIM_VERSION", SIM_VERSION + 1)
    stale = ResultCache(path)
    assert len(stale) == 0
    assert stale.get(RunRequest("epyc-1p", "bcast", 1024, 32).payload()) \
        is None


def test_options_do_not_affect_the_key():
    from repro.options import RunOptions
    plain = RunRequest("epyc-1p", "bcast", 1024, 32)
    instrumented = RunRequest("epyc-1p", "bcast", 1024, 32,
                              options=RunOptions(data_movement=True,
                                                 observe="spans"))
    # Instrumentation never changes simulated time, so the payloads (and
    # keys) match; the instrumented request is simply not cacheable.
    assert plain.payload() == instrumented.payload()
    assert plain.cacheable and not instrumented.cacheable


def test_tune_cache_shim_is_the_exec_cache():
    import repro.exec.cache as exec_cache
    import repro.tune.cache as tune_cache
    assert tune_cache.ResultCache is exec_cache.ResultCache
    assert tune_cache.cache_key is exec_cache.cache_key
    assert tune_cache.SIM_VERSION == exec_cache.SIM_VERSION
    # And the package-level re-exports agree.
    from repro.tune import ResultCache as tune_rc
    assert tune_rc is exec_cache.ResultCache


def test_default_cache_path_shape():
    # The default is the store *root* directory now (sharded layout).
    assert default_cache_path().endswith(os.path.join("results", "cache"))


def test_payload_is_json_safe():
    from repro.shmem.smsc import SmscConfig
    req = RunRequest("epyc-2p", "pingpong", 65536, 2,
                     component="tuned", mapping=(0, 8),
                     smsc=SmscConfig(mechanism="cma"))
    round_tripped = json.loads(json.dumps(req.payload()))
    assert cache_key(round_tripped) == req.key()


# -- corruption hardening (sharded store, via the cache API) -----------------


def test_corrupt_entry_is_a_miss_with_warning_not_a_crash(tmp_path):
    import pytest

    payload = RunRequest("epyc-1p", "bcast", 1024, 32).payload()
    cache = ResultCache(tmp_path)
    cache.put(payload, 2e-6)
    cache.save()
    # Truncate the on-disk entry mid-token (a killed writer pre-dating
    # atomic replace, a bad disk, a bad rsync).
    entry_path = cache.store.entry_path(SIM_VERSION, cache_key(payload))
    with open(entry_path, "w") as fh:
        fh.write('{"latency_s": 2e')

    fresh = ResultCache(tmp_path)
    with pytest.warns(RuntimeWarning, match="quarantined"):
        assert fresh.get(payload) is None          # a miss, not a crash
    assert fresh.misses == 1
    # The bad file moved to quarantine and is never parsed again.
    assert os.listdir(fresh.store.quarantine_root)
    assert not os.path.exists(entry_path)
    # The slot is reusable: a re-run repopulates and serves normally.
    fresh.put(payload, 2e-6)
    fresh.save()
    assert ResultCache(tmp_path).get(payload) == 2e-6


def test_save_is_atomic_under_interruption(tmp_path, monkeypatch):
    # Kill the process (simulated) between the tmp write and the replace:
    # the store must contain either the old state or the new, never a
    # half-written entry.
    payload = RunRequest("epyc-1p", "bcast", 1024, 32).payload()
    cache = ResultCache(tmp_path)
    cache.put(payload, 2e-6)

    real_replace = os.replace
    calls = {"n": 0}

    def dying_replace(src, dst):
        calls["n"] += 1
        raise KeyboardInterrupt("simulated kill mid-save")

    monkeypatch.setattr(os, "replace", dying_replace)
    try:
        cache.save()
    except KeyboardInterrupt:
        pass
    monkeypatch.setattr(os, "replace", real_replace)
    assert calls["n"] == 1
    # Nothing landed, nothing is torn: a fresh cache simply misses.
    fresh = ResultCache(tmp_path)
    assert fresh.get(payload) is None
    leftovers = [name for _d, _s, names in os.walk(tmp_path)
                 for name in names if name.endswith(".tmp")]
    assert leftovers == []
