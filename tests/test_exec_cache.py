"""The promoted result cache: key discipline and the tune shim."""

import json
import os
import subprocess
import sys

import repro
from repro.exec import RunRequest, SIM_VERSION, ResultCache, cache_key
from repro.exec.cache import default_cache_path


def test_key_stable_across_dict_orderings():
    a = RunRequest("epyc-1p", "bcast", 1024, 32,
                   component="xhc", config={"hierarchy": "numa",
                                            "chunk_size": 16384})
    b = RunRequest("epyc-1p", "bcast", 1024, 32,
                   component="xhc", config={"chunk_size": 16384,
                                            "hierarchy": "numa"})
    assert a.key() == b.key()


def test_key_stable_across_process_boundaries():
    # A fresh interpreter (different PYTHONHASHSEED, different dict
    # insertion history) must derive the identical digest — the persistent
    # cache is shared across runs and machines.
    req = RunRequest("epyc-1p", "bcast", 1024, 32,
                     component="xhc", config={"b": 2, "a": 1})
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    code = ("from repro.exec import RunRequest\n"
            "print(RunRequest('epyc-1p', 'bcast', 1024, 32,\n"
            "      component='xhc', config={'a': 1, 'b': 2}).key())")
    env = {**os.environ, "PYTHONPATH": src, "PYTHONHASHSEED": "12345"}
    out = subprocess.run([sys.executable, "-c", code], env=env,
                         capture_output=True, text=True, check=True)
    assert out.stdout.strip() == req.key()


def test_key_includes_sim_version(monkeypatch):
    req = RunRequest("epyc-1p", "bcast", 1024, 32)
    before = req.key()
    import repro.exec.cache as cache_mod
    monkeypatch.setattr(cache_mod, "SIM_VERSION", SIM_VERSION + 1)
    assert req.key() != before


def test_sim_version_bump_misses_cleanly(tmp_path, monkeypatch):
    path = tmp_path / "cache.json"
    cache = ResultCache(path)
    cache.put(RunRequest("epyc-1p", "bcast", 1024, 32).payload(), 2e-6)
    cache.save()
    assert len(ResultCache(path)) == 1

    import repro.exec.cache as cache_mod
    monkeypatch.setattr(cache_mod, "SIM_VERSION", SIM_VERSION + 1)
    stale = ResultCache(path)
    assert len(stale) == 0
    assert stale.get(RunRequest("epyc-1p", "bcast", 1024, 32).payload()) \
        is None


def test_options_do_not_affect_the_key():
    from repro.options import RunOptions
    plain = RunRequest("epyc-1p", "bcast", 1024, 32)
    instrumented = RunRequest("epyc-1p", "bcast", 1024, 32,
                              options=RunOptions(data_movement=True,
                                                 observe="spans"))
    # Instrumentation never changes simulated time, so the payloads (and
    # keys) match; the instrumented request is simply not cacheable.
    assert plain.payload() == instrumented.payload()
    assert plain.cacheable and not instrumented.cacheable


def test_tune_cache_shim_is_the_exec_cache():
    import repro.exec.cache as exec_cache
    import repro.tune.cache as tune_cache
    assert tune_cache.ResultCache is exec_cache.ResultCache
    assert tune_cache.cache_key is exec_cache.cache_key
    assert tune_cache.SIM_VERSION == exec_cache.SIM_VERSION
    # And the package-level re-exports agree.
    from repro.tune import ResultCache as tune_rc
    assert tune_rc is exec_cache.ResultCache


def test_default_cache_path_shape():
    assert default_cache_path().endswith(
        os.path.join("results", "cache", "sim_cache.json"))


def test_payload_is_json_safe():
    from repro.shmem.smsc import SmscConfig
    req = RunRequest("epyc-2p", "pingpong", 65536, 2,
                     component="tuned", mapping=(0, 8),
                     smsc=SmscConfig(mechanism="cma"))
    round_tripped = json.loads(json.dumps(req.payload()))
    assert cache_key(round_tripped) == req.key()
