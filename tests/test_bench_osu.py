"""OSU-style microbenchmark drivers."""

import pytest

from repro.bench.components import (COMPONENTS, component_names,
                                    make_component)
from repro.bench.osu import (OsuSeries, osu_bcast, osu_latency,
                             run_collective)
from repro.errors import ConfigError
from repro.shmem.smsc import SmscConfig


def test_component_registry():
    comp = make_component("xhc-tree")
    assert comp.cfg.hierarchy == "numa+socket"
    with pytest.raises(ConfigError):
        make_component("mvapich")


def test_component_sets_per_figure():
    bcast_1p = component_names("bcast", "epyc-1p")
    assert "smhc-tree" not in bcast_1p          # single socket
    assert "xbrc" not in bcast_1p               # reduction-only
    allreduce = component_names("allreduce", "epyc-2p")
    assert "xbrc" in allreduce and "smhc-flat" not in allreduce


def test_run_collective_returns_positive_latency():
    lat = run_collective("bcast", "epyc-1p", 8, COMPONENTS["xhc-tree"], 256,
                         warmup=1, iters=2)
    assert 0 < lat < 1e-3


def test_unknown_kind():
    with pytest.raises(ValueError):
        run_collective("exscan", "epyc-1p", 4, COMPONENTS["tuned"], 64)


def test_extended_kinds_run():
    for kind in ("reduce", "barrier", "gather", "alltoall"):
        lat = run_collective(kind, "epyc-1p", 8, COMPONENTS["xhc-tree"],
                             256, warmup=1, iters=2)
        assert lat > 0, kind


def test_sweep_builds_series():
    series = osu_bcast("epyc-1p", 8, COMPONENTS["tuned"], sizes=(64, 4096),
                       warmup=1, iters=2, label="t")
    assert isinstance(series, OsuSeries)
    assert series.sizes == [64, 4096]
    assert series.latency[4096] > 0


def test_modify_flag_changes_medium_results():
    """The _mb variant must cost more in the cache-sensitive range."""
    kw = dict(warmup=1, iters=4)
    hot = run_collective("bcast", "epyc-1p", 16, COMPONENTS["xhc-flat"],
                         64 * 1024, modify=False, **kw)
    cold = run_collective("bcast", "epyc-1p", 16, COMPONENTS["xhc-flat"],
                          64 * 1024, modify=True, **kw)
    assert cold > hot * 1.2


def test_osu_latency_pingpong():
    lat_near = osu_latency("epyc-1p", (0, 1), 4096, warmup=1, iters=3)
    lat_far = osu_latency("epyc-1p", (0, 8), 4096, warmup=1, iters=3)
    assert 0 < lat_near < lat_far


def test_smsc_config_passthrough():
    lat_cico = osu_latency("epyc-2p", (0, 8), 1 << 20,
                           smsc=SmscConfig(mechanism=None),
                           warmup=1, iters=3)
    lat_xpmem = osu_latency("epyc-2p", (0, 8), 1 << 20,
                            smsc=SmscConfig(mechanism="xpmem"),
                            warmup=1, iters=3)
    assert lat_xpmem < lat_cico


def test_root_parameter():
    lat = run_collective("bcast", "epyc-1p", 8, COMPONENTS["xhc-tree"], 128,
                         root=5, warmup=1, iters=2)
    assert lat > 0
