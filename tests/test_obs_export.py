"""Chrome-trace/Perfetto export + flame view (repro.obs.export)."""

import json

import pytest

from repro.mpi import World
from repro.node import Node
from repro.obs import (flame_view, from_chrome_trace, to_chrome_trace,
                       validate_chrome_trace, write_chrome_trace)
from repro.xhc import Xhc

from conftest import small_topo


@pytest.fixture(scope="module")
def observed_node():
    node = Node(small_topo(), data_movement=False, observe=True)
    world = World(node, 8)
    comm = world.communicator(Xhc())

    def program(comm_, ctx):
        buf = ctx.alloc("b", 65536)
        yield from comm_.bcast(ctx, buf.whole(), 0)
    comm.run(program)
    return node


def test_chrome_trace_validates_clean(observed_node):
    doc = to_chrome_trace(observed_node)
    assert validate_chrome_trace(doc) == []
    events = doc["traceEvents"]
    phases = {e["ph"] for e in events}
    assert {"M", "X"} <= phases
    # One process_name metadata event per core in use, thread names too.
    meta = [e for e in events if e["ph"] == "M"]
    assert any(e["name"] == "process_name" for e in meta)
    assert any(e["name"] == "thread_name" for e in meta)
    xs = [e for e in events if e["ph"] == "X"]
    assert xs and all(e["dur"] >= 0 and e["ts"] >= 0 for e in xs)
    assert {"coll.bcast", "xhc.bcast"} <= {e["name"] for e in xs}
    # Metrics snapshot rides along for offline analysis.
    assert "metrics" in doc["otherData"]
    assert doc["otherData"]["metrics"]["messages.count"]["value"] == 7


def test_write_and_reload(tmp_path, observed_node):
    path = tmp_path / "trace.json"
    write_chrome_trace(path, observed_node)
    doc = json.loads(path.read_text())
    assert validate_chrome_trace(doc) == []


def test_round_trip_preserves_spans(observed_node):
    doc = to_chrome_trace(observed_node)
    spans = from_chrome_trace(doc)
    originals = [s for s in observed_node.obs.spans if s.end is not None]
    assert len(spans) == len(originals)
    assert ({s.name for s in spans} == {s.name for s in originals})
    # Nesting is reconstructed from time containment.
    by_name = {}
    for s in spans:
        by_name.setdefault(s.name, []).append(s)
    parented = [s for s in spans if s.parent is not None]
    assert parented, "round trip must recover parent links"
    by_id = {s.id: s for s in spans}
    for s in parented:
        p = by_id[s.parent]
        assert p.track == s.track
        assert p.start <= s.start + 1e-12 and s.end <= p.end + 1e-12


def test_validate_catches_malformed_docs():
    assert validate_chrome_trace([]) != []          # not a dict
    assert validate_chrome_trace({}) != []          # no traceEvents
    bad_event = {"traceEvents": [{"ph": "X", "name": "x"}]}
    errors = validate_chrome_trace(bad_event)
    assert errors and any("x" in e or "ts" in e for e in errors)
    negative = {"traceEvents": [
        {"ph": "X", "name": "n", "cat": "c", "pid": 0, "tid": 0,
         "ts": -1.0, "dur": 2.0}]}
    assert validate_chrome_trace(negative) != []
    ok = {"traceEvents": [
        {"ph": "X", "name": "n", "cat": "c", "pid": 0, "tid": 0,
         "ts": 0.0, "dur": 2.0}]}
    assert validate_chrome_trace(ok) == []


def test_validate_caps_error_flood():
    doc = {"traceEvents": [{"ph": "X"}] * 500}
    errors = validate_chrome_trace(doc)
    # Capped at ~20 plus the last event's batch and a suppression marker.
    assert 0 < len(errors) <= 30
    assert errors[-1].startswith("...")


def test_flame_view(observed_node):
    art = flame_view(observed_node)
    assert "xhc.bcast" in art
    assert "#" in art
    # Narrow widths and aggressive pruning still render.
    tiny = flame_view(observed_node, width=10, min_share=0.5)
    assert tiny


def test_export_with_observability_disabled():
    node = Node(small_topo(), data_movement=False)
    with pytest.raises(ValueError):
        to_chrome_trace(node)
    assert "disabled" in flame_view(node)
