"""All tier-1 collectives run clean under Node(check='full'): the XHC
protocols' release/acquire chains cover every shared access (zero false
positives), and the scatter release fix keeps the root's buffer protected
until every rank has read it."""

import numpy as np
import pytest

from repro.mpi import World
from repro.mpi.colls import Tuned
from repro.node import Node
from repro.xhc import Xhc

from conftest import small_topo

COLLS = ["bcast", "allreduce", "reduce", "gather", "scatter", "allgather",
         "alltoall", "reduce_scatter", "barrier"]


def _program(kind, nranks, block, root, iters):
    def program(comm, ctx):
        me = comm.rank_of(ctx)
        for it in range(iters):
            if kind == "bcast":
                buf = ctx.alloc(f"b{it}", block)
                yield from comm.bcast(ctx, buf.whole(), root)
            elif kind == "allreduce":
                s = ctx.alloc(f"s{it}", block)
                r = ctx.alloc(f"r{it}", block)
                yield from comm.allreduce(ctx, s.whole(), r.whole())
            elif kind == "reduce":
                s = ctx.alloc(f"s{it}", block)
                r = ctx.alloc(f"r{it}", block) if me == root else None
                yield from comm.reduce(ctx, s.whole(),
                                       None if r is None else r.whole(),
                                       root=root)
            elif kind == "gather":
                s = ctx.alloc(f"s{it}", block)
                r = ctx.alloc(f"r{it}", block * nranks) \
                    if me == root else None
                yield from comm.gather(ctx, s.whole(),
                                       None if r is None else r.whole(),
                                       root)
            elif kind == "scatter":
                s = ctx.alloc(f"s{it}", block * nranks) \
                    if me == root else None
                r = ctx.alloc(f"r{it}", block)
                yield from comm.scatter(ctx,
                                        None if s is None else s.whole(),
                                        r.whole(), root)
            elif kind == "allgather":
                s = ctx.alloc(f"s{it}", block)
                r = ctx.alloc(f"r{it}", block * nranks)
                yield from comm.allgather(ctx, s.whole(), r.whole())
            elif kind == "alltoall":
                s = ctx.alloc(f"s{it}", block * nranks)
                r = ctx.alloc(f"r{it}", block * nranks)
                yield from comm.alltoall(ctx, s.whole(), r.whole())
            elif kind == "reduce_scatter":
                s = ctx.alloc(f"s{it}", block * nranks)
                r = ctx.alloc(f"r{it}", block)
                yield from comm.reduce_scatter_block(ctx, s.whole(),
                                                     r.whole())
            else:  # barrier
                yield from comm.barrier(ctx)
    return program


def _run_checked(kind, factory, block, nranks=8, root=0, iters=2):
    node = Node(small_topo(), data_movement=False, observe="spans",
                check="full")
    world = World(node, nranks)
    comm = world.communicator(factory())
    comm.run(_program(kind, nranks, block, root, iters))
    return node


# Small exercises the CICO path, large the single-copy (XPMEM) path.
@pytest.mark.parametrize("block", [256, 32 * 1024],
                         ids=["cico", "single-copy"])
@pytest.mark.parametrize("kind", COLLS)
def test_xhc_collectives_clean_under_full_check(kind, block):
    node = _run_checked(kind, Xhc, block)
    report = node.check_report
    assert report.ok, "\n".join(str(f) for f in report)


@pytest.mark.parametrize("kind", ["bcast", "allreduce", "gather"])
def test_tuned_collectives_clean_under_full_check(kind):
    node = _run_checked(kind, Tuned, 4096)
    report = node.check_report
    assert report.ok, "\n".join(str(f) for f in report)


def test_nonzero_root_clean():
    node = _run_checked("scatter", Xhc, 512, root=5)
    assert node.check_report.ok


def test_scatter_release_regression():
    """The root's send buffer must not be reusable before *every* rank
    (grandchildren included) has read its block: with checking on, the
    root's post-scatter overwrite of its send buffer stays race-free, and
    the data every rank received is correct."""
    nranks = 8
    node = Node(small_topo(), check="full")
    world = World(node, nranks)
    comm = world.communicator(Xhc())
    got = {}

    def program(comm_, ctx):
        me = comm_.rank_of(ctx)
        block = 2048
        s = ctx.alloc("s", block * nranks) if me == 0 else None
        scratch = ctx.alloc("scratch", block * nranks) if me == 0 else None
        r = ctx.alloc("r", block)
        for it in range(2):
            if me == 0:
                # Engine-level rewrite of the send buffer each iteration —
                # only legal because scatter's release orders it after
                # every rank's read.
                scratch.fill(it + 1)
                from repro.sim import primitives as P
                yield P.Copy(src=scratch.whole(), dst=s.whole())
            yield from comm_.scatter(ctx,
                                     None if s is None else s.whole(),
                                     r.whole(), 0)
            got.setdefault(it, {})[me] = r.data.copy()

    comm.run(program)
    report = node.check_report
    assert report.ok, "\n".join(str(f) for f in report)
    for it, per_rank in got.items():
        for me, data in per_rank.items():
            assert np.all(data == it + 1), (it, me)


def test_overhead_paths_disabled_by_default():
    """check=None leaves no per-event checker work behind the flag."""
    node = Node(small_topo(), data_movement=False)
    assert node.engine.checker is None
    assert node.engine._race is False
    assert node.engine._dl_proactive is False
