"""Distance classification (Fig. 1a's domain taxonomy, Table II's labels)."""

from hypothesis import given, settings, strategies as st

from repro.topology import Distance, classify_distance, get_system
from repro.topology.distance import message_distance_label

from conftest import small_topo


def test_all_classes_on_mini_topo():
    topo = small_topo()  # LLC pairs: (0,1), (2,3)...
    assert classify_distance(topo, 3, 3) is Distance.SELF
    assert classify_distance(topo, 0, 1) is Distance.CACHE_LOCAL
    assert classify_distance(topo, 0, 2) is Distance.INTRA_NUMA
    assert classify_distance(topo, 0, 4) is Distance.CROSS_NUMA
    assert classify_distance(topo, 0, 8) is Distance.CROSS_SOCKET


def test_symmetry():
    topo = small_topo()
    for a in range(topo.n_cores):
        for b in range(topo.n_cores):
            assert classify_distance(topo, a, b) == classify_distance(topo, b, a)


def test_arm_has_no_cache_local_pairs():
    topo = get_system("arm-n1")
    classes = {classify_distance(topo, 0, b) for b in range(1, 40)}
    assert Distance.CACHE_LOCAL not in classes
    assert Distance.INTRA_NUMA in classes


def test_message_distance_labels_fold_as_in_table2():
    topo = small_topo()
    assert message_distance_label(topo, 0, 1) == "intra-numa"
    assert message_distance_label(topo, 0, 2) == "intra-numa"
    assert message_distance_label(topo, 0, 4) == "inter-numa"
    assert message_distance_label(topo, 0, 8) == "inter-socket"


@settings(max_examples=50, deadline=None)
@given(a=st.integers(0, 31), b=st.integers(0, 31))
def test_epyc1p_never_cross_socket(a, b):
    topo = get_system("epyc-1p")
    assert classify_distance(topo, a, b) is not Distance.CROSS_SOCKET


def test_distance_ordering_is_meaningful():
    assert Distance.SELF < Distance.CACHE_LOCAL < Distance.INTRA_NUMA \
        < Distance.CROSS_NUMA < Distance.CROSS_SOCKET
