"""Node pricing rules: distance ordering, cache effects, flags, atomics."""

import pytest

from repro.node import Node
from repro.sim import primitives as P
from repro.sim.syncobj import Atomic, Flag, Line
from repro.topology import Distance, get_system

from conftest import small_topo


def copy_time(node, reader_core, src_buf, size=None):
    sp = node.new_address_space(99, reader_core)
    dst = sp.alloc("dst", size or src_buf.size)
    rec = {}
    def prog():
        t0 = node.engine.now
        yield P.Copy(src=src_buf.view(0, dst.size), dst=dst.whole())
        rec["t"] = node.engine.now - t0
    node.engine.spawn(prog(), core=reader_core)
    node.engine.run()
    return rec["t"]


def test_read_time_grows_with_distance():
    """The Fig. 1a ordering: local < cache-local < intra < cross < socket."""
    times = []
    for reader in (1, 2, 4, 8):  # cache-local .. cross-socket on mini topo
        node = Node(small_topo(), data_movement=False)
        src = node.new_address_space(0, 0).alloc("src", 1 << 20)
        times.append(copy_time(node, reader, src))
    assert times == sorted(times)
    assert times[-1] > times[0] * 1.5


def test_reread_hits_cache():
    node = Node(small_topo(), data_movement=False)
    src = node.new_address_space(0, 0).alloc("src", 1 << 16)
    first = copy_time(node, 2, src)
    second = copy_time(node, 2, src)
    assert second < first * 0.6


def test_write_invalidates_reader_cache():
    node = Node(small_topo(), data_movement=False)
    owner = node.new_address_space(0, 0)
    src = owner.alloc("src", 1 << 16)
    scratch = owner.alloc("scr", 1 << 16)
    copy_time(node, 2, src)
    # Owner rewrites the buffer...
    def rewrite():
        yield P.Copy(src=scratch.whole(), dst=src.whole())
    node.engine.spawn(rewrite(), core=0)
    node.engine.run()
    # ...so the re-read is expensive again.
    warm = copy_time(node, 2, src)
    node2 = Node(small_topo(), data_movement=False)
    src2 = node2.new_address_space(0, 0).alloc("src", 1 << 16)
    cold = copy_time(node2, 2, src2)
    assert warm == pytest.approx(cold, rel=0.3)


def test_line_read_llc_assist():
    """After one member of an LLC group fetches a flag line, its peers pay
    only a cache-local hit (SSV-D1's implicit hierarchy-in-hardware)."""
    node = Node(small_topo(), data_movement=False)
    line = Line(owner_core=0)
    # Core 2 (different LLC group than 0, same numa) fetches first.
    t1 = node.line_read(2, line, 0.0) - 0.0
    # Core 3 shares core 2's LLC group: assisted.
    t2 = node.line_read(3, line, 0.0) - 0.0
    assert t2 < t1
    assert t2 == pytest.approx(node.model.lat[Distance.CACHE_LOCAL])


def test_line_read_serializes_at_home():
    node = Node(get_system("arm-n1"), data_movement=False)
    line = Line(owner_core=0)
    finish = [node.line_read(core, line, 0.0) for core in range(20, 30)]
    # No shared LLC on ARM: each fetch queues at the home point.
    assert sorted(finish) == finish
    assert finish[-1] - finish[0] >= 9 * node.model.line_occupancy * 0.99


def test_holder_rereads_are_cheap():
    node = Node(small_topo(), data_movement=False)
    line = Line(owner_core=0)
    node.line_read(5, line, 0.0)
    t = node.line_read(5, line, 1.0) - 1.0
    assert t == pytest.approx(node.model.poll_delay)


def test_atomic_contention_inflates_cost():
    node = Node(small_topo(), data_movement=False)
    line = Line(owner_core=0)
    _, base = node.atomic_cost(1, line, 0.0)
    line.pending_rmw = 10
    _, contended = node.atomic_cost(2, line, 0.0)
    assert contended > base * 2


def test_syscall_kinds_and_kernel_lock():
    node = Node(small_topo(), data_movement=False)
    plain = node.syscall_cost("generic")
    assert node.syscall_cost("cma") == pytest.approx(plain)
    node.resources.kernel_ops = 8
    assert node.syscall_cost("cma") > plain
    assert node.syscall_cost("knem") > plain
    assert node.syscall_cost("cma") > node.syscall_cost("knem")
    with pytest.raises(Exception):
        node.syscall_cost("bogus")


def test_pages_of():
    assert Node.pages_of(1) == 1
    assert Node.pages_of(4096) == 1
    assert Node.pages_of(4097) == 2
