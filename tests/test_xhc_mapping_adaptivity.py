"""XHC adapts its hierarchy to the actual rank placement (Fig. 9a).

The hierarchy is built from the cores ranks actually sit on, so a
round-robin (map-numa) placement yields groups of the same *locality* as
the sequential one — only the rank ids inside each group differ.
"""

import numpy as np

from repro.mpi import World, map_ranks
from repro.node import Node
from repro.topology import get_system
from repro.topology.distance import message_distance_label
from repro.xhc import Xhc, XhcConfig, build_hierarchy

from conftest import small_topo


def edge_distances(mapping):
    topo = get_system("epyc-2p")
    cores = map_ranks(topo, 64, mapping)
    hier = build_hierarchy(topo, cores, XhcConfig().tokens(), root=0)
    counts = {"intra-numa": 0, "inter-numa": 0, "inter-socket": 0}
    for r in range(64):
        p = hier.parent(r)
        if p is not None:
            counts[message_distance_label(topo, cores[p], cores[r])] += 1
    return counts


def test_edge_distances_invariant_under_mapping():
    assert edge_distances("core") == edge_distances("numa") == {
        "intra-numa": 56, "inter-numa": 6, "inter-socket": 1,
    }


def test_groups_are_topology_local_under_map_numa():
    topo = get_system("epyc-2p")
    cores = map_ranks(topo, 64, "numa")
    hier = build_hierarchy(topo, cores, XhcConfig().tokens(), root=0)
    for group in hier.levels[0]:
        numas = {topo.numa_of_core(cores[m]).index for m in group.members}
        assert len(numas) == 1, group


def test_bcast_correct_under_map_numa_and_nonzero_root():
    node = Node(get_system("epyc-2p"))
    world = World(node, 64, mapping="numa")
    comm = world.communicator(Xhc())

    def program(comm_, ctx):
        me = comm_.rank_of(ctx)
        buf = ctx.alloc("b", 4096)
        for it, root in enumerate((0, 17, 63)):
            if me == root:
                buf.fill(it + 1)
            yield from comm_.bcast(ctx, buf.whole(), root)
            assert np.all(buf.data == it + 1)
    comm.run(program)


def test_latency_robust_to_mapping():
    """XHC-tree's 1 MB broadcast moves little between layouts (< 40%)."""
    from repro.bench.osu import run_collective
    from repro.bench.components import COMPONENTS
    lat = {
        mapping: run_collective("bcast", "epyc-2p", 64,
                                COMPONENTS["xhc-tree"], 1 << 20,
                                warmup=1, iters=3, mapping=mapping)
        for mapping in ("core", "numa")
    }
    assert max(lat.values()) / min(lat.values()) < 1.4
