"""Analytic pruning + the end-to-end tuning loop.

The load-bearing property: on a small grid the pruner must never discard
the candidate the simulator would have crowned — otherwise tuned tables
silently encode the analytic model's blind spots.
"""

import pytest

from repro.memory.model import model_for
from repro.topology import get_system
from repro.tune import (Evaluator, ResultCache, estimate_cost, prune, tune)
from repro.tune.evaluate import QUICK_ITERS, measurement_payload, \
    simulate_payload
from repro.tune.space import PAPER_DEFAULT
from repro.tune.table import DecisionTable
from repro.xhc import XhcConfig

NRANKS = 16
SIZE = 65536

GRID = [
    PAPER_DEFAULT,
    XhcConfig(hierarchy="flat"),
    XhcConfig(hierarchy="numa"),
    XhcConfig(hierarchy="l3+numa"),
    XhcConfig(hierarchy="numa", chunk_size=16384),
    XhcConfig(hierarchy="l3+numa", chunk_size=16384),
    XhcConfig(hierarchy="numa+socket", chunk_size=65536),
]


def simulate(cfg, system="epyc-1p", collective="bcast"):
    return simulate_payload(measurement_payload(
        system, collective, SIZE, NRANKS, cfg, QUICK_ITERS))


@pytest.mark.parametrize("collective", ["bcast", "allreduce"])
def test_prune_keeps_simulated_optimum(collective):
    topo = get_system("epyc-1p")
    model = model_for(topo)
    grid = [c for c in GRID if "socket" not in c.hierarchy]  # 1P machine
    survivors = prune(grid, topo, model, collective, SIZE, NRANKS,
                      always_keep=(PAPER_DEFAULT,))
    sim = {cfg: simulate(cfg, collective=collective) for cfg in grid}
    optimum = min(sim, key=sim.get)
    assert optimum in survivors, (
        f"pruner discarded simulated optimum {optimum} "
        f"({sim[optimum] * 1e6:.2f}us)")


def test_estimates_are_positive_and_finite():
    for system in ("epyc-1p", "epyc-2p", "arm-n1"):
        topo = get_system(system)
        model = model_for(topo)
        for cfg in (PAPER_DEFAULT, XhcConfig(hierarchy="flat")):
            for collective in ("bcast", "allreduce"):
                for size in (64, 4096, 1048576):
                    est = estimate_cost(topo, model, cfg, collective, size,
                                        topo.n_cores)
                    assert 0 < est < 1.0


def test_prune_margin_and_keep_caps():
    topo = get_system("epyc-2p")
    model = model_for(topo)
    survivors = prune(GRID, topo, model, "bcast", SIZE, NRANKS, keep=2)
    assert len(survivors) <= 2
    everything = prune(GRID, topo, model, "bcast", SIZE, NRANKS,
                       margin=1e9, keep=None)
    assert len(everything) == len(GRID)


def test_evaluator_budget_and_cache():
    cache = ResultCache()
    ev = Evaluator(cache=cache, workers=0, budget=2)
    grid = GRID[:4]
    scores = ev.evaluate("epyc-1p", "bcast", 1024, 8, grid,
                         iters=QUICK_ITERS)
    assert len(scores) == 2 and ev.simulations == 2
    assert ev.budget_left == 0
    # Cached entries stay free even with the budget exhausted.
    again = ev.evaluate("epyc-1p", "bcast", 1024, 8, grid,
                        iters=QUICK_ITERS)
    assert set(again) == set(scores)
    assert ev.simulations == 2


def test_tune_end_to_end_never_loses_to_default(tmp_path):
    cache = ResultCache(tmp_path / "cache.json")
    result = tune(systems=("epyc-1p",), collectives=("bcast",),
                  sizes=(1024, SIZE), quick=True, nranks=NRANKS,
                  workers=0, cache=cache)
    assert len(result.table) == 2
    for point in result.points:
        assert point.best_s is not None
        assert point.best_s <= point.baseline_s  # the acceptance criterion
        assert result.table.lookup(point.system, point.collective,
                                   point.size) == point.best_config
    assert result.simulations > 0

    # Warm-cache re-tune: identical decisions, zero new simulations.
    warm = tune(systems=("epyc-1p",), collectives=("bcast",),
                sizes=(1024, SIZE), quick=True, nranks=NRANKS,
                workers=0, cache=ResultCache(tmp_path / "cache.json"))
    assert warm.simulations == 0
    assert warm.cache_hit_rate == 1.0
    assert warm.table.to_json() == result.table.to_json()


def test_tune_resume_skips_decided_cells():
    table = DecisionTable()
    table.record("epyc-1p", "bcast", 1024, PAPER_DEFAULT, 1e-6)
    result = tune(systems=("epyc-1p",), collectives=("bcast",),
                  sizes=(1024,), quick=True, nranks=NRANKS, workers=0,
                  table=table, resume=True)
    assert result.simulations == 0
    assert result.points[0].skipped
