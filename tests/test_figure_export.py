"""FigureResult machine-readable export."""

import csv

from repro.bench.figures import FigureResult, table1_systems
from repro.bench.osu import OsuSeries
from repro.cli import main


def test_to_records_series():
    s = OsuSeries("alpha")
    s.add(4, 1e-6)
    s.add(64, 2e-6)
    res = FigureResult("f", "t", {("bcast", "alpha"): s})
    recs = res.to_records()
    assert len(recs) == 2
    assert recs[0] == {"key0": "bcast", "key1": "alpha", "size": 4,
                       "latency_s": 1e-6}


def test_to_records_scalars_and_dicts():
    res = FigureResult("f", "t", {
        ("flat", 8): 1.5e-4,
        ("tuned", "map-core"): {"intra-numa": 5, "inter-numa": 2},
    })
    recs = res.to_records()
    assert {"key0": "flat", "key1": "8", "value": 1.5e-4} in recs
    assert any(r.get("intra-numa") == 5 for r in recs)


def test_write_csv(tmp_path):
    res = table1_systems()
    path = tmp_path / "t1.csv"
    res.write_csv(path)
    rows = list(csv.DictReader(open(path)))
    assert rows and "key0" in rows[0]


def test_cli_csv_flag(tmp_path, capsys):
    path = tmp_path / "out.csv"
    code = main(["figure", "table1", "--csv", str(path)])
    assert code == 0
    assert path.exists()
    out = capsys.readouterr().out
    assert "wrote" in out
