"""The MCA-style parameter surface of XHC."""

import pytest

from repro.errors import ConfigError
from repro.params import ParamSet
from repro.xhc import Xhc
from repro.xhc.params import XHC_PARAMS, config_from_mca, config_from_params

from conftest import assert_bcast_correct, run_bcast


def test_defaults_match_config_defaults():
    cfg = config_from_params(ParamSet(XHC_PARAMS))
    assert cfg.hierarchy == "numa+socket"
    assert cfg.cico_threshold == 1024
    assert cfg.chunk_size == 16 * 1024
    assert cfg.cico_ring == 4


def test_overrides_flow_through():
    cfg = config_from_mca(coll_xhc_hierarchy="flat",
                          coll_xhc_cico_max=0,
                          coll_xhc_chunk_size=4096)
    assert cfg.hierarchy == "flat"
    assert cfg.cico_threshold == 0
    assert cfg.chunk_size == 4096


def test_validation_at_the_param_layer():
    with pytest.raises(ConfigError):
        config_from_mca(coll_xhc_chunk_size=-5)
    with pytest.raises(ConfigError):
        config_from_mca(coll_xhc_flag_layout="diagonal")
    with pytest.raises(ConfigError):
        config_from_mca(coll_xhc_cico_ring=1)
    with pytest.raises(ConfigError):
        config_from_mca(coll_xhc_totally_unknown=1)


def test_mca_configured_component_works():
    cfg = config_from_mca(coll_xhc_cico_max=8192)
    out, node = run_bcast(lambda: Xhc(cfg), nranks=8, size=4096)
    assert_bcast_correct(out, 8, 101)
    assert node.xpmem.attaches == 0  # 4096 <= the raised threshold


def test_registry_names_are_mca_style():
    assert all(name.startswith("coll_xhc_") for name in XHC_PARAMS.names())
