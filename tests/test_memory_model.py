"""Machine models: completeness, per-system distinctions."""

import dataclasses

import pytest

from repro.errors import MemoryModelError
from repro.memory.model import (ARM_N1_MODEL, EPYC_1P_MODEL, EPYC_2P_MODEL,
                                MachineModel, model_for)
from repro.topology import Distance, get_system

from conftest import small_topo


def test_all_models_cover_all_distances():
    for model in (EPYC_1P_MODEL, EPYC_2P_MODEL, ARM_N1_MODEL):
        for dist in Distance:
            assert model.lat[dist] > 0
            assert model.bw[dist] > 0


def test_latency_monotonic_with_distance():
    for model in (EPYC_1P_MODEL, EPYC_2P_MODEL, ARM_N1_MODEL):
        lats = [model.lat[d] for d in sorted(Distance)]
        assert lats == sorted(lats)


def test_bandwidth_antitonic_with_distance():
    for model in (EPYC_1P_MODEL, ARM_N1_MODEL):
        bws = [model.bw[d] for d in sorted(Distance)]
        assert bws == sorted(bws, reverse=True)


def test_arm_numa_distance_is_marginal():
    """ARM-N1 intra- vs cross-NUMA are nearly identical (Fig. 1a)."""
    ratio = (ARM_N1_MODEL.lat[Distance.CROSS_NUMA]
             / ARM_N1_MODEL.lat[Distance.INTRA_NUMA])
    assert 1.0 <= ratio < 1.15
    epyc_ratio = (EPYC_1P_MODEL.lat[Distance.CROSS_NUMA]
                  / EPYC_1P_MODEL.lat[Distance.INTRA_NUMA])
    assert epyc_ratio > ratio


def test_arm_has_slc_not_llc():
    assert ARM_N1_MODEL.llc_size == 0
    assert ARM_N1_MODEL.slc_size > 0
    assert EPYC_1P_MODEL.slc_size == 0
    assert EPYC_1P_MODEL.llc_size > 0


def test_kernel_mechanism_ordering():
    """CMA suffers more lock contention and copies slower than KNEM."""
    for model in (EPYC_1P_MODEL, ARM_N1_MODEL):
        assert model.cma_lock_alpha > model.knem_lock_alpha
        assert model.cma_bw_factor < model.knem_bw_factor <= 1.0


def test_model_for_known_and_custom():
    assert model_for(get_system("epyc-2p")).name == "Epyc-2P"
    custom = model_for(small_topo())
    assert custom.name == "mini"
    assert custom.llc_size > 0  # mini topo has LLC groups
    from repro.topology import build_symmetric
    no_llc = model_for(build_symmetric("bare", 1, 1, 4, None))
    assert no_llc.llc_size == 0 and no_llc.slc_size > 0


def test_missing_distance_rejected():
    lat = {d: 1e-9 for d in Distance}
    bw = {d: 1e9 for d in list(Distance)[:-1]}  # drop one
    with pytest.raises(MemoryModelError):
        MachineModel("broken", lat=lat, bw=bw)


def test_with_overrides_is_functional():
    derived = EPYC_1P_MODEL.with_overrides(reduce_bw=1e9)
    assert derived.reduce_bw == 1e9
    assert EPYC_1P_MODEL.reduce_bw != 1e9
    assert dataclasses.is_dataclass(derived)
