"""ucc component: knomial schedules, ring allreduce, direct reduce."""

import numpy as np
import pytest

from repro.mpi import FLOAT, SUM, World
from repro.mpi.colls import Ucc
from repro.node import Node
from repro.sim import primitives as P

from conftest import (assert_allreduce_correct, assert_bcast_correct,
                      run_allreduce, run_bcast, small_topo)


def test_small_bcast_stays_in_shared_memory():
    out, node = run_bcast(Ucc, nranks=8, size=512, iters=2)
    assert_bcast_correct(out, 8, 101)
    assert node.xpmem.attaches == 0  # cico slots only


def test_large_bcast_single_copy():
    out, node = run_bcast(Ucc, nranks=8, size=200_000, iters=1)
    assert_bcast_correct(out, 8, 100)
    assert node.xpmem.attaches > 0


def test_radix_configurable():
    out, _ = run_bcast(lambda: Ucc(radix=2), nranks=9, size=64)
    assert_bcast_correct(out, 9, 101)
    out, _ = run_bcast(lambda: Ucc(radix=8), nranks=9, size=64)
    assert_bcast_correct(out, 9, 101)


def test_ring_allreduce_used_for_large():
    out, _ = run_allreduce(Ucc, nranks=8, size=64 * 1024, iters=2)
    assert_allreduce_correct(out, 8)


def test_small_and_sub_rank_element_counts_fall_back():
    # 8 ranks but only 5 floats: ring slices would degenerate.
    out, _ = run_allreduce(Ucc, nranks=8, size=20, iters=1)
    assert_allreduce_correct(out, 8, iters=1)


def test_reduce_direct():
    node = Node(small_topo())
    world = World(node, 8)
    comm = world.communicator(Ucc())
    got = {}

    def program(comm_, ctx):
        me = comm_.rank_of(ctx)
        sbuf = ctx.alloc("s", 4096)
        rbuf = ctx.alloc("r", 4096) if me == 0 else None
        sbuf.view().as_dtype(np.float32)[:] = me + 1
        for _ in range(2):
            yield from comm_.reduce(ctx, sbuf.whole(),
                                    None if rbuf is None else rbuf.whole(),
                                    SUM, FLOAT, root=0)
        if me == 0:
            got["v"] = rbuf.view().as_dtype(np.float32).copy()
    comm.run(program)
    assert (got["v"] == sum(range(1, 9))).all()


def test_barrier():
    node = Node(small_topo())
    world = World(node, 7)
    comm = world.communicator(Ucc())
    after = {}

    def program(comm_, ctx):
        me = comm_.rank_of(ctx)
        yield P.Compute((me + 1) * 1e-6)
        for _ in range(2):
            yield from comm_.barrier(ctx)
        after[me] = ctx.now
    comm.run(program)
    assert min(after.values()) >= 7e-6
