"""Topology spec loading/saving."""

import json

import pytest

from repro.errors import TopologyError
from repro.topology import ObjKind, get_system
from repro.topology.io import (load_topology, save_topology,
                               topology_from_spec, topology_to_spec)

from conftest import small_topo


def test_symmetric_spec():
    topo = topology_from_spec({
        "name": "sym",
        "symmetric": {"sockets": 2, "numa_per_socket": 2,
                      "cores_per_numa": 4, "cores_per_llc": 2},
    })
    assert topo.n_cores == 16
    assert topo.count(ObjKind.LLC) == 8
    assert topo.name == "sym"


def test_explicit_tree_spec():
    topo = topology_from_spec({
        "name": "weird",
        "sockets": [
            {"numa": [{"cores": 3},
                      {"llc": [{"cores": 2}, {"cores": 2}]}]},
            {"numa": [{"cores": 1}]},
        ],
    })
    assert topo.n_cores == 8
    assert topo.count(ObjKind.NUMA) == 3
    assert topo.count(ObjKind.LLC) == 2
    assert topo.llc_of_core(0) is None
    assert topo.llc_of_core(3) is not None


def test_roundtrip():
    original = small_topo()
    spec = topology_to_spec(original)
    clone = topology_from_spec(spec)
    assert clone.n_cores == original.n_cores
    assert clone.count(ObjKind.NUMA) == original.count(ObjKind.NUMA)
    assert clone.count(ObjKind.LLC) == original.count(ObjKind.LLC)
    for c in range(original.n_cores):
        assert (clone.numa_of_core(c).index
                == original.numa_of_core(c).index)


def test_roundtrip_table1_systems():
    for name in ("epyc-1p", "epyc-2p", "arm-n1"):
        topo = get_system(name)
        clone = topology_from_spec(topology_to_spec(topo))
        assert clone.n_cores == topo.n_cores
        assert clone.has_llc == topo.has_llc


def test_file_io(tmp_path):
    path = tmp_path / "node.json"
    save_topology(small_topo(), path)
    data = json.loads(path.read_text())
    assert data["name"] == "mini"
    clone = load_topology(path)
    assert clone.n_cores == 16


def test_spec_validation():
    with pytest.raises(TopologyError):
        topology_from_spec("not a dict")
    with pytest.raises(TopologyError):
        topology_from_spec({"name": "x"})
    with pytest.raises(TopologyError):
        topology_from_spec({"symmetric": {"bogus": 1}})
    with pytest.raises(TopologyError):
        topology_from_spec({"sockets": [{"numa": [{}]}]})
    with pytest.raises(TopologyError):
        topology_from_spec(
            {"sockets": [{"numa": [{"cores": 2, "llc": []}]}]})
