"""Event-vs-array engine parity: pinned latencies and pinned deltas.

The array engine is *deliberately* not bit-identical to the event engine
(SIM_VERSION 3): zero-decision pipeline runs are priced as closed-form
batches, which trades the event engine's quantum-granularity re-pricing
for vectorized sweeps. What we pin instead:

- the array engine's own latencies are deterministic and bit-stable
  (``tests/golden/latency_array_*.json``, float.hex, same fixtures shape
  as the event goldens plus an ``"engine"`` field);
- the relative deviation from the event engine at every tier-1
  (system, collective, size) point stays inside the per-point envelope
  recorded below — a model change that widens any gap fails here and
  must be re-justified in docs/performance.md.

The envelopes are the measured deltas rounded outward to whole percents.
They are wide where the documented approximations bite (no 64 KiB-quantum
re-pricing during long copies: epyc bcast reads ~33% cheap; run-granular
contention inside lowered reduce runs: arm-n1 1 MiB allreduce reads ~70%
rich) and tight where the engines agree.
"""

import json
import time
from pathlib import Path

import pytest

from repro.bench.components import make_component
from repro.bench.osu import run_collective
from repro.options import RunOptions

GOLDEN_DIR = Path(__file__).parent / "golden"

SYSTEMS = ("epyc-1p", "epyc-2p", "arm-n1")

# Allowed relative deviation (array - event) / event per point, as
# (lower, upper) percent bounds. Measured values (recorded in
# docs/performance.md) sit comfortably inside; the margins absorb only
# rounding, not regressions.
DELTA_ENVELOPE = {
    # (system, kind, size): (lo_pct, hi_pct)
    ("epyc-1p", "bcast", 512): (-27, -22),
    ("epyc-1p", "bcast", 4096): (6, 11),
    ("epyc-1p", "bcast", 65536): (-29, -24),
    ("epyc-1p", "bcast", 262144): (-35, -30),
    ("epyc-1p", "bcast", 1048576): (-35, -30),
    ("epyc-1p", "allreduce", 512): (-5, 0),
    ("epyc-1p", "allreduce", 4096): (16, 21),
    ("epyc-1p", "allreduce", 65536): (-20, -15),
    ("epyc-1p", "allreduce", 262144): (4, 9),
    ("epyc-1p", "allreduce", 1048576): (36, 42),
    ("arm-n1", "bcast", 512): (-74, -69),
    ("arm-n1", "bcast", 4096): (7, 12),
    ("arm-n1", "bcast", 65536): (2, 7),
    ("arm-n1", "bcast", 262144): (1, 6),
    ("arm-n1", "bcast", 1048576): (-1, 4),
    ("arm-n1", "allreduce", 512): (-4, 1),
    ("arm-n1", "allreduce", 4096): (27, 33),
    ("arm-n1", "allreduce", 65536): (12, 18),
    ("arm-n1", "allreduce", 262144): (22, 28),
    ("arm-n1", "allreduce", 1048576): (67, 73),
}
# epyc-2p runs its 32 ranks on socket 0, so it prices identically to
# epyc-1p — same envelope by construction.
for (_sys, _kind, _size), _env in list(DELTA_ENVELOPE.items()):
    if _sys == "epyc-1p":
        DELTA_ENVELOPE[("epyc-2p", _kind, _size)] = _env


def _fixture(system: str, engine: str) -> dict:
    name = (f"latency_array_{system}.json" if engine == "array"
            else f"latency_{system}.json")
    with open(GOLDEN_DIR / name, "r", encoding="utf-8") as fh:
        return json.load(fh)


def _run(fix: dict, kind: str, size: int, engine: str) -> float:
    return run_collective(
        kind, fix["system"], fix["nranks"],
        lambda: make_component(fix["component"]),
        size, warmup=fix["warmup"], iters=fix["iters"],
        modify=fix["modify"], mapping=fix["mapping"],
        options=RunOptions(engine=engine),
    )


@pytest.mark.parametrize("system", SYSTEMS)
@pytest.mark.parametrize("kind", ("bcast", "allreduce"))
def test_array_golden_latencies(system, kind):
    """Array-engine latencies are pinned bit-exact, like the event ones."""
    np = pytest.importorskip("numpy")  # noqa: F841 — array engine dep
    fix = _fixture(system, "array")
    assert fix["engine"] == "array"
    for size_str, want_hex in sorted(fix["latencies"][kind].items(),
                                     key=lambda kv: int(kv[0])):
        got = _run(fix, kind, int(size_str), "array")
        assert float.hex(got) == want_hex, (
            f"{system}/{kind}/{size_str}: array latency drifted "
            f"({float.hex(got)} != golden {want_hex}); regenerate the "
            f"array fixtures and re-pin DELTA_ENVELOPE if intentional"
        )


@pytest.mark.parametrize("system", SYSTEMS)
@pytest.mark.parametrize("kind", ("bcast", "allreduce"))
def test_engine_delta_envelope(system, kind):
    """(array - event)/event stays inside the per-point pinned envelope.

    Computed purely from the two golden fixtures — no simulation — so
    this stays honest even when either fixture is regenerated: moving one
    without re-checking the deltas fails here.
    """
    pytest.importorskip("numpy")
    ev = _fixture(system, "event")["latencies"][kind]
    ar = _fixture(system, "array")["latencies"][kind]
    assert set(ev) == set(ar)
    for size_str in sorted(ev, key=int):
        size = int(size_str)
        e = float.fromhex(ev[size_str])
        a = float.fromhex(ar[size_str])
        pct = (a - e) / e * 100.0
        lo, hi = DELTA_ENVELOPE[(system, kind, size)]
        assert lo <= pct <= hi, (
            f"{system}/{kind}/{size}: array deviates {pct:+.2f}% from "
            f"event, outside pinned envelope [{lo}, {hi}]%"
        )


def test_envelope_covers_all_golden_points():
    for system in SYSTEMS:
        fix = _fixture(system, "array")
        for kind, sizes in fix["latencies"].items():
            for size_str in sizes:
                assert (system, kind, int(size_str)) in DELTA_ENVELOPE


@pytest.mark.slow
def test_cluster_1024_rank_bcast_wall_bound():
    """The ISSUE target: a 1024-rank cluster bcast in single-digit
    seconds of wall time on the array engine (the event engine takes
    ~5x longer). The bound is generous (CI machines vary) but still
    catches an order-of-magnitude regression."""
    pytest.importorskip("numpy")
    from repro.cluster import build_cluster
    from repro.xhc.component import Xhc

    node, topo, _model = build_cluster(
        n_nodes=32, numa_per_node=4, cores_per_numa=8,
        options=RunOptions(engine="array"))
    assert topo.n_cores == 1024
    t0 = time.perf_counter()
    lat = run_collective(
        "bcast", "unused", topo.n_cores,
        lambda: Xhc(hierarchy="numa+socket"), 1 << 20,
        warmup=0, iters=1, node=node)
    wall = time.perf_counter() - t0
    assert lat > 0.0
    assert wall < 30.0, f"1024-rank array bcast took {wall:.1f}s wall"
