"""Rank-to-core mapping policies (the Fig. 9a scenarios)."""

import pytest

from repro.errors import MPIError
from repro.mpi import map_ranks
from repro.topology import get_system

from conftest import small_topo


def test_map_core_is_sequential():
    topo = small_topo()
    assert map_ranks(topo, 6, "core") == [0, 1, 2, 3, 4, 5]


def test_map_numa_round_robins():
    topo = small_topo()  # 4 numa nodes of 4 cores
    cores = map_ranks(topo, 8, "numa")
    numas = [topo.numa_of_core(c).index for c in cores]
    assert numas == [0, 1, 2, 3, 0, 1, 2, 3]


def test_map_numa_full_machine_is_a_permutation():
    topo = get_system("epyc-2p")
    cores = map_ranks(topo, 64, "numa")
    assert sorted(cores) == list(range(64))


def test_explicit_mapping():
    topo = small_topo()
    assert map_ranks(topo, 3, [5, 2, 9]) == [5, 2, 9]


def test_explicit_mapping_validation():
    topo = small_topo()
    with pytest.raises(MPIError):
        map_ranks(topo, 2, [1])            # wrong length
    with pytest.raises(MPIError):
        map_ranks(topo, 2, [1, 1])         # duplicate core
    with pytest.raises(MPIError):
        map_ranks(topo, 2, [1, 99])        # out of range


def test_too_many_ranks():
    topo = small_topo()
    with pytest.raises(MPIError):
        map_ranks(topo, 17, "core")


def test_unknown_policy():
    with pytest.raises(MPIError):
        map_ranks(small_topo(), 4, "zigzag")
