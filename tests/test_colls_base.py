"""Algorithm helpers: tree shapes, chunking, partitioning (with properties)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MPIError
from repro.mpi.colls.base import (binomial_tree, chain_next, chunks,
                                  knomial_tree, partition)


def check_tree(tree_fn, size, root, **kw):
    """Generic validity: every rank reachable exactly once from the root."""
    parents = {}
    children_of = {}
    for rank in range(size):
        parent, children = tree_fn(rank, size, root, **kw)
        parents[rank] = parent
        children_of[rank] = children
    assert parents[root] is None
    # parent/children relations are mutual.
    for rank in range(size):
        for child in children_of[rank]:
            assert parents[child] == rank
    # The tree is connected and acyclic: BFS covers everyone.
    seen = {root}
    frontier = [root]
    while frontier:
        nxt = []
        for r in frontier:
            for c in children_of[r]:
                assert c not in seen, "cycle or double-parent"
                seen.add(c)
                nxt.append(c)
        frontier = nxt
    assert seen == set(range(size))


@settings(max_examples=60, deadline=None)
@given(size=st.integers(1, 130), root=st.integers(0, 129))
def test_binomial_tree_valid(size, root):
    check_tree(binomial_tree, size, root % size)


@settings(max_examples=60, deadline=None)
@given(size=st.integers(1, 130), root=st.integers(0, 129),
       radix=st.integers(2, 5))
def test_knomial_tree_valid(size, root, radix):
    check_tree(knomial_tree, size, root % size, radix=radix)


def test_binomial_depth_is_logarithmic():
    def depth(rank):
        d = 0
        while rank is not None:
            rank = binomial_tree(rank, 64, 0)[0]
            d += 1
        return d - 1
    assert max(depth(r) for r in range(64)) == 6


def test_knomial_radix_reduces_depth():
    def depth(rank, radix):
        d = 0
        while rank is not None:
            rank = knomial_tree(rank, 64, 0, radix)[0]
            d += 1
        return d - 1
    assert max(depth(r, 4) for r in range(64)) == 3


def test_knomial_radix_validation():
    with pytest.raises(MPIError):
        knomial_tree(0, 8, 0, 1)


def test_chain():
    assert chain_next(0, 4, 0) == (None, 1)
    assert chain_next(3, 4, 0) == (2, None)
    assert chain_next(0, 4, 2) == (3, 1)  # rotated
    assert chain_next(1, 4, 2) == (0, None)


def test_chunks_cover_exactly():
    pieces = list(chunks(100, 32))
    assert pieces == [(0, 32), (32, 32), (64, 32), (96, 4)]
    with pytest.raises(MPIError):
        list(chunks(10, 0))


@settings(max_examples=60, deadline=None)
@given(total=st.integers(0, 1 << 20), chunk=st.integers(1, 1 << 17))
def test_chunks_property(total, chunk):
    pieces = list(chunks(total, chunk))
    assert sum(n for _, n in pieces) == total
    offsets = [o for o, _ in pieces]
    assert offsets == sorted(offsets)
    assert all(0 < n <= chunk for _, n in pieces)


@settings(max_examples=80, deadline=None)
@given(total=st.integers(0, 1 << 20), parts=st.integers(1, 64),
       minimum=st.integers(1, 4096),
       align=st.sampled_from([1, 2, 4, 8]))
def test_partition_properties(total, parts, minimum, align):
    ranges = partition(total, parts, minimum=minimum, align=align)
    # Exactly covers [0, total), contiguously, in order.
    assert sum(n for _, n in ranges) == total
    pos = 0
    for off, n in ranges:
        assert off == pos and n > 0
        pos += n
    assert len(ranges) <= parts
    # Minimum honored except possibly by the final remainder.
    for off, n in ranges[:-1]:
        assert n >= minimum
    # Alignment honored except possibly at the tail.
    for off, _ in ranges:
        assert off % align == 0


def test_partition_small_message_single_worker():
    """The paper's minimum-index rule: tiny payloads get one reducer."""
    assert len(partition(8, 16, minimum=512)) == 1


def test_partition_zero_total():
    assert partition(0, 4) == []


def test_partition_parts_validation():
    with pytest.raises(MPIError):
        partition(10, 0)
