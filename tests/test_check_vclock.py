"""Vector-clock semantics (repro.check.vclock)."""

from repro.check.vclock import VClock


def test_tick_and_get():
    vc = VClock()
    assert vc.get(3) == 0
    vc.tick(3)
    vc.tick(3)
    assert vc.get(3) == 2
    assert vc.get(4) == 0


def test_join_takes_componentwise_max():
    a = VClock({1: 5, 2: 1})
    b = VClock({2: 7, 3: 2})
    a.join(b)
    assert a.get(1) == 5
    assert a.get(2) == 7
    assert a.get(3) == 2
    # b is untouched
    assert b.get(1) == 0


def test_copy_is_independent():
    a = VClock({1: 1})
    b = a.copy()
    b.tick(1)
    assert a.get(1) == 1
    assert b.get(1) == 2


def test_happened_before_epoch_rule():
    reader = VClock({1: 3, 2: 9})
    # An access stamped (pid=2, epoch<=9) is ordered before the reader.
    assert reader.happened_before(2, 9)
    assert reader.happened_before(2, 1)
    assert not reader.happened_before(2, 10)
    assert not reader.happened_before(7, 1)


def test_equality_ignores_zero_components():
    assert VClock({1: 2, 5: 0}) == VClock({1: 2})
    assert VClock({1: 2}) != VClock({1: 3})


def test_release_acquire_transfers_order():
    """The protocol the race checker runs: release joins writer into the
    sync clock and ticks; acquire joins the sync clock into the reader."""
    writer, flag, reader = VClock({1: 1}), VClock(), VClock({2: 1})
    write_epoch = writer.get(1)
    flag.join(writer)      # release
    writer.tick(1)
    reader.join(flag)      # acquire
    assert reader.happened_before(1, write_epoch)
    # Writer work done *after* the release is not ordered:
    assert not reader.happened_before(1, writer.get(1))
