"""Trace analysis utilities."""

import numpy as np

from repro.mpi import World
from repro.node import Node
from repro.sim.trace import (Timeline, bytes_by_distance,
                             count_message_distances, message_matrix,
                             messages, resource_report)
from repro.xhc import Xhc

from conftest import small_topo


def run_bcast(record_copies=False, nranks=8, size=4096):
    node = Node(small_topo(), data_movement=False,
                record_copies=record_copies)
    world = World(node, nranks)
    comm = world.communicator(Xhc())

    def program(comm_, ctx):
        buf = ctx.alloc("b", size)
        yield from comm_.bcast(ctx, buf.whole(), 0)
    comm.run(program)
    return node


def test_messages_and_matrix():
    node = run_bcast()
    msgs = messages(node.engine)
    assert len(msgs) == 7          # one pull edge per non-root rank
    matrix = message_matrix(node.engine, 8)
    assert sum(map(sum, matrix)) == 7
    assert all(matrix[r][r] == 0 for r in range(8))


def test_count_message_distances_matches_hierarchy():
    node = run_bcast()
    counts = count_message_distances(node)
    # mini topo (2 sockets x 2 numa x 4): L0 = 4 numa groups of 2 ranks?
    # With 8 ranks on cores 0-7 (socket 0): 2 numa groups of 4, socket
    # level collapses -> edges: 6 intra-numa + 1 inter-numa.
    assert sum(counts.values()) == 7
    assert counts["inter-socket"] == 0
    assert counts["inter-numa"] == 1
    assert counts["intra-numa"] == 6


def test_bytes_by_distance():
    node = run_bcast(size=1000)
    by = bytes_by_distance(node)
    assert sum(by.values()) == 7 * 1000


def test_timeline_rendering():
    node = run_bcast(record_copies=True, size=100_000)
    tl = Timeline.from_engine(node.engine)
    assert tl.end_time > 0
    assert tl.busy_events(1) > 0
    art = tl.render(width=40)
    assert "core" in art and "#" in art
    empty = Timeline.from_engine(run_bcast(record_copies=False).engine)
    assert "no copy records" in empty.render()


def test_wait_report():
    from repro.sim.trace import wait_report
    node = run_bcast(size=100_000)
    report = wait_report(node.engine)
    assert report, "ranks must have waited on something"
    totals = [r["total_wait_s"] for r in report]
    assert totals == sorted(totals, reverse=True)
    targets = {r["target"] for r in report}
    # Fan-out progress waits dominate a broadcast.
    assert any(t.startswith("flag xhc") for t in targets)


def test_wait_time_accounted_per_process():
    node = run_bcast(size=100_000)
    leaves = [p for p in node.engine.processes if p.name.startswith("rank")
              and p.name != "rank0"]
    assert any(p.wait_time > 0 for p in leaves)
    for p in leaves:
        assert abs(sum(p.wait_breakdown.values()) - p.wait_time) < 1e-12


def test_resource_report_sorted():
    node = run_bcast(size=200_000)
    report = resource_report(node)
    assert report, "some resource must have served bytes"
    served = [r["bytes_served"] for r in report]
    assert served == sorted(served, reverse=True)
    assert all(r["peak_active"] >= 0 for r in report)


def test_observe_full_feeds_timeline():
    # observe=True implies copy recording: the legacy Timeline keeps
    # working without passing record_copies separately.
    node = Node(small_topo(), data_movement=False, observe=True)
    world = World(node, 8)
    comm = world.communicator(Xhc())

    def program(comm_, ctx):
        buf = ctx.alloc("b", 100_000)
        yield from comm_.bcast(ctx, buf.whole(), 0)
    comm.run(program)
    tl = Timeline.from_engine(node.engine)
    assert tl.busy_events(1) > 0
    assert "#" in tl.render(width=30)
    # Observer copy spans cover at least the completed transfers the
    # legacy trace records (spans are per re-pricing quantum).
    copy_spans = [s for s in node.obs.spans if s.cat == "copy"]
    legacy = [t for t in node.engine.trace if t[1] == "copy"]
    assert legacy and len(copy_spans) >= len(legacy)
