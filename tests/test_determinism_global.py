"""Global determinism: identical scenarios give identical timelines.

The whole benchmark methodology rests on this — regenerated figures must
be reproducible bit-for-bit on the same build.
"""

import numpy as np
import pytest

from repro.bench.osu import run_collective
from repro.bench.components import COMPONENTS
from repro.mpi import FLOAT, SUM, World
from repro.node import Node
from repro.xhc import Xhc

from conftest import small_topo


@pytest.mark.parametrize("comp", ["tuned", "ucc", "xhc-tree", "sm"])
def test_collective_latency_reproducible(comp):
    kw = dict(warmup=1, iters=3)
    a = run_collective("bcast", "epyc-1p", 16, COMPONENTS[comp], 4096, **kw)
    b = run_collective("bcast", "epyc-1p", 16, COMPONENTS[comp], 4096, **kw)
    assert a == b


def test_full_timeline_reproducible():
    def run():
        node = Node(small_topo())
        world = World(node, 8)
        comm = world.communicator(Xhc())
        stamps = []

        def program(comm_, ctx):
            s = ctx.alloc("s", 2048)
            r = ctx.alloc("r", 2048)
            for _ in range(3):
                yield from comm_.allreduce(ctx, s.whole(), r.whole(),
                                           SUM, FLOAT)
                stamps.append(round(ctx.now, 12))
        comm.run(program)
        return stamps, node.engine.events_processed, node.engine.now

    assert run() == run()


def test_apps_reproducible():
    from repro.apps import run_miniamr
    a = run_miniamr("epyc-1p", COMPONENTS["xhc-tree"], "x", nranks=8)
    b = run_miniamr("epyc-1p", COMPONENTS["xhc-tree"], "x", nranks=8)
    assert a.total_time == b.total_time
    assert a.collective_time == b.collective_time
