"""Engine semantics: scheduling, flags, atomics, determinism, deadlock."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.node import Node
from repro.sim import primitives as P
from repro.sim.syncobj import Atomic, Flag

from conftest import small_topo


def fresh_node():
    return Node(small_topo(), data_movement=True)


def test_compute_advances_time():
    node = fresh_node()
    def prog():
        yield P.Compute(1e-6)
        yield P.Compute(2e-6)
    node.engine.spawn(prog(), core=0)
    assert node.engine.run() == pytest.approx(3e-6)


def test_same_core_compute_serializes_across_processes():
    node = fresh_node()
    def prog():
        yield P.Compute(10e-6)
    node.engine.spawn(prog(), core=0)
    node.engine.spawn(prog(), core=0)
    assert node.engine.run() == pytest.approx(20e-6)


def test_tiny_ops_interleave_for_free():
    """Sub-microsecond work slips between booked slices (no queueing)."""
    node = fresh_node()
    def big():
        yield P.Compute(100e-6)
    def tiny():
        for _ in range(10):
            yield P.Compute(0.1e-6)
    node.engine.spawn(big(), core=0)
    node.engine.spawn(tiny(), core=0)
    assert node.engine.run() == pytest.approx(100e-6, rel=0.05)


def test_different_cores_run_in_parallel():
    node = fresh_node()
    def prog():
        yield P.Compute(1e-6)
    node.engine.spawn(prog(), core=0)
    node.engine.spawn(prog(), core=1)
    assert node.engine.run() == pytest.approx(1e-6)


def test_copy_moves_data():
    node = fresh_node()
    sp = node.new_address_space(0, 0)
    a = sp.alloc("a", 128)
    b = sp.alloc("b", 128)
    a.fill(42)
    def prog():
        yield P.Copy(src=a.whole(), dst=b.whole())
    node.engine.spawn(prog(), core=0)
    node.engine.run()
    assert (b.data == 42).all()


def test_large_copy_is_quantized_but_equivalent():
    """A >64K copy is internally split; the data still lands whole."""
    node = fresh_node()
    sp = node.new_address_space(0, 0)
    a = sp.alloc("a", 300_000)
    b = sp.alloc("b", 300_000)
    a.data[:] = (np_arange := __import__("numpy").arange(300_000) % 251)
    def prog():
        yield P.Copy(src=a.whole(), dst=b.whole())
    node.engine.spawn(prog(), core=0)
    t = node.engine.run()
    assert (b.data == a.data).all()
    assert t > 0


def test_flag_wait_and_wake():
    node = fresh_node()
    flag = Flag("f", owner_core=0)
    order = []
    def writer():
        yield P.Compute(5e-6)
        yield P.SetFlag(flag, 3)
        order.append("set")
    def reader():
        yield P.WaitFlag(flag, 3)
        order.append("woke")
    node.engine.spawn(reader(), core=1)
    node.engine.spawn(writer(), core=0)
    node.engine.run()
    assert order == ["set", "woke"]


def test_wait_flag_already_satisfied():
    node = fresh_node()
    flag = Flag("f", owner_core=0)
    flag.value = 10
    def reader():
        yield P.WaitFlag(flag, 5)
    node.engine.spawn(reader(), core=1)
    node.engine.run()  # terminates


def test_single_writer_violation_raises():
    node = fresh_node()
    flag = Flag("f", owner_core=0)
    def intruder():
        yield P.SetFlag(flag, 1)
    node.engine.spawn(intruder(), core=3)
    with pytest.raises(SimulationError, match="single-writer"):
        node.engine.run()


def test_atomic_returns_old_value_and_orders():
    node = fresh_node()
    atom = Atomic("a", home_core=0)
    seen = []
    def prog(core):
        old = yield P.AtomicRMW(atom, 1)
        seen.append(old)
    for core in range(4):
        node.engine.spawn(prog(core), core=core)
    node.engine.run()
    assert sorted(seen) == [0, 1, 2, 3]
    assert atom.value == 4


def test_wait_atomic():
    node = fresh_node()
    atom = Atomic("a", home_core=0)
    done = []
    def waiter():
        yield P.WaitAtomic(atom, 3)
        done.append(True)
    def adder(core):
        yield P.Compute(1e-6)
        yield P.AtomicRMW(atom, 1)
    node.engine.spawn(waiter(), core=0)
    for core in (1, 2, 3):
        node.engine.spawn(adder(core), core=core)
    node.engine.run()
    assert done == [True]


def test_deadlock_detection():
    node = fresh_node()
    flag = Flag("never", owner_core=0)
    def stuck():
        yield P.WaitFlag(flag, 1)
    node.engine.spawn(stuck(), core=1, name="stuck-proc")
    with pytest.raises(DeadlockError, match="stuck-proc"):
        node.engine.run()


def test_non_primitive_yield_rejected():
    node = fresh_node()
    def bad():
        yield "not a primitive"
    node.engine.spawn(bad(), core=0)
    with pytest.raises(SimulationError, match="non-primitive"):
        node.engine.run()


def test_trace_records():
    node = fresh_node()
    def prog():
        yield P.Trace("message", {"src": 1, "dst": 2})
    node.engine.spawn(prog(), core=0)
    node.engine.run()
    assert node.engine.trace == [(0.0, "message", {"src": 1, "dst": 2})]


def test_run_until():
    node = fresh_node()
    def prog():
        yield P.Compute(10e-6)
    node.engine.spawn(prog(), core=0)
    t = node.engine.run(until=1e-6)
    assert t == pytest.approx(1e-6)
    assert node.engine.alive()
    node.engine.run()
    assert not node.engine.alive()


def test_determinism():
    """Two identical scenarios produce identical event timelines."""
    def scenario():
        node = fresh_node()
        flag = Flag("f", owner_core=0)
        times = []
        def writer():
            yield P.Compute(1e-6)
            yield P.SetFlag(flag, 1)
        def reader(core):
            yield P.WaitFlag(flag, 1)
            yield P.Compute(0.5e-6)
            times.append((core, node.engine.now))
        node.engine.spawn(writer(), core=0)
        for core in range(1, 8):
            node.engine.spawn(reader(core), core=core)
        end = node.engine.run()
        return end, times
    assert scenario() == scenario()


def test_process_return_value():
    node = fresh_node()
    def prog():
        yield P.Compute(1e-9)
        return "result!"
    proc = node.engine.spawn(prog(), core=0)
    node.engine.run()
    assert proc.result == "result!"
    assert proc.finish_time is not None


def test_syscall_and_page_fault_costs():
    node = fresh_node()
    def prog():
        yield P.Syscall("generic")
        yield P.PageFaults(10)
    node.engine.spawn(prog(), core=0)
    t = node.engine.run()
    expected = node.model.syscall_cost + 10 * node.model.page_fault_cost
    assert t == pytest.approx(expected)
