"""Integration stress: mixed operations, many iterations, sub-communicators.

These exercise the monotonic-ledger machinery under adversarial op
sequences — the place where reset races, slot reuse bugs and ledger
mismatches would surface.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mpi import FLOAT, SUM, World
from repro.mpi.colls import SmColl, Smhc, Tuned, Ucc
from repro.node import Node
from repro.sim import primitives as P
from repro.xhc import Xhc

from conftest import small_topo


OPS = ("bcast", "allreduce", "reduce", "barrier", "gather", "allgather",
       "alltoall", "reduce_scatter")


def run_sequence(factory, sequence, nranks=8, block=256):
    """Drive an arbitrary op sequence, verifying payloads at every step."""
    node = Node(small_topo())
    world = World(node, nranks)
    comm = world.communicator(factory())

    def program(comm_, ctx):
        me = comm_.rank_of(ctx)
        small = ctx.alloc("small", block)
        small2 = ctx.alloc("small2", block)
        big = ctx.alloc("big", block * nranks)
        big2 = ctx.alloc("big2", block * nranks)
        for it, op in enumerate(sequence):
            if op == "bcast":
                if me == it % nranks:
                    small.fill((it * 3 + 1) % 251)
                yield from comm_.bcast(ctx, small.whole(), it % nranks)
                assert np.all(small.data == (it * 3 + 1) % 251), (op, it)
            elif op == "allreduce":
                small.view().as_dtype(np.float32)[:] = me + it
                yield from comm_.allreduce(ctx, small.whole(),
                                           small2.whole(), SUM, FLOAT)
                expect = sum(range(nranks)) + nranks * it
                assert np.all(small2.view().as_dtype(np.float32)
                              == expect), (op, it)
            elif op == "reduce":
                root = it % nranks
                small.view().as_dtype(np.float32)[:] = 1.0
                yield from comm_.reduce(ctx, small.whole(),
                                        small2.whole(), SUM, FLOAT, root)
                if me == root:
                    assert np.all(small2.view().as_dtype(np.float32)
                                  == nranks), (op, it)
            elif op == "barrier":
                yield from comm_.barrier(ctx)
            elif op == "gather":
                root = (it + 1) % nranks
                small.fill(me + 1)
                yield from comm_.gather(
                    ctx, small.whole(),
                    big.whole() if me == root else None, root)
                if me == root:
                    for q in range(nranks):
                        assert np.all(
                            big.data[q * block:(q + 1) * block] == q + 1)
            elif op == "allgather":
                small.fill((me + it) % 251)
                yield from comm_.allgather(ctx, small.whole(), big.whole())
                for q in range(nranks):
                    assert np.all(big.data[q * block:(q + 1) * block]
                                  == (q + it) % 251), (op, it)
            elif op == "alltoall":
                for q in range(nranks):
                    big.data[q * block:(q + 1) * block] = (me + q) % 251
                yield from comm_.alltoall(ctx, big.whole(), big2.whole())
                for q in range(nranks):
                    assert np.all(big2.data[q * block:(q + 1) * block]
                                  == (q + me) % 251), (op, it)
            elif op == "reduce_scatter":
                big.view().as_dtype(np.float32)[:] = me
                yield from comm_.reduce_scatter_block(
                    ctx, big.whole(), small2.whole(), SUM, FLOAT)
                assert np.all(small2.view().as_dtype(np.float32)
                              == sum(range(nranks))), (op, it)
    comm.run(program)


def test_xhc_full_mix():
    run_sequence(Xhc, list(OPS) * 2)


def test_tuned_full_mix():
    run_sequence(Tuned, list(OPS) * 2)


def test_xhc_many_iterations_small():
    """Dozens of CICO ops stress the slot ring and deferred acks."""
    run_sequence(Xhc, ["bcast", "allreduce"] * 25)


@pytest.mark.parametrize("factory", [Xhc, Ucc, SmColl,
                                     lambda: Smhc(tree=True)])
def test_alternating_roots_and_sizes(factory):
    node = Node(small_topo())
    world = World(node, 8)
    comm = world.communicator(factory())

    def program(comm_, ctx):
        me = comm_.rank_of(ctx)
        for it, size in enumerate([16, 40_000, 700, 9_000, 64, 120_000]):
            buf = ctx.alloc(f"b{it}", size)
            root = (3 * it) % 8
            if me == root:
                buf.fill(it + 1)
            yield from comm_.bcast(ctx, buf.whole(), root)
            assert np.all(buf.data == it + 1), (me, it)
    comm.run(program)


def test_disjoint_subcommunicators_interleave():
    """Two NUMA-local communicators plus the world comm, all active."""
    node = Node(small_topo())
    world = World(node, 8)
    world_comm = world.communicator(Xhc())
    low = world.communicator(Xhc(), ranks=[0, 1, 2, 3])
    high = world.communicator(Xhc(), ranks=[4, 5, 6, 7])

    def program(comm_, ctx):
        me = comm_.rank_of(ctx)
        sub = low if world.ranks.index(ctx) < 4 else high
        sub_me = sub.rank_of(ctx)
        wbuf = ctx.alloc("w", 512)
        sbuf = ctx.alloc("s", 512)
        for it in range(3):
            if me == 0:
                wbuf.fill(100 + it)
            yield from comm_.bcast(ctx, wbuf.whole(), 0)
            if sub_me == 0:
                sbuf.fill(it + 1)
            yield from sub.bcast(ctx, sbuf.whole(), 0)
            assert np.all(wbuf.data == 100 + it)
            assert np.all(sbuf.data == it + 1)
    world_comm.run(program)


@settings(max_examples=10, deadline=None)
@given(seq=st.lists(st.sampled_from(OPS), min_size=1, max_size=10),
       nranks=st.sampled_from([4, 8, 13]))
def test_random_sequences_xhc(seq, nranks):
    """Property: any op sequence completes correctly on XHC."""
    run_sequence(Xhc, seq, nranks=nranks)
