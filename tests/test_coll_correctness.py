"""Cross-component correctness battery.

Every collectives component must deliver MPI-correct results for every
size class (CICO/eager vs single-copy/rendezvous paths), rank count
(powers of two and odd), root, and mapping policy.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mpi import DOUBLE, MAX, SUM
from repro.mpi.colls import SmColl, Smhc, Tuned, TunedXhc, Ucc, Xbrc
from repro.tune.table import DecisionTable
from repro.xhc import Xhc, XhcConfig

from conftest import (assert_allreduce_correct, assert_bcast_correct,
                      run_allreduce, run_bcast, small_topo)


def _tuned_xhc():
    """TunedXhc over an inline mini-system table spanning the size
    classes, so small and large messages exercise different delegates."""
    table = DecisionTable()
    table.record("mini", "bcast", 1024, XhcConfig(hierarchy="flat"), 1e-6)
    table.record("mini", "bcast", 100_000,
                 XhcConfig(hierarchy="l3+numa", chunk_size=16384), 1e-6)
    table.record("mini", "allreduce", 100_000,
                 XhcConfig(hierarchy="numa", chunk_size=16384), 1e-6)
    return TunedXhc(table=table)


BCAST_COMPONENTS = {
    "tuned": Tuned,
    "sm": SmColl,
    "ucc": Ucc,
    "smhc-flat": lambda: Smhc(tree=False),
    "smhc-tree": lambda: Smhc(tree=True),
    "xhc-flat": lambda: Xhc(hierarchy="flat"),
    "xhc-tree": Xhc,
    "xhc-tuned": _tuned_xhc,
}

ALLREDUCE_COMPONENTS = dict(BCAST_COMPONENTS, xbrc=Xbrc)
del ALLREDUCE_COMPONENTS["smhc-tree"]  # covered in its own module

SIZE_CLASSES = [8, 1024, 9000, 100_000]


@pytest.mark.parametrize("name", sorted(BCAST_COMPONENTS))
@pytest.mark.parametrize("size", SIZE_CLASSES)
def test_bcast_correct(name, size):
    out, _ = run_bcast(BCAST_COMPONENTS[name], nranks=8, size=size, iters=2)
    assert_bcast_correct(out, 8, 101)


@pytest.mark.parametrize("name", sorted(ALLREDUCE_COMPONENTS))
@pytest.mark.parametrize("size", SIZE_CLASSES)
def test_allreduce_correct(name, size):
    out, _ = run_allreduce(ALLREDUCE_COMPONENTS[name], nranks=8, size=size,
                           iters=2)
    assert_allreduce_correct(out, 8, iters=2)


@pytest.mark.parametrize("name", sorted(BCAST_COMPONENTS))
@pytest.mark.parametrize("nranks", [1, 2, 5, 13, 16])
def test_bcast_rank_counts(name, nranks):
    out, _ = run_bcast(BCAST_COMPONENTS[name], nranks=nranks, size=2048)
    assert_bcast_correct(out, nranks, 101)


@pytest.mark.parametrize("name", sorted(ALLREDUCE_COMPONENTS))
@pytest.mark.parametrize("nranks", [1, 2, 7, 16])
def test_allreduce_rank_counts(name, nranks):
    out, _ = run_allreduce(ALLREDUCE_COMPONENTS[name], nranks=nranks,
                           size=2048)
    assert_allreduce_correct(out, nranks)


@pytest.mark.parametrize("name", sorted(BCAST_COMPONENTS))
@pytest.mark.parametrize("root", [3, 15])
def test_bcast_nonzero_root(name, root):
    out, _ = run_bcast(BCAST_COMPONENTS[name], nranks=16, size=4096,
                       root=root)
    assert_bcast_correct(out, 16, 101)


@pytest.mark.parametrize("name", ["tuned", "ucc", "xhc-tree"])
def test_bcast_map_numa(name):
    out, _ = run_bcast(BCAST_COMPONENTS[name], nranks=16, size=4096,
                       mapping="numa")
    assert_bcast_correct(out, 16, 101)


@pytest.mark.parametrize("name", ["tuned", "ucc", "xbrc", "xhc-tree"])
def test_allreduce_max_double(name):
    """Non-SUM op and 8-byte dtype."""
    out, _ = run_allreduce(ALLREDUCE_COMPONENTS[name], nranks=8, size=1024,
                           op=MAX, dtype=DOUBLE, iters=1)
    for rank, rec in out.items():
        assert np.all(rec["data"] == 8)  # max over ranks of (rank+1)


@pytest.mark.parametrize("name", sorted(BCAST_COMPONENTS))
def test_bcast_pattern_survives(name):
    """Payload integrity: a position-dependent pattern, not a constant."""
    def pattern(buf, it):
        buf.data[:] = (np.arange(buf.size) * (it + 3)) % 251

    out, _ = run_bcast(BCAST_COMPONENTS[name], nranks=8, size=5000,
                       pattern=pattern, iters=2)
    expect = (np.arange(5000) * 4) % 251
    for rank, rec in out.items():
        assert np.array_equal(rec["data"], expect), f"rank {rank}"


@settings(max_examples=12, deadline=None)
@given(size=st.integers(4, 60_000).map(lambda x: x - x % 4),
       nranks=st.integers(2, 12))
def test_xhc_allreduce_random_shapes(size, nranks):
    """Property: XHC allreduce is correct for arbitrary sizes/rank counts."""
    size = max(size, 4)
    out, _ = run_allreduce(Xhc, nranks=nranks, size=size, iters=1)
    assert_allreduce_correct(out, nranks, iters=1)


@settings(max_examples=12, deadline=None)
@given(size=st.integers(1, 60_000), nranks=st.integers(2, 12),
       root=st.integers(0, 11))
def test_xhc_bcast_random_shapes(size, nranks, root):
    out, _ = run_bcast(Xhc, nranks=nranks, size=size, root=root % nranks,
                       iters=1)
    assert_bcast_correct(out, nranks, 100)
