"""Span tracing (repro.obs.spans): observer behavior + engine wiring."""

import pytest

from repro.mpi import World
from repro.node import Node
from repro.obs import NULL_OBSERVER, NullObserver, Observer
from repro.obs.spans import SETUP_TRACK, WaitRecord
from repro.xhc import Xhc

from conftest import small_topo


def run_bcast(observe=True, nranks=8, size=4096):
    node = Node(small_topo(), data_movement=False, observe=observe)
    world = World(node, nranks)
    comm = world.communicator(Xhc())

    def program(comm_, ctx):
        buf = ctx.alloc("b", size)
        yield from comm_.bcast(ctx, buf.whole(), 0)
    comm.run(program)
    return node


# -- observer mechanics -------------------------------------------------------


def test_default_node_has_null_observer():
    node = Node(small_topo(), data_movement=False)
    assert node.obs is NULL_OBSERVER
    assert not node.obs.enabled
    # All no-ops, shared handles.
    with node.obs.span("anything") as rec:
        assert rec is None
    gen = iter([1, 2])
    assert node.obs.wrap(gen, "x") is gen
    assert NullObserver.span(node.obs, "a") is NullObserver.span(node.obs, "b")


def test_span_nesting_and_tracks():
    node = Node(small_topo(), data_movement=False, observe=True)
    obs = node.obs
    assert isinstance(obs, Observer)
    # Outside any simulated process -> SETUP_TRACK.
    with obs.span("outer", cat="phase", k=1):
        with obs.span("inner"):
            pass
    inner, outer = obs.spans  # inner closes first
    assert (inner.name, outer.name) == ("inner", "outer")
    assert inner.track == outer.track == SETUP_TRACK
    assert inner.parent == outer.id
    assert outer.parent is None
    assert outer.args == {"k": 1}
    assert obs.track_name(SETUP_TRACK) == "setup"


def test_wait_record_group():
    w = WaitRecord(0, "xhc.avail.7", "flag", 0.0)
    assert w.group == "xhc.avail"
    assert WaitRecord(0, "barrier", "flag", 0.0).group == "barrier"


def test_flush_open_closes_dangling_spans():
    node = Node(small_topo(), data_movement=False, observe=True)
    ctx = node.obs.span("left.open")
    ctx.__enter__()
    assert not node.obs.spans
    node.obs.flush_open()
    assert [s.name for s in node.obs.spans] == ["left.open"]
    assert node.obs.spans[0].end is not None


def test_span_limit_drops_not_grows():
    node = Node(small_topo(), data_movement=False, observe=True)
    node.obs.span_limit = 2
    for i in range(5):
        with node.obs.span(f"s{i}"):
            pass
    assert len(node.obs.spans) == 2
    assert node.obs.dropped == 3


# -- engine wiring ------------------------------------------------------------


def test_observed_bcast_records_spans_and_waits():
    node = run_bcast()
    obs = node.obs
    names = {s.name for s in obs.spans}
    assert "coll.bcast" in names
    assert "xhc.bcast" in names
    assert "xhc.fanout" in names
    cats = {s.cat for s in obs.spans}
    assert {"coll", "phase", "wait", "copy"} <= cats
    # Every span closed within simulated time.
    assert all(s.end is not None and s.end <= node.engine.now + 1e-15
               for s in obs.spans)
    # Every rank got its own track (plus setup).
    rank_tracks = {t for t in obs.tracks if t != SETUP_TRACK}
    assert len(rank_tracks) >= 8
    # Non-root ranks blocked at least once, and wakers were recorded.
    assert obs.waits
    assert all(w.end is not None for w in obs.waits)
    woken = [w for w in obs.waits if w.waker is not None]
    assert woken, "satisfied waits must know their waker"
    for w in woken:
        assert w.woke_at is not None
        assert w.start <= w.woke_at <= w.end


def test_collective_span_contains_phase_spans():
    node = run_bcast()
    obs = node.obs
    by_id = {s.id: s for s in obs.spans}
    fanouts = [s for s in obs.spans if s.name == "xhc.fanout"]
    assert fanouts
    for s in fanouts:
        assert s.parent is not None
        parent = by_id[s.parent]
        assert parent.name == "xhc.bcast"
        assert parent.start <= s.start and s.end <= parent.end


def test_observe_spans_mode_skips_copy_spans():
    spans_only = run_bcast(observe="spans").obs
    full = run_bcast(observe="full").obs
    assert not spans_only.record_copies
    assert not any(s.cat == "copy" for s in spans_only.spans)
    assert any(s.cat == "copy" for s in full.spans)
    # Phase structure is identical either way.
    assert ({s.name for s in spans_only.spans if s.cat != "copy"}
            == {s.name for s in full.spans if s.cat != "copy"})


def test_engine_counters_populated():
    node = run_bcast()
    m = node.obs.metrics
    assert m.value("flags.sets") > 0
    assert m.value("flags.wakeups") > 0
    assert m.value("flags.blocked_waits") == len(node.obs.waits)


def test_flag_allocator_reports_to_registry():
    from repro.obs.metrics import MetricsRegistry
    from repro.sync import FlagAllocator
    reg = MetricsRegistry()
    alloc = FlagAllocator(metrics=reg)
    alloc.flag("solo", owner_core=0)
    alloc.flag_group(["a", "b", "c"], owner_core=1, placement="shared")
    assert reg.value("flags.allocated") == 4
    assert reg.value("flags.lines_shared") == 3


def test_invalid_observe_value_rejected():
    from repro.errors import SimulationError
    with pytest.raises(SimulationError):
        Node(small_topo(), data_movement=False, observe="loud")


def test_span_tree_groups_and_sorts():
    node = run_bcast()
    tree = node.obs.span_tree()
    assert set(tree) <= set(node.obs.tracks)
    for spans in tree.values():
        starts = [s.start for s in spans]
        assert starts == sorted(starts)
