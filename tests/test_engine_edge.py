"""Engine edge cases and less-traveled primitive paths."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.node import Node
from repro.sim import primitives as P
from repro.sim.syncobj import Atomic, Flag, Line

from conftest import small_topo


def fresh():
    return Node(small_topo())


def test_flag_equality_comparison():
    node = fresh()
    flag = Flag("f", owner_core=0)
    hits = []

    def writer():
        for v in (1, 2, 3):
            yield P.Compute(10e-6)
            yield P.SetFlag(flag, v)

    def reader():
        yield P.WaitFlag(flag, 2, cmp="==")
        hits.append(node.engine.now)

    node.engine.spawn(reader(), core=1)
    node.engine.spawn(writer(), core=0)
    node.engine.run()
    assert hits and 20e-6 <= hits[0] < 30e-6


def test_bad_comparison_operator():
    node = fresh()
    flag = Flag("f", owner_core=0)
    flag.value = 5

    def reader():
        yield P.WaitFlag(flag, 2, cmp="<=")
    node.engine.spawn(reader(), core=1)
    with pytest.raises(SimulationError, match="comparison"):
        node.engine.run()


def test_flag_reset_with_waiters_rejected():
    flag = Flag("f", owner_core=0)
    flag.waiters.append((object(), 1, ">="))
    with pytest.raises(SimulationError, match="reset"):
        flag.reset()
    atom = Atomic("a", home_core=0)
    atom.waiters.append((object(), 1, ">="))
    with pytest.raises(SimulationError, match="reset"):
        atom.reset()


def test_engine_not_reentrant():
    node = fresh()

    def prog():
        yield P.Compute(1e-9)
        node.engine.run()  # illegal: called from inside the loop

    node.engine.spawn(prog(), core=0)
    with pytest.raises(SimulationError, match="reentrant"):
        node.engine.run()


def test_spawn_during_run():
    node = fresh()
    order = []

    def child():
        yield P.Compute(1e-6)
        order.append("child")

    def parent():
        yield P.Compute(1e-6)
        node.engine.spawn(child(), core=1)
        yield P.Compute(5e-6)
        order.append("parent")

    node.engine.spawn(parent(), core=0)
    node.engine.run()
    assert order == ["child", "parent"]


def test_run_until_then_resume():
    node = fresh()

    def prog():
        yield P.Compute(10e-6)
        yield P.Compute(10e-6)

    node.engine.spawn(prog(), core=0)
    t1 = node.engine.run(until=5e-6)
    assert t1 == pytest.approx(5e-6)
    t2 = node.engine.run()
    assert t2 == pytest.approx(20e-6)


def test_zero_byte_copy_is_free():
    node = fresh()
    sp = node.new_address_space(0, 0)
    a = sp.alloc("a", 64)
    b = sp.alloc("b", 64)

    def prog():
        yield P.Copy(src=a.view(0, 0), dst=b.view(0, 0))
    node.engine.spawn(prog(), core=0)
    assert node.engine.run() == 0.0


def test_set_flag_group_single_writer_enforced():
    node = fresh()
    mine = Flag("mine", owner_core=0)
    theirs = Flag("theirs", owner_core=3)

    def prog():
        yield P.SetFlagGroup((mine, theirs), 1)
    node.engine.spawn(prog(), core=0)
    with pytest.raises(SimulationError, match="single-writer"):
        node.engine.run()


def test_set_flag_group_wakes_all():
    node = fresh()
    flags = [Flag(f"f{i}", owner_core=0, line=None) for i in range(3)]
    woke = []

    def reader(i):
        yield P.WaitFlag(flags[i], 1)
        woke.append(i)

    def writer():
        yield P.Compute(10e-6)
        yield P.SetFlagGroup(tuple(flags), 1)

    for i in range(3):
        node.engine.spawn(reader(i), core=i + 1)
    node.engine.spawn(writer(), core=0)
    node.engine.run()
    assert sorted(woke) == [0, 1, 2]


def test_reduce_accumulate_data_plane():
    node = fresh()
    sp = node.new_address_space(0, 0)
    a = sp.alloc("a", 64)
    dst = sp.alloc("dst", 64)
    a.view().as_dtype(np.float32)[:] = 3.0
    dst.view().as_dtype(np.float32)[:] = 10.0

    def prog():
        yield P.Reduce(srcs=(a.whole(),), dst=dst.whole(), op=np.add,
                       dtype=np.float32, accumulate=True)
    node.engine.spawn(prog(), core=0)
    node.engine.run()
    assert np.all(dst.view().as_dtype(np.float32) == 13.0)


def test_reduce_empty_sources_is_noop():
    node = fresh()
    sp = node.new_address_space(0, 0)
    dst = sp.alloc("dst", 64)

    def prog():
        yield P.Reduce(srcs=(), dst=dst.whole())
    node.engine.spawn(prog(), core=0)
    assert node.engine.run() == 0.0


def test_atomic_line_sharing_with_flag():
    """An atomic and a flag may share a line; coherence state is common."""
    line = Line(owner_core=0)
    flag = Flag("f", owner_core=0, line=line)
    atom = Atomic("a", home_core=0, line=line)
    assert flag.line is atom.line


def test_negative_compute_rejected():
    node = fresh()

    def prog():
        yield P.Compute(-1.0)
    node.engine.spawn(prog(), core=0)
    with pytest.raises(SimulationError, match="negative"):
        node.engine.run()
