"""World/Communicator plumbing."""

import pytest

from repro.errors import MPIError
from repro.mpi import World
from repro.mpi.colls import Tuned
from repro.node import Node
from repro.sim import primitives as P

from conftest import small_topo


def test_world_pins_ranks():
    node = Node(small_topo())
    world = World(node, 6, mapping="numa")
    assert [ctx.core for ctx in world.ranks] == [0, 4, 8, 12, 1, 5]
    assert world.ranks[2].space.home_numa == 2


def test_world_needs_ranks():
    with pytest.raises(MPIError):
        World(Node(small_topo()), 0)


def test_sub_communicator():
    node = Node(small_topo())
    world = World(node, 8)
    comm = world.communicator(Tuned(), ranks=[1, 3, 5])
    assert comm.size == 3
    assert comm.core_of(2) == 5
    assert comm.rank_of(world.ranks[3]) == 1


def test_rank_of_non_member():
    node = Node(small_topo())
    world = World(node, 8)
    comm = world.communicator(Tuned(), ranks=[0, 1])
    with pytest.raises(MPIError):
        comm.rank_of(world.ranks[5])


def test_root_range_checked():
    node = Node(small_topo())
    world = World(node, 4)
    comm = world.communicator(Tuned())

    def program(comm_, ctx):
        buf = ctx.alloc("b", 8)
        yield from comm_.bcast(ctx, buf.whole(), 7)
    with pytest.raises(MPIError, match="root"):
        comm.run(program)


def test_allreduce_length_mismatch():
    node = Node(small_topo())
    world = World(node, 2)
    comm = world.communicator(Tuned())

    def program(comm_, ctx):
        s = ctx.alloc("s", 16)
        r = ctx.alloc("r", 32)
        yield from comm_.allreduce(ctx, s.whole(), r.whole())
    with pytest.raises(MPIError, match="mismatch"):
        comm.run(program)


def test_two_communicators_coexist():
    import numpy as np
    node = Node(small_topo())
    world = World(node, 8)
    comm_a = world.communicator(Tuned(), ranks=[0, 1, 2, 3])
    comm_b = world.communicator(Tuned(), ranks=[4, 5, 6, 7])
    results = {}

    def program_for(comm, tagval):
        def program(comm_, ctx):
            buf = ctx.alloc("b", 64)
            me = comm_.rank_of(ctx)
            if me == 0:
                buf.fill(tagval)
            yield from comm_.bcast(ctx, buf.whole(), 0)
            results[(tagval, me)] = int(buf.data[0])
        return program

    comm_a.launch(program_for(comm_a, 11))
    comm_b.launch(program_for(comm_b, 22))
    world.run()
    assert all(v == 11 for (tag, _), v in results.items() if tag == 11)
    assert all(v == 22 for (tag, _), v in results.items() if tag == 22)


def test_split_by_numa():
    import numpy as np
    from repro.xhc import Xhc
    node = Node(small_topo())
    world = World(node, 16)
    comms = world.split(Xhc, lambda ctx:
                        node.topo.numa_of_core(ctx.core).index)
    assert len(comms) == 4
    assert all(c.size == 4 for c in comms.values())
    results = {}

    def program_for(color, comm):
        def program(comm_, ctx):
            buf = ctx.alloc("b", 64)
            me = comm_.rank_of(ctx)
            if me == 0:
                buf.fill(color + 1)
            yield from comm_.bcast(ctx, buf.whole(), 0)
            results[(color, me)] = int(buf.data[0])
        return program

    for color, comm in comms.items():
        comm.launch(program_for(color, comm))
    world.run()
    for (color, me), v in results.items():
        assert v == color + 1


def test_split_requires_fresh_components():
    from repro.xhc import Xhc
    node = Node(small_topo())
    world = World(node, 8)
    comms = world.split(Xhc, lambda ctx: ctx.core % 2)
    assert comms[0].component is not comms[1].component


def test_channel_caching():
    node = Node(small_topo())
    world = World(node, 4)
    comm = world.communicator(Tuned())
    ch1 = comm.channel(0, 1, 0)
    ch2 = comm.channel(0, 1, 0)
    ch3 = comm.channel(0, 1, 9)
    assert ch1 is ch2 and ch1 is not ch3
