"""Alltoall and Reduce_scatter_block across components."""

import numpy as np
import pytest

from repro.mpi import FLOAT, SUM, World
from repro.mpi.colls import Tuned
from repro.node import Node
from repro.xhc import Xhc

from conftest import small_topo

COMPONENTS = {"tuned": Tuned, "xhc": Xhc}


def run_alltoall(factory, nranks=8, block=256, iters=2):
    node = Node(small_topo())
    world = World(node, nranks)
    comm = world.communicator(factory())
    out = {}

    def program(comm_, ctx):
        me = comm_.rank_of(ctx)
        for it in range(iters):
            s = ctx.alloc(f"s{it}", block * nranks)
            r = ctx.alloc(f"r{it}", block * nranks)
            for q in range(nranks):
                # Block addressed to q carries (me, q, it) fingerprint.
                s.data[q * block:(q + 1) * block] = (me * 31 + q * 7 + it) % 251
            yield from comm_.alltoall(ctx, s.whole(), r.whole())
            out.setdefault(it, {})[me] = r.data.copy()
    comm.run(program)
    return out


@pytest.mark.parametrize("name", sorted(COMPONENTS))
@pytest.mark.parametrize("nranks", [2, 7, 8])
def test_alltoall_correct(name, nranks):
    block = 256
    out = run_alltoall(COMPONENTS[name], nranks=nranks)
    for it, per_rank in out.items():
        for me, data in per_rank.items():
            for q in range(nranks):
                expect = (q * 31 + me * 7 + it) % 251
                got = data[q * block:(q + 1) * block]
                assert np.all(got == expect), (name, me, q, it)


def run_rs(factory, nranks=8, block=1024, iters=2):
    node = Node(small_topo())
    world = World(node, nranks)
    comm = world.communicator(factory())
    out = {}

    def program(comm_, ctx):
        me = comm_.rank_of(ctx)
        s = ctx.alloc("s", block * nranks)
        r = ctx.alloc("r", block)
        for it in range(iters):
            arr = s.view().as_dtype(np.float32)
            for q in range(nranks):
                elems = block // 4
                arr[q * elems:(q + 1) * elems] = me + q + it
            yield from comm_.reduce_scatter_block(ctx, s.whole(), r.whole(),
                                                  SUM, FLOAT)
            out.setdefault(it, {})[me] = r.view().as_dtype(np.float32).copy()
    comm.run(program)
    return out


@pytest.mark.parametrize("name", sorted(COMPONENTS))
@pytest.mark.parametrize("nranks", [2, 5, 8])
def test_reduce_scatter_correct(name, nranks):
    out = run_rs(COMPONENTS[name], nranks=nranks)
    for it, per_rank in out.items():
        for me, data in per_rank.items():
            expect = sum(q + me + it for q in range(nranks))
            assert np.all(data == expect), (name, me, it)


def test_rs_equals_allreduce_slice():
    """reduce_scatter_block(me) == allreduce(...)[me's block]."""
    nranks, block = 8, 512
    rs = run_rs(Xhc, nranks=nranks, block=block, iters=1)
    node = Node(small_topo())
    world = World(node, nranks)
    comm = world.communicator(Xhc())
    ar = {}

    def program(comm_, ctx):
        me = comm_.rank_of(ctx)
        s = ctx.alloc("s", block * nranks)
        r = ctx.alloc("r", block * nranks)
        arr = s.view().as_dtype(np.float32)
        elems = block // 4
        for q in range(nranks):
            arr[q * elems:(q + 1) * elems] = me + q
        yield from comm_.allreduce(ctx, s.whole(), r.whole(), SUM, FLOAT)
        ar[me] = r.view().as_dtype(np.float32).copy()
    comm.run(program)
    for me in range(nranks):
        elems = block // 4
        np.testing.assert_array_equal(
            rs[0][me], ar[me][me * elems:(me + 1) * elems])


def test_validation_errors():
    from repro.errors import MPIError
    node = Node(small_topo())
    world = World(node, 4)
    comm = world.communicator(Tuned())

    def bad_alltoall(comm_, ctx):
        s = ctx.alloc("s", 100)
        r = ctx.alloc("r", 102)  # length mismatch
        yield from comm_.alltoall(ctx, s.whole(), r.whole())
    with pytest.raises(MPIError, match="alltoall"):
        comm.run(bad_alltoall)
