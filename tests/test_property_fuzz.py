"""Property/fuzz tests across subsystem boundaries."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.mpi import FLOAT, SUM, World
from repro.mpi.colls import Tuned
from repro.node import Node
from repro.sim import primitives as P
from repro.xhc import Xhc

from conftest import small_topo

FUZZ = settings(max_examples=15, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


@FUZZ
@given(sizes=st.lists(st.integers(1, 120_000), min_size=1, max_size=6),
       data=st.data())
def test_p2p_random_message_streams(sizes, data):
    """Random sizes across the eager/rendezvous boundary, multiple tags."""
    node = Node(small_topo())
    world = World(node, 2)
    comm = world.communicator(Tuned())
    tags = [data.draw(st.integers(0, 2)) for _ in sizes]
    received = []

    def program(comm_, ctx):
        me = comm_.rank_of(ctx)
        for i, (size, tag) in enumerate(zip(sizes, tags)):
            buf = ctx.alloc(f"b{i}", size)
            if me == 0:
                buf.data[:] = (i * 37 + 11) % 251
                yield from comm_.send(ctx, buf.whole(), 1, tag)
            else:
                yield from comm_.recv(ctx, buf.whole(), 0, tag)
                received.append(int(buf.data[0]))
    comm.run(program)
    assert received == [(i * 37 + 11) % 251 for i in range(len(sizes))]


@FUZZ
@given(
    writes=st.lists(
        st.tuples(st.integers(0, 15),            # writer core
                  st.integers(1, 1 << 18)),      # prefix extent
        min_size=1, max_size=12),
)
def test_cache_directory_consistency(writes):
    """After arbitrary read/write traffic, the holders directory agrees
    with per-cache contents and totals never exceed capacity."""
    node = Node(small_topo(), data_movement=False)
    sp = node.new_address_space(0, 0)
    bufs = [sp.alloc(f"b{i}", 1 << 18) for i in range(3)]
    caches = node.caches
    for i, (core, upto) in enumerate(writes):
        buf = bufs[i % 3]
        if i % 2:
            caches.record_write(core, buf, upto)
        else:
            caches.record_read(core, buf, upto)
    for buf in bufs:
        for level in caches.holders_of(buf):
            assert level.high_water(buf) > 0
    for level in caches._all_levels():
        assert 0 <= level.used
        for buf in bufs:
            if level.high_water(buf) > 0:
                assert level in caches.holders_of(buf)


@FUZZ
@given(nranks=st.integers(2, 16),
       size=st.integers(4, 50_000).map(lambda v: v - v % 4),
       chunk=st.sampled_from([512, 4096, 16384]),
       threshold=st.sampled_from([0, 256, 8192]),
       ring=st.sampled_from([2, 4]))
def test_xhc_config_space_correctness(nranks, size, chunk, threshold, ring):
    """Any point in XHC's configuration space gives correct allreduce."""
    size = max(size, 4)
    node = Node(small_topo())
    world = World(node, nranks)
    comm = world.communicator(Xhc(chunk_size=chunk,
                                  cico_threshold=threshold,
                                  cico_ring=ring))

    def program(comm_, ctx):
        me = comm_.rank_of(ctx)
        s = ctx.alloc("s", size)
        r = ctx.alloc("r", size)
        s.view().as_dtype(np.float32)[:] = me + 1
        yield from comm_.allreduce(ctx, s.whole(), r.whole(), SUM, FLOAT)
        assert np.all(r.view().as_dtype(np.float32)
                      == sum(range(1, nranks + 1)))
    comm.run(program)


@FUZZ
@given(delays=st.lists(st.integers(0, 200), min_size=4, max_size=4))
def test_barrier_under_arbitrary_skew(delays):
    """No arrival pattern lets a rank escape a barrier early."""
    node = Node(small_topo(), data_movement=False)
    world = World(node, 4)
    comm = world.communicator(Xhc())
    after = {}

    def program(comm_, ctx):
        me = comm_.rank_of(ctx)
        yield P.Compute(delays[me] * 1e-6 + 1e-9)
        yield from comm_.barrier(ctx)
        after[me] = ctx.now
    comm.run(program)
    slowest_arrival = max(delays) * 1e-6
    assert min(after.values()) >= slowest_arrival
