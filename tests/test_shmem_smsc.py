"""SMSC endpoint: mechanism behaviours and the Fig. 3 cost relationships."""

import numpy as np
import pytest

from repro.errors import ShmemError
from repro.node import Node
from repro.shmem.smsc import SmscConfig, SmscEndpoint

from conftest import small_topo


def setup(mechanism="xpmem", use_regcache=True, size=256 * 1024):
    node = Node(small_topo())
    owner = node.new_address_space(0, 0)
    peer = node.new_address_space(1, 2)
    src = owner.alloc("src", size)
    dst = peer.alloc("dst", size)
    src.fill(9)
    ep = SmscEndpoint(node, 1, SmscConfig(mechanism=mechanism,
                                          use_regcache=use_regcache))
    return node, ep, src, dst


def drive(node, gen, core=2):
    node.engine.spawn(gen, core=core)
    t0 = node.engine.now
    node.engine.run()
    return node.engine.now - t0


def expose(node, buf):
    node.engine.spawn(node.xpmem.expose(buf), core=buf.owner_core)
    node.engine.run()


def test_bad_mechanism_rejected():
    with pytest.raises(ShmemError):
        SmscConfig(mechanism="rdma")


def test_disabled_smsc_refuses():
    node, ep, src, dst = setup(mechanism=None)
    assert not ep.enabled
    with pytest.raises(ShmemError):
        next(iter(ep.copy_from(src.whole(), dst.whole())))


def test_xpmem_copy_moves_data_and_caches_mapping():
    node, ep, src, dst = setup()
    expose(node, src)
    t_first = drive(node, ep.copy_from(src.whole(), dst.whole()))
    assert np.all(dst.data == 9)
    assert ep.regcache.misses == 1
    t_second = drive(node, ep.copy_from(src.whole(), dst.whole()))
    assert ep.regcache.hits == 1
    # First transfer paid attach + page faults; later ones don't.
    assert t_first > t_second


def test_xpmem_without_regcache_repays_attach_every_time():
    node, ep, src, dst = setup(use_regcache=False)
    expose(node, src)
    t1 = drive(node, ep.copy_from(src.whole(), dst.whole()))
    t2 = drive(node, ep.copy_from(src.whole(), dst.whole()))
    # Cost stays high: attach + faults + detach on every operation (the
    # dashed-outline series of Fig. 3). Only the cold-cache part of the
    # first transfer is saved on repeats.
    assert t2 > t1 * 0.6
    node_c, ep_c, src_c, dst_c = setup(use_regcache=True)
    expose(node_c, src_c)
    drive(node_c, ep_c.copy_from(src_c.whole(), dst_c.whole()))
    t_cached = drive(node_c, ep_c.copy_from(src_c.whole(), dst_c.whole()))
    assert t2 > t_cached * 2


def test_mechanism_steady_state_ordering():
    """Fig. 3: xpmem < knem < cma in steady state."""
    results = {}
    for mech in ("xpmem", "knem", "cma"):
        node, ep, src, dst = setup(mechanism=mech)
        expose(node, src)
        drive(node, ep.copy_from(src.whole(), dst.whole()))  # warm
        results[mech] = drive(node, ep.copy_from(src.whole(), dst.whole()))
    assert results["xpmem"] < results["knem"] < results["cma"]


def test_kernel_mechanisms_cannot_reduce():
    node, ep, src, dst = setup(mechanism="cma")
    assert not ep.can_reduce
    with pytest.raises(ShmemError):
        next(iter(ep.reduce_from([src.whole()], dst.whole())))


def test_xpmem_direct_reduce():
    node, ep, src, dst = setup()
    owner2 = node.new_address_space(2, 4)
    src2 = owner2.alloc("src2", src.size)
    expose(node, src)
    expose(node, src2)
    src.view().as_dtype(np.float32)[:] = 2.0
    src2.view().as_dtype(np.float32)[:] = 3.0
    drive(node, ep.reduce_from([src.whole(), src2.whole()], dst.whole(),
                               op=np.add, dtype=np.float32))
    assert np.all(dst.view().as_dtype(np.float32) == 5.0)


def test_local_and_shared_buffers_skip_mapping():
    node, ep, src, dst = setup()
    # dst belongs to the endpoint's own rank: no attach needed.
    shared = node.new_address_space(3, 6).alloc("seg", 1024, shared=True)
    t = drive(node, ep.copy_from(shared.view(0, 256), dst.view(0, 256)))
    assert ep.regcache.misses == 0
