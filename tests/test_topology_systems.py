"""Table I systems: exact structure of the three evaluation machines."""

import pytest

from repro.errors import TopologyError
from repro.topology import ObjKind, get_system


def test_epyc_1p_matches_table1():
    topo = get_system("epyc-1p")
    assert topo.n_cores == 32
    assert topo.count(ObjKind.NUMA) == 4
    assert topo.count(ObjKind.SOCKET) == 1
    # 4-core CCXs sharing an L3.
    assert topo.count(ObjKind.LLC) == 8
    assert len(topo.llc_of_core(0).cores()) == 4


def test_epyc_2p_matches_table1():
    topo = get_system("epyc-2p")
    assert topo.n_cores == 64
    assert topo.count(ObjKind.NUMA) == 8
    assert topo.count(ObjKind.SOCKET) == 2
    assert topo.machine.attrs["arch"] == "x86_64"


def test_arm_n1_matches_table1():
    topo = get_system("arm-n1")
    assert topo.n_cores == 160
    assert topo.count(ObjKind.NUMA) == 8
    assert topo.count(ObjKind.SOCKET) == 2
    # No shared LLC between cores (paper SSV-D1): only a system-level cache.
    assert not topo.has_llc
    assert topo.machine.attrs["cache_kind"] == "slc"


def test_lookup_is_case_and_separator_insensitive():
    assert get_system("EPYC_1P").name == "Epyc-1P"
    assert get_system("Arm-N1").name == "ARM-N1"


def test_unknown_system_raises():
    with pytest.raises(TopologyError):
        get_system("power10")


def test_fresh_instances_per_call():
    a = get_system("epyc-1p")
    b = get_system("epyc-1p")
    assert a is not b
