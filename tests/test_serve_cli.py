"""``repro serve`` subcommands: exit codes, output, unreachable handling.

A live daemon (on a background thread, via the CLI's own plumbing) backs
the client-command tests; the 0/1/2 exit-code contract is the subject
under test, per docs/serving.md.
"""

import asyncio
import json
import os
import shutil
import tempfile
import threading

import pytest

from repro.cli import main
from repro.serve import ServeDaemon
from repro.tune.table import DecisionTable
from repro.xhc import XhcConfig


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


@pytest.fixture(scope="module")
def live():
    """One daemon (short socket path) shared by this module's tests."""
    workdir = tempfile.mkdtemp(prefix="rsc")
    socket_path = os.path.join(workdir, "d.sock")
    tables_dir = os.path.join(workdir, "tuned")
    table = DecisionTable()
    table.record("epyc-1p", "bcast", 65536, XhcConfig(hierarchy="numa"),
                 2e-6, baseline_s=4e-6, nranks=16)
    table.save(os.path.join(tables_dir, "decision_table.json"))
    daemon = ServeDaemon(socket_path, workers=0,
                         cache=os.path.join(workdir, "cache"),
                         state_dir=workdir, tables_root=tables_dir,
                         batch_size=2)
    thread = threading.Thread(target=lambda: asyncio.run(daemon.run()),
                              daemon=True)
    thread.start()
    for _ in range(200):
        if os.path.exists(socket_path):
            break
        threading.Event().wait(0.02)
    yield {"socket": socket_path, "dir": workdir}
    if thread.is_alive():
        main(["serve", "stop", "--socket", socket_path])
        thread.join(timeout=10)
    shutil.rmtree(workdir, ignore_errors=True)


SWEEP = ("submit", "bcast", "--system", "epyc-1p", "--nranks", "8",
         "--components", "xhc-tree", "--sizes", "64,4096",
         "--warmup", "1", "--iters", "2")


def test_submit_streams_progress_and_exits_zero(live, capsys):
    code, out, _err = run_cli(capsys, "serve", *SWEEP,
                              "--socket", live["socket"],
                              "--tenant", "alice")
    assert code == 0
    assert "[accepted job" in out
    assert "[progress" in out
    assert "xhc-tree" in out
    assert "[simulations:" in out


def test_warm_submit_reports_zero_new(live, capsys):
    run_cli(capsys, "serve", *SWEEP, "--socket", live["socket"])
    code, out, _err = run_cli(capsys, "serve", *SWEEP,
                              "--socket", live["socket"],
                              "--tenant", "bob")
    assert code == 0
    assert "0 new" in out
    assert "hit rate 100%" in out


def test_submit_json_carries_provenance(live, capsys, tmp_path):
    out_path = tmp_path / "served.json"
    code, _out, _err = run_cli(capsys, "serve", *SWEEP,
                               "--socket", live["socket"],
                               "--json", str(out_path))
    assert code == 0
    doc = json.loads(out_path.read_text())
    assert doc["stats"]["errors"] == 0
    assert all("request_hash" in r["provenance"] for r in doc["results"])


def test_submit_with_bad_component_exits_one(live, capsys):
    code, out, _err = run_cli(
        capsys, "serve", "submit", "bcast", "--system", "epyc-1p",
        "--nranks", "8", "--components", "definitely-not-a-component",
        "--sizes", "64", "--socket", live["socket"])
    assert code == 1
    assert "error" in out


def test_status_exits_zero(live, capsys):
    code, out, _err = run_cli(capsys, "serve", "status",
                              "--socket", live["socket"])
    assert code == 0
    assert "serve daemon @" in out
    assert "SIM_VERSION" in out
    assert "store:" in out


def test_tables_lookup_and_listing(live, capsys):
    code, out, _err = run_cli(capsys, "serve", "tables",
                              "--socket", live["socket"],
                              "--system", "epyc-1p",
                              "--collective", "bcast", "--size", "65536")
    assert code == 0
    assert "hierarchy: numa" in out
    assert "etag" in out

    code, out, _err = run_cli(capsys, "serve", "tables",
                              "--socket", live["socket"])
    assert code == 0
    assert "decision_table.json" in out


def test_tables_miss_exits_one(live, capsys):
    code, _out, err = run_cli(capsys, "serve", "tables",
                              "--socket", live["socket"],
                              "--system", "arm-n1",
                              "--collective", "allreduce", "--size", "64")
    assert code == 1
    assert "no decision" in err


# -- telemetry commands: metrics / trace / top -------------------------------


def test_metrics_table_lists_lifecycle_histograms(live, capsys):
    run_cli(capsys, "serve", *SWEEP, "--socket", live["socket"],
            "--tenant", "metered")
    code, out, _err = run_cli(capsys, "serve", "metrics",
                              "--socket", live["socket"])
    assert code == 0
    assert "serve.jobs.submitted" in out
    assert "serve.job.latency_seconds" in out
    assert "p50=" in out and "p99=" in out
    assert "[event log:" in out


def test_metrics_prometheus_output_parses(live, capsys):
    from repro.obs.metrics import validate_prometheus

    run_cli(capsys, "serve", *SWEEP, "--socket", live["socket"])
    code, out, _err = run_cli(capsys, "serve", "metrics", "--prometheus",
                              "--socket", live["socket"])
    assert code == 0
    assert validate_prometheus(out) == []
    assert "# TYPE serve_job_latency_seconds histogram" in out


def test_metrics_json_dump(live, capsys, tmp_path):
    out_path = tmp_path / "metrics.json"
    run_cli(capsys, "serve", *SWEEP, "--socket", live["socket"])
    code, _out, _err = run_cli(capsys, "serve", "metrics",
                               "--socket", live["socket"],
                               "--json", str(out_path))
    assert code == 0
    doc = json.loads(out_path.read_text())
    assert "prometheus" in doc
    assert doc["metrics"]["serve.jobs.completed"]["value"] >= 1


def test_trace_writes_validated_perfetto_file(live, capsys, tmp_path):
    from repro.obs.export import validate_chrome_trace

    run_cli(capsys, "serve", *SWEEP, "--socket", live["socket"],
            "--tenant", "traced")
    out_path = tmp_path / "trace.json"
    code, out, _err = run_cli(capsys, "serve", "trace",
                              "--socket", live["socket"],
                              "--out", str(out_path))
    assert code == 0
    assert "perfetto" in out.lower()
    doc = json.loads(out_path.read_text())
    assert validate_chrome_trace(doc) == []
    assert doc["otherData"]["tool"] == "repro.obs.svc"


def test_trace_unknown_job_exits_one(live, capsys, tmp_path):
    code, _out, err = run_cli(capsys, "serve", "trace", "--job", "424242",
                              "--socket", live["socket"],
                              "--out", str(tmp_path / "t.json"))
    assert code == 1
    assert "no trace for job" in err


def test_top_once_renders_fleet_frame(live, capsys):
    run_cli(capsys, "serve", *SWEEP, "--socket", live["socket"],
            "--tenant", "watcher")
    code, out, _err = run_cli(capsys, "serve", "top", "--once",
                              "--socket", live["socket"])
    assert code == 0
    assert "serve top @" in out
    assert "jobs:" in out and "cache:" in out
    assert "job latency:" in out and "p95=" in out
    assert "watcher" in out            # tenant table row


# -- unreachable: the exit-2 contract ----------------------------------------


def _dead_socket():
    workdir = tempfile.mkdtemp(prefix="rsd")
    return os.path.join(workdir, "nobody.sock")


@pytest.mark.parametrize("argv", [
    ("status",),
    ("stop",),
    ("metrics",),
    ("trace",),
    ("top", "--once"),
    ("tables", "--system", "epyc-1p"),
    ("submit", "bcast", "--system", "epyc-1p", "--nranks", "8",
     "--components", "xhc-tree", "--sizes", "64"),
])
def test_client_commands_exit_two_when_unreachable(argv, capsys):
    sock = _dead_socket()
    code, _out, err = run_cli(capsys, "serve", *argv,
                              "--socket", sock, "--timeout", "0.5")
    assert code == 2
    assert "no serve daemon reachable" in err
    assert "serve start" in err
    shutil.rmtree(os.path.dirname(sock), ignore_errors=True)


def test_stop_then_status_exits_two(capsys):
    workdir = tempfile.mkdtemp(prefix="rse")
    sock = os.path.join(workdir, "d.sock")
    daemon = ServeDaemon(sock, workers=0,
                         cache=os.path.join(workdir, "cache"),
                         state_dir=workdir)
    thread = threading.Thread(target=lambda: asyncio.run(daemon.run()),
                              daemon=True)
    thread.start()
    for _ in range(200):
        if os.path.exists(sock):
            break
        threading.Event().wait(0.02)
    try:
        code, out, _err = run_cli(capsys, "serve", "stop", "--socket", sock)
        assert code == 0
        assert "stopped" in out
        thread.join(timeout=10)
        code, _out, err = run_cli(capsys, "serve", "status",
                                  "--socket", sock, "--timeout", "0.5")
        assert code == 2
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


# -- manifest (offline) ------------------------------------------------------


def test_manifest_to_stdout(capsys, tmp_path):
    code, out, _err = run_cli(capsys, "serve", "manifest",
                              "--root", str(tmp_path))
    assert code == 0
    assert out.startswith("# Results manifest")


def test_manifest_to_file_with_served_ledger(live, capsys, tmp_path):
    run_cli(capsys, "serve", *SWEEP, "--socket", live["socket"],
            "--tenant", "manifested")
    out_path = tmp_path / "manifest.md"
    code, out, _err = run_cli(capsys, "serve", "manifest",
                              "--root", ".", "--state-dir", live["dir"],
                              "--out", str(out_path))
    assert code == 0
    assert "[wrote manifest" in out
    text = out_path.read_text()
    assert "tenant `manifested`" in text
    assert "SIM_VERSION" in text


def test_help_mentions_serve(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--help"])
    assert excinfo.value.code == 0
    assert "serve" in capsys.readouterr().out
