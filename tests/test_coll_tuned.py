"""tuned-specific behaviour: algorithm selection, p2p usage, scaling."""

import pytest

from repro.mpi.colls import Tuned
from repro.mpi.colls.tuned import (ALLREDUCE_RD_MAX, BCAST_BINOMIAL_MAX,
                                   BCAST_SEGMENTED_MAX)
from repro.mpi import World
from repro.node import Node
from repro.sim import primitives as P

from conftest import (assert_allreduce_correct, run_allreduce, run_bcast,
                      small_topo)


def messages(node):
    return [m for _, label, m in node.engine.trace if label == "message"]


def test_small_bcast_uses_binomial_eager():
    out, node = run_bcast(Tuned, nranks=8, size=64, iters=1)
    msgs = messages(node)
    # Binomial tree over 8 ranks: exactly 7 messages, all eager.
    assert len(msgs) == 7
    assert all(m["proto"] == "eager" for m in msgs)


def test_medium_bcast_is_segmented():
    size = BCAST_SEGMENTED_MAX  # 4 segments of 32 KiB
    out, node = run_bcast(Tuned, nranks=4, size=size, iters=1)
    msgs = messages(node)
    # More messages than tree edges: segments flow separately.
    assert len(msgs) == 4 * 3


def test_large_bcast_uses_chain():
    size = BCAST_SEGMENTED_MAX * 2
    out, node = run_bcast(Tuned, nranks=6, size=size, iters=1)
    msgs = messages(node)
    edges = {(m["src_rank"], m["dst_rank"]) for m in msgs}
    # A chain: rank r sends only to r+1.
    assert edges == {(r, r + 1) for r in range(5)}


def test_allreduce_rd_vs_ring_selection():
    # Small payload: recursive doubling (messages between distant ranks).
    out, node = run_allreduce(Tuned, nranks=8, size=256, iters=1)
    assert_allreduce_correct(out, 8, iters=1)
    edges_small = {(m["src_rank"], m["dst_rank"]) for m in messages(node)}
    assert (0, 4) in edges_small  # a doubling exchange
    # Large payload: ring (only neighbour traffic).
    out, node = run_allreduce(Tuned, nranks=8, size=ALLREDUCE_RD_MAX * 8,
                              iters=1)
    assert_allreduce_correct(out, 8, iters=1)
    edges_large = {(m["src_rank"], m["dst_rank"]) for m in messages(node)}
    assert all((d - s) % 8 == 1 for s, d in edges_large)


def test_allreduce_non_power_of_two():
    out, _ = run_allreduce(Tuned, nranks=6, size=512, iters=2)
    assert_allreduce_correct(out, 6)


def test_reduce_collects_at_root():
    import numpy as np
    from repro.mpi import FLOAT, SUM
    node = Node(small_topo())
    world = World(node, 8)
    comm = world.communicator(Tuned())
    out = {}

    def program(comm_, ctx):
        me = comm_.rank_of(ctx)
        sbuf = ctx.alloc("s", 1024)
        rbuf = ctx.alloc("r", 1024) if me == 2 else None
        sbuf.view().as_dtype(np.float32)[:] = me
        yield from comm_.reduce(ctx, sbuf.whole(),
                                None if rbuf is None else rbuf.whole(),
                                SUM, FLOAT, root=2)
        if me == 2:
            out["sum"] = rbuf.view().as_dtype(np.float32).copy()
    comm.run(program)
    assert (out["sum"] == sum(range(8))).all()


def test_barrier_synchronizes():
    node = Node(small_topo())
    world = World(node, 8)
    comm = world.communicator(Tuned())
    after = {}

    def program(comm_, ctx):
        me = comm_.rank_of(ctx)
        yield P.Compute((me + 1) * 1e-6)
        yield from comm_.barrier(ctx)
        after[me] = ctx.now
    comm.run(program)
    assert min(after.values()) >= 8e-6


def test_component_rebind_rejected():
    from repro.errors import MPIError
    node = Node(small_topo())
    world = World(node, 2)
    comp = Tuned()
    world.communicator(comp)
    with pytest.raises(MPIError, match="already bound"):
        world.communicator(comp)
