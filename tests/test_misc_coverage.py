"""Edge paths not covered elsewhere."""

import numpy as np
import pytest

from repro.errors import MPIError, ShmemError
from repro.mpi import World
from repro.mpi.colls import Tuned
from repro.node import Node
from repro.sim import primitives as P
from repro.xhc import Xhc

from conftest import small_topo


def test_xhc_cico_entry_skips_via_ack_seen():
    """After one deferred wait, the remembered flag value suppresses
    further fetches until the slack is consumed again."""
    node = Node(small_topo())
    world = World(node, 4)
    comp = Xhc(cico_ring=2)
    comm = world.communicator(comp)

    def program(comm_, ctx):
        buf = ctx.alloc("b", 64)
        me = comm_.rank_of(ctx)
        for it in range(8):
            if me == 0:
                buf.fill(it)
            yield from comm_.bcast(ctx, buf.whole(), 0)
    comm.run(program)
    # Xhc ledgers are per component instance (so TunedXhc can bind
    # several delegates to one communicator), not in comm.rank_state.
    led = comp._rank_state[0]
    assert any(v > 0 for v in led["ack_seen"]), \
        "the root should have recorded observed ack values"


def test_hierarchy_describe_and_repr():
    from repro.xhc import XhcConfig, build_hierarchy
    topo = small_topo()
    h = build_hierarchy(topo, list(range(16)), XhcConfig().tokens(), 0)
    text = h.describe()
    assert "L0" in text and "group" in text
    assert "leader" in repr(h.levels[0][0])


def test_world_now_property():
    node = Node(small_topo())
    world = World(node, 2)
    comm = world.communicator(Tuned())
    seen = {}

    def program(comm_, ctx):
        yield P.Compute(5e-6)
        seen[comm_.rank_of(ctx)] = ctx.now
    comm.run(program)
    assert all(v >= 5e-6 for v in seen.values())


def test_cli_bench_allreduce_and_custom_sizes(capsys):
    from repro.cli import main
    code = main(["bench", "allreduce", "--system", "epyc-1p",
                 "--nranks", "8", "--components", "xhc-tree",
                 "--sizes", "128", "--iters", "2"])
    out = capsys.readouterr().out
    assert code == 0 and "xhc-tree" in out


def test_smsc_copy_to_writes_remote():
    from repro.shmem.smsc import SmscConfig, SmscEndpoint
    node = Node(small_topo())
    owner = node.new_address_space(0, 0)
    peer = node.new_address_space(1, 4)
    src = owner.alloc("src", 1024)
    dst = peer.alloc("dst", 1024)
    src.fill(5)
    ep = SmscEndpoint(node, 0, SmscConfig())
    node.engine.spawn(node.xpmem.expose(dst), core=4)
    node.engine.run()
    node.engine.spawn(ep.copy_to(src.whole(), dst.whole()), core=0)
    node.engine.run()
    assert np.all(dst.data == 5)


def test_scatter_root_view_none_non_root():
    node = Node(small_topo())
    world = World(node, 4)
    comm = world.communicator(Xhc())
    got = {}

    def program(comm_, ctx):
        me = comm_.rank_of(ctx)
        r = ctx.alloc("r", 128)
        s = ctx.alloc("s", 512) if me == 2 else None
        if me == 2:
            for q in range(4):
                s.data[q * 128:(q + 1) * 128] = q + 10
        yield from comm_.scatter(ctx, None if s is None else s.whole(),
                                 r.whole(), root=2)
        got[me] = int(r.data[0])
    comm.run(program)
    assert got == {0: 10, 1: 11, 2: 12, 3: 13}


def test_tuned_gather_root_zero_uses_rview_directly():
    node = Node(small_topo())
    world = World(node, 4)
    comm = world.communicator(Tuned())
    got = {}

    def program(comm_, ctx):
        me = comm_.rank_of(ctx)
        s = ctx.alloc("s", 64)
        s.fill(me + 1)
        r = ctx.alloc("r", 256) if me == 0 else None
        yield from comm_.gather(ctx, s.whole(),
                                None if r is None else r.whole(), 0)
        if me == 0:
            got["data"] = r.data.copy()
    comm.run(program)
    for q in range(4):
        assert np.all(got["data"][q * 64:(q + 1) * 64] == q + 1)


def test_segment_region_accessors():
    from repro.shmem.segment import SharedSegment
    node = Node(small_topo())
    seg = SharedSegment(node.new_address_space(0, 0), "s", 256)
    with pytest.raises(ShmemError):
        seg.region("missing")
    assert not seg.has_region("missing")
