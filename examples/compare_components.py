#!/usr/bin/env python3
"""Compare collectives stacks on one machine (a mini Fig. 8 / Fig. 11).

Sweeps Broadcast and Allreduce latency across all the frameworks the paper
evaluates — OpenMPI-style `tuned` and `sm`, the `ucc` library, the SMHC and
XBRC research prototypes, and XHC in flat and hierarchical flavors — using
the modified (cache-realistic) OSU methodology.

Run:  python examples/compare_components.py [system]
      system in {epyc-1p, epyc-2p, arm-n1}; default epyc-1p
"""

import sys

from repro.bench import render_series_table
from repro.bench.components import COMPONENTS, component_names
from repro.bench.osu import osu_allreduce, osu_bcast
from repro.topology import get_system

SIZES = (4, 256, 4096, 65536, 1 << 20)


def main() -> None:
    system = sys.argv[1] if len(sys.argv) > 1 else "epyc-1p"
    nranks = get_system(system).n_cores
    print(f"System: {system}, {nranks} ranks, sizes {SIZES}")
    print("(latencies in microseconds, simulated; lower is better)\n")

    bcast = [
        osu_bcast(system, nranks, COMPONENTS[name], sizes=SIZES, label=name,
                  warmup=1, iters=3)
        for name in component_names("bcast", system)
    ]
    print(render_series_table(f"MPI_Bcast on {system}", bcast))
    print()

    allreduce = [
        osu_allreduce(system, nranks, COMPONENTS[name], sizes=SIZES,
                      label=name, warmup=1, iters=3)
        for name in component_names("allreduce", system)
    ]
    print(render_series_table(f"MPI_Allreduce on {system}", allreduce))

    tree = next(s for s in bcast if s.label == "xhc-tree")
    tuned = next(s for s in bcast if s.label == "tuned")
    print(f"\nXHC-tree vs tuned at 64K bcast: "
          f"{tuned.us(65536) / tree.us(65536):.2f}x")


if __name__ == "__main__":
    main()
