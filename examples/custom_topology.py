#!/usr/bin/env python3
"""Model your own machine and inspect XHC's hierarchy on it.

Builds a hypothetical future node (4 sockets, 4 NUMA domains each, 6-core
LLC groups), shows how XHC's sensitivity string shapes the communication
hierarchy, and counts the message distances of a broadcast — the Table II
methodology applied to a machine that does not exist yet.

Run:  python examples/custom_topology.py
"""

from collections import Counter

from repro.bench.report import render_rows
from repro.mpi import World
from repro.node import Node
from repro.topology import build_symmetric
from repro.topology.distance import message_distance_label
from repro.xhc import Xhc, XhcConfig, build_hierarchy


def main() -> None:
    topo = build_symmetric(
        "quad-socket-future",
        sockets=4,
        numa_per_socket=4,
        cores_per_numa=6,
        cores_per_llc=3,
    )
    print(f"Custom machine: {topo.describe()}\n")

    for sensitivity in ("flat", "numa", "numa+socket", "l3+numa+socket"):
        cfg = XhcConfig(hierarchy=sensitivity)
        hier = build_hierarchy(topo, list(range(topo.n_cores)),
                               cfg.tokens(), root=0)
        print(f"sensitivity={sensitivity!r:18} -> {hier.describe()}")

    print("\nBroadcast message distances per sensitivity (96 ranks, 1 MB):")
    rows = []
    for sensitivity in ("flat", "numa", "numa+socket"):
        node = Node(topo, data_movement=False)
        world = World(node, topo.n_cores)
        comm = world.communicator(Xhc(hierarchy=sensitivity))

        def program(comm_, ctx):
            buf = ctx.alloc("b", 1 << 20)
            yield from comm_.bcast(ctx, buf.whole(), 0)

        comm.run(program)
        counts = Counter()
        for _t, label, meta in node.engine.trace:
            if label == "message":
                counts[message_distance_label(topo, meta["src"],
                                              meta["dst"])] += 1
        rows.append([sensitivity, counts["inter-socket"],
                     counts["inter-numa"], counts["intra-numa"],
                     f"{node.engine.now * 1e6:.1f}"])
    print(render_rows("Distances and completion time",
                      ["sensitivity", "inter-socket", "inter-numa",
                       "intra-numa", "sim_us"], rows))


if __name__ == "__main__":
    main()
