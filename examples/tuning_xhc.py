#!/usr/bin/env python3
"""Tune XHC's runtime knobs (the MCA-parameter surface, SSIII-B/D).

Sweeps the pipeline chunk size and the CICO threshold and shows their
effect — the paper notes that per-level chunk tuning fixes the 128K-1M
allreduce dip (SSV-D2), and that the CICO path's benefit is confined to
small messages (SSIII-D).

Run:  python examples/tuning_xhc.py
"""

from repro.bench.osu import run_collective
from repro.bench.report import render_rows
from repro.xhc import Xhc


def sweep_chunks():
    rows = []
    for chunk in (4096, 16384, 65536, 262144):
        for size in (65536, 1 << 20):
            lat = run_collective(
                "allreduce", "epyc-1p", 32,
                lambda c=chunk: Xhc(chunk_size=c), size,
                warmup=1, iters=3)
            rows.append([chunk, size, lat * 1e6])
    print(render_rows("Pipeline chunk size vs Allreduce latency (Epyc-1P)",
                      ["chunk", "msg_size", "latency_us"], rows))
    print()


def sweep_per_level_chunks():
    rows = []
    for label, chunks in (("uniform 16K", 16384),
                          ("inner-small (8K,32K,64K)", (8192, 32768, 65536)),
                          ("inner-large (64K,16K,8K)", (65536, 16384, 8192))):
        lat = run_collective(
            "bcast", "epyc-2p", 64,
            lambda c=chunks: Xhc(chunk_size=c), 1 << 20,
            warmup=1, iters=3)
        rows.append([label, lat * 1e6])
    print(render_rows("Per-level chunk sizes vs 1 MB Bcast (Epyc-2P)",
                      ["configuration", "latency_us"], rows))
    print()


def sweep_threshold():
    rows = []
    for threshold in (256, 1024, 4096, 16384):
        for size in (512, 2048, 8192):
            lat = run_collective(
                "bcast", "epyc-1p", 32,
                lambda t=threshold: Xhc(cico_threshold=t), size,
                warmup=1, iters=4)
            path = "cico" if size <= threshold else "single-copy"
            rows.append([threshold, size, path, lat * 1e6])
    print(render_rows("CICO threshold vs small-message Bcast (Epyc-1P)",
                      ["threshold", "msg_size", "path", "latency_us"], rows))


def main() -> None:
    sweep_chunks()
    sweep_per_level_chunks()
    sweep_threshold()


if __name__ == "__main__":
    main()
