#!/usr/bin/env python3
"""Inter-node hierarchies (the paper's SSVII direction).

Scales a broadcast across a simulated cluster of single-socket Epyc nodes
joined by an RDMA-class fabric, comparing XHC's node-aware hierarchy (the
``socket`` sensitivity level doubles as the node boundary) against a flat
single-source fan-out and the p2p chain.

Run:  python examples/cluster_scaling.py
"""

from repro.bench.osu import run_collective
from repro.bench.report import render_rows
from repro.cluster import build_cluster
from repro.mpi.colls import Tuned
from repro.xhc import Xhc

SIZE = 1 << 20


def main() -> None:
    rows = []
    for n_nodes in (2, 4, 8):
        for label, factory in (
            ("xhc node-aware", lambda: Xhc()),
            ("xhc flat", lambda: Xhc(hierarchy="flat")),
            ("tuned chain", Tuned),
        ):
            node, topo, _ = build_cluster(n_nodes=n_nodes)
            lat = run_collective("bcast", "cluster", topo.n_cores, factory,
                                 SIZE, warmup=1, iters=3, node=node)
            rows.append([n_nodes, topo.n_cores, label, lat * 1e6])
    print(render_rows(
        "1 MB broadcast across a cluster of 32-core nodes (us)",
        ["nodes", "ranks", "scheme", "latency_us"], rows))
    print(
        "\nThe node-aware hierarchy confines fan-out inside each node "
        "(one RDMA get\nper node crosses the fabric) and beats the flat "
        "single-source fan-out by\nan order of magnitude, scaling with "
        "node count. The rank-ordered chain\nremains strong under this "
        "friendly sequential mapping — its hops are\nneighbour-local and "
        "pipeline perfectly — which is exactly why the paper's\n"
        "future-work direction pairs intra-node XHC with dedicated "
        "inter-node\nalgorithms (HAN/UCC integration, SSVII) rather than "
        "reusing the flat\ntop-level group."
    )


if __name__ == "__main__":
    main()
