#!/usr/bin/env python3
"""Non-blocking collectives: when does Iallreduce actually help?

The paper notes that CNTK calls MPI_Iallreduce but waits on it
immediately, so swapping in the blocking Allreduce loses nothing
(SSV-D3). This example shows all three call patterns on the simulator:

* blocking       — allreduce, then compute;
* wait-now       — iallreduce + immediate wait (CNTK's actual pattern);
* overlapped     — iallreduce, compute, then wait.

Run:  python examples/nonblocking_overlap.py
"""

from repro.mpi import FLOAT, SUM, World
from repro.node import Node
from repro.sim import primitives as P
from repro.topology import get_system
from repro.xhc import Xhc

GRAD = 2 << 20
STEPS = 4
COMPUTE = 2e-3


def epoch(mode: str) -> float:
    node = Node(get_system("epyc-2p"), data_movement=False)
    world = World(node, 64)
    comm = world.communicator(Xhc())

    def program(comm_, ctx):
        s = ctx.alloc("s", GRAD)
        r = ctx.alloc("r", GRAD)
        yield from comm_.allreduce(ctx, s.whole(), r.whole(), SUM, FLOAT)
        for _ in range(STEPS):
            if mode == "blocking":
                yield from comm_.allreduce(ctx, s.whole(), r.whole(),
                                           SUM, FLOAT)
                yield P.Compute(COMPUTE)
            elif mode == "wait-now":
                req = comm_.iallreduce(ctx, s.whole(), r.whole(), SUM, FLOAT)
                yield from req.wait()
                yield P.Compute(COMPUTE)
            else:
                req = comm_.iallreduce(ctx, s.whole(), r.whole(), SUM, FLOAT)
                yield P.Compute(COMPUTE)    # overlapped with the reduction
                yield from req.wait()

    procs = comm.run(program)
    return max(p.finish_time for p in procs)


def main() -> None:
    print(f"{STEPS} steps of {GRAD >> 20} MB Allreduce + "
          f"{COMPUTE * 1e3:.0f} ms compute, 64 ranks on Epyc-2P\n")
    base = None
    for mode in ("blocking", "wait-now", "overlapped"):
        t = epoch(mode)
        base = base or t
        print(f"{mode:11}  {t * 1e3:6.2f} ms   ({base / t:.2f}x)")
    print("\n'wait-now' matches 'blocking' — the paper's substitution is "
          "free; real overlap requires deferring the wait.")


if __name__ == "__main__":
    main()
