#!/usr/bin/env python3
"""Data-parallel SGD on a simulated node (the Fig. 14 scenario).

Runs a CNTK-style training loop — compute a minibatch, allreduce the
gradients — against two collective stacks and reports where the time goes,
including the XPMEM registration-cache statistics that explain why
single-copy transport suits iterative applications (SSV-D3: hit ratios
above 99%).

Run:  python examples/ml_training.py
"""

import numpy as np

from repro.mpi import FLOAT, SUM, World
from repro.mpi.colls import Tuned
from repro.node import Node
from repro.sim import primitives as P
from repro.topology import get_system
from repro.xhc import Xhc

GRADIENT_BYTES = 4 << 20
MINIBATCHES = 4
COMPUTE = 6e-3


def train(component_factory, label):
    node = Node(get_system("arm-n1"), data_movement=False)
    world = World(node, 160)
    comm = world.communicator(component_factory())
    spent = []
    warm = []

    def program(comm_, ctx):
        grads = ctx.alloc("grads", GRADIENT_BYTES)
        avg = ctx.alloc("avg", GRADIENT_BYTES)
        scratch = ctx.alloc("scratch", GRADIENT_BYTES)
        inside = 0.0
        # Warm-up step: establish the mappings real training amortizes.
        yield from comm_.allreduce(ctx, grads.whole(), avg.whole(),
                                   SUM, FLOAT)
        warm.append(ctx.now)
        for _ in range(MINIBATCHES):
            yield P.Compute(COMPUTE)                       # fwd+bwd pass
            yield P.Copy(src=scratch.whole(), dst=grads.whole())
            t0 = ctx.now
            yield from comm_.allreduce(ctx, grads.whole(), avg.whole(),
                                       SUM, FLOAT)
            inside += ctx.now - t0
        spent.append(inside)

    procs = comm.run(program)
    total = max(p.finish_time for p in procs) - max(warm)
    coll = float(np.mean(spent))
    hits = sum(c.smsc.regcache.hits for c in world.ranks)
    misses = sum(c.smsc.regcache.misses for c in world.ranks)
    ratio = hits / (hits + misses) if hits + misses else float("nan")
    print(f"{label:10}  epoch={total * 1e3:7.2f} ms   "
          f"allreduce={coll * 1e3:6.2f} ms ({100 * coll / total:4.1f}%)   "
          f"regcache hit ratio={ratio:.3f}")
    return total


def main() -> None:
    print(f"AlexNet-scale SGD: {MINIBATCHES} minibatches, "
          f"{GRADIENT_BYTES >> 20} MB gradients, 160 ranks on ARM-N1\n")
    t_tuned = train(Tuned, "tuned")
    t_xhc = train(Xhc, "xhc-tree")
    print(f"\nspeedup of xhc-tree over tuned: {t_tuned / t_xhc:.2f}x")


if __name__ == "__main__":
    main()
