#!/usr/bin/env python3
"""Quickstart: broadcast a buffer with XHC on a simulated Epyc node.

Demonstrates the core workflow:

1. pick a machine (one of the paper's Table I systems),
2. create a World (one simulated MPI process per rank),
3. bind a communicator to the XHC component,
4. write rank programs as generators that drive collectives with
   ``yield from``,
5. run the event simulation and inspect results + simulated time.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.mpi import World
from repro.node import Node
from repro.topology import get_system
from repro.xhc import Xhc

MESSAGE = b"hello, hierarchical single-copy world!"


def main() -> None:
    topo = get_system("epyc-1p")
    print(f"Simulating {topo.describe()}")

    node = Node(topo)
    world = World(node, nranks=32)
    comm = world.communicator(Xhc())  # numa+socket hierarchy, the default

    latencies = {}

    def program(comm_, ctx):
        me = comm_.rank_of(ctx)
        buf = ctx.alloc("payload", 4096)
        if me == 0:
            buf.data[: len(MESSAGE)] = np.frombuffer(MESSAGE, dtype=np.uint8)
        t0 = ctx.now
        yield from comm_.bcast(ctx, buf.whole(), root=0)
        latencies[me] = ctx.now - t0
        received = bytes(buf.data[: len(MESSAGE)])
        assert received == MESSAGE, f"rank {me} got garbage"

    comm.run(program)

    mean_us = 1e6 * sum(latencies.values()) / len(latencies)
    print(f"All 32 ranks received {MESSAGE!r}")
    print(f"Mean broadcast latency: {mean_us:.2f} us (simulated)")
    print(f"Events processed: {node.engine.events_processed}")

    hier = comm.component._hierarchy(comm, 0)
    print(f"XHC hierarchy: {hier.describe()}")


if __name__ == "__main__":
    main()
