"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``topo``     describe a machine and the XHC hierarchy built on it
``bench``    sweep a collective across components (Fig. 8/11 style)
``figure``   regenerate one of the paper's figures/tables by name
``app``      run an application skeleton under a chosen component
``tune``     autotune XHC and persist a decision table (see docs/tuning.md)
``trace``    run one collective observed; critical path + Perfetto JSON
             (see docs/observability.md)
``check``    correctness tooling: AST lint over the tree and/or the
             race/deadlock sanitizer over an OSU sweep (docs/checking.md)
``serve``    the sweep service: ``start`` a daemon, ``submit`` sweeps to
             it, query ``status``/``tables``, scrape ``metrics`` (table /
             JSON / Prometheus), export a Perfetto job ``trace``, watch
             the fleet live with ``top``, ``stop`` it, render the
             provenance ``manifest`` (see docs/serving.md)

Exit codes (stable — CI and scripts rely on them)
-------------------------------------------------

``0``  success; for ``check``, a clean report
``1``  the command ran but reported findings or a failure
``2``  usage error (unknown figure/flag; argparse errors land here too);
       for ``serve`` clients, the daemon being unreachable

Sweeping commands (``bench``, ``figure``, ``check``) accept ``--parallel
N`` to fan simulations out over N worker processes and (``bench``,
``figure``) ``--cache [PATH]`` to answer repeated sweeps from the
persistent result store (see docs/api.md).
"""

from __future__ import annotations

import argparse
import os
import sys

from . import bench as bench_mod
from .bench.components import COMPONENTS, component_names
from .bench.osu import DEFAULT_SIZES, osu_allreduce, osu_bcast
from .bench.report import (bench_trajectory_json, next_bench_path,
                           render_rows, render_series_table, rows_table_json,
                           series_table_json, write_json)
from .topology import get_system
from .topology.io import load_topology

FIGURES = {
    "table1": lambda q: bench_mod.table1_systems(),
    "fig1a": lambda q: bench_mod.fig1a_domains(quick=q),
    "fig1b": lambda q: bench_mod.fig1b_congestion(quick=q),
    "fig3": lambda q: bench_mod.fig3_mechanisms(quick=q),
    "fig4": lambda q: bench_mod.fig4_atomics(quick=q),
    "fig7": lambda q: bench_mod.fig7_osu_variants(quick=q),
    "fig8-epyc-1p": lambda q: bench_mod.fig8_bcast("epyc-1p", quick=q),
    "fig8-epyc-2p": lambda q: bench_mod.fig8_bcast("epyc-2p", quick=q),
    "fig8-arm-n1": lambda q: bench_mod.fig8_bcast("arm-n1", quick=q),
    "fig9": lambda q: bench_mod.fig9_layout_root(quick=q),
    "table2": lambda q: bench_mod.table2_message_counts(quick=q),
    "fig10": lambda q: bench_mod.fig10_cacheline(quick=q),
    "fig11-epyc-1p": lambda q: bench_mod.fig11_allreduce("epyc-1p", quick=q),
    "fig11-epyc-2p": lambda q: bench_mod.fig11_allreduce("epyc-2p", quick=q),
    "fig11-arm-n1": lambda q: bench_mod.fig11_allreduce("arm-n1", quick=q),
    "fig12": lambda q: bench_mod.fig12_pisvm(quick=q),
    "fig13-default": lambda q: bench_mod.fig13_miniamr("default", quick=q),
    "fig13-refine": lambda q: bench_mod.fig13_miniamr("refine-1k", quick=q),
    "fig14": lambda q: bench_mod.fig14_cntk(quick=q),
}


def _resolve_topology(args):
    if getattr(args, "spec", None):
        return load_topology(args.spec)
    return get_system(args.system)


# -- shared flag groups ------------------------------------------------------
#
# The same flags used to be copy-pasted into every subparser (and drifted:
# help strings, defaults). Each builder returns a fresh ``add_help=False``
# parent parser; subcommands compose the groups they need via
# ``parents=[...]``.


def _system_flags(default: str = "epyc-1p") -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(add_help=False)
    p.add_argument("--system", default=default,
                   help=f"target system codename (default: {default})")
    return p


def _json_flags(help: str = "also write machine-readable JSON here") \
        -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(add_help=False)
    p.add_argument("--json", help=help)
    return p


def _out_flags(help: str, default: str | None = None) \
        -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(add_help=False)
    p.add_argument("--out", default=default, help=help)
    return p


def _exec_flags(with_cache: bool = True) -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(add_help=False)
    p.add_argument("--parallel", type=int, default=0, metavar="N",
                   help="simulation worker processes (0 = inline, the "
                        "default; negative = pick from CPU count)")
    if with_cache:
        from .exec import DEFAULT_CACHE_PATH
        p.add_argument("--cache", nargs="?", const=DEFAULT_CACHE_PATH,
                       metavar="PATH",
                       help="persist results in a content-addressed cache "
                            f"(bare flag: {DEFAULT_CACHE_PATH})")
    return p


def _make_executor(args):
    """An :class:`~repro.exec.Executor` configured from shared flags."""
    from .exec import Executor
    workers = None if args.parallel < 0 else args.parallel
    progress = None
    if workers != 0:
        def progress(msg):
            print(f"[{msg}]", flush=True)
    return Executor(workers=workers, cache=getattr(args, "cache", None),
                    progress=progress)


def _print_exec_stats(executor, wall_s: float) -> None:
    """One greppable accounting line per sweep (CI matches on it)."""
    stats = executor.stats()
    hits = stats["cache_hits"]
    total = hits + stats["cache_misses"]
    rate = 100 * hits / total if total else 0.0
    print(f"[simulations: {stats['simulations']} new, {hits} cached "
          f"(hit rate {rate:.0f}%), wall {wall_s:.2f}s]")


def cmd_topo(args) -> int:
    topo = _resolve_topology(args)
    print(topo.describe())
    from .xhc import XhcConfig, build_hierarchy
    cfg = XhcConfig(hierarchy=args.hierarchy)
    hier = build_hierarchy(topo, list(range(topo.n_cores)), cfg.tokens(),
                           root=args.root)
    print(f"XHC hierarchy ({args.hierarchy!r}, root={args.root}):")
    print(" ", hier.describe())
    rows = []
    for level_idx, level in enumerate(hier.levels):
        for g in level:
            rows.append([level_idx, g.index, g.leader, len(g.members)])
    print(render_rows("Groups", ["level", "group", "leader", "members"],
                      rows))
    return 0


def cmd_bench(args) -> int:
    import time  # lint: disable=RC101  (wall time of the sweep, not sim)

    from .exec import using_executor

    names = (args.components.split(",") if args.components
             else component_names(args.collective, args.system))
    sizes = (tuple(int(s) for s in args.sizes.split(","))
             if args.sizes else DEFAULT_SIZES)
    nranks = args.nranks or get_system(args.system).n_cores
    runner = osu_bcast if args.collective == "bcast" else osu_allreduce
    t0 = time.perf_counter()
    with _make_executor(args) as executor, using_executor(executor):
        series = [
            runner(args.system, nranks, name, sizes=sizes,
                   label=name, warmup=args.warmup, iters=args.iters)
            for name in names
        ]
        wall = time.perf_counter() - t0
        stats = executor.stats()
    title = (f"MPI_{args.collective.capitalize()} on {args.system} "
             f"({nranks} ranks, us)")
    print(render_series_table(title, series))
    _print_exec_stats(executor, wall)
    if args.json:
        write_json(args.json, series_table_json(title, series))
        print(f"\n[wrote JSON table to {args.json}]")
    if args.emit_bench is not None:
        import os
        path = args.emit_bench or next_bench_path()
        tag = os.path.splitext(os.path.basename(path))[0]
        payload = bench_trajectory_json(
            tag, title, series, system=args.system,
            collective=args.collective, nranks=nranks,
            warmup=args.warmup, iters=args.iters,
            exec_info={**stats, "wall_s": wall})
        write_json(path, payload)
        print(f"\n[wrote bench trajectory to {path}]")
    return 0


def cmd_perf(args) -> int:
    import os

    from .perf import harness

    if args.profile:
        print(harness.profile_macro(quick=args.quick))
        return 0

    results = harness.run_perf(quick=args.quick,
                               macro_repeats=args.repeats,
                               engine=args.engine)
    engine, pricing, macro = (results["engine"], results["pricing"],
                              results["macro"])
    macros, parity = results["macros"], results["parity"]
    print(f"engine micro   {engine['events']:8d} events in "
          f"{engine['cpu_s']:.3f}s cpu -> "
          f"{engine['events_per_sec']:,.0f} events/s")
    print(f"pricing micro  memo {pricing['memo_calls_per_sec']:,.0f}/s, "
          f"cold {pricing['cold_calls_per_sec']:,.0f}/s "
          f"(memo speedup {pricing['memo_speedup']:.1f}x)")
    label = "quick" if macro["quick"] else "full"
    for name, m in macros.items():
        print(f"macro ({label}, {name})  wall {m['wall_s']:.3f}s  "
              f"cpu {m['cpu_s']:.3f}s over {len(m['points'])} points")
        for pt in m["points"]:
            print(f"  {pt['kind']:<10}{pt['size']:>9d}B  "
                  f"{pt['latency_us']:10.2f} us sim  "
                  f"{pt['wall_s']:7.3f} s wall")
    if parity:
        print("engine parity (array vs event; sim delta is the "
              "documented batched-pricing deviation)")
        for row in parity:
            print(f"  {row['kind']:<10}{row['size']:>9d}B  "
                  f"sim {row['latency_rel_delta']:+7.2%}  "
                  f"wall speedup {row['wall_speedup']:6.2f}x")
        print(f"array macro speedup: "
              f"{macros['event']['wall_s'] / macros['array']['wall_s']:.2f}x"
              f" wall")
    if args.baseline is not None:
        speedup = args.baseline / macro["wall_s"] if macro["wall_s"] \
            else 0.0
        print(f"speedup vs baseline {args.baseline:.3f}s wall: "
              f"{speedup:.2f}x")

    status = 0
    floor = (harness.ENGINE_EVENTS_PER_SEC_FLOOR
             if args.assert_floor is None else args.assert_floor)
    if args.assert_floor is not None or args.ci:
        if engine["events_per_sec"] < floor:
            print(f"[FAIL] engine microbench {engine['events_per_sec']:,.0f}"
                  f" events/s is below the floor {floor:,.0f}")
            status = 1
        else:
            print(f"[ok] engine microbench clears the "
                  f"{floor:,.0f} events/s floor "
                  f"({engine['events_per_sec'] / floor:.1f}x headroom)")
    if args.ci and parity:
        bad = [row for row in parity
               if abs(row["latency_rel_delta"]) > harness.PARITY_REL_TOL]
        if bad:
            for row in bad:
                print(f"[FAIL] parity gate: {row['kind']}/{row['size']}B "
                      f"array deviates {row['latency_rel_delta']:+.2%} "
                      f"from event (gate {harness.PARITY_REL_TOL:.0%})")
            status = 1
        else:
            print(f"[ok] engine parity within "
                  f"{harness.PARITY_REL_TOL:.0%} on all "
                  f"{len(parity)} macro points")

    payload = harness.emit_record(
        engine, pricing, macro,
        baseline_wall_s=args.baseline,
        baseline_cpu_s=args.baseline_cpu,
        note=args.note or "",
        macros=macros, parity=parity)
    if args.json:
        write_json(args.json, payload)
        print(f"[wrote perf report to {args.json}]")
    if args.emit_bench is not None:
        path = args.emit_bench or next_bench_path()
        tag = os.path.splitext(os.path.basename(path))[0]
        payload["tag"] = tag
        write_json(path, payload)
        print(f"[wrote perf record to {path}]")
    return status


def cmd_trace(args) -> int:
    from .obs import critical_path, flame_view, write_chrome_trace
    from .obs.runner import run_traced
    from .sim.stats import collect_stats

    node = run_traced(args.system, args.coll, size=args.size,
                      nranks=args.nranks, component=args.component,
                      root=args.root)
    out = args.out or f"results/trace_{args.system}_{args.coll}.json"
    doc = write_chrome_trace(out, node)
    report = critical_path(node)
    print(report.render(show_steps=args.steps))
    print()
    print(flame_view(node))
    print()
    print(collect_stats(node).render())
    print(f"\n[wrote Chrome-trace JSON ({len(doc['traceEvents'])} events) "
          f"to {out}]")
    print("[open it at https://ui.perfetto.dev or chrome://tracing]")
    if args.json:
        write_json(args.json, report.to_json())
        print(f"[wrote critical-path report to {args.json}]")
    return 0


def cmd_figure(args) -> int:
    import time  # lint: disable=RC101  (wall time of the sweep, not sim)

    from .exec import using_executor

    try:
        fn = FIGURES[args.name]
    except KeyError:
        print(f"unknown figure {args.name!r}; available: "
              f"{', '.join(sorted(FIGURES))}", file=sys.stderr)
        return 2
    t0 = time.perf_counter()
    with _make_executor(args) as executor, using_executor(executor):
        result = fn(args.quick)
        wall = time.perf_counter() - t0
    print(result.text)
    _print_exec_stats(executor, wall)
    if args.csv:
        result.write_csv(args.csv)
        print(f"\n[wrote {len(result.to_records())} records to {args.csv}]")
    if args.json:
        write_json(args.json, {"figure": args.name,
                               "records": result.to_records()})
        print(f"\n[wrote JSON records to {args.json}]")
    return 0


def cmd_tune(args) -> int:
    from .tune import COLLECTIVES, ResultCache, tune
    from .tune.table import DecisionTable
    import os

    systems = args.systems.split(",") if args.systems else None
    collectives = (args.collectives.split(",") if args.collectives
                   else COLLECTIVES)
    sizes = (tuple(int(s) for s in args.sizes.split(","))
             if args.sizes else None)
    cache = ResultCache(args.cache)
    table = None
    if args.resume and os.path.exists(args.out):
        table = DecisionTable.load(args.out)
        print(f"[resuming from {args.out}: {len(table)} decisions]")

    kwargs = dict(collectives=collectives, sizes=sizes, quick=args.quick,
                  nranks=args.nranks, budget=args.budget,
                  workers=args.workers, cache=cache, table=table,
                  resume=args.resume,
                  progress=lambda msg: print(f"[{msg}]", flush=True))
    if systems is not None:
        kwargs["systems"] = systems
    result = tune(**kwargs)

    rows = []
    for p in result.points:
        if p.skipped:
            rows.append([p.system, p.collective, p.size, p.nranks,
                         "-", "-", "-", p.skipped])
            continue
        rows.append([
            p.system, p.collective, p.size, p.nranks,
            p.baseline_s * 1e6, p.best_s * 1e6,
            f"{p.speedup:.2f}x" if p.speedup else "-",
            _describe_config(p.best_config),
        ])
    title = "XHC tuning: paper default vs tuned (us)"
    headers = ["system", "collective", "size", "nranks",
               "default_us", "tuned_us", "speedup", "winner"]
    print(render_rows(title, headers, rows))

    result.table.save(args.out)
    print(f"\n[decision table: {len(result.table)} entries -> {args.out}]")
    print(f"[simulations: {result.simulations} new, "
          f"{result.cache_hits} cached "
          f"(hit rate {100 * result.cache_hit_rate:.0f}%)]")
    if args.json:
        write_json(args.json, {
            "table": result.table.to_json(),
            "points": [p.to_record() for p in result.points],
            "simulations": result.simulations,
            "cache_hits": result.cache_hits,
            "cache_misses": result.cache_misses,
        })
        print(f"[wrote JSON report to {args.json}]")
    return 0


def _describe_config(cfg) -> str:
    if cfg is None:
        return "-"
    from .tune import PAPER_DEFAULT
    if cfg == PAPER_DEFAULT:
        return "(default)"
    parts = [cfg.hierarchy]
    if cfg.chunk_size != PAPER_DEFAULT.chunk_size:
        if isinstance(cfg.chunk_size, tuple):
            parts.append("chunks=" + "/".join(str(c) for c in cfg.chunk_size))
        else:
            parts.append(f"chunk={cfg.chunk_size}")
    if cfg.cico_threshold != PAPER_DEFAULT.cico_threshold:
        parts.append(f"cico={cfg.cico_threshold}")
    if cfg.flag_layout != PAPER_DEFAULT.flag_layout:
        parts.append(cfg.flag_layout)
    return " ".join(parts)


# -- serve: the sweep service (docs/serving.md) ------------------------------
#
# Client subcommands (submit/status/tables/stop) talk to a running daemon
# over its local socket and follow the exit-code contract above: the
# daemon being unreachable is exit 2 (an environment problem, like a bad
# flag), an answered-but-failed request is exit 1. ``start`` runs the
# daemon in the foreground; ``manifest`` is offline and needs no daemon.


def _serve_flags() -> argparse.ArgumentParser:
    from .serve import default_socket_path
    p = argparse.ArgumentParser(add_help=False)
    p.add_argument("--socket", default=None, metavar="PATH",
                   help="daemon socket path "
                        f"(default: {default_socket_path()})")
    p.add_argument("--timeout", type=float, default=10.0, metavar="SECS",
                   help="seconds to wait for the daemon to answer "
                        "(default: 10; unreachable exits 2)")
    return p


def _serve_client(args):
    from .serve import ServeClient
    return ServeClient(args.socket, timeout=args.timeout)


def cmd_serve_start(args) -> int:
    import asyncio

    from .serve import ServeDaemon

    workers = None if args.parallel < 0 else args.parallel
    daemon = ServeDaemon(
        args.socket, workers=workers, cache=args.cache,
        tables_root=args.tables, state_dir=args.state_dir,
        batch_size=args.batch_size, max_entries=args.max_entries,
        max_bytes=args.max_bytes, telemetry=not args.no_telemetry,
        log=lambda msg: print(f"[serve] {msg}", flush=True))
    try:
        asyncio.run(daemon.run())
    except KeyboardInterrupt:
        # The in-loop signal handler normally drains first; a second ^C
        # (or an interpreter without signal-handler support) lands here.
        print("[serve] interrupted", flush=True)
        return 1
    return 0


def _submit_requests(args) -> "list[dict]":
    from .exec import RunRequest

    names = (args.components.split(",") if args.components
             else component_names(args.collective, args.system))
    sizes = (tuple(int(s) for s in args.sizes.split(","))
             if args.sizes else DEFAULT_SIZES)
    nranks = args.nranks or get_system(args.system).n_cores
    return [
        RunRequest(args.system, args.collective, size, nranks,
                   component=name, warmup=args.warmup,
                   iters=args.iters).payload()
        for name in names for size in sizes
    ]


def cmd_serve_submit(args) -> int:
    requests = _submit_requests(args)

    def on_event(event: dict) -> None:
        kind = event.get("event")
        if kind == "accepted":
            print(f"[accepted job {event.get('job')} "
                  f"({event.get('total')} requests, "
                  f"tenant {event.get('tenant')!r})]", flush=True)
        elif kind == "progress":
            print(f"[progress {event.get('done')}/{event.get('total')}]",
                  flush=True)

    with _serve_client(args) as client:
        done = client.submit(requests, tenant=args.tenant,
                             on_event=on_event)
    stats = done.get("stats", {})
    results = done.get("results", [])
    rows = [
        [res["request"]["component"], res["request"]["size"],
         (res["latency_s"] * 1e6 if res.get("latency_s") is not None
          else "-"),
         res["provenance"]["cache"],
         res["provenance"]["request_hash"][:12]]
        for res in results
    ]
    print(render_rows(
        f"served {args.collective} on {args.system} "
        f"(tenant {args.tenant!r}, us)",
        ["component", "size", "latency_us", "cache", "request_hash"],
        rows))
    total = stats.get("requests", 0)
    hits = stats.get("cached", 0)
    rate = 100 * hits / total if total else 0.0
    print(f"[simulations: {stats.get('new', 0)} new, {hits} cached "
          f"(hit rate {rate:.0f}%), errors {stats.get('errors', 0)}]")
    if args.json:
        write_json(args.json, done)
        print(f"[wrote served results to {args.json}]")
    return 1 if stats.get("errors") else 0


def cmd_serve_status(args) -> int:
    with _serve_client(args) as client:
        status = client.status()
    queue = status.get("queue", {})
    store = status.get("store") or {}
    exec_stats = status.get("executor", {})
    print(f"serve daemon @ {client.socket_path}")
    print(f"  protocol {status.get('protocol')}, "
          f"SIM_VERSION {status.get('sim_version')}, "
          f"uptime {status.get('uptime_s', 0):.0f}s, "
          f"accepting={status.get('accepting')}")
    print(f"  queue: {queue.get('pending_requests', 0)} request(s) in "
          f"{queue.get('pending_chunks', 0)} chunk(s); tenants: "
          f"{', '.join(sorted(queue.get('tenants', {}))) or '(idle)'}")
    print(f"  executor: {exec_stats.get('simulations', 0)} simulations, "
          f"{exec_stats.get('cache_hits', 0)} cache hits")
    if store:
        bound = []
        if store.get("max_entries"):
            bound.append(f"max {store['max_entries']} entries")
        if store.get("max_bytes"):
            bound.append(f"max {store['max_bytes']} bytes")
        print(f"  store: {store.get('entries', 0)} entries, "
              f"{store.get('bytes', 0)} bytes at {store.get('root')}"
              f"{' (' + ', '.join(bound) + ')' if bound else ''}")
    tables = status.get("tables", {})
    print(f"  tables: {tables.get('lookups', 0)} lookups, "
          f"{tables.get('reloads', 0)} reloads")
    if args.json:
        write_json(args.json, status)
        print(f"[wrote status to {args.json}]")
    return 0


def cmd_serve_tables(args) -> int:
    with _serve_client(args) as client:
        if args.system is None:
            reply = client.tables()
            tables = reply.get("tables", [])
            if not tables:
                print("no decision tables served")
                return 1
            rows = [[t["table"], t["etag"], t["entries"],
                     ",".join(t["systems"])] for t in tables]
            print(render_rows("served decision tables",
                              ["table", "etag", "entries", "systems"],
                              rows))
            return 0
        reply = client.tables(args.system, args.collective, args.size,
                              table=args.table)
    if not reply.get("found"):
        print(f"no decision for {args.system}/{args.collective} "
              f"@ {args.size} B", file=sys.stderr)
        return 1
    decision = reply["decision"]
    print(f"decision for {args.system}/{args.collective} @ {args.size} B "
          f"(bucket {decision['bucket']}"
          f"{'' if decision['exact_bucket'] else ', nearest'}):")
    for key, value in sorted(decision["config"].items()):
        print(f"  {key}: {value}")
    if decision.get("latency_us") is not None:
        print(f"  tuned: {decision['latency_us']:.2f} us "
              f"(baseline {decision.get('baseline_us', 0) or 0:.2f} us)")
    print(f"  table: {decision['table']} (etag {decision['etag']})")
    if args.json:
        write_json(args.json, reply)
        print(f"[wrote decision to {args.json}]")
    return 0


def cmd_serve_stop(args) -> int:
    with _serve_client(args) as client:
        bye = client.shutdown()
    print(f"[daemon drained {bye.get('drained_jobs', 0)} job(s) and "
          f"stopped after {bye.get('uptime_s', 0):.0f}s]")
    return 0


def cmd_serve_metrics(args) -> int:
    with _serve_client(args) as client:
        reply = client.metrics()
    if args.prometheus:
        sys.stdout.write(reply.get("prometheus", ""))
        if args.json:
            write_json(args.json, reply)
        return 0
    snapshot = reply.get("metrics", {})
    rows = []
    for name, entry in sorted(snapshot.items()):
        if entry.get("type") == "histogram":
            value = f"n={entry.get('count', 0)} mean={entry.get('mean', 0):.4g}"
            pcts = " ".join(
                f"{p}={entry[p]:.4g}" for p in ("p50", "p95", "p99")
                if entry.get(p) is not None)
        else:
            v = entry.get("value", 0)
            value = f"{v:.4g}" if isinstance(v, float) else str(v)
            pcts = ""
        rows.append([name, entry.get("type", "?"), value, pcts])
    print(render_rows(f"serve metrics @ {args.socket or 'default socket'} "
                      f"(uptime {reply.get('uptime_s', 0):.0f}s)",
                      ["metric", "kind", "value", "percentiles"], rows))
    log_info = reply.get("event_log") or {}
    if log_info.get("path"):
        print(f"[event log: {log_info['path']} "
              f"({log_info.get('written', 0)} record(s), "
              f"{log_info.get('rotations', 0)} rotation(s))]")
    if args.json:
        write_json(args.json, reply)
        print(f"[wrote metrics to {args.json}]")
    return 0


def cmd_serve_trace(args) -> int:
    import json as json_mod

    from .obs.export import validate_chrome_trace

    with _serve_client(args) as client:
        reply = client.trace(args.job)
    doc = reply.get("trace")
    problems = validate_chrome_trace(doc)
    if problems:
        for problem in problems:
            print(f"invalid trace: {problem}", file=sys.stderr)
        return 1
    out = args.out
    if out is None:
        out = (f"results/serve/trace_job{args.job}.json"
               if args.job is not None else "results/serve/trace.json")
    directory = os.path.dirname(out)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(out, "w") as fh:
        json_mod.dump(doc, fh, indent=1)
        fh.write("\n")
    other = doc.get("otherData", {})
    scope = (f"job {args.job}" if args.job is not None
             else f"{other.get('jobs', '?')} job(s)")
    print(f"[wrote {scope}: {len(doc.get('traceEvents', []))} events "
          f"({other.get('spans', '?')} spans) to {out}; open in "
          f"https://ui.perfetto.dev]")
    return 0


def _top_frame(status: dict, metrics_reply: dict, socket_path: str) -> str:
    """One rendered frame of the live fleet view."""
    queue = status.get("queue", {})
    cache = status.get("cache") or {}
    snapshot = metrics_reply.get("metrics", {})
    lines = [
        f"serve top @ {socket_path} — "
        f"uptime {status.get('uptime_s', 0):.0f}s, "
        f"accepting={status.get('accepting')}",
        f"  jobs: {queue.get('submitted_jobs', 0)} submitted, "
        f"{queue.get('completed_jobs', 0)} completed; "
        f"{queue.get('pending_requests', 0)} request(s) queued in "
        f"{queue.get('pending_chunks', 0)} chunk(s); "
        f"in-flight chunks: {queue.get('inflight_chunks', 0)}",
        f"  cache: {cache.get('hits', 0)} hits / "
        f"{cache.get('misses', 0)} misses "
        f"(hit rate {100 * cache.get('hit_rate', 0.0):.0f}%), "
        f"{cache.get('entries', 0)} entries; "
        f"evictions {cache.get('evictions', 0)}, "
        f"quarantined {cache.get('quarantined', 0)}",
    ]
    job_hist = snapshot.get("serve.job.latency_seconds") or {}
    if job_hist.get("count"):
        pcts = " ".join(
            f"{p}={job_hist[p] * 1e3:.3g}ms" for p in ("p50", "p95", "p99")
            if job_hist.get(p) is not None)
        lines.append(f"  job latency: {pcts} "
                     f"(n={job_hist['count']}, "
                     f"mean={job_hist.get('mean', 0) * 1e3:.3g}ms)")
    totals = queue.get("tenant_totals", {})
    depths = queue.get("tenants", {})
    if totals:
        rows = [
            [tenant, counts.get("submitted", 0), counts.get("completed", 0),
             depths.get(tenant, {}).get("requests", 0)]
            for tenant, counts in sorted(totals.items())
        ]
        lines.append(render_rows(
            "tenants", ["tenant", "submitted", "completed", "queued"], rows))
    return "\n".join(lines)


def cmd_serve_top(args) -> int:
    import time  # lint: disable=RC101  (live-view refresh pacing)

    try:
        while True:
            with _serve_client(args) as client:
                status = client.status()
                metrics_reply = client.metrics()
                socket_path = client.socket_path
            frame = _top_frame(status, metrics_reply, socket_path)
            if args.once:
                print(frame)
                return 0
            # Clear-and-home between frames, like watch(1); keep it a
            # plain print so piping to a file still yields parseable
            # frames.
            print("\x1b[2J\x1b[H" + frame, flush=True)
            time.sleep(max(0.1, args.interval))
    except KeyboardInterrupt:
        return 0


def cmd_serve_manifest(args) -> int:
    from .serve import build_manifest, write_manifest

    if args.out:
        text = write_manifest(args.out, args.root,
                              state_dir=args.state_dir,
                              tables_root=args.tables)
        print(f"[wrote manifest ({len(text.splitlines())} lines) "
              f"to {args.out}]")
    else:
        print(build_manifest(args.root, state_dir=args.state_dir,
                             tables_root=args.tables))
    return 0


def cmd_serve(args) -> int:
    from .serve import ServeError

    try:
        return args.serve_fn(args)
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exc.exit_code
    except BrokenPipeError:
        # The client wraps every daemon-socket failure in ServeError, so a
        # raw BrokenPipeError here means stdout went away (`... | head`).
        # Exit quietly, the way line-oriented Unix tools do.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 1
    except ConnectionResetError:
        print("error: connection to the daemon was lost", file=sys.stderr)
        return 1


def cmd_app(args) -> int:
    from .apps import run_cntk, run_miniamr, run_pisvm
    runners = {
        "pisvm": lambda f, n: run_pisvm(args.system, f, n,
                                        nranks=args.nranks),
        "miniamr": lambda f, n: run_miniamr(args.system, f, n,
                                            nranks=args.nranks,
                                            config=args.config),
        "cntk": lambda f, n: run_cntk(args.system, f, n,
                                      nranks=args.nranks),
    }
    names = (args.components.split(",") if args.components
             else ["tuned", "ucc", "xhc-tree"])
    rows = []
    for name in names:
        res = runners[args.app](COMPONENTS[name], name)
        rows.append([name, res.total_time * 1e3, res.collective_time * 1e3,
                     round(100 * res.mpi_fraction, 1)])
    print(render_rows(f"{args.app} on {args.system}",
                      ["component", "total_ms", "collective_ms", "mpi_%"],
                      rows))
    return 0


def cmd_check(args) -> int:
    from .check.lint import run_lint, write_fingerprint
    from .check.report import CheckReport

    if args.update_fingerprint:
        path = write_fingerprint()
        print(f"[regenerated sim fingerprint manifest at {path}]")

    # No selector = run everything (the CI default).
    run_all = not (args.lint or args.race or args.deadlock)
    report = CheckReport()

    if args.lint or run_all:
        lint_report = run_lint(paths=args.paths or None)
        report.extend(lint_report)
        print(f"[lint: {len(lint_report)} finding(s)]")

    if args.race or args.deadlock or run_all:
        from .check.runner import run_sanitized
        mode = "full" if (run_all or (args.race and args.deadlock)) else \
            ("race" if args.race else "deadlock")
        colls = args.colls.split(",") if args.colls else None
        sizes = (tuple(int(s) for s in args.sizes.split(","))
                 if args.sizes else None)
        workers = None if args.parallel < 0 else args.parallel
        kwargs = dict(system=args.system, nranks=args.nranks,
                      component=args.component, check=mode,
                      workers=workers)
        if colls:
            kwargs["colls"] = colls
        if sizes:
            kwargs["sizes"] = sizes
        dyn_report = run_sanitized(**kwargs)
        report.extend(dyn_report)
        print(f"[sanitizer ({mode}): {len(dyn_report)} finding(s)]")

    for finding in report:
        print(f"  {finding}")
    print(report.summary())
    if args.json:
        write_json(args.json, {"ok": report.ok,
                               "count": len(report),
                               "findings": [f.to_dict() for f in report]})
        print(f"[wrote findings to {args.json}]")
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="XHC reproduction: simulated hierarchical single-copy "
                    "MPI collectives (CLUSTER 2022)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("topo", help="describe a machine + XHC hierarchy")
    p.add_argument("system", nargs="?", default="epyc-2p")
    p.add_argument("--spec", help="JSON topology spec file")
    p.add_argument("--hierarchy", default="numa+socket")
    p.add_argument("--root", type=int, default=0)
    p.set_defaults(fn=cmd_topo)

    p = sub.add_parser("bench", help="component sweep for one collective",
                       parents=[_system_flags(),
                                _json_flags("also write the table as JSON "
                                            "here"),
                                _exec_flags()])
    p.add_argument("collective", choices=["bcast", "allreduce"])
    p.add_argument("--nranks", type=int)
    p.add_argument("--components", help="comma-separated (default: paper set)")
    p.add_argument("--sizes", help="comma-separated bytes")
    p.add_argument("--warmup", type=int, default=1)
    p.add_argument("--iters", type=int, default=3)
    p.add_argument("--emit-bench", nargs="?", const="", default=None,
                   metavar="PATH",
                   help="write the perf-trajectory record (bare flag picks "
                        "the next free BENCH_<n>.json)")
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser(
        "trace", help="observed single run: critical path + Perfetto JSON",
        parents=[_system_flags(),
                 _json_flags("also write the critical-path report here"),
                 _out_flags("Chrome-trace JSON path (default "
                            "results/trace_<system>_<coll>.json)")])
    p.add_argument("--coll", default="bcast",
                   choices=["bcast", "allreduce", "reduce", "barrier",
                            "gather", "alltoall"])
    p.add_argument("--size", type=int, default=65536)
    p.add_argument("--nranks", type=int)
    p.add_argument("--component", default="xhc-tree",
                   help="component name ('xhc' aliases xhc-tree)")
    p.add_argument("--root", type=int, default=0)
    p.add_argument("--steps", action="store_true",
                   help="print every critical-path segment")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("figure", help="regenerate a paper figure/table",
                       parents=[_json_flags("also write the records as JSON "
                                            "here"),
                                _exec_flags()])
    p.add_argument("name", help=f"one of: {', '.join(sorted(FIGURES))}")
    p.add_argument("--quick", action="store_true")
    p.add_argument("--csv", help="also write machine-readable records here")
    p.set_defaults(fn=cmd_figure)

    p = sub.add_parser(
        "tune", help="autotune XHC configs into a decision table",
        parents=[_json_flags("also write the full tuning report here"),
                 _out_flags("decision table path",
                            default="results/tuned/decision_table.json")])
    p.add_argument("--systems",
                   help="comma-separated (default: all three modeled)")
    p.add_argument("--collectives", help="comma-separated (default: "
                                         "bcast,allreduce)")
    p.add_argument("--sizes", help="comma-separated bytes "
                                   "(default: the paper sweep)")
    p.add_argument("--nranks", type=int,
                   help="override rank count (default: all cores)")
    p.add_argument("--quick", action="store_true",
                   help="trimmed grids, fewer sizes, <=64 ranks")
    p.add_argument("--budget", type=int,
                   help="max NEW simulations across the run")
    p.add_argument("--resume", action="store_true",
                   help="skip (system,collective,bucket) cells already in "
                        "the output table")
    p.add_argument("--workers", type=int,
                   help="simulation processes (0 = inline)")
    p.add_argument("--cache", default="results/tuned/cache.json")
    p.set_defaults(fn=cmd_tune)

    p = sub.add_parser(
        "check", help="lint the tree and/or sanitize collectives "
                      "(race/deadlock); no selector runs both",
        parents=[_system_flags(),
                 _json_flags("write findings as JSON here"),
                 _exec_flags(with_cache=False)])
    p.add_argument("--lint", action="store_true",
                   help="static AST lint only")
    p.add_argument("--race", action="store_true",
                   help="happens-before race sanitizer over an OSU sweep")
    p.add_argument("--deadlock", action="store_true",
                   help="proactive wait-for-graph analysis over the sweep")
    p.add_argument("--paths", nargs="*",
                   help="files/dirs to lint (default: package + tests + "
                        "benchmarks)")
    p.add_argument("--nranks", type=int,
                   help="ranks for the sanitizer sweep (default: all cores)")
    p.add_argument("--component", default="xhc-tree")
    p.add_argument("--colls", help="comma-separated (default: "
                                   "bcast,allreduce)")
    p.add_argument("--sizes", help="comma-separated bytes (default: "
                                   "1024,65536)")
    p.add_argument("--update-fingerprint", action="store_true",
                   help="regenerate the RC105 sim-semantics fingerprint "
                        "manifest (run after bumping SIM_VERSION)")
    p.set_defaults(fn=cmd_check)

    p = sub.add_parser(
        "perf", help="simulator perf suite: micro + macro benchmarks "
                     "(docs/performance.md)",
        parents=[_json_flags("write the full perf report as JSON here")])
    p.add_argument("--quick", action="store_true",
                   help="trimmed suite (2 macro sizes, fewer iters) for "
                        "CI smoke")
    p.add_argument("--repeats", type=int, default=1,
                   help="macro sweep repetitions (min is reported)")
    p.add_argument("--engine", choices=("event", "array", "both"),
                   default="event",
                   help="macro engine(s); 'both' adds per-point parity "
                        "and speedup rows (with --ci, a parity gate)")
    p.add_argument("--profile", action="store_true",
                   help="cProfile the macro workload and print the hot "
                        "list instead of timing")
    p.add_argument("--emit-bench", nargs="?", const="", default=None,
                   metavar="PATH",
                   help="write the perf record (bare flag picks the next "
                        "free BENCH_<n>.json)")
    p.add_argument("--assert-floor", type=float, default=None,
                   metavar="EV_PER_S",
                   help="exit 1 if the engine microbench runs below this "
                        "many events/second")
    p.add_argument("--ci", action="store_true",
                   help="assert the default events/second floor")
    p.add_argument("--baseline", type=float, default=None, metavar="SECS",
                   help="pre-optimization macro wall seconds (same "
                        "machine, interleaved) to compute speedup against")
    p.add_argument("--baseline-cpu", type=float, default=None,
                   metavar="SECS",
                   help="pre-optimization macro CPU seconds")
    p.add_argument("--note", help="free-form note recorded in the emitted "
                                  "record (methodology, host)")
    p.set_defaults(fn=cmd_perf)

    p = sub.add_parser(
        "serve", help="sweep service: daemon, clients, provenance "
                      "manifest (docs/serving.md)")
    serve_sub = p.add_subparsers(dest="serve_command", required=True)
    p.set_defaults(fn=cmd_serve)

    from .exec import DEFAULT_CACHE_PATH
    sp = serve_sub.add_parser(
        "start", help="run the daemon in the foreground",
        parents=[_serve_flags()])
    sp.add_argument("--parallel", type=int, default=0, metavar="N",
                    help="simulation worker processes (0 = inline, the "
                         "default; negative = pick from CPU count)")
    sp.add_argument("--cache", default=DEFAULT_CACHE_PATH, metavar="PATH",
                    help="sharded result store root "
                         f"(default: {DEFAULT_CACHE_PATH})")
    sp.add_argument("--tables", default=None, metavar="DIR",
                    help="tuned decision-table directory "
                         "(default: results/tuned)")
    sp.add_argument("--state-dir", default=None, metavar="DIR",
                    help="request-ledger directory "
                         "(default: results/serve)")
    sp.add_argument("--batch-size", type=int, default=8, metavar="N",
                    help="requests per fairness chunk (default: 8)")
    sp.add_argument("--max-entries", type=int, default=None, metavar="N",
                    help="evict the store down to N entries on flush")
    sp.add_argument("--max-bytes", type=int, default=None, metavar="N",
                    help="evict the store down to N payload bytes on flush")
    sp.add_argument("--no-telemetry", action="store_true",
                    help="disable job-lifecycle telemetry (spans, latency "
                         "histograms, event log; docs/observability.md)")
    sp.set_defaults(fn=cmd_serve, serve_fn=cmd_serve_start)

    sp = serve_sub.add_parser(
        "submit", help="submit a sweep and stream its progress",
        parents=[_serve_flags(), _system_flags(),
                 _json_flags("also write results + provenance here")])
    sp.add_argument("collective", choices=["bcast", "allreduce"])
    sp.add_argument("--nranks", type=int)
    sp.add_argument("--components",
                    help="comma-separated (default: paper set)")
    sp.add_argument("--sizes", help="comma-separated bytes")
    sp.add_argument("--warmup", type=int, default=1)
    sp.add_argument("--iters", type=int, default=3)
    sp.add_argument("--tenant", default="default",
                    help="fairness identity; concurrent tenants share the "
                         "daemon round-robin (default: 'default')")
    sp.set_defaults(fn=cmd_serve, serve_fn=cmd_serve_submit)

    sp = serve_sub.add_parser(
        "status", help="daemon health: queue, store, metrics",
        parents=[_serve_flags(),
                 _json_flags("write the raw status event here")])
    sp.set_defaults(fn=cmd_serve, serve_fn=cmd_serve_status)

    sp = serve_sub.add_parser(
        "tables", help="look up a tuned decision (or list served tables)",
        parents=[_serve_flags(),
                 _json_flags("write the raw decision event here")])
    sp.add_argument("--system", default=None,
                    help="target system (omit to list served tables)")
    sp.add_argument("--collective", default="bcast",
                    choices=["bcast", "allreduce"])
    sp.add_argument("--size", type=int, default=65536, metavar="BYTES")
    sp.add_argument("--table", default=None,
                    help="table filename under the served root "
                         "(default: decision_table.json)")
    sp.set_defaults(fn=cmd_serve, serve_fn=cmd_serve_tables)

    sp = serve_sub.add_parser(
        "metrics", help="scrape telemetry: table, JSON, or Prometheus",
        parents=[_serve_flags(),
                 _json_flags("write the raw metrics event here")])
    sp.add_argument("--prometheus", action="store_true",
                    help="print the Prometheus text exposition instead "
                         "of the table")
    sp.set_defaults(fn=cmd_serve, serve_fn=cmd_serve_metrics)

    sp = serve_sub.add_parser(
        "trace", help="export a Perfetto job-lifecycle trace",
        parents=[_serve_flags()])
    sp.add_argument("--job", type=int, default=None, metavar="ID",
                    help="one job's span tree (default: every retained "
                         "job)")
    sp.add_argument("--out", default=None, metavar="PATH",
                    help="trace file (default: "
                         "results/serve/trace[_jobID].json)")
    sp.set_defaults(fn=cmd_serve, serve_fn=cmd_serve_trace)

    sp = serve_sub.add_parser(
        "top", help="live fleet view: tenants, queues, latency "
                    "percentiles",
        parents=[_serve_flags()])
    sp.add_argument("--interval", type=float, default=2.0, metavar="SECS",
                    help="refresh period (default: 2.0)")
    sp.add_argument("--once", action="store_true",
                    help="print one frame and exit (scripts, CI)")
    sp.set_defaults(fn=cmd_serve, serve_fn=cmd_serve_top)

    sp = serve_sub.add_parser(
        "stop", help="drain in-flight jobs and stop the daemon",
        parents=[_serve_flags()])
    sp.set_defaults(fn=cmd_serve, serve_fn=cmd_serve_stop)

    sp = serve_sub.add_parser(
        "manifest", help="render the provenance ledger (offline)",
        parents=[_out_flags("write the manifest here instead of stdout")])
    sp.add_argument("--root", default=".",
                    help="repo checkout to index (default: .)")
    sp.add_argument("--state-dir", default=None, metavar="DIR",
                    help="request-ledger directory "
                         "(default: <root>/results/serve)")
    sp.add_argument("--tables", default=None, metavar="DIR",
                    help="decision-table directory "
                         "(default: <root>/results/tuned)")
    sp.set_defaults(fn=cmd_serve, serve_fn=cmd_serve_manifest)

    p = sub.add_parser("app", help="run an application skeleton",
                       parents=[_system_flags()])
    p.add_argument("app", choices=["pisvm", "miniamr", "cntk"])
    p.add_argument("--nranks", type=int)
    p.add_argument("--components")
    p.add_argument("--config", default="default",
                   help="miniAMR config (default | refine-1k)")
    p.set_defaults(fn=cmd_app)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
