"""Shared plumbing for the application skeletons."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..mpi import World
from ..node import Node
from ..options import RunOptions
from ..shmem.smsc import SmscConfig
from ..topology import get_system


@dataclass
class AppResult:
    """Outcome of one application run."""

    system: str
    nranks: int
    component: str
    total_time: float          # seconds, slowest rank
    collective_time: float     # mean per-rank time inside collectives
    iterations: int

    @property
    def mpi_fraction(self) -> float:
        return self.collective_time / self.total_time if self.total_time else 0.0


def run_app(
    system: str,
    nranks: int | None,
    component_factory: Callable[[], object],
    component_name: str,
    program_factory,
    iterations: int,
) -> AppResult:
    """Run ``program_factory``'s rank program to completion and collect
    timing. ``nranks=None`` uses every core of the machine (the paper runs
    fully-occupied nodes).

    The program may record a per-rank warm-up end timestamp in
    ``warm_ends``; measurement then starts after the slowest rank's
    warm-up, discounting one-time setup (XPMEM attachments amortize over
    an application's lifetime, SSV-D3 — our skeletons run far fewer
    iterations than the real apps, so they must not pay it up front)."""
    topo = get_system(system)
    n = topo.n_cores if nranks is None else nranks
    node = Node(topo, options=RunOptions(data_movement=False))
    world = World(node, n, smsc=SmscConfig())
    comm = world.communicator(component_factory())
    coll_times: list[float] = []
    warm_ends: list[float] = []

    procs = comm.run(program_factory(comm, coll_times, warm_ends))
    start = max(warm_ends) if warm_ends else 0.0
    total = max(p.finish_time or 0.0 for p in procs) - start
    coll = sum(coll_times) / max(1, len(coll_times))
    return AppResult(system=system, nranks=n, component=component_name,
                     total_time=total, collective_time=coll,
                     iterations=iterations)
