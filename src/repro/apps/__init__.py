"""Application skeletons for the paper's end-to-end evaluation (SSV-D3).

Each skeleton reproduces its application's compute/communication mix on the
simulated MPI — the two properties the paper's app results depend on:
the fraction of time spent inside the supported collective, and the
message-size distribution of its calls.

* :mod:`pisvm`   — parallel SVM training: Broadcast-dominated MPI time.
* :mod:`miniamr` — adaptive mesh refinement: many small Allreduces
  (tens of bytes with the default config, ~1 KB with aggressive
  refinement).
* :mod:`cntk`    — distributed SGD (AlexNet-like): large gradient
  Allreduces each minibatch (the paper replaces Iallreduce with the
  blocking Allreduce after confirming no performance loss).
"""

from .pisvm import run_pisvm
from .miniamr import run_miniamr
from .cntk import run_cntk

__all__ = ["run_pisvm", "run_miniamr", "run_cntk"]
