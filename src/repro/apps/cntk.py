"""CNTK skeleton: distributed SGD training (AlexNet / ILSVRC12-like).

CNTK's data-parallel SGD allreduces the gradient buffer every minibatch;
the paper replaces the non-blocking Iallreduce with the blocking variant
after verifying no performance difference (SSV-D3). With an AlexNet-scale
model the per-minibatch Allreduce moves tens of MB, so large-message
Allreduce bandwidth is what differentiates the components (Fig. 14).
"""

from __future__ import annotations

from typing import Callable

from ..mpi import FLOAT, SUM
from ..sim import primitives as P
from ._base import AppResult, run_app

MINIBATCHES = 8
GRADIENT_BYTES = 16 * 1024 * 1024    # gradient exchange per minibatch
COMPUTE_PER_MINIBATCH = 9e-3         # forward + backward pass


def run_cntk(
    system: str,
    component_factory: Callable[[], object],
    component_name: str = "?",
    nranks: int | None = None,
    minibatches: int = MINIBATCHES,
    gradient_bytes: int = GRADIENT_BYTES,
) -> AppResult:
    def program_factory(comm, coll_times, warm_ends):
        def program(comm_, ctx):
            sbuf = ctx.alloc("cntk.grad", gradient_bytes)
            rbuf = ctx.alloc("cntk.avg", gradient_bytes)
            scratch = ctx.alloc("cntk.scratch", gradient_bytes)
            spent = 0.0
            # Warm-up minibatch: establishes the XPMEM mappings the real
            # application amortizes over thousands of steps.
            yield from comm_.allreduce(ctx, sbuf.whole(), rbuf.whole(),
                                       SUM, FLOAT)
            warm_ends.append(ctx.now)
            for _ in range(minibatches):
                yield P.Compute(COMPUTE_PER_MINIBATCH)
                # Backprop wrote fresh gradients.
                yield P.Copy(src=scratch.whole(), dst=sbuf.whole())
                t0 = ctx.now
                yield from comm_.allreduce(ctx, sbuf.whole(), rbuf.whole(),
                                           SUM, FLOAT)
                spent += ctx.now - t0
            coll_times.append(spent)

        return program

    return run_app(system, nranks, component_factory, component_name,
                   program_factory, minibatches)
