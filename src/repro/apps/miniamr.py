"""miniAMR skeleton: adaptive mesh refinement proxy app.

miniAMR's recurring refine step is built on MPI_Allreduce over small
payloads (SSV-A): grid-balance decisions, block counts, and error norms.
The paper runs two configurations of the "expanding sphere" example
(SSV-D3, Fig. 13):

* default, 4 refinement levels, 400 timesteps — Allreduce calls average a
  couple tens of bytes;
* 1K refinement levels with refining every timestep, 1000 timesteps —
  calls average ~1 KB and the Allreduce dominates much more.
"""

from __future__ import annotations

from typing import Callable

from ..mpi import FLOAT, SUM
from ..sim import primitives as P
from ._base import AppResult, run_app

CONFIGS = {
    # timesteps scaled 10x down from the paper's runs; the compute /
    # communication ratio per timestep is what matters.
    "default": dict(timesteps=40, allreduce_bytes=40,
                    allreduces_per_step=6, compute=500e-6),
    "refine-1k": dict(timesteps=100, allreduce_bytes=1024,
                      allreduces_per_step=10, compute=180e-6),
}


def run_miniamr(
    system: str,
    component_factory: Callable[[], object],
    component_name: str = "?",
    nranks: int | None = None,
    config: str = "default",
) -> AppResult:
    cfg = CONFIGS[config]
    nbytes = max(cfg["allreduce_bytes"], 8)
    nbytes = (nbytes + 3) // 4 * 4  # whole float32 elements

    def program_factory(comm, coll_times, warm_ends):
        def program(comm_, ctx):
            sbuf = ctx.alloc("amr.s", nbytes)
            rbuf = ctx.alloc("amr.r", nbytes)
            scratch = ctx.alloc("amr.scratch", nbytes)
            spent = 0.0
            # Warm-up: establish mappings before the measured run.
            yield from comm_.allreduce(ctx, sbuf.whole(), rbuf.whole(),
                                       SUM, FLOAT)
            warm_ends.append(ctx.now)
            for _ in range(cfg["timesteps"]):
                yield P.Compute(cfg["compute"])
                for _ in range(cfg["allreduces_per_step"]):
                    yield P.Copy(src=scratch.whole(), dst=sbuf.whole())
                    t0 = ctx.now
                    yield from comm_.allreduce(ctx, sbuf.whole(),
                                               rbuf.whole(), SUM, FLOAT)
                    spent += ctx.now - t0
            coll_times.append(spent)

        return program

    return run_app(system, nranks, component_factory, component_name,
                   program_factory, cfg["timesteps"])
