"""PiSvM skeleton: parallel Support Vector Machine training.

PiSvM distributes SMO-style working-set optimization: every outer
iteration, each rank scans its share of the training set (compute), the
coordinator resolves the working set, and **broadcasts** the updated
working-set rows and alpha values to everyone — the paper profiles the
majority of PiSvM's MPI time inside MPI_Bcast (SSV-A), and on ARM-N1 finds
XHC cuts Bcast time by ~2x while the end-to-end win is ~1.13x (SSV-D3),
i.e. compute dominates but the broadcast is on the critical path.

The skeleton reproduces that mix for the mnist-scale run: per iteration a
per-rank kernel-evaluation compute phase, then a working-set broadcast of
a few tens of KB, then a small convergence Allreduce.
"""

from __future__ import annotations

from typing import Callable

from ..mpi import FLOAT, SUM
from ..sim import primitives as P
from ._base import AppResult, run_app

# Model parameters (mnist_train_576_rbf_8vr-scale workload).
ITERATIONS = 40
COMPUTE_PER_ITER = 450e-6        # kernel evaluations over the local shard
ROOT_EXTRA_COMPUTE = 60e-6       # working-set selection at the coordinator
BCAST_BYTES = 48 * 1024          # working-set rows + alphas
CHECK_BYTES = 8                  # convergence indicator


def run_pisvm(
    system: str,
    component_factory: Callable[[], object],
    component_name: str = "?",
    nranks: int | None = None,
    iterations: int = ITERATIONS,
) -> AppResult:
    def program_factory(comm, coll_times, warm_ends):
        def program(comm_, ctx):
            me = comm_.rank_of(ctx)
            wset = ctx.alloc("pisvm.wset", BCAST_BYTES)
            sbuf = ctx.alloc("pisvm.s", CHECK_BYTES)
            rbuf = ctx.alloc("pisvm.r", CHECK_BYTES)
            scratch = ctx.alloc("pisvm.scratch", BCAST_BYTES)
            spent = 0.0
            # Warm-up: establish mappings before the measured epoch.
            yield from comm_.bcast(ctx, wset.whole(), 0)
            warm_ends.append(ctx.now)
            for _ in range(iterations):
                yield P.Compute(COMPUTE_PER_ITER)
                if me == 0:
                    yield P.Compute(ROOT_EXTRA_COMPUTE)
                    # The coordinator writes the fresh working set.
                    yield P.Copy(src=scratch.whole(), dst=wset.whole())
                t0 = ctx.now
                yield from comm_.bcast(ctx, wset.whole(), 0)
                yield from comm_.allreduce(ctx, sbuf.whole(), rbuf.whole(),
                                           SUM, FLOAT)
                spent += ctx.now - t0
            coll_times.append(spent)

        return program

    return run_app(system, nranks, component_factory, component_name,
                   program_factory, iterations)
