"""Findings and reports shared by both heads of ``repro.check``.

A :class:`Finding` is one detected violation — a data race, a deadlock
cycle, an un-attached single-copy access, or a lint rule hit. The dynamic
sanitizer (:mod:`repro.check.race`, :mod:`repro.check.deadlock`) and the
static pass (:mod:`repro.check.lint`) both emit them, so the CLI and CI
can aggregate everything into one :class:`CheckReport`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class Finding:
    """One detected violation.

    ``kind`` is ``"race"``, ``"xpmem"``, ``"deadlock"`` or ``"lint"``;
    ``where`` locates it (a buffer range for dynamic findings, a
    ``file:line`` for lint); ``procs`` names the involved simulated
    processes; ``span`` carries the innermost obs span context of the
    racing access, when observability was on.
    """

    kind: str
    message: str
    where: str | None = None
    procs: tuple[str, ...] = ()
    time: float | None = None
    span: str | None = None
    rule: str | None = None
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        out = {"kind": self.kind, "message": self.message}
        if self.where is not None:
            out["where"] = self.where
        if self.procs:
            out["procs"] = list(self.procs)
        if self.time is not None:
            out["time"] = self.time
        if self.span is not None:
            out["span"] = self.span
        if self.rule is not None:
            out["rule"] = self.rule
        if self.extra:
            out["extra"] = self.extra
        return out

    @classmethod
    def from_dict(cls, d: dict) -> "Finding":
        """Inverse of :meth:`to_dict` — findings cross process boundaries
        as dicts on :class:`~repro.exec.RunResult` values."""
        return cls(
            kind=d["kind"],
            message=d["message"],
            where=d.get("where"),
            procs=tuple(d.get("procs", ())),
            time=d.get("time"),
            span=d.get("span"),
            rule=d.get("rule"),
            extra=dict(d.get("extra", {})),
        )

    def __str__(self) -> str:
        head = f"[{self.rule or self.kind}]"
        loc = f" {self.where}:" if self.where else ""
        return f"{head}{loc} {self.message}"


class CheckReport:
    """An ordered collection of findings with serialization helpers."""

    def __init__(self, findings: list[Finding] | None = None) -> None:
        self.findings: list[Finding] = list(findings or [])

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    def extend(self, other: "CheckReport | list[Finding]") -> None:
        self.findings.extend(
            other.findings if isinstance(other, CheckReport) else other)

    @property
    def ok(self) -> bool:
        return not self.findings

    def by_kind(self, kind: str) -> list[Finding]:
        return [f for f in self.findings if f.kind == kind]

    def summary(self) -> str:
        if self.ok:
            return "check: clean (0 findings)"
        kinds: dict[str, int] = {}
        for f in self.findings:
            kinds[f.kind] = kinds.get(f.kind, 0) + 1
        parts = ", ".join(f"{n} {k}" for k, n in sorted(kinds.items()))
        return f"check: {len(self.findings)} finding(s) ({parts})"

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(
            {"ok": self.ok, "count": len(self.findings),
             "findings": [f.to_dict() for f in self.findings]},
            indent=indent,
        )

    def __len__(self) -> int:
        return len(self.findings)

    def __iter__(self) -> Iterator[Finding]:
        return iter(self.findings)

    def __repr__(self) -> str:
        return f"<CheckReport {self.summary()!r}>"
