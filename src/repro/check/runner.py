"""One-shot sanitized runs: the engine behind ``python -m repro check``.

Runs collectives on a fresh node with the dynamic sanitizer (and span
tracing, so findings carry phase context) and aggregates everything into
one :class:`~repro.check.report.CheckReport`. Mirrors
:mod:`repro.obs.runner` — a check wants fresh happens-before state per
operation, so each (collective, size) point gets its own node.
"""

from __future__ import annotations

from typing import Iterable

from ..errors import DeadlockError
from ..node import Node
from ..topology import get_system
from .report import CheckReport, Finding

DEFAULT_COLLS = ("bcast", "allreduce")
DEFAULT_SIZES = (1024, 65536)


def run_sanitized(
    system: str = "epyc-1p",
    colls: Iterable[str] = DEFAULT_COLLS,
    sizes: Iterable[int] = DEFAULT_SIZES,
    nranks: int | None = None,
    component: str = "xhc-tree",
    check: str = "full",
    root: int = 0,
    iters: int = 2,
) -> CheckReport:
    """Run each (collective, size) point under ``Node(check=...)``.

    Data movement is off (the sanitizer tracks ranges, not bytes) and
    spans are on so findings name the collective phase. A deadlock raise
    is caught and reported as a finding rather than aborting the sweep.
    """
    from ..bench.components import COMPONENTS
    from ..bench.osu import run_collective

    if component == "xhc":
        component = "xhc-tree"
    factory = COMPONENTS[component]
    topo = get_system(system)
    if nranks is None:
        nranks = topo.n_cores
    report = CheckReport()
    for coll in colls:
        for size in sizes:
            node = Node(topo, data_movement=False, observe="spans",
                        check=check)
            try:
                run_collective(coll, system, nranks, factory, max(size, 1),
                               warmup=0, iters=iters, modify=True,
                               root=root, node=node)
            except DeadlockError as exc:
                report.add(Finding(
                    kind="deadlock",
                    message=f"{coll}/{size}B on {system}: {exc}",
                    extra={"coll": coll, "size": size,
                           "cycle": list(exc.cycle)},
                ))
            for finding in node.check_report:
                finding.extra.setdefault("coll", coll)
                finding.extra.setdefault("size", size)
                report.add(finding)
    return report
