"""One-shot sanitized runs: the engine behind ``python -m repro check``.

Runs collectives with the dynamic sanitizer (and span tracing, so findings
carry phase context) and aggregates everything into one
:class:`~repro.check.report.CheckReport`. Sweep points go through
:mod:`repro.exec` as instrumented :class:`~repro.exec.RunRequest` values —
instrumented runs bypass the result cache (their product is the findings,
not the latency) but still parallelize across the worker pool, and each
point gets a fresh node so happens-before state never leaks between
operations.
"""

from __future__ import annotations

from typing import Iterable

from ..options import RunOptions
from .report import CheckReport, Finding

DEFAULT_COLLS = ("bcast", "allreduce")
DEFAULT_SIZES = (1024, 65536)


def run_sanitized(
    system: str = "epyc-1p",
    colls: Iterable[str] = DEFAULT_COLLS,
    sizes: Iterable[int] = DEFAULT_SIZES,
    nranks: int | None = None,
    component: str = "xhc-tree",
    check: str = "full",
    root: int = 0,
    iters: int = 2,
    workers: int | None = 0,
) -> CheckReport:
    """Run each (collective, size) point under ``RunOptions(check=...)``.

    Data movement is off (the sanitizer tracks ranges, not bytes) and
    spans are on so findings name the collective phase. A deadlock is
    reported as a finding rather than aborting the sweep. ``workers``
    follows :class:`~repro.exec.Executor` semantics (0 = inline, the
    default); the ambient executor is deliberately *not* used because its
    instrumentation-free options would not carry the sanitizer.
    """
    from .. import exec as exec_mod
    from ..topology import get_system

    if component == "xhc":
        component = "xhc-tree"
    if nranks is None:
        nranks = get_system(system).n_cores
    options = RunOptions(data_movement=False, observe="spans", check=check)
    requests = [
        exec_mod.RunRequest(
            system=system, collective=coll, size=max(size, 1), nranks=nranks,
            component=component, warmup=0, iters=iters, modify=True,
            root=root, options=options)
        for coll in colls for size in sizes
    ]
    points = [(coll, size) for coll in colls for size in sizes]
    with exec_mod.Executor(workers=workers) as executor:
        results = executor.run_many(requests)
    report = CheckReport()
    for (coll, size), result in zip(points, results):
        if result is None:
            continue
        if result.error is not None:
            report.add(Finding(
                kind="deadlock",
                message=f"{coll}/{size}B on {system}: "
                        f"{result.error['message']}",
                extra={"coll": coll, "size": size,
                       "cycle": list(result.error.get("cycle", ()))},
            ))
        for fd in result.findings:
            finding = Finding.from_dict(fd)
            finding.extra.setdefault("coll", coll)
            finding.extra.setdefault("size", size)
            report.add(finding)
    return report
