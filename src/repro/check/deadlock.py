"""Wait-for-graph deadlock analysis for the engine.

A blocked process waits on a flag or an atomic. Who could unblock it?

* a :class:`~repro.sim.syncobj.Flag` is single-writer: only processes on
  ``flag.owner_core`` can store it (the engine enforces this), so they
  are the only candidate wakers;
* an :class:`~repro.sim.syncobj.Atomic` can be bumped by anyone alive.

A set of blocked processes is *stuck* when every candidate waker of every
member is itself in the set (greatest fixpoint). This is sound here
because new processes are only ever spawned onto the spawner's own core,
so a stuck core cannot grow a fresh writer. The engine consults this
module in three places: at event-queue drain (always — the classic
"everyone still blocked" deadlock), from the run-loop watchdog (always —
catches spins that would otherwise hang pytest), and proactively at every
block when constructed with ``check='deadlock'`` or ``'full'`` (reports
the cycle the moment it closes, while the rest of the node still runs).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .report import Finding

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.engine import Engine, SimProcess


class DeadlockInfo:
    """A stuck set plus one representative wait-for cycle through it."""

    def __init__(self, stuck: "list[SimProcess]",
                 cycle: "list[SimProcess]") -> None:
        self.stuck = stuck
        self.cycle = cycle

    @property
    def cycle_names(self) -> list[str]:
        return [p.name for p in self.cycle]

    def describe(self) -> str:
        if not self.cycle:
            return "no wait-for cycle (blocked with no possible waker)"
        hops = " -> ".join(
            f"{p.name}(core {p.core}, on {p.blocked_on})" for p in self.cycle
        )
        return f"wait-for cycle: {hops} -> back to {self.cycle[0].name}"

    def finding(self, now: float) -> Finding:
        return Finding(
            kind="deadlock",
            message=(f"{len(self.stuck)} process(es) can never be woken: "
                     f"{self.describe()}"),
            procs=tuple(p.name for p in self.stuck),
            time=now,
        )


def _candidate_wakers(engine: "Engine",
                      proc: "SimProcess") -> "list[SimProcess]":
    """Alive processes that could satisfy ``proc``'s pending wait."""
    obj = proc.blocked_obj
    owner_core = getattr(obj, "owner_core", None)
    out = []
    for p in engine.processes:
        if p is proc or p.state.name == "DONE":
            continue
        if owner_core is not None and p.core != owner_core:
            continue
        out.append(p)
    return out


def find_deadlock(engine: "Engine") -> DeadlockInfo | None:
    """Greatest-fixpoint stuck-set analysis; ``None`` when every blocked
    process still has a reachable waker."""
    blocked = [
        p for p in engine.processes
        if p.state.name == "BLOCKED" and not p.waking
    ]
    if not blocked:
        return None
    stuck = set(blocked)
    changed = True
    while changed:
        changed = False
        for p in list(stuck):
            for cand in _candidate_wakers(engine, p):
                if cand not in stuck:
                    stuck.discard(p)
                    changed = True
                    break
    if not stuck:
        return None
    ordered = sorted(stuck, key=lambda p: p.pid)
    return DeadlockInfo(ordered, _extract_cycle(engine, stuck))


def _extract_cycle(engine: "Engine",
                   stuck: "set[SimProcess]") -> "list[SimProcess]":
    """Walk p -> (its lowest-pid stuck candidate waker) until a node
    repeats; the tail from the repeat is a cycle. A walk that dead-ends
    (a wait with no candidates at all) returns the chain instead."""
    start = min(stuck, key=lambda p: p.pid)
    order: "list[SimProcess]" = []
    index: dict[int, int] = {}
    p = start
    while p is not None and p.pid not in index:
        index[p.pid] = len(order)
        order.append(p)
        nxt = [c for c in _candidate_wakers(engine, p) if c in stuck]
        p = min(nxt, key=lambda c: c.pid) if nxt else None
    if p is None:
        return order
    return order[index[p.pid]:]
