"""AST-based lint with repo-specific rules.

The simulator's value rests on determinism and on a narrow sync API;
these rules encode exactly the ways we have seen (or fear) that being
eroded:

* **RC101** — no wall-clock (``time``/``datetime`` imports) inside
  ``src/repro``: simulated time comes from the engine, wall-clock reads
  make runs non-reproducible.
* **RC102** — no RNG (``random`` imports, ``numpy.random`` access)
  inside ``src/repro``: same determinism argument.
* **RC103** — no mutable default arguments (``def f(x=[])``), anywhere:
  a classic shared-state bug, fatal in a package whose objects are
  reused across simulation runs.
* **RC104** — collectives must not poke sync state or buffer bytes
  directly (``something.value = ...`` or ``view.array()[...] = ...``
  inside ``repro/mpi``, ``repro/xhc``, ``repro/apps``, ``repro/bench``):
  flag stores go through ``P.SetFlag`` so the engine can enforce the
  single-writer rule and the race checker sees the release edge; data
  moves through ``P.Copy``/``P.Reduce`` so it is priced and checked.
* **RC105** — engine-semantics changes require a ``SIM_VERSION`` bump:
  the watched sim-path sources are fingerprinted (AST dump, so comments
  and formatting don't count) into ``_sim_fingerprint.py``; if they
  changed without bumping :data:`repro.exec.cache.SIM_VERSION`, stale
  autotuning tables would silently survive. Regenerate with
  ``python -m repro check --update-fingerprint`` after bumping.
* **RC106** — no per-event allocations in ``# hot-path`` functions:
  inside a function whose ``def`` line (or the line above it) carries a
  ``# hot-path`` marker, list/dict/set literals, comprehensions and
  string formatting (f-strings, ``.format``, ``%``) are flagged. These
  run once per simulated event; an allocation there is a measured
  regression (see docs/performance.md). Deliberate cold-path allocations
  inside a marked function carry ``# lint: disable=RC106``.

Suppress any rule on a specific line with ``# lint: disable=RC1xx``
(comma-separate several ids). See docs/checking.md for the catalogue and
how to add a rule.
"""

from __future__ import annotations

import ast
import hashlib
import re
from pathlib import Path

from .report import CheckReport, Finding

RULES = {
    "RC101": "wall-clock time in sim-path code",
    "RC102": "random-number generation in sim-path code",
    "RC103": "mutable default argument",
    "RC104": "raw sync/buffer poke outside the sync API",
    "RC105": "sim semantics changed without a SIM_VERSION bump",
    "RC106": "per-event allocation in a hot-path function",
}

# Files whose semantics define what a simulated result means; hashed into
# _sim_fingerprint.py (paths relative to the repro package directory).
SIM_FINGERPRINT_FILES = (
    "sim/engine.py",
    "sim/primitives.py",
    "sim/syncobj.py",
    "sim/resources.py",
    "node.py",
    "memory/model.py",
    "memory/cache.py",
    "sync/flags.py",
)

# RC104 applies where algorithm code lives, not in the engine/pricer
# internals that legitimately implement the pokes.
_POKE_SCOPES = ("mpi/", "xhc/", "apps/", "bench/")

_SUPPRESS_RE = re.compile(r"#\s*lint:\s*disable=([A-Z0-9, ]+)")

_HOT_PATH_RE = re.compile(r"#\s*hot-path\b")

_SKIP_DIRS = {"__pycache__", ".git", ".pytest_cache", "build", "dist",
              ".eggs", "results", "figures"}


def _suppressions(source: str) -> dict[int, set[str]]:
    out: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(line)
        if m:
            out[lineno] = {r.strip() for r in m.group(1).split(",")}
    return out


def _hot_path_lines(source: str) -> set[int]:
    """Line numbers carrying a ``# hot-path`` marker."""
    return {lineno for lineno, line in
            enumerate(source.splitlines(), start=1)
            if _HOT_PATH_RE.search(line)}


class _FileLinter(ast.NodeVisitor):
    """Runs the AST rules over one file."""

    def __init__(self, rel: str, source: str, in_package: bool) -> None:
        self.rel = rel
        self.in_package = in_package
        self.in_poke_scope = in_package and any(
            f"/{scope}" in f"/{rel}" for scope in _POKE_SCOPES)
        self.suppressed = _suppressions(source)
        self.hot_lines = _hot_path_lines(source)
        # Lexical nesting depth of `# hot-path` functions; > 0 means the
        # node being visited runs on a marked hot path (RC106 applies).
        self._hot_depth = 0
        self.findings: list[Finding] = []

    def _add(self, rule: str, node: ast.AST, message: str) -> None:
        lineno = getattr(node, "lineno", 0)
        if rule in self.suppressed.get(lineno, ()):
            return
        self.findings.append(Finding(
            kind="lint", rule=rule, message=message,
            where=f"{self.rel}:{lineno}",
        ))

    # RC101 / RC102 — imports

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            self._import_rule(node, root)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is not None and node.level == 0:
            self._import_rule(node, node.module.split(".")[0])
        self.generic_visit(node)

    def _import_rule(self, node: ast.AST, root: str) -> None:
        if not self.in_package:
            return
        if root in ("time", "datetime"):
            self._add("RC101", node,
                      f"import of {root!r}: simulated code must take time "
                      f"from the engine, not the wall clock")
        elif root == "random":
            self._add("RC102", node,
                      "import of 'random': simulation must stay "
                      "deterministic; derive variation from inputs")

    # RC102 — numpy.random attribute use

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (self.in_package and node.attr == "random"
                and isinstance(node.value, ast.Name)
                and node.value.id in ("np", "numpy")):
            self._add("RC102", node,
                      "use of numpy.random: simulation must stay "
                      "deterministic; derive variation from inputs")
        self.generic_visit(node)

    # RC103 — mutable default args / RC106 — hot-path function scope

    def _is_hot_path(self, node) -> bool:
        """Marker on the ``def`` line, the line above it, or any line of a
        multi-line signature (up to the first body statement)."""
        first_body = node.body[0].lineno if node.body else node.lineno
        return any(line in self.hot_lines
                   for line in range(node.lineno - 1, first_body))

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._defaults_rule(node)
        self._visit_function_body(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._defaults_rule(node)
        self._visit_function_body(node)

    def _visit_function_body(self, node) -> None:
        hot = self._is_hot_path(node)
        if hot or self._hot_depth > 0:
            # Annotations and decorators never execute per event (the
            # `[]` in `Callable[[], None]` is an ast.List); RC106 scans
            # only the executable body.
            if hot:
                self._hot_depth += 1
            for stmt in node.body:
                self.visit(stmt)
            if hot:
                self._hot_depth -= 1
        else:
            self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._defaults_rule(node)
        self.generic_visit(node)

    def _defaults_rule(self, node) -> None:
        args = node.args
        for default in list(args.defaults) + [
                d for d in args.kw_defaults if d is not None]:
            if self._is_mutable_literal(default):
                name = getattr(node, "name", "<lambda>")
                self._add("RC103", default,
                          f"mutable default argument in {name}(): use "
                          f"None and create it in the body")

    @staticmethod
    def _is_mutable_literal(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("list", "dict", "set")
                and not node.args and not node.keywords)

    # RC106 — per-event allocations inside `# hot-path` functions

    def _hot_alloc(self, node: ast.AST, what: str) -> None:
        if self._hot_depth > 0:
            self._add("RC106", node,
                      f"{what} in a hot-path function: this allocates "
                      f"per event; hoist it, reuse a slot, or mark a "
                      f"deliberate cold branch with "
                      f"'# lint: disable=RC106'")

    def visit_List(self, node: ast.List) -> None:
        if isinstance(node.ctx, ast.Load):
            self._hot_alloc(node, "list literal")
        self.generic_visit(node)

    def visit_Set(self, node: ast.Set) -> None:
        self._hot_alloc(node, "set literal")
        self.generic_visit(node)

    def visit_Dict(self, node: ast.Dict) -> None:
        self._hot_alloc(node, "dict literal")
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._hot_alloc(node, "list comprehension")
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._hot_alloc(node, "set comprehension")
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._hot_alloc(node, "dict comprehension")
        self.generic_visit(node)

    def visit_JoinedStr(self, node: ast.JoinedStr) -> None:
        self._hot_alloc(node, "f-string formatting")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr == "format"):
            self._hot_alloc(node, "str.format() call")
        self.generic_visit(node)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if (isinstance(node.op, ast.Mod)
                and isinstance(node.left, (ast.Constant, ast.JoinedStr))
                and (isinstance(node.left, ast.JoinedStr)
                     or isinstance(node.left.value, str))):
            self._hot_alloc(node, "%-string formatting")
        self.generic_visit(node)

    # RC104 — raw pokes from algorithm code

    def visit_Assign(self, node: ast.Assign) -> None:
        if self.in_poke_scope:
            for target in node.targets:
                self._poke_rule(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if self.in_poke_scope:
            self._poke_rule(node.target)
        self.generic_visit(node)

    def _poke_rule(self, target: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._poke_rule(elt)
            return
        if isinstance(target, ast.Attribute) and target.attr == "value":
            self._add("RC104", target,
                      "direct '.value =' store: write flags/atomics via "
                      "P.SetFlag / P.AtomicRMW so the single-writer rule "
                      "and release edges hold")
        if (isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Call)
                and isinstance(target.value.func, ast.Attribute)
                and target.value.func.attr == "array"):
            self._add("RC104", target,
                      "direct '.array()[...] =' store: move bytes via "
                      "P.Copy / P.Reduce so the transfer is priced and "
                      "race-checked")


# -- fingerprint (RC105) ----------------------------------------------------

def package_root() -> Path:
    """Directory of the ``repro`` package (…/src/repro)."""
    return Path(__file__).resolve().parents[1]


def compute_fingerprint(pkg_root: Path | None = None) -> dict[str, str]:
    """AST-level sha256 of every watched sim-semantics file."""
    root = pkg_root or package_root()
    out: dict[str, str] = {}
    for rel in SIM_FINGERPRINT_FILES:
        path = root / rel
        if not path.exists():
            out[rel] = "missing"
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"))
        out[rel] = hashlib.sha256(
            ast.dump(tree).encode("utf-8")).hexdigest()
    return out


def _current_sim_version() -> int:
    from ..exec.cache import SIM_VERSION
    return SIM_VERSION


def check_fingerprint(pkg_root: Path | None = None) -> list[Finding]:
    try:
        from . import _sim_fingerprint as manifest
    except ImportError:
        return [Finding(
            kind="lint", rule="RC105", where="src/repro/check",
            message=("fingerprint manifest missing; run "
                     "'python -m repro check --update-fingerprint'"))]
    current = compute_fingerprint(pkg_root)
    version = _current_sim_version()
    changed = sorted(
        rel for rel in current
        if manifest.FINGERPRINT.get(rel) != current[rel])
    findings: list[Finding] = []
    if changed and version == manifest.SIM_VERSION:
        findings.append(Finding(
            kind="lint", rule="RC105", where=changed[0],
            message=(f"sim semantics changed ({', '.join(changed)}) but "
                     f"SIM_VERSION is still {version}; bump "
                     f"repro.exec.cache.SIM_VERSION and run "
                     f"'python -m repro check --update-fingerprint'")))
    elif changed or version != manifest.SIM_VERSION:
        findings.append(Finding(
            kind="lint", rule="RC105", where="src/repro/check",
            message=(f"fingerprint manifest is stale (SIM_VERSION "
                     f"{manifest.SIM_VERSION} -> {version}); run "
                     f"'python -m repro check --update-fingerprint'")))
    return findings


def write_fingerprint(pkg_root: Path | None = None) -> Path:
    """Regenerate ``_sim_fingerprint.py`` for the current sources."""
    root = pkg_root or package_root()
    current = compute_fingerprint(root)
    version = _current_sim_version()
    lines = [
        '"""Generated by `python -m repro check --update-fingerprint`.',
        "",
        "Records the AST fingerprint of the sim-semantics sources as of",
        "the last SIM_VERSION bump; lint rule RC105 compares against it.",
        '"""',
        "",
        f"SIM_VERSION = {version}",
        "",
        "FINGERPRINT = {",
    ]
    for rel in SIM_FINGERPRINT_FILES:
        lines.append(f"    {rel!r}: {current[rel]!r},")
    lines += ["}", ""]
    path = root / "check" / "_sim_fingerprint.py"
    path.write_text("\n".join(lines), encoding="utf-8")
    return path


# -- tree walking -----------------------------------------------------------

def _iter_py_files(roots: list[Path]):
    for root in roots:
        if root.is_file() and root.suffix == ".py":
            yield root
            continue
        for path in sorted(root.rglob("*.py")):
            if any(part in _SKIP_DIRS or part.startswith(".")
                   for part in path.parts):
                continue
            yield path


def lint_file(path: Path, repo_root: Path | None = None) -> list[Finding]:
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [Finding(kind="lint", rule="syntax",
                        where=f"{path}:{exc.lineno}", message=str(exc))]
    resolved = path.resolve()
    pkg = package_root()
    if repo_root is not None:
        try:
            rel = str(resolved.relative_to(repo_root.resolve()))
        except ValueError:
            rel = str(path)
    else:
        rel = str(path)
    rel_posix = rel.replace("\\", "/")
    # In-package if it lives under the real repro package, or under any
    # src/repro/ layout (absolute or repo-relative) — the latter lets
    # fixtures in temp dirs exercise the sim-path rules.
    in_package = (pkg == resolved or pkg in resolved.parents
                  or "/src/repro/" in f"/{rel_posix}"
                  or "/src/repro/" in resolved.as_posix())
    linter = _FileLinter(rel_posix, source, in_package)
    linter.visit(tree)
    return linter.findings


def run_lint(paths: list[str] | None = None,
             repo_root: str | Path | None = None,
             fingerprint: bool = True) -> CheckReport:
    """Lint ``paths`` (default: the package, tests and benchmarks dirs
    under ``repo_root``) and, once per run, verify the SIM_VERSION
    fingerprint."""
    root = Path(repo_root) if repo_root is not None \
        else package_root().parents[1]
    if paths:
        roots = [Path(p) for p in paths]
    else:
        roots = [package_root()]
        for extra in ("tests", "benchmarks", "examples", "scripts"):
            d = root / extra
            if d.is_dir():
                roots.append(d)
    report = CheckReport()
    for path in _iter_py_files(roots):
        report.extend(lint_file(path, repo_root=root))
    if fingerprint:
        report.extend(check_fingerprint())
    return report
