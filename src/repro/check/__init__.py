"""repro.check — the correctness-tooling subsystem.

Two heads:

* **dynamic sanitizer** — a vector-clock happens-before race detector
  (:mod:`repro.check.race`) plus wait-for-graph deadlock analysis
  (:mod:`repro.check.deadlock`), switched on per node with
  ``Node(check='race'|'deadlock'|'full')``, mirroring the ``observe=``
  knob. Findings land in ``node.check_report``.
* **static lint** — repo-specific AST rules (:mod:`repro.check.lint`),
  runnable as ``python -m repro check --lint``.

See docs/checking.md for the rule catalogue and workflow.

This module deliberately imports neither :mod:`repro.check.lint` nor
:mod:`repro.check.runner` at import time — the engine imports us, and
those two pull in the tuning cache and the bench drivers respectively.
"""

from .deadlock import DeadlockInfo, find_deadlock
from .race import RaceChecker
from .report import CheckReport, Finding
from .vclock import VClock

__all__ = [
    "CheckReport",
    "DeadlockInfo",
    "Finding",
    "RaceChecker",
    "VClock",
    "find_deadlock",
    "run_lint",
    "run_sanitized",
]


def __getattr__(name: str):
    if name == "run_lint":
        from .lint import run_lint
        return run_lint
    if name == "run_sanitized":
        from .runner import run_sanitized
        return run_sanitized
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
