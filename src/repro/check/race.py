"""Happens-before race detection over simulated shared memory.

The engine calls into a :class:`RaceChecker` (when constructed with
``check='race'`` or ``'full'``) at every point where ordering is created
or consumed:

* ``on_spawn`` — a spawned process inherits its spawner's clock;
* ``on_release`` — a flag store joins the writer's clock into the flag's
  clock (release semantics of ``P.SetFlag`` / ``P.SetFlagGroup``);
* ``on_acquire`` — a satisfied wait joins the flag's clock into the
  reader's clock (acquire semantics of ``P.WaitFlag`` / ``P.WaitAtomic``);
* ``on_rmw`` — an atomic RMW is both (acquire then release);
* ``on_copy`` / ``on_reduce`` — the actual memory accesses.

Two accesses to overlapping byte ranges of the same buffer race when they
come from different processes, at least one writes, and neither is
ordered before the other by the happens-before relation built from those
edges. Accesses are stamped with FastTrack-style epochs (see
:mod:`repro.check.vclock`), so the common ordered case is one dict lookup.

A second rule rides along on the same hooks: reading or writing a peer's
*non-shared* buffer requires a live XPMEM attachment by the accessing
core (kernel-assisted CMA/KNEM copies are exempt — they carry
``in_kernel=True``). :mod:`repro.shmem.xpmem` reports attach/detach so
use-after-detach and missing-attach accesses surface as ``xpmem``
findings.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from ..shmem.segment import SharedSegment
from .report import CheckReport, Finding
from .vclock import VClock

if TYPE_CHECKING:  # pragma: no cover
    from ..memory.address_space import Buffer, BufView
    from ..sim.engine import Engine, SimProcess
    from ..sim.syncobj import Atomic, Flag
    from ..sim import primitives as P


class Access:
    """One recorded read or write of a byte range."""

    __slots__ = ("pid", "name", "core", "write", "lo", "hi", "epoch",
                 "time", "label", "span")

    def __init__(self, pid: int, name: str, core: int, write: bool,
                 lo: int, hi: int, epoch: int, time: float, label: str,
                 span: str | None) -> None:
        self.pid = pid
        self.name = name
        self.core = core
        self.write = write
        self.lo = lo
        self.hi = hi
        self.epoch = epoch
        self.time = time
        self.label = label
        self.span = span

    def describe(self) -> str:
        rw = "write" if self.write else "read"
        where = f"[{self.lo}:{self.hi}]"
        ctx = f" in {self.span}" if self.span else ""
        return (f"{self.name} (core {self.core}) {self.label}-{rw} "
                f"{where} at t={self.time:.3e}{ctx}")


class RaceChecker:
    """Per-engine happens-before state and findings."""

    def __init__(self, engine: "Engine", max_history: int = 512,
                 max_findings: int = 200) -> None:
        self.engine = engine
        self.max_history = max_history
        self.max_findings = max_findings
        self.findings: list[Finding] = []
        self._clocks: dict[int, VClock] = {}
        self._sync: dict[int, VClock] = {}
        self._hist: dict[int, deque[Access]] = {}
        self._attached: set[tuple[int, int]] = set()
        self._dedup: set[tuple] = set()

    # -- clock plumbing -----------------------------------------------------

    def _clock(self, proc: "SimProcess") -> VClock:
        vc = self._clocks.get(proc.pid)
        if vc is None:
            vc = VClock({proc.pid: 1})
            self._clocks[proc.pid] = vc
        return vc

    def on_spawn(self, parent: "SimProcess | None",
                 child: "SimProcess") -> None:
        if parent is None:
            self._clock(child)
            return
        pc = self._clock(parent)
        cc = pc.copy()
        cc.tick(child.pid)
        self._clocks[child.pid] = cc
        # The spawner's subsequent accesses are concurrent with the child.
        pc.tick(parent.pid)

    def on_release(self, proc: "SimProcess", obj: "Flag | Atomic") -> None:
        vc = self._clock(proc)
        sc = self._sync.get(id(obj))
        if sc is None:
            sc = VClock()
            self._sync[id(obj)] = sc
        sc.join(vc)
        vc.tick(proc.pid)

    def on_acquire(self, proc: "SimProcess", obj: "Flag | Atomic") -> None:
        sc = self._sync.get(id(obj))
        if sc is not None:
            self._clock(proc).join(sc)

    def on_rmw(self, proc: "SimProcess", obj: "Atomic") -> None:
        self.on_acquire(proc, obj)
        self.on_release(proc, obj)

    # -- memory accesses ----------------------------------------------------

    def on_copy(self, proc: "SimProcess", prim: "P.Copy") -> None:
        n = prim.nbytes
        self._access(proc, prim.src, n, False, "copy", prim.in_kernel)
        self._access(proc, prim.dst, n, True, "copy", prim.in_kernel)

    def on_reduce(self, proc: "SimProcess", prim: "P.Reduce") -> None:
        in_kernel = getattr(prim, "in_kernel", False)
        for src in prim.srcs:
            self._access(proc, src, src.length, False, "reduce", in_kernel)
        if prim.accumulate:
            self._access(proc, prim.dst, prim.nbytes, False, "reduce",
                         in_kernel)
        self._access(proc, prim.dst, prim.nbytes, True, "reduce", in_kernel)

    def _access(self, proc: "SimProcess", view: "BufView", nbytes: int,
                write: bool, label: str, in_kernel: bool) -> None:
        if nbytes <= 0:
            return
        buf = view.buf
        self._check_attached(proc, buf, write, in_kernel)
        vc = self._clock(proc)
        lo = view.offset
        hi = lo + min(nbytes, view.length)
        hist = self._hist.get(buf.id)
        if hist is None:
            hist = deque(maxlen=self.max_history)
            self._hist[buf.id] = hist
        span = self._span_of(proc)
        for acc in hist:
            if acc.pid == proc.pid:
                continue
            if not (write or acc.write):
                continue
            if acc.lo >= hi or acc.hi <= lo:
                continue
            if vc.happened_before(acc.pid, acc.epoch):
                continue
            self._report_race(
                acc,
                Access(proc.pid, proc.name, proc.core, write, lo, hi,
                       vc.get(proc.pid), self.engine.now, label, span),
                buf,
            )
        hist.append(
            Access(proc.pid, proc.name, proc.core, write, lo, hi,
                   vc.get(proc.pid), self.engine.now, label, span))

    # -- xpmem attachment protocol ------------------------------------------

    def on_attach(self, proc: "SimProcess | None", buf: "Buffer") -> None:
        if proc is not None:
            self._attached.add((proc.core, buf.id))

    def on_detach(self, proc: "SimProcess | None", buf: "Buffer") -> None:
        if proc is not None:
            self._attached.discard((proc.core, buf.id))

    def _check_attached(self, proc: "SimProcess", buf: "Buffer",
                        write: bool, in_kernel: bool) -> None:
        if buf.shared or in_kernel or buf.owner_core == proc.core:
            return
        if (proc.core, buf.id) in self._attached:
            return
        key = ("xpmem", proc.core, buf.id)
        if key in self._dedup:
            return
        self._dedup.add(key)
        rw = "wrote" if write else "read"
        self._add(Finding(
            kind="xpmem",
            message=(f"{proc.name} (core {proc.core}) {rw} peer buffer "
                     f"{buf.name!r} (owner core {buf.owner_core}) with no "
                     f"live XPMEM attachment — missing attach or "
                     f"use-after-detach"),
            where=buf.name,
            procs=(proc.name,),
            time=self.engine.now,
            span=self._span_of(proc),
        ))

    # -- reporting ----------------------------------------------------------

    def _span_of(self, proc: "SimProcess") -> str | None:
        obs = self.engine.obs
        if not obs.enabled:
            return None
        return obs.current_span(proc.pid)

    def _where(self, buf: "Buffer", lo: int, hi: int) -> str:
        base = buf.name
        seg = SharedSegment.lookup(buf)
        if seg is not None:
            region = seg.region_at(lo)
            if region is not None:
                base = f"{base}:{region}"
        return f"{base}[{lo}:{hi}]"

    def _report_race(self, old: Access, new: Access, buf: "Buffer") -> None:
        key = ("race", buf.id,
               (old.name, old.label, old.write),
               (new.name, new.label, new.write))
        if key in self._dedup:
            return
        self._dedup.add(key)
        lo = max(old.lo, new.lo)
        hi = min(old.hi, new.hi)
        where = self._where(buf, lo, hi)
        self._add(Finding(
            kind="race",
            message=(f"data race on {where}: {new.describe()} is not "
                     f"ordered after {old.describe()} — no happens-before "
                     f"edge (release/acquire chain) connects them"),
            where=where,
            procs=(old.name, new.name),
            time=new.time,
            span=new.span or old.span,
            extra={"overlap": [lo, hi],
                   "first": old.describe(), "second": new.describe()},
        ))

    def _add(self, finding: Finding) -> None:
        if len(self.findings) < self.max_findings:
            self.findings.append(finding)

    def report(self) -> CheckReport:
        return CheckReport(self.findings)
