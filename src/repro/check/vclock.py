"""Vector clocks for happens-before tracking.

The race detector (:mod:`repro.check.race`) keeps one :class:`VClock` per
simulated process and one per sync object (flag / atomic). Accesses are
stamped FastTrack-style with a scalar *epoch* — the accessing process's
own component at access time — because comparing a later access against a
stored one only needs ``epoch <= clock[pid]``, not a full clock join.
"""

from __future__ import annotations


class VClock:
    """A sparse vector clock: pid -> logical time (missing means 0)."""

    __slots__ = ("c",)

    def __init__(self, c: dict[int, int] | None = None) -> None:
        self.c: dict[int, int] = dict(c) if c else {}

    def get(self, pid: int) -> int:
        return self.c.get(pid, 0)

    def tick(self, pid: int) -> None:
        self.c[pid] = self.c.get(pid, 0) + 1

    def join(self, other: "VClock") -> None:
        mine = self.c
        for pid, t in other.c.items():
            if t > mine.get(pid, 0):
                mine[pid] = t

    def copy(self) -> "VClock":
        return VClock(self.c)

    def happened_before(self, pid: int, epoch: int) -> bool:
        """True iff an access stamped (pid, epoch) happens-before the
        point in time this clock represents."""
        return epoch <= self.c.get(pid, 0)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VClock):
            return NotImplemented
        return {p: t for p, t in self.c.items() if t} == \
            {p: t for p, t in other.c.items() if t}

    def __repr__(self) -> str:
        inner = ", ".join(f"{p}:{t}" for p, t in sorted(self.c.items()))
        return f"<vc {{{inner}}}>"
