"""The single run-behavior knob object: :class:`RunOptions`.

Historically :class:`repro.node.Node` grew one keyword per concern —
``data_movement=``, ``record_copies=``, ``observe=``, ``check=`` — and
every runner copied the pile. :class:`RunOptions` collapses them into one
frozen dataclass accepted by ``Node``, :class:`repro.exec.RunRequest` and
the runners; the old keywords survive as deprecated aliases (see
:func:`resolve_options` and docs/api.md for the deprecation policy).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace

from .errors import ConfigError

#: Engines a Node can run programs on (docs/performance.md).
ENGINES = ("event", "array")


class _Unset:
    """Sentinel distinguishing "not passed" from an explicit None/False."""

    def __repr__(self) -> str:  # pragma: no cover
        return "<unset>"


UNSET = _Unset()


@dataclass(frozen=True)
class RunOptions:
    """Everything that modulates *how* a simulation runs.

    With one deliberate exception — ``engine`` — none of these change the
    simulated latencies.

    ``data_movement``
        Actually move buffer bytes (numerical correctness checks need it;
        latency sweeps leave it off).
    ``record_copies``
        Legacy per-transfer records in ``engine.trace`` for
        :class:`repro.sim.trace.Timeline`.
    ``observe``
        ``None``/``False`` | ``"spans"`` | ``True``/``"full"`` — span
        tracing and metrics (docs/observability.md).
    ``check``
        ``None``/``False`` | ``"race"`` | ``"deadlock"`` |
        ``True``/``"full"`` — the dynamic sanitizer (docs/checking.md).
    ``engine``
        ``"event"`` (default) — the per-event heap engine, the numeric
        reference. ``"array"`` — the vectorized array-mode engine
        (:class:`repro.sim.array_engine.ArrayEngine`): zero-decision
        pipeline segments are priced as numpy batches with bulk
        bandwidth-contention sampling. Array-mode latencies differ from
        the event engine by the documented approximations
        (docs/performance.md); the engine name is therefore part of the
        result-cache key (docs/api.md). Requires numpy (the ``[perf]``
        extra) and is incompatible with ``observe``/``check``/
        ``record_copies``.
    """

    data_movement: bool = True
    record_copies: bool = False
    observe: "bool | str | None" = None
    check: "bool | str | None" = None
    engine: str = "event"

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ConfigError(
                f"unknown engine {self.engine!r}; expected one of "
                f"{'/'.join(ENGINES)}"
            )

    @property
    def instrumented(self) -> bool:
        """True when the run produces side artifacts (spans, findings,
        copy records) beyond a latency — such runs bypass the result
        cache, which stores latencies only."""
        return (bool(self.observe) or bool(self.check)
                or self.record_copies)

    def with_(self, **changes) -> "RunOptions":
        """A copy with ``changes`` applied (frozen-dataclass update)."""
        return replace(self, **changes)


#: The do-nothing default: data moves, nothing is instrumented.
DEFAULT_OPTIONS = RunOptions()


def resolve_options(
    options: RunOptions | None,
    *,
    caller: str = "Node",
    stacklevel: int = 3,
    data_movement: "bool | _Unset" = UNSET,
    record_copies: "bool | _Unset" = UNSET,
    observe: "bool | str | None | _Unset" = UNSET,
    check: "bool | str | None | _Unset" = UNSET,
) -> RunOptions:
    """Merge the deprecated per-concern keywords into a RunOptions.

    Exactly one :class:`DeprecationWarning` is emitted per call that uses
    any legacy keyword, naming all of them at once. Passing both
    ``options`` and a legacy keyword is ambiguous and raises
    ``TypeError``.
    """
    legacy = {
        name: value
        for name, value in (("data_movement", data_movement),
                            ("record_copies", record_copies),
                            ("observe", observe),
                            ("check", check))
        if value is not UNSET
    }
    if legacy:
        if options is not None:
            raise TypeError(
                f"{caller}: pass either options=RunOptions(...) or the "
                f"legacy keyword(s) {sorted(legacy)}, not both")
        warnings.warn(
            f"{caller}(..., {', '.join(sorted(legacy))}=...) is "
            f"deprecated; pass options=RunOptions(...) instead "
            f"(see docs/api.md)",
            DeprecationWarning, stacklevel=stacklevel)
        return RunOptions(**legacy)
    return options if options is not None else DEFAULT_OPTIONS
