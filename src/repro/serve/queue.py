"""Tenant-fair request queue: round-robin chunks, FIFO within a tenant.

The daemon must not let one tenant's 10,000-point sweep starve another
tenant's 3-point lookup — the "millions of users" story is many small
clients sharing one warm simulator. Fairness is implemented the same way
XHC shares a bus: split every job into bounded *chunks* (``batch_size``
requests) and round-robin chunk execution across tenants. Within one
tenant, jobs stay strictly FIFO, so a tenant cannot jump its own queue
either. A tenant leaves the rotation while it has nothing pending and
re-enters at the back when it submits again.

This module is a pure data structure (no asyncio, no I/O) so the policy
is unit-testable; :mod:`repro.serve.daemon` drives it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..exec.request import RunRequest


@dataclass
class Job:
    """One accepted ``submit``: a tenant's ordered list of requests."""

    id: int
    tenant: str
    requests: list[RunRequest]
    chunks: "deque[list[int]]"          # request-index slices, FIFO
    results: list = field(default_factory=list)   # index-aligned, None=todo
    done: int = 0
    new: int = 0
    cached: int = 0
    errors: int = 0
    finished: bool = False

    def __post_init__(self) -> None:
        if not self.results:
            self.results = [None] * len(self.requests)

    @property
    def total(self) -> int:
        return len(self.requests)

    @property
    def chunks_left(self) -> int:
        return len(self.chunks)


class FairScheduler:
    """Round-robin-across-tenants, FIFO-within-tenant chunk scheduler."""

    def __init__(self, batch_size: int = 8) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.batch_size = batch_size
        self._jobs: dict[str, deque[Job]] = {}    # tenant -> FIFO of jobs
        self._rotation: deque[str] = deque()      # tenants with work
        self._next_job_id = 1
        self.submitted = 0
        self.completed = 0
        # Cumulative per-tenant accounting (monotone; survives a tenant
        # draining out of the rotation) — the ``status`` op reports it.
        self.submitted_by_tenant: dict[str, int] = {}
        self.completed_by_tenant: dict[str, int] = {}

    # -- intake -----------------------------------------------------------

    def submit(self, tenant: str, requests: list[RunRequest]) -> Job:
        """Accept a job; it immediately joins the tenant's FIFO."""
        indices = list(range(len(requests)))
        chunks = deque(
            indices[i:i + self.batch_size]
            for i in range(0, len(indices), self.batch_size)
        )
        job = Job(id=self._next_job_id, tenant=tenant,
                  requests=list(requests), chunks=chunks)
        self._next_job_id += 1
        self.submitted += 1
        self.submitted_by_tenant[tenant] = \
            self.submitted_by_tenant.get(tenant, 0) + 1
        queue = self._jobs.get(tenant)
        if queue is None:
            queue = self._jobs[tenant] = deque()
        had_work = self._has_pending(tenant)
        queue.append(job)
        if not had_work:
            self._rotation.append(tenant)
        if not job.chunks:           # zero-request job: trivially finished
            job.finished = True
            self.completed += 1
            self.completed_by_tenant[tenant] = \
                self.completed_by_tenant.get(tenant, 0) + 1
            self._prune(tenant)
        return job

    # -- dispatch ---------------------------------------------------------

    def next_chunk(self) -> "tuple[Job, list[int]] | None":
        """The next ``(job, request indices)`` to execute, or ``None``.

        Takes one chunk from the front tenant's *oldest* unfinished job,
        then moves that tenant to the back of the rotation — every tenant
        with pending work gets one chunk per rotation lap.
        """
        while self._rotation:
            tenant = self._rotation.popleft()
            queue = self._jobs.get(tenant)
            job = next((j for j in queue if j.chunks), None) \
                if queue else None
            if job is None:
                continue             # fully dispatched; completion is
                # recorded via record(), which prunes the queue
            chunk = job.chunks.popleft()
            if self._has_pending(tenant):
                self._rotation.append(tenant)
            return job, chunk
        return None

    def record(self, job: Job, indices: list[int], results: list) -> None:
        """Store one executed chunk's results on its job."""
        for idx, result in zip(indices, results):
            job.results[idx] = result
            job.done += 1
            if result is None or getattr(result, "error", None):
                job.errors += 1
            elif getattr(result, "cached", False):
                job.cached += 1
            else:
                job.new += 1
        if job.done >= job.total and not job.finished:
            job.finished = True
            self.completed += 1
            self.completed_by_tenant[job.tenant] = \
                self.completed_by_tenant.get(job.tenant, 0) + 1
            self._prune(job.tenant)

    # -- introspection ----------------------------------------------------

    def _has_pending(self, tenant: str) -> bool:
        return any(job.chunks for job in self._jobs.get(tenant, ()))

    def _prune(self, tenant: str) -> None:
        queue = self._jobs.get(tenant)
        if queue is None:
            return
        live = [job for job in queue if not job.finished]
        queue.clear()
        queue.extend(live)
        if not queue:
            del self._jobs[tenant]

    @property
    def pending_chunks(self) -> int:
        return sum(job.chunks_left for q in self._jobs.values() for job in q)

    @property
    def pending_requests(self) -> int:
        return sum(job.total - job.done
                   for q in self._jobs.values() for job in q)

    def tenants(self) -> dict[str, dict]:
        """Per-tenant queue depths for ``status``."""
        out = {}
        for tenant, queue in sorted(self._jobs.items()):
            out[tenant] = {
                "jobs": len(queue),
                "chunks": sum(job.chunks_left for job in queue),
                "requests": sum(job.total - job.done for job in queue),
            }
        return out

    def tenant_totals(self) -> dict[str, dict]:
        """Cumulative per-tenant submitted/completed job counts.

        Unlike :meth:`tenants` (which forgets a tenant once its queue
        drains), these totals are monotone over the daemon's lifetime.
        """
        names = set(self.submitted_by_tenant) | set(self.completed_by_tenant)
        return {
            tenant: {
                "submitted": self.submitted_by_tenant.get(tenant, 0),
                "completed": self.completed_by_tenant.get(tenant, 0),
            }
            for tenant in sorted(names)
        }

    def idle(self) -> bool:
        return self.pending_chunks == 0
