"""``repro.serve`` — the sweep service on top of :mod:`repro.exec`.

The executor turned every sweep into cached, batched, parallel requests;
this package turns the executor into a *service*: a long-lived asyncio
daemon speaking JSON lines over a local socket, with a tenant-fair
request queue, streamed progress, a sharded size-bounded result store,
served tuned-decision tables, provenance on every answer, and full
job-lifecycle telemetry (:mod:`repro.obs.svc`): latency histograms with
percentiles behind the ``metrics`` op (JSON + Prometheus text), Perfetto
traces behind the ``trace`` op, and a rotated JSONL event log. See
docs/serving.md for the protocol, fairness and eviction policies, the
provenance schema, and the telemetry surface.

Quick use::

    # terminal 1 — the daemon (warm pool + sharded cache)
    python -m repro serve start --parallel 4

    # terminal 2 — clients
    python -m repro serve submit --tenant alice bcast --sizes 64,65536
    python -m repro serve tables --system epyc-1p --collective bcast \\
        --size 65536
    python -m repro serve manifest   # provenance ledger, offline

or in-process::

    from repro.serve import ServeClient
    with ServeClient() as client:
        done = client.submit([req.payload() for req in requests],
                             tenant="alice")
"""

from .client import ServeClient, ServeError, ServeUnreachable
from .daemon import ServeDaemon
from .manifest import build_manifest, write_manifest
from .protocol import PROTOCOL_VERSION, default_socket_path
from .provenance import (RequestLog, config_digest, provenance_for,
                         result_to_json)
from .queue import FairScheduler, Job
from .tables import TableServer

__all__ = [
    "FairScheduler",
    "Job",
    "PROTOCOL_VERSION",
    "RequestLog",
    "ServeClient",
    "ServeDaemon",
    "ServeError",
    "ServeUnreachable",
    "TableServer",
    "build_manifest",
    "config_digest",
    "default_socket_path",
    "provenance_for",
    "result_to_json",
    "write_manifest",
]
