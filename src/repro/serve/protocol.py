"""The serve wire protocol: JSON lines over a local stream socket.

One message per line, UTF-8 JSON, newline-terminated — trivially
debuggable with ``nc -U`` and robust to partial reads. Clients send
*request* objects (``{"op": ..., ...}``); the daemon answers with one or
more *event* objects (``{"event": ..., ...}``) where the final event for
a request is always ``done``, ``error`` or ``bye``. Streaming requests
(``submit``) interleave ``progress`` events before the terminal one.

Operations
----------

``ping``      liveness + protocol/simulator version handshake
``submit``    run a sweep: ``tenant`` + list of run-request dicts
``status``    queue depths, tenants, cache/store accounting, metrics
``metrics``   full telemetry scrape: snapshot + Prometheus exposition
``trace``     Perfetto-loadable lifecycle trace (one job or the session)
``tables``    serve a tuned decision out of ``results/tuned/``
``shutdown``  stop accepting, drain in-flight work, flush, exit

The full schema (including the provenance block every served result
carries) is documented in docs/serving.md.
"""

from __future__ import annotations

import asyncio
import json
import os

#: Protocol revision; bumped on wire-incompatible changes. The handshake
#: is advisory — clients warn on mismatch, they don't refuse.
PROTOCOL_VERSION = 1

#: Where the daemon listens (and keeps its request ledger) by default.
DEFAULT_STATE_DIR = os.path.join("results", "serve")
DEFAULT_SOCKET_NAME = "daemon.sock"

#: Ops the daemon understands (anything else is an ``error`` event).
OPS = ("ping", "submit", "status", "metrics", "trace", "tables", "shutdown")

#: Hard cap on one message line — a submit of ~100k requests fits; a
#: runaway client cannot make the daemon buffer gigabytes.
MAX_MESSAGE_BYTES = 64 * 1024 * 1024


def default_socket_path(state_dir: str | None = None) -> str:
    return os.path.join(state_dir or DEFAULT_STATE_DIR, DEFAULT_SOCKET_NAME)


def encode(message: dict) -> bytes:
    """One protocol line (compact JSON + newline)."""
    return json.dumps(message, separators=(",", ":"),
                      sort_keys=True).encode() + b"\n"


def decode(line: bytes) -> dict:
    """Parse one protocol line; raises ``ProtocolError`` on junk."""
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"undecodable message: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError("message is not a JSON object")
    return message


class ProtocolError(ValueError):
    """A malformed message — the peer's fault, never fatal to the daemon."""


async def read_message(reader: asyncio.StreamReader) -> dict | None:
    """Next message from the stream; ``None`` on a clean EOF."""
    try:
        line = await reader.readline()
    except (ConnectionResetError, asyncio.IncompleteReadError):
        return None
    if not line:
        return None
    if len(line) > MAX_MESSAGE_BYTES:
        raise ProtocolError("message exceeds MAX_MESSAGE_BYTES")
    return decode(line)


async def write_message(writer: asyncio.StreamWriter, message: dict) -> None:
    writer.write(encode(message))
    await writer.drain()


def error_event(reason: str, **extra) -> dict:
    return {"event": "error", "reason": reason, **extra}
