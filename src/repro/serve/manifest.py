"""The provenance manifest: a markdown ledger tying published artifacts
back to exact requests, configs and ``SIM_VERSION``.

Modeled on the Kadoshima ``results/final/manifest.md`` exemplar
(SNIPPETS.md #1): for every published artifact, the ledger answers
*which inputs produced this, and how do I regenerate it?* Here the
artifacts are the committed ``BENCH_<n>.json`` perf-trajectory records,
the tuned decision tables, and the daemon's served jobs; the inputs are
content-addressed :class:`~repro.exec.RunRequest` hashes — the same
digests the sharded result store files entries under, so every number in
a BENCH series is traceable to an on-disk cache entry.

``python -m repro serve manifest`` renders this offline (no daemon
needed) and the CI serve-smoke job publishes it as an artifact.
"""

from __future__ import annotations

import glob
import json
import os

from ..exec.cache import SIM_VERSION
from ..exec.request import RUN_KINDS, RunRequest
from .provenance import RequestLog
from .tables import TableServer


def _load_json(path: str) -> dict | None:
    try:
        with open(path) as fh:
            doc = json.load(fh)
        return doc if isinstance(doc, dict) else None
    except (json.JSONDecodeError, OSError):
        return None


def bench_requests(doc: dict) -> "list[tuple[str, RunRequest]]":
    """Reconstruct the exact requests behind a bench-sweep BENCH record.

    ``bench_trajectory_json`` records every run parameter precisely so a
    later session can re-run the sweep; that same completeness lets the
    manifest recompute each point's content address *today* and assert
    the linkage. Series whose labels are not runnable components (or
    records that are not sweeps) yield nothing.
    """
    if "series" not in doc or doc.get("collective") not in RUN_KINDS:
        return []
    out: list[tuple[str, RunRequest]] = []
    for series in doc.get("series", []):
        label = series.get("label")
        for point in series.get("points", []):
            try:
                req = RunRequest(
                    doc["system"], doc["collective"], int(point["size"]),
                    int(doc["nranks"]), component=label,
                    warmup=int(doc.get("warmup", 1)),
                    iters=int(doc.get("iters", 3)))
            except (KeyError, TypeError, ValueError):
                continue
            out.append((label, req))
    return out


def _bench_section(path: str, doc: dict) -> list[str]:
    tag = doc.get("tag", os.path.basename(path))
    lines = [f"### `{os.path.basename(path)}` — {tag}", ""]
    title = doc.get("title")
    if title:
        lines += [f"- artifact: {title}"]
    reqs = bench_requests(doc)
    if reqs:
        system = doc["system"]
        sizes = sorted({req.size for _l, req in reqs})
        components = sorted({label for label, _r in reqs})
        lines += [
            f"- run parameters: system `{system}`, "
            f"collective `{doc['collective']}`, nranks {doc['nranks']}, "
            f"warmup {doc.get('warmup', 1)}, iters {doc.get('iters', 3)}",
            f"- components: {', '.join(f'`{c}`' for c in components)}",
            f"- sizes: {', '.join(str(s) for s in sizes)}",
            f"- requests: {len(reqs)} points, content-addressed at "
            f"SIM_VERSION {SIM_VERSION}:",
        ]
        for label, req in reqs[:4]:
            lines.append(f"  - `{req.key()}` ← {label} @ {req.size} B")
        if len(reqs) > 4:
            lines.append(f"  - … {len(reqs) - 4} more "
                         f"(same parameters, remaining sizes/components)")
        lines += [
            "- regenerate: `python -m repro bench "
            f"{doc['collective']} --system {system} "
            f"--nranks {doc['nranks']} "
            f"--sizes {','.join(str(s) for s in sizes)} "
            f"--warmup {doc.get('warmup', 1)} "
            f"--iters {doc.get('iters', 3)} --cache`",
        ]
        exec_info = doc.get("exec")
        if exec_info:
            lines.append(
                f"- recorded run: {exec_info.get('simulations', '?')} new "
                f"simulations, {exec_info.get('cache_hits', '?')} cached, "
                f"wall {exec_info.get('wall_s', '?')}s")
    else:
        kind = doc.get("kind", "record")
        recorded = doc.get("sim_version")
        lines += [f"- non-sweep record (kind: {kind})"]
        if recorded is not None:
            lines.append(f"- recorded at SIM_VERSION {recorded}")
        note = doc.get("note")
        if note:
            lines.append(f"- note: {note}")
    lines.append("")
    return lines


def build_manifest(root: str | os.PathLike = ".", *,
                   state_dir: str | None = None,
                   tables_root: str | None = None) -> str:
    """Render the full ledger for a repo checkout as markdown."""
    root = os.fspath(root)
    lines = [
        "# Results manifest",
        "",
        "Ledger tying published artifacts (BENCH records, tuned decision",
        "tables, served sweeps) to the exact content-addressed requests",
        "and simulator version that produced them. Regenerate with",
        "`python -m repro serve manifest`.",
        "",
        f"- simulator: SIM_VERSION {SIM_VERSION}",
        "- request hashes: sha256 over the canonical request payload "
        "(`RunRequest.key()`), identical to the sharded result-store "
        "filenames under `results/cache/objects/`",
        "",
        "## BENCH perf-trajectory records",
        "",
    ]
    bench_paths = sorted(glob.glob(os.path.join(root, "BENCH_*.json")))
    if not bench_paths:
        lines += ["(no BENCH records found)", ""]
    for path in bench_paths:
        doc = _load_json(path)
        if doc is None:
            lines += [f"### `{os.path.basename(path)}`", "",
                      "- unreadable record (skipped)", ""]
            continue
        lines += _bench_section(path, doc)

    lines += ["## Tuned decision tables", ""]
    server = TableServer(tables_root
                         or os.path.join(root, "results", "tuned"))
    tables = server.available()
    if not tables:
        lines += ["(no decision tables found)", ""]
    for info in tables:
        rel = os.path.relpath(info["table"], root)
        lines += [
            f"### `{rel}`",
            "",
            f"- etag: `{info['etag']}`",
            f"- entries: {info['entries']} "
            f"(systems: {', '.join(info['systems'])})",
            "- regenerate: `python -m repro tune` "
            "(serve live: `python -m repro serve tables "
            "--system <s> --collective <c> --size <n>`)",
            "",
        ]

    lines += ["## Served jobs (request ledger)", ""]
    log = RequestLog(state_dir or os.path.join(root, "results", "serve"))
    records = [r for r in log.records() if r.get("kind") == "job"]
    if not records:
        lines += ["(no serve request ledger found)", ""]
    else:
        lines += [f"{len(records)} job(s) on record; most recent first:", ""]
        for record in reversed(records[-10:]):
            hashes = record.get("request_hashes", [])
            shown = ", ".join(f"`{h[:12]}…`" for h in hashes[:3])
            if len(hashes) > 3:
                shown += f", … {len(hashes) - 3} more"
            lines.append(
                f"- job {record.get('job')} (tenant `{record.get('tenant')}`"
                f", SIM_VERSION {record.get('sim_version')}): "
                f"{record.get('requests')} request(s), "
                f"{record.get('new')} new / {record.get('cached')} cached"
                f"{' — ' + shown if shown else ''}")
        lines.append("")
    return "\n".join(lines)


def write_manifest(path: str | os.PathLike,
                   root: str | os.PathLike = ".", *,
                   state_dir: str | None = None,
                   tables_root: str | None = None) -> str:
    """Render and write the ledger; returns the rendered text."""
    text = build_manifest(root, state_dir=state_dir,
                          tables_root=tables_root)
    path = os.fspath(path)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as fh:
        fh.write(text)
    return text
