"""Served decision tables: the read-heavy half of the sweep service.

The "millions of users" workload is not submitting sweeps — it is
clients asking ``(system, collective, size) → which config should I
run?`` and expecting an answer in microseconds. Those answers live in
the tuner's persistent decision tables (``results/tuned/*.json``); this
module serves them from an in-memory warm cache with etag-style
invalidation: every lookup stats the table file, and a changed
``(mtime_ns, size)`` pair — a re-tune, a table copied in from another
machine — reloads it before answering. Nothing is ever served from a
table the filesystem no longer agrees with.

The etag doubles as provenance: served decisions carry it, so a client
can pin "the table I tuned against" and detect when the daemon rolled
forward underneath it.
"""

from __future__ import annotations

import os

from ..tune.table import DecisionTable, bucket_of

DEFAULT_TABLES_ROOT = os.path.join("results", "tuned")
DEFAULT_TABLE_NAME = "decision_table.json"


def etag_of(path: str) -> str | None:
    """``"<mtime_ns>-<size>"`` of a file, ``None`` if it is missing."""
    try:
        st = os.stat(path)
    except FileNotFoundError:
        return None
    return f"{st.st_mtime_ns}-{st.st_size}"


class TableServer:
    """Warm-cached, etag-invalidated access to tuned decision tables."""

    def __init__(self, root: str | os.PathLike = DEFAULT_TABLES_ROOT) -> None:
        self.root = os.fspath(root)
        # {abspath: (etag, DecisionTable)}
        self._warm: dict[str, tuple[str, DecisionTable]] = {}
        self.lookups = 0
        self.reloads = 0

    def _resolve(self, table: str | None) -> str:
        name = table or DEFAULT_TABLE_NAME
        if os.path.isabs(name) or os.sep in name:
            return os.path.abspath(name)
        return os.path.abspath(os.path.join(self.root, name))

    def load(self, table: str | None = None) -> \
            "tuple[str, str, DecisionTable] | None":
        """``(path, etag, table)`` for a table name, reloading only when
        the file changed; ``None`` when the file does not exist."""
        path = self._resolve(table)
        etag = etag_of(path)
        if etag is None:
            self._warm.pop(path, None)
            return None
        cached = self._warm.get(path)
        if cached is not None and cached[0] == etag:
            return path, etag, cached[1]
        loaded = DecisionTable.load(path)
        self._warm[path] = (etag, loaded)
        self.reloads += 1
        return path, etag, loaded

    def lookup(self, system: str, collective: str, size: int,
               table: str | None = None) -> dict | None:
        """One served decision, or ``None`` when there is no table or no
        tuned entry for the (system, collective)."""
        self.lookups += 1
        loaded = self.load(table)
        if loaded is None:
            return None
        path, etag, decision_table = loaded
        found = decision_table.lookup_entry(system, collective, size)
        if found is None:
            return None
        bucket, entry = found
        return {
            "system": system.lower(),
            "collective": collective,
            "size": size,
            "bucket": bucket,
            "exact_bucket": bucket == bucket_of(size),
            "config": entry["config"],
            "latency_us": entry.get("latency_us"),
            "baseline_us": entry.get("baseline_us"),
            "nranks": entry.get("nranks"),
            "table": path,
            "etag": etag,
        }

    def available(self) -> list[dict]:
        """Every loadable table under the root, with entry counts."""
        out = []
        if not os.path.isdir(self.root):
            return out
        for name in sorted(os.listdir(self.root)):
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.root, name)
            try:
                loaded = self.load(name)
            except (ValueError, KeyError, TypeError, AttributeError,
                    OSError):
                continue  # not a decision table (e.g. a cache file)
            if loaded is None:
                continue
            path, etag, decision_table = loaded
            if len(decision_table) == 0:
                continue
            out.append({
                "table": path,
                "etag": etag,
                "entries": len(decision_table),
                "systems": decision_table.systems(),
            })
        return out

    def stats(self) -> dict:
        return {"lookups": self.lookups, "reloads": self.reloads,
                "warm_tables": len(self._warm)}
