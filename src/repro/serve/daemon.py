"""The sweep-service daemon: a long-lived, asyncio front end over the
shared :class:`~repro.exec.Executor`.

One daemon owns one warm executor (process pool + sharded result cache)
and serves any number of client connections over a local stream socket,
speaking the JSON-lines protocol of :mod:`repro.serve.protocol`. The
daemon's event loop only shuffles queues and sockets; simulation chunks
run in a worker thread (``asyncio.to_thread``) so a 4 MB allreduce never
blocks a concurrent ``tables`` lookup.

Scheduling is tenant-fair (:class:`~repro.serve.queue.FairScheduler`):
jobs are split into bounded chunks and chunk execution round-robins
across tenants, with per-chunk progress events streamed back to each
submitter. After every chunk the result cache is flushed (atomic,
sharded, size-bounded — see docs/serving.md), so even a ``kill -9`` of
the daemon loses at most the chunk in flight.

Graceful shutdown (the ``shutdown`` op, SIGINT or SIGTERM) stops
accepting new jobs, *drains* everything already accepted, flushes the
store ledger and only then exits — clients with queued work see their
``done`` events, not a dropped connection.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import signal
import time  # lint: disable=RC101  (daemon uptime/wall accounting, not sim)

from ..exec.cache import SIM_VERSION, ResultCache, default_cache_path
from ..exec.executor import Executor
from ..exec.request import RunRequest, RunResult
from ..obs.metrics import MetricsRegistry
from ..obs.svc import ServiceTelemetry
from .protocol import (PROTOCOL_VERSION, ProtocolError, default_socket_path,
                       error_event, read_message, write_message)
from .provenance import RequestLog, job_record, result_to_json
from .queue import FairScheduler, Job
from .tables import DEFAULT_TABLES_ROOT, TableServer


class ServeDaemon:
    """The long-lived sweep service; ``asyncio.run(daemon.run())``."""

    def __init__(self, socket_path: str | os.PathLike | None = None, *,
                 workers: int | None = 0,
                 cache: "ResultCache | str | os.PathLike | None" = None,
                 tables_root: str | os.PathLike | None = None,
                 state_dir: str | os.PathLike | None = None,
                 batch_size: int = 8,
                 max_entries: int | None = None,
                 max_bytes: int | None = None,
                 telemetry: bool = True,
                 log: "callable | None" = None) -> None:
        self.socket_path = os.fspath(socket_path) if socket_path \
            else default_socket_path()
        if state_dir is None:
            state_dir = os.path.dirname(self.socket_path) or "."
        self.state_dir = os.fspath(state_dir)
        if cache is None:
            cache = default_cache_path()
        if not isinstance(cache, ResultCache):
            cache = ResultCache(cache, max_entries=max_entries,
                                max_bytes=max_bytes)
        self.executor = Executor(workers=workers, cache=cache)
        self.scheduler = FairScheduler(batch_size=batch_size)
        self.tables = TableServer(tables_root if tables_root is not None
                                  else DEFAULT_TABLES_ROOT)
        self.request_log = RequestLog(self.state_dir)
        self.metrics = MetricsRegistry()
        # Service telemetry: lifecycle spans + latency histograms + the
        # rotated event log. On by default *in the daemon*; the bare
        # Executor stays hook-free unless installed here.
        self.telemetry = ServiceTelemetry(self.metrics, self.state_dir,
                                          enabled=telemetry)
        if telemetry:
            self.executor.on_timing = self.telemetry.executor_phase
        self.log = log or (lambda msg: None)
        self._events: dict[int, asyncio.Queue] = {}   # job id -> stream
        self._conns: "set[asyncio.Task]" = set()
        self._accepting = True
        self._busy = False                            # a chunk is running
        self._work = asyncio.Event()
        self._stop = asyncio.Event()
        self._started = time.monotonic()
        self._m_messages = self.metrics.counter(
            "serve.messages", "protocol messages handled")
        self._m_jobs = self.metrics.counter(
            "serve.jobs.submitted", "sweep jobs accepted")
        self._m_jobs_done = self.metrics.counter(
            "serve.jobs.completed", "sweep jobs fully served")
        self._m_new = self.metrics.counter(
            "serve.simulations.new", "results that ran fresh simulations")
        self._m_cached = self.metrics.counter(
            "serve.results.cached", "results answered from the store")
        self._m_errors = self.metrics.counter(
            "serve.errors", "protocol or execution errors")
        self._m_chunks = self.metrics.counter(
            "serve.chunks", "executed scheduler chunks")
        self._m_table_hits = self.metrics.counter(
            "serve.tables.served", "decision-table lookups served")

    # -- lifecycle --------------------------------------------------------

    async def run(self) -> None:
        """Serve until a ``shutdown`` op or SIGINT/SIGTERM, then drain."""
        os.makedirs(os.path.dirname(self.socket_path) or ".", exist_ok=True)
        with contextlib.suppress(FileNotFoundError):
            os.unlink(self.socket_path)   # stale socket from a dead daemon
        server = await asyncio.start_unix_server(
            self._handle_connection, path=self.socket_path)
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            # RuntimeError: signal handlers only install on the main
            # thread (tests run the daemon loop on a worker thread).
            with contextlib.suppress(NotImplementedError, ValueError,
                                     RuntimeError):
                loop.add_signal_handler(
                    sig, lambda: asyncio.ensure_future(self._drain_and_stop()))
        worker = asyncio.create_task(self._worker_loop())
        self.log(f"listening on {self.socket_path} "
                 f"(SIM_VERSION {SIM_VERSION}, "
                 f"protocol {PROTOCOL_VERSION})")
        try:
            async with server:
                await self._stop.wait()
        finally:
            # Let in-flight connection handlers flush their final events
            # (the drain already guaranteed those events were queued);
            # anything still reading after that is cut loose.
            pending = {t for t in self._conns if not t.done()}
            if pending:
                _done, still = await asyncio.wait(pending, timeout=2.0)
                for task in still:
                    task.cancel()
            worker.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await worker
            self.executor.close()         # flush cache + ledger, stop pool
            with contextlib.suppress(FileNotFoundError):
                os.unlink(self.socket_path)
            self.log("stopped")

    async def _drain_and_stop(self) -> dict:
        """Refuse new jobs, finish accepted ones, flush, stop serving."""
        self._accepting = False
        self._work.set()                  # wake the worker if it is idle
        # Drained means: nothing queued, nothing running, and every
        # submitter has been handed its final ``done`` event (the event
        # registry empties as submit handlers finish streaming).
        while not (self.scheduler.idle() and not self._busy
                   and not self._events):
            await asyncio.sleep(0.02)
        drained = self.scheduler.completed
        self.executor.cache.save()
        self._stop.set()
        return {"event": "bye", "drained_jobs": drained,
                "uptime_s": round(self.uptime_s, 3)}

    @property
    def uptime_s(self) -> float:
        return time.monotonic() - self._started

    # -- the execution loop ----------------------------------------------

    async def _worker_loop(self) -> None:
        while True:
            item = self.scheduler.next_chunk()
            if item is None:
                self._work.clear()
                if not self._accepting:
                    # Draining and nothing queued; _drain_and_stop() is
                    # polling for exactly this state.
                    if self._stop.is_set():
                        return
                await self._work.wait()
                continue
            job, indices = item
            requests = [job.requests[i] for i in indices]
            self.telemetry.chunk_started(job, indices)
            self._busy = True
            chunk_t0 = time.monotonic()
            try:
                results = await asyncio.to_thread(
                    self.executor.run_many, requests)
            except Exception:
                # The batch crashed (often one bad request, e.g. an
                # unknown component). Re-run one-by-one so the healthy
                # requests still get answers and only the culprit(s)
                # carry an error.
                results = await self._run_individually(requests, job)
            finally:
                self._busy = False
            self.scheduler.record(job, indices, results)
            self.executor.cache.save()    # crash loses at most one chunk
            self.telemetry.chunk_finished(job, indices, results,
                                          time.monotonic() - chunk_t0)
            self.telemetry.scrape_cache(self.executor.cache.stats())
            self.telemetry.update_queue(self.scheduler.tenants())
            self._m_chunks.inc()
            self._m_new.inc(sum(1 for r in results
                                if r is not None and not r.cached))
            self._m_cached.inc(sum(1 for r in results
                                   if r is not None and r.cached))
            await self._publish_progress(job)

    async def _run_individually(self, requests, job) -> list:
        results = []
        for request in requests:
            try:
                results.extend(await asyncio.to_thread(
                    self.executor.run_many, [request]))
            except Exception as exc:
                self._m_errors.inc()
                self.log(f"request {request.key()[:12]} of job {job.id} "
                         f"failed: {exc!r}")
                results.append(RunResult(
                    request=request, latency_s=None, cached=False,
                    error={"type": exc.__class__.__name__,
                           "message": str(exc)}))
        return results

    async def _publish_progress(self, job: Job) -> None:
        queue = self._events.get(job.id)
        if queue is None:
            return
        await queue.put({
            "event": "progress", "job": job.id, "tenant": job.tenant,
            "done": job.done, "total": job.total,
            "new": job.new, "cached": job.cached, "errors": job.errors,
        })
        if job.finished:
            self._m_jobs_done.inc()
            self.telemetry.job_finished(job)
            self.request_log.append(
                job_record(job, socket_path=self.socket_path,
                           wall_s=self.telemetry.job_wall(job.id)))
            await queue.put(self._job_done_event(job))

    def _job_done_event(self, job: Job) -> dict:
        return {
            "event": "done", "op": "submit", "job": job.id,
            "tenant": job.tenant,
            "results": [result_to_json(req, res)
                        for req, res in zip(job.requests, job.results)],
            "stats": {"requests": job.total, "new": job.new,
                      "cached": job.cached, "errors": job.errors},
            "sim_version": SIM_VERSION,
        }

    # -- connection handling ---------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conns.add(task)
        try:
            while True:
                try:
                    message = await read_message(reader)
                except ProtocolError as exc:
                    self._m_errors.inc()
                    await write_message(writer, error_event(str(exc)))
                    continue
                if message is None:
                    return
                self._m_messages.inc()
                op = message.get("op")
                if op == "ping":
                    await write_message(writer, self._ping_event())
                elif op == "status":
                    await write_message(writer, self._status_event())
                elif op == "metrics":
                    await write_message(writer, self._metrics_event())
                elif op == "trace":
                    await write_message(writer, self._trace_event(message))
                elif op == "tables":
                    await write_message(writer, self._tables_event(message))
                elif op == "submit":
                    await self._handle_submit(message, writer)
                elif op == "shutdown":
                    bye = await self._drain_and_stop()
                    await write_message(writer, bye)
                    return
                else:
                    self._m_errors.inc()
                    await write_message(
                        writer, error_event(f"unknown op {op!r}"))
        except (ConnectionResetError, BrokenPipeError):
            pass                          # client went away; fine
        finally:
            if task is not None:
                self._conns.discard(task)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    def _ping_event(self) -> dict:
        return {"event": "done", "op": "ping", "ok": True,
                "protocol": PROTOCOL_VERSION, "sim_version": SIM_VERSION}

    def _status_event(self) -> dict:
        return {
            "event": "done", "op": "status",
            "protocol": PROTOCOL_VERSION,
            "sim_version": SIM_VERSION,
            "accepting": self._accepting,
            "uptime_s": round(self.uptime_s, 3),
            "queue": {
                "pending_chunks": self.scheduler.pending_chunks,
                "pending_requests": self.scheduler.pending_requests,
                "submitted_jobs": self.scheduler.submitted,
                "completed_jobs": self.scheduler.completed,
                "inflight_chunks": 1 if self._busy else 0,
                "tenants": self.scheduler.tenants(),
                "tenant_totals": self.scheduler.tenant_totals(),
            },
            "executor": self.executor.stats(),
            "cache": self.executor.cache.stats().as_dict(),
            "store": self.executor.cache.store_info(),
            "tables": self.tables.stats(),
            "metrics": self.metrics.snapshot(),
        }

    def _metrics_event(self) -> dict:
        telemetry = self.telemetry
        return {
            "event": "done", "op": "metrics",
            "protocol": PROTOCOL_VERSION,
            "sim_version": SIM_VERSION,
            "uptime_s": round(self.uptime_s, 3),
            "telemetry": telemetry.enabled,
            "metrics": self.metrics.snapshot(),
            "prometheus": self.metrics.to_prometheus(),
            "event_log": {
                "path": telemetry.events.path,
                "written": telemetry.events.written,
                "rotations": telemetry.events.rotations,
                "segments": len(telemetry.events.segments()),
            },
        }

    def _trace_event(self, message: dict) -> dict:
        if not self.telemetry.enabled:
            self._m_errors.inc()
            return error_event("telemetry is disabled on this daemon")
        job_id = message.get("job")
        if job_id is not None:
            try:
                job_id = int(job_id)
            except (TypeError, ValueError):
                self._m_errors.inc()
                return error_event(f"bad job id {job_id!r}")
        doc = self.telemetry.trace_doc(job_id)
        if doc is None:
            self._m_errors.inc()
            return error_event(
                f"no trace for job {job_id!r}" if job_id is not None
                else "no jobs traced yet",
                jobs=self.telemetry.job_ids())
        return {"event": "done", "op": "trace", "job": job_id,
                "jobs": self.telemetry.job_ids(), "trace": doc,
                "sim_version": SIM_VERSION}

    def _tables_event(self, message: dict) -> dict:
        if "system" not in message:
            return {"event": "done", "op": "tables",
                    "tables": self.tables.available()}
        try:
            decision = self.tables.lookup(
                message["system"], message.get("collective", "bcast"),
                int(message.get("size", 0)), message.get("table"))
        except (TypeError, ValueError) as exc:
            self._m_errors.inc()
            return error_event(f"bad tables request: {exc}")
        if decision is None:
            return {"event": "done", "op": "tables", "found": False,
                    "system": message["system"],
                    "collective": message.get("collective", "bcast")}
        self._m_table_hits.inc()
        return {"event": "done", "op": "tables", "found": True,
                "decision": decision, "sim_version": SIM_VERSION}

    async def _handle_submit(self, message: dict,
                             writer: asyncio.StreamWriter) -> None:
        if not self._accepting:
            self._m_errors.inc()
            await write_message(writer, error_event(
                "daemon is draining; not accepting new jobs"))
            return
        tenant = str(message.get("tenant") or "default")
        raw = message.get("requests")
        if not isinstance(raw, list) or not raw:
            self._m_errors.inc()
            await write_message(writer, error_event(
                "submit needs a non-empty 'requests' list"))
            return
        try:
            requests = [RunRequest.from_payload(item) for item in raw]
        except (TypeError, ValueError) as exc:
            self._m_errors.inc()
            await write_message(writer, error_event(
                f"bad request payload: {exc}"))
            return
        job = self.scheduler.submit(tenant, requests)
        self._m_jobs.inc()
        self.telemetry.job_submitted(job)
        events: asyncio.Queue = asyncio.Queue()
        self._events[job.id] = events
        self._work.set()
        self.log(f"job {job.id} from {tenant!r}: "
                 f"{job.total} request(s), {job.chunks_left} chunk(s)")
        try:
            await write_message(writer, {
                "event": "accepted", "job": job.id, "tenant": tenant,
                "total": job.total, "chunks": job.chunks_left,
            })
            if job.finished:              # zero-request edge: done already
                self.telemetry.job_finished(job)
                await write_message(writer, self._job_done_event(job))
                return
            while True:
                event = await events.get()
                await write_message(writer, event)
                if event.get("event") == "done":
                    return
        finally:
            self._events.pop(job.id, None)
