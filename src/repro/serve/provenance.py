"""Provenance: every served result names exactly what produced it.

A number without its lineage is a liability at serving scale — a client
cannot tell a warm-cache answer from a fresh simulation, or results from
two simulator generations apart. Every result the daemon streams back
therefore carries a provenance block::

    {
      "request_hash":  <sha256 of the canonical request payload>,
      "sim_version":   <repro.exec.SIM_VERSION at serving time>,
      "config_digest": <sha256 of the canonical component/config spec>,
      "cache":         "hit" | "miss" | "error",
    }

``request_hash`` is exactly :meth:`RunRequest.key` — the same digest the
sharded store files the entry under, so a served answer can be traced to
its on-disk entry byte-for-byte. ``config_digest`` hashes only the
component identity (name + explicit config), letting clients group
results by configuration across sizes and systems.

The daemon also appends one line per finished job to a JSON-lines
request ledger (``results/serve/requests.jsonl``), which is what
``repro serve manifest`` mines to tie published artifacts back to exact
requests (see :mod:`repro.serve.manifest`).
"""

from __future__ import annotations

import hashlib
import json
import os

from ..exec.cache import SIM_VERSION
from ..exec.request import RunRequest, RunResult

REQUEST_LOG_NAME = "requests.jsonl"


def config_digest(request: RunRequest) -> str:
    """Digest of the component identity (registry name + explicit
    config), stable across dict orderings and processes."""
    spec = {"component": request.component, "config": request.config}
    canon = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode()).hexdigest()


def provenance_for(request: RunRequest,
                   result: "RunResult | None") -> dict:
    """The provenance block attached to one served result."""
    if result is None or result.error is not None:
        cache = "error"
    else:
        cache = "hit" if result.cached else "miss"
    return {
        "request_hash": request.key(),
        "sim_version": SIM_VERSION,
        "config_digest": config_digest(request),
        "cache": cache,
    }


def result_to_json(request: RunRequest,
                   result: "RunResult | None") -> dict:
    """Wire form of one result: the answer plus its provenance."""
    out = {
        "request": request.payload(),
        "latency_s": None if result is None else result.latency_s,
        "cached": bool(result is not None and result.cached),
        "provenance": provenance_for(request, result),
    }
    if result is not None and result.error is not None:
        out["error"] = result.error
    return out


class RequestLog:
    """Append-only JSON-lines ledger of served jobs.

    One line per finished job: tenant, request hashes, hit/miss split,
    SIM_VERSION. Appends are line-atomic (single ``write`` of one line,
    opened with ``O_APPEND``), so concurrent daemons sharing a state dir
    interleave whole records, never tear them.
    """

    def __init__(self, state_dir: str | os.PathLike | None) -> None:
        self.path = (os.path.join(os.fspath(state_dir), REQUEST_LOG_NAME)
                     if state_dir is not None else None)

    def append(self, record: dict) -> None:
        if self.path is None:
            return
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        line = json.dumps(record, sort_keys=True,
                          separators=(",", ":")) + "\n"
        with open(self.path, "a") as fh:
            fh.write(line)

    def records(self) -> list[dict]:
        """Every intact record (torn/corrupt lines are skipped, never
        fatal — mirrors the cache's corruption-is-a-miss discipline)."""
        if self.path is None or not os.path.exists(self.path):
            return []
        out = []
        with open(self.path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict):
                    out.append(record)
        return out


def job_record(job, *, socket_path: str | None = None,
               wall_s: float | None = None) -> dict:
    """The ledger line for one finished :class:`~repro.serve.queue.Job`.

    ``wall_s`` is the telemetry-measured end-to-end service latency
    (submit to publish); ``None`` when telemetry is off.
    """
    return {
        "kind": "job",
        "job": job.id,
        "tenant": job.tenant,
        "requests": job.total,
        "new": job.new,
        "cached": job.cached,
        "errors": job.errors,
        "sim_version": SIM_VERSION,
        "request_hashes": [req.key() for req in job.requests],
        "socket": socket_path,
        "wall_s": round(wall_s, 6) if wall_s is not None else None,
    }
