"""Blocking client for the sweep service (what the CLI subcommands use).

Wraps a local stream socket in the JSON-lines protocol: send one request
object, iterate response events until the terminal one. Connection
failures — no socket, nobody listening, a dead daemon, a handshake that
never answers — raise :class:`ServeUnreachable`, which carries exit code
2 per the CLI contract (docs/api.md): *the daemon being down is a usage/
environment problem, not a failed run*.

Control ops (``ping``/``status``/``tables``/``shutdown``) apply
``timeout`` to every read. ``submit`` applies it to the connection and
the ``accepted`` handshake only, then blocks indefinitely between
streamed events — a chunk of 4 MB simulations legitimately takes longer
than any sensible socket timeout.
"""

from __future__ import annotations

import os
import socket
from typing import Callable, Iterator

from .protocol import ProtocolError, decode, default_socket_path, encode


class ServeError(RuntimeError):
    """The daemon answered, but with an error event (CLI exit 1)."""

    exit_code = 1


class ServeUnreachable(ServeError):
    """No daemon behind the socket (CLI exit 2)."""

    exit_code = 2


class ServeClient:
    """One connection to a running :class:`~repro.serve.ServeDaemon`."""

    def __init__(self, socket_path: str | os.PathLike | None = None, *,
                 timeout: float = 10.0) -> None:
        self.socket_path = os.fspath(socket_path) if socket_path \
            else default_socket_path()
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._file = None

    # -- connection -------------------------------------------------------

    def connect(self) -> "ServeClient":
        if self._sock is not None:
            return self
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            sock.connect(self.socket_path)
        except (FileNotFoundError, ConnectionRefusedError,
                socket.timeout, OSError) as exc:
            sock.close()
            raise ServeUnreachable(
                f"no serve daemon reachable at {self.socket_path!r} "
                f"({exc.__class__.__name__}: {exc}); start one with "
                f"`python -m repro serve start`") from None
        self._sock = sock
        self._file = sock.makefile("rwb")
        return self

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "ServeClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the request/stream primitive -------------------------------------

    def stream(self, message: dict) -> Iterator[dict]:
        """Send one request; yield events up to and including the
        terminal one (``done``/``error``/``bye``)."""
        self.connect()
        try:
            self._file.write(encode(message))
            self._file.flush()
        except (BrokenPipeError, OSError) as exc:
            raise ServeUnreachable(
                f"serve daemon at {self.socket_path!r} dropped the "
                f"connection: {exc}") from None
        while True:
            try:
                line = self._file.readline()
            except socket.timeout:
                raise ServeUnreachable(
                    f"serve daemon at {self.socket_path!r} did not answer "
                    f"within {self.timeout}s") from None
            except OSError as exc:
                raise ServeUnreachable(
                    f"serve daemon at {self.socket_path!r} dropped the "
                    f"connection: {exc}") from None
            if not line:
                raise ServeUnreachable(
                    f"serve daemon at {self.socket_path!r} closed the "
                    f"connection mid-request")
            try:
                event = decode(line)
            except ProtocolError as exc:
                raise ServeError(f"undecodable daemon reply: {exc}") \
                    from None
            yield event
            if event.get("event") in ("done", "error", "bye"):
                return

    def request(self, message: dict) -> dict:
        """Send one request; return the terminal event, raising
        :class:`ServeError` if it is an ``error``."""
        last = {}
        for event in self.stream(message):
            last = event
        if last.get("event") == "error":
            raise ServeError(last.get("reason", "daemon error"))
        return last

    # -- ops --------------------------------------------------------------

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def status(self) -> dict:
        return self.request({"op": "status"})

    def metrics(self) -> dict:
        """Full telemetry scrape: metric snapshot + Prometheus text."""
        return self.request({"op": "metrics"})

    def trace(self, job: int | None = None) -> dict:
        """Perfetto trace document for one job (or the whole session)."""
        message: dict = {"op": "trace"}
        if job is not None:
            message["job"] = job
        return self.request(message)

    def tables(self, system: str | None = None, collective: str = "bcast",
               size: int = 0, table: str | None = None) -> dict:
        message: dict = {"op": "tables"}
        if system is not None:
            message.update(system=system, collective=collective, size=size)
            if table is not None:
                message["table"] = table
        return self.request(message)

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})

    def submit(self, requests: "list[dict]", *, tenant: str = "default",
               on_event: Callable[[dict], None] | None = None) -> dict:
        """Submit a sweep and stream it to completion.

        ``requests`` are JSON request payloads (see
        :meth:`repro.exec.RunRequest.payload`). ``on_event`` sees every
        ``accepted``/``progress`` event as it arrives; the final ``done``
        event (results + provenance) is returned.
        """
        self.connect()
        message = {"op": "submit", "tenant": tenant, "requests": requests}
        last = {}
        for event in self.stream(message):
            if event.get("event") == "accepted" and self._sock is not None:
                # Accepted: from here on, chunks may legitimately take
                # longer than the connect timeout — block between events.
                self._sock.settimeout(None)
            if on_event is not None and event.get("event") != "done":
                on_event(event)
            last = event
        if self._sock is not None:
            self._sock.settimeout(self.timeout)
        if last.get("event") == "error":
            raise ServeError(last.get("reason", "daemon error"))
        return last
