"""Cluster topology + model construction.

A cluster of ``n_nodes`` single-socket nodes becomes one topology whose
SOCKET level represents the node boundary; the machine model prices the
CROSS_SOCKET distance class with network parameters (RDMA-get latency and
per-stream bandwidth), and the ``xlink``/``fabric`` resources become the
fabric switch and per-node NIC respectively.

Limitations (documented, deliberate): one switch-level resource models the
fabric core (no per-cable topology), and all nodes are identical
single-socket machines — enough to study how the hierarchical algorithms
extend beyond the node, which is what SSVII sketches.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TopologyError
from ..memory.model import MachineModel
from ..node import Node
from ..topology.builder import TopologyBuilder
from ..topology.distance import Distance
from ..topology.objects import Topology


@dataclass(frozen=True)
class NetworkParams:
    """An RDMA-class interconnect (defaults: 100 Gb/s-era fabric)."""

    latency: float = 1.8e-6          # one-sided get latency
    bandwidth: float = 11e9          # single-stream get bandwidth
    nic_bandwidth: float = 12.5e9    # per-node NIC (100 Gb/s)
    switch_bandwidth: float = 200e9  # fabric core


@dataclass(frozen=True)
class ClusterParams:
    n_nodes: int = 4
    numa_per_node: int = 4
    cores_per_numa: int = 8
    cores_per_llc: int | None = 4
    network: NetworkParams = NetworkParams()


def build_cluster_topology(params: ClusterParams) -> Topology:
    if params.n_nodes < 1:
        raise TopologyError("cluster needs at least one node")
    b = TopologyBuilder(f"cluster-{params.n_nodes}x")
    b._machine.attrs.update({
        "kind": "cluster",
        "n_nodes": params.n_nodes,
        "cores_per_node": params.numa_per_node * params.cores_per_numa,
    })
    for _node in range(params.n_nodes):
        sock = b.socket()  # the node boundary
        for _ in range(params.numa_per_node):
            numa = b.numa(sock)
            if params.cores_per_llc is None:
                b.cores(numa, params.cores_per_numa)
            else:
                if params.cores_per_numa % params.cores_per_llc:
                    raise TopologyError(
                        "cores_per_numa must be a multiple of cores_per_llc")
                for _ in range(params.cores_per_numa
                               // params.cores_per_llc):
                    llc = b.llc(numa)
                    b.cores(llc, params.cores_per_llc)
    return b.build()


def build_cluster_model(topo: Topology,
                        params: ClusterParams) -> MachineModel:
    from ..memory.model import model_for
    net = params.network
    base = model_for(topo)  # Epyc-like intra-node parameters
    lat = dict(base.lat)
    bw = dict(base.bw)
    lat[Distance.CROSS_SOCKET] = net.latency
    bw[Distance.CROSS_SOCKET] = net.bandwidth
    return base.with_overrides(
        name=topo.name,
        lat=lat,
        bw=bw,
        # The "inter-socket link" is the fabric core; the per-socket
        # fabric resource doubles as the node's NIC for traffic that
        # leaves it.
        inter_socket_bw=net.switch_bandwidth,
        socket_fabric_bw=net.nic_bandwidth,
        # RDMA registration is pricier than an XPMEM attach: larger
        # per-page pinning cost, same amortization-by-reuse story.
        page_fault_cost=base.page_fault_cost * 2,
        syscall_cost=base.syscall_cost * 2,
    )


def build_cluster(params: ClusterParams | None = None, *,
                  options=None, **kw):
    """Build (Node, Topology, MachineModel) for a simulated cluster.

    ``kw`` overrides :class:`ClusterParams` fields, e.g.
    ``build_cluster(n_nodes=8)``. ``options`` is forwarded to the
    :class:`~repro.node.Node` (e.g. ``RunOptions(engine="array")``).
    """
    if params is None:
        params = ClusterParams(**kw)
    elif kw:
        raise TopologyError("pass either params or keyword overrides")
    topo = build_cluster_topology(params)
    model = build_cluster_model(topo, params)
    return Node(topo, model, options=options), topo, model
