"""Inter-node extension (the paper's SSVII future work).

"We are extending XHC towards inter-node interactions" — this package
provides the reproduction's version of that direction: a *cluster* is
modeled as one topology whose outermost level is a set of single-socket
nodes joined by an RDMA-class network. Cross-node transfers are priced
with network latency/bandwidth and per-node NIC resources; everything
below reuses the intra-node machinery unchanged.

The key observation making this work: XHC's pull-based single-copy chunk
pipeline maps onto RDMA *get* operations one-to-one — a child reading its
parent's exposed buffer across the network is an RDMA read from a
registered region, and the registration cache plays the role of the RDMA
memory-registration cache. So the same ``Xhc`` component, given a
``numa+socket`` sensitivity on a cluster topology (where the "socket"
level *is* the node boundary), builds exactly the inter-node hierarchy the
paper sketches.
"""

from .builder import ClusterParams, NetworkParams, build_cluster

__all__ = ["ClusterParams", "NetworkParams", "build_cluster"]
