"""Synchronization substrate: single-writer flags, atomics, barriers.

XHC's control path uses flags with a single owner-writer and one or more
readers, placed on cache lines so that false sharing is avoided where
harmful — and exploited where helpful (Fig. 10). The atomics here model the
fetch-add-based schemes whose contention collapse the paper demonstrates
(Fig. 4, `sm` on ARM-N1).
"""

from .flags import FlagAllocator, wmb, rmb
from .atomics import AtomicAllocator
from .barriers import flat_barrier

__all__ = ["FlagAllocator", "AtomicAllocator", "wmb", "rmb", "flat_barrier"]
