"""Barrier building blocks over single-writer flags.

A flat dissemination-free barrier: every participant bumps a personal
arrival flag (single writer: itself), the designated root waits for all of
them and bumps a release flag everyone else waits on. Monotonic counters
make the structures reusable across episodes with no reset races.

Because the barrier is built purely from flag release/acquire pairs, the
race checker (:mod:`repro.check.race`) sees it for free: an episode
orders every pre-barrier access of every participant before every
post-barrier access of every other — the full-fence edge collectives
like allgather rely on before reusing publish buffers.
"""

from __future__ import annotations

from typing import Iterator

from ..sim import primitives as P
from ..sim.syncobj import Flag


class FlatBarrierState:
    """Shared state for a group of participants."""

    def __init__(self, cores: list[int], root_index: int = 0) -> None:
        self.cores = cores
        self.root_index = root_index
        self.arrive: list[Flag] = [
            Flag(f"bar.arrive.{i}", core) for i, core in enumerate(cores)
        ]
        self.release = Flag("bar.release", cores[root_index])


def flat_barrier(state: FlatBarrierState, index: int, episode: int) -> Iterator:
    """One participant's barrier episode (0-based ``episode`` counter)."""
    yield P.SetFlag(state.arrive[index], episode + 1)
    if index == state.root_index:
        for i in range(len(state.cores)):
            if i != index:
                yield P.WaitFlag(state.arrive[i], episode + 1)
        yield P.SetFlag(state.release, episode + 1)
    else:
        yield P.WaitFlag(state.release, episode + 1)
