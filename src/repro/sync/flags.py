"""Single-writer flag allocation with explicit cache-line placement.

Three placement policies, matching the Fig. 10 experiment:

* ``"separate"`` — every flag on its own cache line (no false sharing;
  every reader fetches from the writer's home point).
* ``"shared"`` — a set of flags packed on one line (readers of *any* of
  them benefit from a same-LLC peer's fetch — and suffer invalidation when
  any of them is written).
* a caller-provided :class:`~repro.sim.syncobj.Line` for custom layouts.

Memory barriers: the simulator executes each process's primitives in
program order, so ``wmb``/``rmb`` are correctness no-ops; they exist so
algorithm code documents its ordering requirements exactly where the real
implementation needs fences (SSIII-E), and they charge the (tiny) fence
cost.

Happens-before contract (consumed by :mod:`repro.check.race`): a
``P.SetFlag`` store is a *release* — everything the writer did before it
becomes visible to any process whose ``P.WaitFlag`` observes (acquires)
that value or a later one. Ordering shared-buffer accesses any other way
(polling a data byte, sleeping) is a race by definition here.
"""

from __future__ import annotations

from ..sim import primitives as P
from ..sim.syncobj import Flag, Line

FENCE_COST = 5e-9


class FlagAllocator:
    """Creates flags with a chosen cache-line placement policy.

    ``metrics`` (a :class:`repro.obs.metrics.MetricsRegistry`) records how
    many flags were allocated and how many landed on shared lines.
    """

    def __init__(self, namespace: str = "", metrics=None) -> None:
        self.namespace = namespace
        self._count = 0
        if metrics is None:
            from ..obs.metrics import NULL_METRICS
            metrics = NULL_METRICS
        self._m_allocated = metrics.counter(
            "flags.allocated", "flags created by allocators")
        self._m_shared = metrics.counter(
            "flags.lines_shared", "flags packed onto shared cache lines")

    def _name(self, name: str) -> str:
        self._count += 1
        return f"{self.namespace}{name}" if self.namespace else name

    def flag(self, name: str, owner_core: int, line: Line | None = None) -> Flag:
        """One flag; on its own line unless ``line`` is given."""
        self._m_allocated.inc()
        if line is not None:
            self._m_shared.inc()
        return Flag(self._name(name), owner_core, line)

    def flag_group(
        self,
        names: list[str],
        owner_core: int,
        placement: str = "separate",
    ) -> list[Flag]:
        """A family of same-owner flags, placed per ``placement``.

        ``"shared"`` packs all of them on one cache line; ``"separate"``
        gives each its own line.
        """
        if placement == "shared":
            line = Line(owner_core)
            return [self.flag(n, owner_core, line) for n in names]
        if placement == "separate":
            return [self.flag(n, owner_core) for n in names]
        raise ValueError(f"unknown flag placement {placement!r}")


def wmb() -> P.Compute:
    """Write memory barrier (documentational; charges the fence cost)."""
    return P.Compute(FENCE_COST)


def rmb() -> P.Compute:
    """Read memory barrier (documentational; charges the fence cost)."""
    return P.Compute(FENCE_COST)
