"""Atomic counters (the contention-prone alternative to single-writer flags).

Used by the `sm`-style baselines and by the Fig. 4 motivational experiment.
Every fetch-add requires exclusive line ownership: contenders queue at the
line and pay the ownership ping-pong from the previous owner — which is
exactly why atomics-based synchronization collapses at high core counts.

For the race checker (:mod:`repro.check.race`), a ``P.AtomicRMW`` is both
an acquire and a release on the counter (like C++ ``memory_order_acq_rel``
fetch-adds), and a satisfied ``P.WaitAtomic`` is an acquire — so
counter-mediated handoffs (sm's done counters) carry happens-before just
like flag protocols do.
"""

from __future__ import annotations

from ..sim.syncobj import Atomic, Line


class AtomicAllocator:
    """Creates atomics, one cache line each (packing them would only make
    the contention worse; the baselines we model do not pack them)."""

    def __init__(self, namespace: str = "") -> None:
        self.namespace = namespace

    def atomic(self, name: str, home_core: int, line: Line | None = None) -> Atomic:
        full = f"{self.namespace}{name}" if self.namespace else name
        return Atomic(full, home_core, line)
