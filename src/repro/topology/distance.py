"""Topological distance classification between cores.

The paper's motivational measurements (Fig. 1a) distinguish four classes of
core pairs: cache-local (sharing an LLC), intra-NUMA, cross-NUMA (same
socket) and cross-socket. This module provides the classifier used both by
the memory cost model and by the message-distance accounting of Table II.
"""

from __future__ import annotations

import enum

from .objects import ObjKind, Topology


class Distance(enum.IntEnum):
    """Distance classes, nearest first."""

    SELF = 0          # same core
    CACHE_LOCAL = 1   # different cores sharing a last-level cache
    INTRA_NUMA = 2    # same NUMA node, no shared LLC
    CROSS_NUMA = 3    # same socket, different NUMA nodes
    CROSS_SOCKET = 4  # different sockets

    @property
    def label(self) -> str:
        return {
            Distance.SELF: "self",
            Distance.CACHE_LOCAL: "cache-local",
            Distance.INTRA_NUMA: "intra-numa",
            Distance.CROSS_NUMA: "cross-numa",
            Distance.CROSS_SOCKET: "cross-socket",
        }[self]


def classify_distance(topo: Topology, core_a: int, core_b: int) -> Distance:
    """Classify the topological distance between two cores."""
    if core_a == core_b:
        return Distance.SELF
    common = topo.common_ancestor(core_a, core_b)
    if common.kind is ObjKind.LLC:
        return Distance.CACHE_LOCAL
    if common.kind is ObjKind.NUMA:
        return Distance.INTRA_NUMA
    if common.kind is ObjKind.SOCKET:
        return Distance.CROSS_NUMA
    return Distance.CROSS_SOCKET


def message_distance_label(topo: Topology, core_a: int, core_b: int) -> str:
    """Coarse label used by Table II: intra-numa / inter-numa / inter-socket.

    The paper's Table II folds cache-local pairs into "intra-NUMA" and
    cross-NUMA (same socket) pairs into "inter-NUMA".
    """
    dist = classify_distance(topo, core_a, core_b)
    if dist in (Distance.SELF, Distance.CACHE_LOCAL, Distance.INTRA_NUMA):
        return "intra-numa"
    if dist is Distance.CROSS_NUMA:
        return "inter-numa"
    return "inter-socket"
