"""hwloc-like node topology model.

The paper relies on Portable Hardware Locality (hwloc) to discover the
internal node structure — sockets, NUMA nodes, shared last-level caches and
cores (SSIII-A). This package provides the equivalent substrate: an object
tree with the same vocabulary, query helpers, and the three evaluation
systems of Table I.
"""

from .objects import ObjKind, TopoObject, Topology
from .builder import TopologyBuilder, build_symmetric
from .distance import Distance, classify_distance
from .systems import (
    SYSTEMS,
    arm_n1,
    epyc_1p,
    epyc_2p,
    get_system,
)

__all__ = [
    "ObjKind",
    "TopoObject",
    "Topology",
    "TopologyBuilder",
    "build_symmetric",
    "Distance",
    "classify_distance",
    "SYSTEMS",
    "epyc_1p",
    "epyc_2p",
    "arm_n1",
    "get_system",
]
