"""The three evaluation systems of Table I.

==========  ======================  ======  =====  ====  =======
Codename    Processor               Arch    Cores  NUMA  Sockets
==========  ======================  ======  =====  ====  =======
Epyc-1P     1x AMD Epyc 7551P       x86_64  32     4     1
Epyc-2P     2x AMD Epyc 7501        x86_64  64     8     2
ARM-N1      2x ARM Neoverse N1      arm64   160    8     2
==========  ======================  ======  =====  ====  =======

Microarchitectural details encoded here, per the paper:

* On both Epycs, groups of 4 cores (a Zen CCX) share an 8 MB L3 — the
  "cache-local" distance class of Fig. 1a and the implicit flag-propagation
  assist of SSV-D1.
* ARM-N1 (Ampere Altra, Neoverse N1) has private L1/L2 per core and **no**
  shared LLC; instead a physically-tagged system-level cache (SLC) behind
  the CMN-600 mesh caches each address at a single location, so there is no
  implicit locality assist (SSV-D1) and intra- vs cross-NUMA latencies are
  nearly identical (Fig. 1a).
"""

from __future__ import annotations

from typing import Callable

from ..errors import TopologyError
from .builder import build_symmetric
from .objects import Topology


def epyc_1p() -> Topology:
    """Epyc-1P: 1x AMD Epyc 7551P — 32 cores, 4 NUMA nodes, 4-core CCXs."""
    return build_symmetric(
        "Epyc-1P",
        sockets=1,
        numa_per_socket=4,
        cores_per_numa=8,
        cores_per_llc=4,
        machine_attrs={
            "arch": "x86_64",
            "processor": "1x AMD Epyc 7551P",
            "cache_kind": "llc",
        },
    )


def epyc_2p() -> Topology:
    """Epyc-2P: 2x AMD Epyc 7501 — 64 cores, 8 NUMA nodes, 4-core CCXs."""
    return build_symmetric(
        "Epyc-2P",
        sockets=2,
        numa_per_socket=4,
        cores_per_numa=8,
        cores_per_llc=4,
        machine_attrs={
            "arch": "x86_64",
            "processor": "2x AMD Epyc 7501",
            "cache_kind": "llc",
        },
    )


def arm_n1() -> Topology:
    """ARM-N1: 2x ARM Neoverse N1 — 160 cores, 8 NUMA nodes, no shared LLC."""
    return build_symmetric(
        "ARM-N1",
        sockets=2,
        numa_per_socket=4,
        cores_per_numa=20,
        cores_per_llc=None,
        machine_attrs={
            "arch": "arm64",
            "processor": "2x ARM Neoverse N1",
            "cache_kind": "slc",
        },
    )


SYSTEMS: dict[str, Callable[[], Topology]] = {
    "epyc-1p": epyc_1p,
    "epyc-2p": epyc_2p,
    "arm-n1": arm_n1,
}


def get_system(name: str) -> Topology:
    """Look a Table I system up by codename (case/sep-insensitive;
    "epyc1p", "EPYC_1P" and "epyc-1p" all resolve)."""
    key = name.lower().replace("_", "-")
    if key not in SYSTEMS:
        squeezed = key.replace("-", "")
        for known in SYSTEMS:
            if known.replace("-", "") == squeezed:
                key = known
                break
    try:
        return SYSTEMS[key]()
    except KeyError:
        raise TopologyError(
            f"unknown system {name!r}; known: {sorted(SYSTEMS)}"
        ) from None
