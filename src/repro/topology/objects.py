"""Topology object tree (hwloc-style).

A :class:`Topology` is a tree of :class:`TopoObject` nodes rooted at a
MACHINE object, with SOCKET (package), NUMA, LLC (shared last-level cache
group) and CORE levels. Not every level must be present — e.g. the ARM-N1
system has no shared LLC between cores (paper SSV-D1), so its tree goes
socket -> NUMA -> core directly.

Object indices are *logical*: cores are numbered 0..n-1 in depth-first
order, matching how MPI ranks map onto cores under the sequential
(``map-core``) policy.
"""

from __future__ import annotations

import enum
from typing import Callable, Iterator, Optional

from ..errors import TopologyError


class ObjKind(enum.IntEnum):
    """Kinds of topology objects, outermost first."""

    MACHINE = 0
    SOCKET = 1
    NUMA = 2
    LLC = 3
    CORE = 4

    @property
    def short(self) -> str:
        return {
            ObjKind.MACHINE: "mach",
            ObjKind.SOCKET: "sock",
            ObjKind.NUMA: "numa",
            ObjKind.LLC: "llc",
            ObjKind.CORE: "core",
        }[self]


# Sensitivity tokens accepted by hierarchy construction (XHC's
# "numa+socket"-style strings) map onto these kinds.
SENSITIVITY_TOKENS: dict[str, ObjKind] = {
    "socket": ObjKind.SOCKET,
    "numa": ObjKind.NUMA,
    "l3": ObjKind.LLC,
    "llc": ObjKind.LLC,
}


class TopoObject:
    """One node of the topology tree."""

    __slots__ = ("kind", "index", "parent", "children", "attrs", "_cores")

    def __init__(
        self,
        kind: ObjKind,
        index: int,
        parent: Optional["TopoObject"] = None,
        attrs: dict | None = None,
    ) -> None:
        self.kind = kind
        self.index = index
        self.parent = parent
        self.children: list[TopoObject] = []
        self.attrs: dict = attrs or {}
        self._cores: list[TopoObject] | None = None
        if parent is not None:
            parent.children.append(self)

    # -- queries ---------------------------------------------------------

    def ancestors(self) -> Iterator["TopoObject"]:
        """Yield parent, grandparent, ... up to (and including) the machine."""
        obj = self.parent
        while obj is not None:
            yield obj
            obj = obj.parent

    def ancestor(self, kind: ObjKind) -> Optional["TopoObject"]:
        """Nearest ancestor (or self) of the given kind, if any."""
        obj: TopoObject | None = self
        while obj is not None:
            if obj.kind == kind:
                return obj
            obj = obj.parent
        return None

    def descendants(self, kind: ObjKind | None = None) -> Iterator["TopoObject"]:
        """Depth-first descendants, optionally filtered by kind."""
        for child in self.children:
            if kind is None or child.kind == kind:
                yield child
            yield from child.descendants(kind)

    def cores(self) -> list["TopoObject"]:
        """All CORE leaves under this object (cached)."""
        if self._cores is None:
            if self.kind == ObjKind.CORE:
                self._cores = [self]
            else:
                self._cores = list(self.descendants(ObjKind.CORE))
        return self._cores

    def cpuset(self) -> frozenset[int]:
        """Logical indices of the cores under this object."""
        return frozenset(c.index for c in self.cores())

    def __repr__(self) -> str:
        return f"<{self.kind.short}#{self.index} cores={len(self.cores())}>"


class Topology:
    """An immutable, validated topology tree with fast lookup tables."""

    def __init__(self, machine: TopoObject, name: str = "custom") -> None:
        if machine.kind is not ObjKind.MACHINE:
            raise TopologyError("topology root must be a MACHINE object")
        self.name = name
        self.machine = machine
        self._by_kind: dict[ObjKind, list[TopoObject]] = {
            kind: [] for kind in ObjKind
        }
        self._by_kind[ObjKind.MACHINE].append(machine)
        for obj in machine.descendants():
            self._by_kind[obj.kind].append(obj)
        self._validate()
        # Fast core-index -> ancestor tables.
        self._core_tab: dict[ObjKind, list[Optional[TopoObject]]] = {}
        ncores = self.n_cores
        for kind in (ObjKind.SOCKET, ObjKind.NUMA, ObjKind.LLC):
            tab: list[Optional[TopoObject]] = [None] * ncores
            for core in self.cores:
                tab[core.index] = core.ancestor(kind)
            self._core_tab[kind] = tab

    # -- validation ------------------------------------------------------

    def _validate(self) -> None:
        cores = self._by_kind[ObjKind.CORE]
        if not cores:
            raise TopologyError("topology has no cores")
        indices = sorted(c.index for c in cores)
        if indices != list(range(len(cores))):
            raise TopologyError(
                f"core indices must be 0..{len(cores) - 1}, got {indices[:8]}..."
            )
        order = {
            ObjKind.MACHINE: 0,
            ObjKind.SOCKET: 1,
            ObjKind.NUMA: 2,
            ObjKind.LLC: 3,
            ObjKind.CORE: 4,
        }
        for obj in self.machine.descendants():
            if obj.parent is not None and order[obj.kind] <= order[obj.parent.kind]:
                raise TopologyError(
                    f"{obj!r} nested under same-or-inner kind {obj.parent!r}"
                )

    # -- accessors -------------------------------------------------------

    @property
    def cores(self) -> list[TopoObject]:
        return self._by_kind[ObjKind.CORE]

    @property
    def n_cores(self) -> int:
        return len(self._by_kind[ObjKind.CORE])

    def objects(self, kind: ObjKind) -> list[TopoObject]:
        return list(self._by_kind[kind])

    def count(self, kind: ObjKind) -> int:
        return len(self._by_kind[kind])

    @property
    def has_llc(self) -> bool:
        """Whether cores share a last-level cache group (Epycs: yes, ARM-N1: no)."""
        return bool(self._by_kind[ObjKind.LLC])

    def core(self, index: int) -> TopoObject:
        try:
            core = self.cores[index]
        except IndexError:
            raise TopologyError(
                f"core index {index} out of range (0..{self.n_cores - 1})"
            ) from None
        assert core.index == index
        return core

    def ancestor_of_core(self, core_index: int, kind: ObjKind) -> Optional[TopoObject]:
        if not 0 <= core_index < self.n_cores:
            raise TopologyError(f"core index {core_index} out of range")
        if kind is ObjKind.MACHINE:
            return self.machine
        if kind is ObjKind.CORE:
            return self.cores[core_index]
        return self._core_tab[kind][core_index]

    def numa_of_core(self, core_index: int) -> Optional[TopoObject]:
        return self.ancestor_of_core(core_index, ObjKind.NUMA)

    def socket_of_core(self, core_index: int) -> Optional[TopoObject]:
        return self.ancestor_of_core(core_index, ObjKind.SOCKET)

    def llc_of_core(self, core_index: int) -> Optional[TopoObject]:
        return self.ancestor_of_core(core_index, ObjKind.LLC)

    def common_ancestor(self, core_a: int, core_b: int) -> TopoObject:
        """Deepest object containing both cores."""
        a = self.cores[core_a]
        chain_b = {id(o) for o in self.cores[core_b].ancestors()}
        for obj in a.ancestors():
            if id(obj) in chain_b:
                return obj
        raise TopologyError("cores share no common ancestor")  # pragma: no cover

    def group_cores_by(self, kind: ObjKind) -> list[list[int]]:
        """Core indices partitioned by their ancestor of ``kind``."""
        groups = []
        for obj in self._by_kind[kind]:
            groups.append([c.index for c in obj.cores()])
        return groups

    def filter_cores(self, pred: Callable[[TopoObject], bool]) -> list[int]:
        return [c.index for c in self.cores if pred(c)]

    def describe(self) -> str:
        """A one-line summary matching Table I's columns."""
        return (
            f"{self.name}: cores={self.n_cores} "
            f"numa={self.count(ObjKind.NUMA)} "
            f"sockets={self.count(ObjKind.SOCKET)} "
            f"llc_groups={self.count(ObjKind.LLC)}"
        )

    def __repr__(self) -> str:
        return f"<Topology {self.describe()}>"
