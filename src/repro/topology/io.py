"""Topology (de)serialization.

A topology can be described as a plain dict (JSON-compatible), in either
the compact symmetric form::

    {"name": "my-node", "symmetric": {"sockets": 2, "numa_per_socket": 4,
     "cores_per_numa": 8, "cores_per_llc": 4}}

or the explicit tree form (socket -> numa -> [llc ->] cores)::

    {"name": "weird", "sockets": [
        {"numa": [{"cores": 3}, {"llc": [{"cores": 2}, {"cores": 2}]}]},
    ]}

This is the equivalent of hwloc's XML export for this simulator: a way to
model a machine once and share the description.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..errors import TopologyError
from .builder import TopologyBuilder, build_symmetric
from .objects import ObjKind, Topology


def topology_from_spec(spec: dict[str, Any]) -> Topology:
    """Build a topology from a spec dict (see module docstring)."""
    if not isinstance(spec, dict):
        raise TopologyError("topology spec must be a dict")
    name = spec.get("name", "custom")
    if "symmetric" in spec:
        sym = dict(spec["symmetric"])
        unknown = set(sym) - {"sockets", "numa_per_socket", "cores_per_numa",
                              "cores_per_llc"}
        if unknown:
            raise TopologyError(f"unknown symmetric keys: {sorted(unknown)}")
        return build_symmetric(
            name,
            sockets=sym.get("sockets", 1),
            numa_per_socket=sym.get("numa_per_socket", 1),
            cores_per_numa=sym.get("cores_per_numa", 1),
            cores_per_llc=sym.get("cores_per_llc"),
            machine_attrs=spec.get("attrs"),
        )
    if "sockets" not in spec:
        raise TopologyError("spec needs either 'symmetric' or 'sockets'")
    b = TopologyBuilder(name)
    if spec.get("attrs"):
        b._machine.attrs.update(spec["attrs"])
    for sock_spec in spec["sockets"]:
        sock = b.socket(**sock_spec.get("attrs", {}))
        for numa_spec in sock_spec.get("numa", []):
            numa = b.numa(sock, **numa_spec.get("attrs", {}))
            if "llc" in numa_spec and "cores" in numa_spec:
                raise TopologyError("numa spec has both 'llc' and 'cores'")
            if "llc" in numa_spec:
                for llc_spec in numa_spec["llc"]:
                    llc = b.llc(numa, **llc_spec.get("attrs", {}))
                    b.cores(llc, int(llc_spec["cores"]))
            elif "cores" in numa_spec:
                b.cores(numa, int(numa_spec["cores"]))
            else:
                raise TopologyError("numa spec needs 'llc' or 'cores'")
    return b.build()


def topology_to_spec(topo: Topology) -> dict[str, Any]:
    """Serialize a topology to the explicit tree form."""
    sockets = []
    for sock in topo.objects(ObjKind.SOCKET):
        numa_specs = []
        for numa in sock.children:
            if numa.kind is not ObjKind.NUMA:
                raise TopologyError(
                    "only socket->numa->[llc->]core trees serialize")
            llcs = [c for c in numa.children if c.kind is ObjKind.LLC]
            if llcs:
                numa_specs.append({
                    "llc": [{"cores": len(l.cores())} for l in llcs]
                })
            else:
                numa_specs.append({"cores": len(numa.cores())})
        sockets.append({"numa": numa_specs})
    return {"name": topo.name, "attrs": dict(topo.machine.attrs),
            "sockets": sockets}


def load_topology(path: str | Path) -> Topology:
    """Load a topology from a JSON spec file."""
    data = json.loads(Path(path).read_text())
    return topology_from_spec(data)


def save_topology(topo: Topology, path: str | Path) -> None:
    Path(path).write_text(json.dumps(topology_to_spec(topo), indent=2)
                          + "\n")
