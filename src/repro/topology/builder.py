"""Builders for topology trees.

Most real machines are symmetric at each level, so :func:`build_symmetric`
covers the common case (including all three Table I systems). The
:class:`TopologyBuilder` supports irregular trees for tests and what-if
studies.
"""

from __future__ import annotations

from ..errors import TopologyError
from .objects import ObjKind, TopoObject, Topology


class TopologyBuilder:
    """Incremental construction of an arbitrary topology tree.

    Example::

        b = TopologyBuilder("weird")
        s = b.socket()
        n = b.numa(s)
        b.cores(n, 3)          # a 3-core NUMA node without a shared LLC
        topo = b.build()
    """

    def __init__(self, name: str = "custom") -> None:
        self.name = name
        self._machine = TopoObject(ObjKind.MACHINE, 0)
        self._counters: dict[ObjKind, int] = {kind: 0 for kind in ObjKind}

    def _new(self, kind: ObjKind, parent: TopoObject, **attrs) -> TopoObject:
        idx = self._counters[kind]
        self._counters[kind] += 1
        return TopoObject(kind, idx, parent, attrs or None)

    def socket(self, **attrs) -> TopoObject:
        return self._new(ObjKind.SOCKET, self._machine, **attrs)

    def numa(self, parent: TopoObject | None = None, **attrs) -> TopoObject:
        return self._new(ObjKind.NUMA, parent or self._machine, **attrs)

    def llc(self, parent: TopoObject, **attrs) -> TopoObject:
        return self._new(ObjKind.LLC, parent, **attrs)

    def core(self, parent: TopoObject, **attrs) -> TopoObject:
        return self._new(ObjKind.CORE, parent, **attrs)

    def cores(self, parent: TopoObject, count: int, **attrs) -> list[TopoObject]:
        if count < 1:
            raise TopologyError("core count must be >= 1")
        return [self.core(parent, **attrs) for _ in range(count)]

    def build(self) -> Topology:
        return Topology(self._machine, self.name)


def build_symmetric(
    name: str,
    sockets: int,
    numa_per_socket: int,
    cores_per_numa: int,
    cores_per_llc: int | None = None,
    machine_attrs: dict | None = None,
) -> Topology:
    """Build a fully symmetric machine.

    ``cores_per_llc=None`` omits the LLC level entirely (cores have no shared
    last-level cache, as on ARM-N1 where only a system-level cache exists).
    """
    if sockets < 1 or numa_per_socket < 1 or cores_per_numa < 1:
        raise TopologyError("all symmetric topology counts must be >= 1")
    if cores_per_llc is not None:
        if cores_per_llc < 1:
            raise TopologyError("cores_per_llc must be >= 1 or None")
        if cores_per_numa % cores_per_llc != 0:
            raise TopologyError(
                f"cores_per_numa ({cores_per_numa}) must be a multiple of "
                f"cores_per_llc ({cores_per_llc})"
            )

    b = TopologyBuilder(name)
    if machine_attrs:
        b._machine.attrs.update(machine_attrs)
    for _ in range(sockets):
        sock = b.socket()
        for _ in range(numa_per_socket):
            numa = b.numa(sock)
            if cores_per_llc is None:
                b.cores(numa, cores_per_numa)
            else:
                for _ in range(cores_per_numa // cores_per_llc):
                    group = b.llc(numa)
                    b.cores(group, cores_per_llc)
    return b.build()
