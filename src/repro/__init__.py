"""Reproduction of "A framework for hierarchical single-copy MPI
collectives on multicore nodes" (Katevenis, Ploumidis, Marazakis —
IEEE CLUSTER 2022) on a deterministic multicore-node simulator.

Front-door API::

    from repro import Node, World, Xhc, get_system

    node = Node(get_system("epyc-2p"))
    world = World(node, 64)
    comm = world.communicator(Xhc())

Sweeps go through the shared executor::

    from repro import Executor, RunRequest, run_many

    reqs = [RunRequest("epyc-1p", "bcast", size, 32) for size in sizes]
    with Executor(workers=4, cache="results/cache") as ex:
        results = ex.run_many(reqs)

or are served by the long-lived sweep daemon (``python -m repro serve
start``; see docs/serving.md)::

    from repro.serve import ServeClient

    with ServeClient() as client:
        done = client.submit([r.payload() for r in reqs], tenant="alice")

``__all__`` below is the supported public surface; everything else may
move between minor versions (docs/api.md documents the deprecation
policy). See README.md for the architecture overview, DESIGN.md for the
experiment index, and EXPERIMENTS.md for paper-vs-measured results.
"""

from .options import RunOptions
from .node import Node
from .topology import get_system, build_symmetric
from .mpi import World
from .xhc import Xhc, XhcConfig
from .exec import (Executor, ResultCache, RunRequest, RunResult, run,
                   run_inline, run_many, using_executor)
from . import bench
from . import check
from . import exec  # noqa: A004 - module re-export  # pylint: disable=W0622
from . import obs
from . import serve
from . import tune

__version__ = "1.1.0"

__all__ = [
    # core objects
    "Node",
    "RunOptions",
    "World",
    "Xhc",
    "XhcConfig",
    "get_system",
    "build_symmetric",
    # the run API
    "Executor",
    "ResultCache",
    "RunRequest",
    "RunResult",
    "run",
    "run_inline",
    "run_many",
    "using_executor",
    # subsystem modules
    "bench",
    "check",
    "exec",
    "obs",
    "serve",
    "tune",
    "__version__",
]
