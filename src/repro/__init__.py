"""Reproduction of "A framework for hierarchical single-copy MPI
collectives on multicore nodes" (Katevenis, Ploumidis, Marazakis —
IEEE CLUSTER 2022) on a deterministic multicore-node simulator.

Front-door API::

    from repro import Node, World, Xhc, get_system

    node = Node(get_system("epyc-2p"))
    world = World(node, 64)
    comm = world.communicator(Xhc())

See README.md for the architecture overview, DESIGN.md for the experiment
index, and EXPERIMENTS.md for paper-vs-measured results.
"""

from .node import Node
from .topology import get_system, build_symmetric
from .mpi import World
from .xhc import Xhc, XhcConfig
from . import check
from . import obs

__version__ = "1.0.0"

__all__ = [
    "Node",
    "World",
    "Xhc",
    "XhcConfig",
    "check",
    "get_system",
    "build_symmetric",
    "obs",
    "__version__",
]
