"""``repro.exec`` — the shared parallel sweep executor.

Every sweep in the repo (OSU latency curves, paper figures, autotuning
candidate evaluations, sanitized and traced runs) describes its work as
:class:`RunRequest` values and hands them to one scheduler, which answers
from the content-addressed :class:`ResultCache` when it can, deduplicates
and batches what remains by (system, component), and fans batches out
over a warm process pool. See docs/api.md for the public surface and
docs/tuning.md for the cache key discipline (``SIM_VERSION``).

Quick use::

    from repro.exec import Executor, RunRequest, using_executor

    reqs = [RunRequest("epyc-1p", "bcast", size, 32) for size in sizes]
    with Executor(workers=4, cache="results/cache/sim_cache.json") as ex:
        results = ex.run_many(reqs)

or scope an executor ambiently so existing sweeps pick it up::

    with using_executor(Executor(workers=4)):
        bench.fig8_bcast("epyc-1p")
"""

from .api import run, run_inline, run_many
from .cache import (DEFAULT_CACHE_PATH, SIM_VERSION, CacheStats, ResultCache,
                    cache_key, default_cache_path, store_layout)
from .executor import Executor, get_executor, using_executor
from .request import RUN_KINDS, RunRequest, RunResult
from .store import ShardedStore
from .worker import execute, get_topology, resolve_component, run_batch

__all__ = [
    "CacheStats",
    "DEFAULT_CACHE_PATH",
    "Executor",
    "RUN_KINDS",
    "ResultCache",
    "ShardedStore",
    "RunRequest",
    "RunResult",
    "SIM_VERSION",
    "cache_key",
    "default_cache_path",
    "store_layout",
    "execute",
    "get_executor",
    "get_topology",
    "resolve_component",
    "run",
    "run_batch",
    "run_inline",
    "run_many",
    "using_executor",
]
