"""Execution of requests — inline or inside a pool worker process.

:func:`execute` is the single place in the repo that turns a
:class:`~repro.exec.request.RunRequest` into a measured latency; every
entry point (bench, figures, tune, check, obs) funnels through it. The
module is import-light so pool workers fork cheaply; the heavy imports
(benchmark drivers, component registry) happen lazily on first use.

Topologies are memoized per process: a warm pool worker builds Epyc-2P or
ARM-N1 once and amortizes it across every batch it is handed, which is
where most of the non-simulation overhead of a sweep used to go. The
memoized :class:`~repro.topology.objects.Topology` is read-only after
construction (each run still gets a fresh :class:`~repro.node.Node`), so
reuse cannot leak state between measurements — batched results are
bit-identical to serial ones.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence

from ..errors import DeadlockError
from .request import RunRequest, RunResult

if TYPE_CHECKING:  # pragma: no cover
    from ..topology.objects import Topology

# Per-process memo: {system codename: Topology}. Populated lazily; lives
# for the worker's lifetime, which is exactly the warm-worker win. LRU-
# bounded: a long-lived pool worker handed sweeps over many systems (or
# many ad-hoc spec files) must not accumulate one Topology per codename
# forever. Insertion order is the recency order — a hit re-inserts.
_TOPO_MEMO: dict[str, "Topology"] = {}
_TOPO_MEMO_CAP = 4


def get_topology(system: str) -> "Topology":
    """The (per-process memoized) topology of a named system.

    Eviction is invisible to results: a Topology is a pure function of
    its codename and is read-only after construction, so rebuilding an
    evicted one yields an equivalent object (asserted by the exec tests).
    """
    topo = _TOPO_MEMO.pop(system, None)
    if topo is None:
        from ..topology import get_system
        topo = get_system(system)
        if len(_TOPO_MEMO) >= _TOPO_MEMO_CAP:
            del _TOPO_MEMO[next(iter(_TOPO_MEMO))]
    _TOPO_MEMO[system] = topo
    return topo


def resolve_component(component: str,
                      config: dict | None) -> Callable[[], object]:
    """Turn a request's component spec into a fresh-instance factory.

    ``config`` only combines with the ``"xhc"`` component (an explicit
    :class:`~repro.xhc.config.XhcConfig`); registry names take their
    configuration from the registry.
    """
    if config is not None:
        if component not in ("xhc", "xhc-flat", "xhc-tree"):
            raise ValueError(
                f"config= only applies to the 'xhc' component, "
                f"not {component!r}")
        from ..xhc import Xhc, XhcConfig
        kwargs = dict(config)
        chunk = kwargs.get("chunk_size")
        if isinstance(chunk, list):
            kwargs["chunk_size"] = tuple(chunk)
        cfg = XhcConfig(**kwargs)
        return lambda: Xhc(config=cfg)
    from ..bench.components import make_component
    return lambda: make_component(component)


def execute(request: RunRequest, *, keep_node: bool = False) -> RunResult:
    """Run one request to completion and measure it.

    A :class:`~repro.errors.DeadlockError` raised by the engine (a real
    finding for sanitized runs) is converted into ``result.error`` plus a
    deadlock finding instead of aborting a sweep; all other exceptions
    propagate. ``keep_node=True`` attaches the live node to the result
    (inline callers only — obs/trace want the spans, not just the time).
    """
    from ..bench.osu import osu_latency, run_collective
    from ..node import Node

    topo = get_topology(request.system)
    options = request.options
    node = Node(topo, options=options)
    findings: list[dict] = []
    error: dict | None = None
    latency: float | None = None
    try:
        if request.collective == "pingpong":
            latency = osu_latency(
                request.system, tuple(request.mapping), request.size,
                warmup=request.warmup, iters=request.iters,
                smsc=request.smsc, modify=request.modify, node=node)
        else:
            latency = run_collective(
                request.collective, request.system, request.nranks,
                resolve_component(request.component, request.config),
                max(request.size, 1),
                warmup=request.warmup, iters=request.iters,
                modify=request.modify, mapping=request.mapping,
                root=request.root, smsc=request.smsc, node=node)
    except DeadlockError as exc:
        error = {"type": "DeadlockError", "message": str(exc),
                 "cycle": list(getattr(exc, "cycle", ()) or ())}
    if options.check:
        findings = [f.to_dict() for f in node.check_report]
    result = RunResult(request=request, latency_s=latency,
                       findings=findings, error=error,
                       node=node if keep_node else None)
    return result


def run_batch(requests: Sequence[RunRequest]) -> list[RunResult]:
    """Pool-worker entry point: execute a batch, return stripped results.

    Top-level (picklable) on purpose; the requests in one batch share a
    ``batch_key`` so the memoized topology is built at most once here.
    """
    return [execute(req).strip() for req in requests]
