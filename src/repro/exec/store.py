"""Sharded, content-addressed, size-bounded on-disk result store.

The flat single-file cache (``results/cache/sim_cache.json``) served the
repo fine at thousands of entries but cannot survive millions: every load
parses the whole file, every save rewrites it, and two writers clobber
each other's entries. This store keeps **one file per entry**, sharded by
the first two hex characters of the digest so no directory ever holds
more than ~1/256th of the population::

    <root>/
      objects/v<SIM_VERSION>/<2-hex>/<digest>.json   one entry per file
      ledger.json          advisory totals + policy + migration stamps
      quarantine/          corrupt entries are moved here, never parsed again

Properties the serving layer (and concurrent sweeps) rely on:

* **Atomic writes** — every entry (and the ledger) is written to a
  ``*.tmp`` sibling and ``os.replace``'d into place, so a killed worker
  or daemon can never leave a half-written entry behind.
* **Corruption is a miss, not a crash** — an unparseable entry file is
  moved to ``quarantine/`` with a warning and treated as absent.
* **The filesystem is the source of truth** — ``ledger.json`` is an
  advisory summary, recomputed from a shard scan on every
  :meth:`save_ledger`, so two processes writing and evicting the same
  root cannot double-count bytes or lose entries: whichever ledger write
  lands last describes the actual files.
* **LRU eviction** — when ``max_entries``/``max_bytes`` bounds are set,
  the oldest entries (by file mtime; reads refresh it) are unlinked
  until the store fits. Stale ``SIM_VERSION`` generations age out the
  same way since nothing ever reads (or touches) them again.
* **Idempotent migration** — a legacy flat cache file is imported once
  (stamped in the ledger by size+mtime); re-importing is harmless anyway
  because entries are content-addressed.
"""

from __future__ import annotations

import json
import os
import warnings

OBJECTS_DIR = "objects"
QUARANTINE_DIR = "quarantine"
LEDGER_NAME = "ledger.json"
ENTRY_SUFFIX = ".json"
LEDGER_VERSION = 1


def _atomic_write_json(path: str, payload: dict, *, indent=None) -> int:
    """Write JSON via ``*.tmp`` + ``os.replace``; returns bytes written."""
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    data = json.dumps(payload, indent=indent, sort_keys=True)
    tmp = path + ".tmp"
    try:
        with open(tmp, "w") as fh:
            fh.write(data)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return len(data)


class ShardedStore:
    """The on-disk half of :class:`~repro.exec.cache.ResultCache`.

    Versions are kept as separate subtrees (``objects/v2/…``) so the set
    of *servable* entries — the current ``SIM_VERSION`` generation — is
    enumerable without opening a single entry file, and a version bump
    makes the whole previous generation invisible at once instead of
    poisoning lookups.
    """

    def __init__(self, root: str | os.PathLike, *,
                 max_entries: int | None = None,
                 max_bytes: int | None = None) -> None:
        self.root = os.fspath(root)
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        # ``evictions``/``quarantined`` fold into the on-disk ledger on
        # every save_ledger() and reset; the ``*_total`` counters keep
        # the whole-lifetime view a long-lived daemon scrapes.
        self.evictions = 0
        self.quarantined = 0
        self.evictions_total = 0
        self.quarantined_total = 0
        # {version: set(digests)} — lazily scanned, incrementally updated
        # by our own writes/evictions; external writers are picked up on
        # the next refresh() / save_ledger().
        self._digests: dict[int, set[str]] = {}

    # -- paths ------------------------------------------------------------

    def objects_root(self, version: int) -> str:
        return os.path.join(self.root, OBJECTS_DIR, f"v{version}")

    def entry_path(self, version: int, digest: str) -> str:
        return os.path.join(self.objects_root(version), digest[:2],
                            digest + ENTRY_SUFFIX)

    @property
    def ledger_path(self) -> str:
        return os.path.join(self.root, LEDGER_NAME)

    @property
    def quarantine_root(self) -> str:
        return os.path.join(self.root, QUARANTINE_DIR)

    # -- entry I/O --------------------------------------------------------

    def read(self, version: int, digest: str) -> dict | None:
        """Load one entry; corrupt or truncated files become a miss and
        are moved to ``quarantine/`` with a warning."""
        path = self.entry_path(version, digest)
        try:
            with open(path) as fh:
                entry = json.load(fh)
            if not isinstance(entry, dict) or "latency_s" not in entry:
                raise ValueError("entry missing 'latency_s'")
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, ValueError, UnicodeDecodeError,
                OSError) as exc:
            self.quarantine(path, str(exc))
            self._digests.get(version, set()).discard(digest)
            return None
        try:
            os.utime(path)  # refresh LRU recency on every hit
        except OSError:  # pragma: no cover - raced with an eviction
            pass
        return entry

    def write(self, version: int, digest: str, entry: dict) -> str:
        """Atomically persist one entry; returns its path."""
        path = self.entry_path(version, digest)
        _atomic_write_json(path, entry)
        self._digests.setdefault(version, self._scan_digests(version))
        self._digests[version].add(digest)
        return path

    def contains(self, version: int, digest: str) -> bool:
        return digest in self.digests(version)

    # -- enumeration ------------------------------------------------------

    def _scan_digests(self, version: int) -> set[str]:
        found: set[str] = set()
        base = self.objects_root(version)
        try:
            shards = os.scandir(base)
        except FileNotFoundError:
            return found
        with shards:
            for shard in shards:
                if not shard.is_dir():
                    continue
                for name in os.listdir(shard.path):
                    if name.endswith(ENTRY_SUFFIX) \
                            and not name.endswith(".tmp"):
                        found.add(name[:-len(ENTRY_SUFFIX)])
        return found

    def digests(self, version: int) -> set[str]:
        """Digests of the ``version`` generation (cached scan)."""
        if version not in self._digests:
            self._digests[version] = self._scan_digests(version)
        return self._digests[version]

    def refresh(self) -> None:
        """Drop scan caches (pick up entries other processes wrote)."""
        self._digests.clear()

    def count(self, version: int) -> int:
        return len(self.digests(version))

    def scan(self) -> "list[tuple[str, os.stat_result]]":
        """``(path, stat)`` of every entry file across all generations."""
        out: list[tuple[str, os.stat_result]] = []
        base = os.path.join(self.root, OBJECTS_DIR)
        if not os.path.isdir(base):
            return out
        for dirpath, _dirnames, filenames in os.walk(base):
            for name in filenames:
                if not name.endswith(ENTRY_SUFFIX):
                    continue
                path = os.path.join(dirpath, name)
                try:
                    out.append((path, os.stat(path)))
                except FileNotFoundError:
                    continue  # raced with a concurrent eviction
        return out

    def totals(self) -> tuple[int, int]:
        """(entry count, total bytes) over every generation, by scan."""
        entries = self.scan()
        return len(entries), sum(st.st_size for _p, st in entries)

    # -- eviction ---------------------------------------------------------

    def evict(self) -> int:
        """Unlink least-recently-used entries until the store fits the
        ``max_entries``/``max_bytes`` bounds; returns how many went."""
        if self.max_entries is None and self.max_bytes is None:
            return 0
        entries = self.scan()
        count = len(entries)
        size = sum(st.st_size for _p, st in entries)
        over_entries = (self.max_entries is not None
                        and count > self.max_entries)
        over_bytes = self.max_bytes is not None and size > self.max_bytes
        if not (over_entries or over_bytes):
            return 0
        # Oldest first; ties broken by path so two processes evicting
        # concurrently converge on the same victims.
        entries.sort(key=lambda ps: (ps[1].st_mtime_ns, ps[0]))
        removed = 0
        for path, st in entries:
            fits = ((self.max_entries is None or count <= self.max_entries)
                    and (self.max_bytes is None or size <= self.max_bytes))
            if fits:
                break
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass  # another process got it first; still gone
            count -= 1
            size -= st.st_size
            removed += 1
        if removed:
            self.evictions += removed
            self.evictions_total += removed
            self.refresh()
            bounds = ", ".join(
                part for part in (
                    f"max {self.max_entries} entries"
                    if self.max_entries is not None else "",
                    f"max {self.max_bytes} bytes"
                    if self.max_bytes is not None else "") if part)
            warnings.warn(
                f"evicted {removed} result-cache entr"
                f"{'y' if removed == 1 else 'ies'} from {self.root!r} "
                f"to fit {bounds} ({self.evictions_total} total this "
                f"process)", RuntimeWarning, stacklevel=2)
        return removed

    # -- quarantine -------------------------------------------------------

    def quarantine(self, path: str, reason: str) -> str | None:
        """Move an unreadable file aside so it is never parsed again."""
        os.makedirs(self.quarantine_root, exist_ok=True)
        dest = os.path.join(self.quarantine_root,
                            os.path.basename(path) + ".corrupt")
        n = 0
        while os.path.exists(dest):
            n += 1
            dest = os.path.join(self.quarantine_root,
                                f"{os.path.basename(path)}.corrupt.{n}")
        try:
            os.replace(path, dest)
        except FileNotFoundError:  # pragma: no cover - raced
            return None
        self.quarantined += 1
        self.quarantined_total += 1
        warnings.warn(
            f"quarantined corrupt cache entry {path!r} -> {dest!r} "
            f"({reason}); treating as a miss "
            f"({self.quarantined_total} total this process)",
            RuntimeWarning, stacklevel=3)
        return dest

    # -- ledger -----------------------------------------------------------

    def load_ledger(self) -> dict:
        try:
            with open(self.ledger_path) as fh:
                ledger = json.load(fh)
            if isinstance(ledger, dict):
                return ledger
        except FileNotFoundError:
            pass
        except (json.JSONDecodeError, OSError):
            self.quarantine(self.ledger_path, "unreadable ledger")
        return {}

    def save_ledger(self) -> dict:
        """Recompute totals from the filesystem and persist the summary.

        Totals are *derived*, never incremented, so concurrent writers
        cannot double-count: the last ledger written describes the files
        that actually exist.
        """
        previous = self.load_ledger()
        count, size = self.totals()
        ledger = {
            "ledger_version": LEDGER_VERSION,
            "entries": count,
            "bytes": size,
            "max_entries": self.max_entries,
            "max_bytes": self.max_bytes,
            "evictions": int(previous.get("evictions", 0)) + self.evictions,
            "quarantined": (int(previous.get("quarantined", 0))
                            + self.quarantined),
            "migrated": previous.get("migrated", {}),
        }
        self.evictions = 0
        self.quarantined = 0
        _atomic_write_json(self.ledger_path, ledger, indent=1)
        return ledger

    # -- migration --------------------------------------------------------

    def migrate_flat(self, flat_path: str | os.PathLike) -> int:
        """One-time import of a legacy single-file cache.

        The flat file itself is left untouched (it may be a committed
        artifact); the ledger records its ``(size, mtime_ns)`` so the
        import runs once per flat-file state. Because entries are
        content-addressed, re-importing — two processes racing on a cold
        store, a rolled-back ledger — rewrites identical files and stays
        idempotent.
        """
        flat_path = os.fspath(flat_path)
        try:
            st = os.stat(flat_path)
        except FileNotFoundError:
            return 0
        stamp = [st.st_size, st.st_mtime_ns]
        ledger = self.load_ledger()
        migrated = dict(ledger.get("migrated", {}))
        key = os.path.abspath(flat_path)
        if migrated.get(key) == stamp:
            return 0  # this exact flat-file state was already imported
        try:
            with open(flat_path) as fh:
                stored = json.load(fh)
            entries = stored.get("entries", {})
            version = int(stored.get("sim_version", 0))
            if not isinstance(entries, dict):
                raise ValueError("flat cache 'entries' is not a dict")
        except (json.JSONDecodeError, ValueError, UnicodeDecodeError,
                OSError) as exc:
            self.quarantine(flat_path, str(exc))
            return 0
        imported = 0
        for digest, entry in entries.items():
            entry = dict(entry)
            entry.setdefault("sim_version", version)
            self.write(version, digest, entry)
            imported += 1
        migrated[key] = stamp
        ledger = self.save_ledger()
        ledger["migrated"] = migrated
        _atomic_write_json(self.ledger_path, ledger, indent=1)
        return imported
