"""The shared sweep scheduler: cache, dedupe, batch, fan out.

One :class:`Executor` serves every sweep in the repo. It answers cacheable
requests from the content-addressed :class:`~repro.exec.cache.ResultCache`
first, deduplicates identical requests within a submission, groups the
remainder into batches by :meth:`RunRequest.batch_key` (so a pool worker
amortizes one memoized topology across message sizes), and fans the
batches out over a warm :class:`~concurrent.futures.ProcessPoolExecutor`
that survives across ``run_many`` calls — the autotuner's thousands of
candidate evaluations reuse the same workers.

``workers=0`` executes inline (deterministic single-process debugging and
the default); ``workers=None`` picks a process count from the CPU. The
ambient executor (:func:`get_executor` / :func:`using_executor`) is how
the CLI's ``--parallel``/``--cache`` flags reach sweeps that are many
call-frames away — figure drivers ask for the ambient executor instead of
threading one through every signature.
"""

from __future__ import annotations

import concurrent.futures
import os
from contextlib import contextmanager
from time import perf_counter  # lint: disable=RC101  (telemetry wall time)
from typing import Callable, Iterator, Sequence

from .cache import ResultCache
from .request import RunRequest, RunResult
from .worker import execute, run_batch

#: Batches submitted per worker (per run_many call): small enough to
#: amortize submission, large enough that the pool load-balances the
#: wildly different costs of a 4 B and a 4 MB point.
_BATCHES_PER_WORKER = 4


class Executor:
    """Cached, batched, optionally-parallel execution of run requests.

    ``budget`` caps *new* simulations across the executor's lifetime —
    cached results are always free; requests beyond the budget are
    dropped (their slot in the result list is ``None``).
    ``progress`` is called with a short human-readable string as batches
    complete.
    """

    def __init__(self,
                 workers: int | None = 0,
                 cache: "ResultCache | str | os.PathLike | None" = None,
                 budget: int | None = None,
                 progress: Callable[[str], None] | None = None) -> None:
        if isinstance(cache, (str, os.PathLike)):
            cache = ResultCache(cache)
        self.cache = cache if cache is not None else ResultCache()
        self.workers = workers
        self.budget = budget
        self.progress = progress
        #: Optional telemetry hook ``(phase, wall_seconds, count)`` fired
        #: after the cache-lookup and worker-execute phases of each
        #: ``run_many`` call. ``None`` (the default, and the posture of
        #: every bare Executor) costs two ``is None`` checks per sweep —
        #: the serve daemon installs
        #: :meth:`repro.obs.svc.ServiceTelemetry.executor_phase` here.
        self.on_timing: "Callable[[str, float, int], None] | None" = None
        self.simulations = 0
        self._pool: concurrent.futures.ProcessPoolExecutor | None = None
        self._pool_size = 0

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        """Shut the worker pool down and persist the cache."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._pool_size = 0
        self.cache.save()

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - safety net
        if self._pool is not None:
            self._pool.shutdown(wait=False)

    # -- accounting -------------------------------------------------------

    @property
    def budget_left(self) -> int | None:
        if self.budget is None:
            return None
        return max(0, self.budget - self.simulations)

    def stats(self) -> dict:
        """Hit/miss/new-simulation accounting for reports and CLIs."""
        return {
            "simulations": self.simulations,
            "cache_hits": self.cache.hits,
            "cache_misses": self.cache.misses,
            "cache_entries": len(self.cache),
            "workers": self.workers,
        }

    # -- scheduling -------------------------------------------------------

    def _effective_workers(self, njobs: int) -> int:
        if self.workers is not None:
            return max(0, min(self.workers, njobs))
        return min(njobs, max(1, min(8, (os.cpu_count() or 2) - 1)))

    def _get_pool(self, nworkers: int) -> concurrent.futures.ProcessPoolExecutor:
        # Warm-worker reuse: grow the pool when asked for more, keep it
        # otherwise — re-forking per sweep throws the topology memo away.
        if self._pool is not None and self._pool_size < nworkers:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._pool is None:
            self._pool = concurrent.futures.ProcessPoolExecutor(nworkers)
            self._pool_size = nworkers
        return self._pool

    @staticmethod
    def _make_batches(todo: list[tuple[int, RunRequest]],
                      nworkers: int) -> list[list[tuple[int, RunRequest]]]:
        """Group by batch_key, then split into cost-balanced batches.

        Same-``batch_key`` requests are kept together as far as the
        target batch count allows (one topology memo per worker covers
        them either way); within and across groups, items go to the
        least-loaded batch in descending cost order (greedy LPT), so a
        4 MB point never queues behind three others while workers idle.
        """
        by_key: dict[tuple, list[tuple[int, RunRequest]]] = {}
        for item in todo:
            by_key.setdefault(item[1].batch_key(), []).append(item)
        nbatches = max(1, min(len(todo), nworkers * _BATCHES_PER_WORKER))
        if nbatches == 1:
            return [[item for group in by_key.values() for item in group]]
        batches: list[list[tuple[int, RunRequest]]] = \
            [[] for _ in range(nbatches)]
        loads = [0.0] * nbatches
        for group in by_key.values():
            for item in sorted(group, key=lambda it: it[1].estimated_cost(),
                               reverse=True):
                j = min(range(nbatches), key=loads.__getitem__)
                batches[j].append(item)
                loads[j] += item[1].estimated_cost()
        return [b for b in batches if b]

    # -- the run API ------------------------------------------------------

    def run(self, request: RunRequest) -> RunResult:
        """Execute (or answer from cache) a single request."""
        return self.run_many([request])[0]

    def run_many(self, requests: Sequence[RunRequest]) -> \
            "list[RunResult | None]":
        """Execute a sweep; results come back in request order.

        Cacheable requests are answered from the store when possible and
        recorded into it when not. Identical requests within one call are
        simulated once. Slots dropped by the budget are ``None``.
        """
        requests = list(requests)
        results: list[RunResult | None] = [None] * len(requests)
        todo: list[tuple[int, RunRequest]] = []
        seen: dict[str, int] = {}        # payload key -> first todo index
        duplicates: dict[int, list[int]] = {}
        t_lookup = perf_counter() if self.on_timing is not None else 0.0
        for i, req in enumerate(requests):
            if req.cacheable:
                cached = self.cache.get(req.payload())
                if cached is not None:
                    results[i] = RunResult(request=req, latency_s=cached,
                                           cached=True)
                    continue
                key = req.key()
                if key in seen:
                    duplicates.setdefault(seen[key], []).append(i)
                    continue
                seen[key] = i
            todo.append((i, req))
        if self.on_timing is not None:
            self.on_timing("cache-lookup", perf_counter() - t_lookup,
                           len(requests))
        if self.budget_left is not None:
            todo = todo[:self.budget_left]
        if todo:
            t_exec = perf_counter() if self.on_timing is not None else 0.0
            self._execute_todo(todo, results)
            if self.on_timing is not None:
                self.on_timing("worker-execute", perf_counter() - t_exec,
                               len(todo))
        for first, extra_idx in duplicates.items():
            primary = results[first]
            for i in extra_idx:
                if primary is not None:
                    results[i] = RunResult(request=requests[i],
                                           latency_s=primary.latency_s,
                                           cached=True)
        return results

    def _execute_todo(self, todo: list[tuple[int, RunRequest]],
                      results: "list[RunResult | None]") -> None:
        nworkers = self._effective_workers(len(todo))
        total = len(todo)
        done = 0
        if nworkers <= 1:
            for i, req in todo:
                self._record(i, execute(req), results)
                done += 1
                self._report(done, total)
            return
        pool = self._get_pool(nworkers)
        batches = self._make_batches(todo, nworkers)
        futures = {
            pool.submit(run_batch, [req for _, req in batch]): batch
            for batch in batches
        }
        for future in concurrent.futures.as_completed(futures):
            batch = futures[future]
            for (i, _req), result in zip(batch, future.result()):
                self._record(i, result, results)
            done += len(batch)
            self._report(done, total)

    def _record(self, index: int, result: RunResult,
                results: "list[RunResult | None]") -> None:
        self.simulations += 1
        if result.request.cacheable and result.latency_s is not None:
            self.cache.put(result.request.payload(), result.latency_s)
        results[index] = result

    def _report(self, done: int, total: int) -> None:
        if self.progress is not None:
            self.progress(f"simulated {done}/{total}")


# -- the ambient executor ----------------------------------------------------

_AMBIENT: Executor | None = None


def get_executor() -> Executor:
    """The executor sweeps use when not handed one explicitly.

    Defaults to a fresh inline, uncached executor — exactly the serial
    behavior the repo always had — unless a :func:`using_executor` scope
    (e.g. the CLI's ``--parallel``/``--cache`` handling) is active.
    """
    return _AMBIENT if _AMBIENT is not None else Executor(workers=0)


@contextmanager
def using_executor(executor: Executor) -> Iterator[Executor]:
    """Scope ``executor`` as the ambient one for every sweep inside."""
    global _AMBIENT
    previous = _AMBIENT
    _AMBIENT = executor
    try:
        yield executor
    finally:
        _AMBIENT = previous
