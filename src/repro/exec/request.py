"""The typed run API: :class:`RunRequest` in, :class:`RunResult` out.

A request is a complete, picklable, content-addressable description of one
measurement — system, collective, component, message size, rank count,
iteration counts and :class:`~repro.options.RunOptions`. Every sweep in
the repo (OSU curves, paper figures, autotuning candidates, sanitizer and
trace runs) is a list of these, which is what lets one scheduler batch,
parallelize and cache all of them.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field

from ..options import RunOptions
from ..shmem.smsc import SmscConfig
from .cache import cache_key

#: Collective kinds the OSU driver implements, plus the two-rank
#: ping-pong ("pingpong") of Fig. 1a / Fig. 3a.
RUN_KINDS = ("bcast", "allreduce", "reduce", "barrier", "gather",
             "alltoall", "pingpong")


@dataclass(frozen=True)
class RunRequest:
    """One measurement: ``mean per-rank latency of <collective> at <size>
    bytes with <component> on <system>``.

    ``component`` is a name from :data:`repro.bench.components.COMPONENTS`
    or the literal ``"xhc"`` combined with ``config`` (a dict of
    :class:`~repro.xhc.config.XhcConfig` fields) for explicit
    configurations — autotuning candidates, Fig. 10's flag layouts.
    ``mapping`` is a rank-placement policy name or an explicit core tuple
    (required for ``"pingpong"``, which runs between exactly two pinned
    cores). Of ``options``, only ``engine`` affects the measured latency
    (and is therefore part of the cache key); requests with
    instrumentation (observe/check) bypass the result cache because their
    product is the side artifacts, not the number.
    """

    system: str
    collective: str
    size: int
    nranks: int
    component: str = "xhc-tree"
    config: dict | None = None
    warmup: int = 1
    iters: int = 3
    modify: bool = True
    mapping: "str | tuple[int, ...]" = "core"
    root: int = 0
    smsc: SmscConfig | None = None
    options: RunOptions = field(
        default_factory=lambda: RunOptions(data_movement=False))

    def __post_init__(self) -> None:
        if self.collective not in RUN_KINDS:
            raise ValueError(
                f"unknown collective {self.collective!r}; "
                f"choose from {RUN_KINDS}")
        if isinstance(self.mapping, list):
            object.__setattr__(self, "mapping", tuple(self.mapping))
        if self.collective == "pingpong":
            if not isinstance(self.mapping, tuple) or len(self.mapping) != 2:
                raise ValueError(
                    "pingpong requests need mapping=(core_a, core_b)")

    # -- caching ----------------------------------------------------------

    @property
    def cacheable(self) -> bool:
        """Instrumented runs produce spans/findings, not just a latency,
        so they always execute; plain latency measurements are cached."""
        return not self.options.instrumented

    def payload(self) -> dict:
        """The canonical, JSON-safe dict the cache key is computed over.

        Only latency-determining fields appear; :class:`RunOptions` is
        deliberately absent because observation, checking and data
        movement never change simulated time — with one exception:
        ``options.engine`` *does* (the array engine prices under the
        documented SIM_VERSION 3 approximations, docs/performance.md),
        so the engine name is lifted into the payload and two engines
        never share a cache entry.
        """
        return {
            "engine": self.options.engine,
            "system": self.system,
            "collective": self.collective,
            "size": self.size,
            "nranks": self.nranks,
            "component": self.component,
            "config": self.config,
            "warmup": self.warmup,
            "iters": self.iters,
            "modify": self.modify,
            "mapping": (list(self.mapping)
                        if isinstance(self.mapping, tuple)
                        else self.mapping),
            "root": self.root,
            "smsc": (dataclasses.asdict(self.smsc)
                     if self.smsc is not None else None),
        }

    def key(self) -> str:
        """Content-address of this request (includes ``SIM_VERSION``)."""
        return cache_key(self.payload())

    @classmethod
    def from_payload(cls, data: dict) -> "RunRequest":
        """Rebuild a request from its JSON form — the inverse of
        :meth:`payload`, and what the serve daemon applies to request
        dicts arriving over the wire. Unknown fields raise ``ValueError``
        (a client protocol error, not a crash)."""
        kwargs = dict(data)
        # "engine" is payload()'s flattened form of options.engine (the
        # one option in the cache key); fold it back into RunOptions.
        engine = kwargs.pop("engine", None)
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(kwargs) - known
        if unknown:
            raise ValueError(
                f"unknown request field(s): {', '.join(sorted(unknown))}")
        smsc = kwargs.get("smsc")
        if isinstance(smsc, dict):
            from ..shmem.smsc import SmscConfig as _Smsc
            kwargs["smsc"] = _Smsc(**smsc)
        options = kwargs.get("options")
        if isinstance(options, dict):
            kwargs["options"] = RunOptions(**options)
        if engine is not None:
            base = kwargs.get("options")
            if base is None:
                base = RunOptions(data_movement=False)
            kwargs["options"] = base.with_(engine=engine)
        mapping = kwargs.get("mapping")
        if isinstance(mapping, list):
            kwargs["mapping"] = tuple(mapping)
        return cls(**kwargs)

    def batch_key(self) -> tuple:
        """Requests sharing this key run on identical (system, component,
        smsc, options) state — a pool worker amortizes one memoized
        topology across the whole batch."""
        return (self.system, self.component,
                json.dumps(self.config, sort_keys=True),
                self.smsc, self.options)

    def estimated_cost(self) -> float:
        """Relative cost weight for load balancing (not a latency)."""
        return (self.warmup + self.iters) * (self.size + 1024.0) \
            * max(2, self.nranks)


@dataclass
class RunResult:
    """Outcome of one request.

    ``latency_s`` is ``None`` only when the run died with a reported
    error (e.g. a deadlock finding). ``findings`` holds serialized
    :class:`repro.check.report.Finding` dicts when the request had
    ``options.check`` set; ``node`` is populated only by inline execution
    (:func:`repro.exec.run_inline`) — live nodes never cross process
    boundaries.
    """

    request: RunRequest
    latency_s: float | None
    cached: bool = False
    findings: list = field(default_factory=list)
    error: dict | None = None
    node: object | None = None

    @property
    def us(self) -> float | None:
        return None if self.latency_s is None else self.latency_s * 1e6

    def strip(self) -> "RunResult":
        """A picklable copy without the live node (pool transport)."""
        if self.node is None:
            return self
        return dataclasses.replace(self, node=None)
