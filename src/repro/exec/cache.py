"""Content-addressed cache of simulation results (promoted from
``repro.tune.cache`` — every entry point shares this store now, not just
the autotuner; ``repro.tune.cache`` remains as a thin re-export shim).

Every measurement is keyed by a digest of *everything that determines it*:
system, collective, message size, rank count, iteration counts, the full
component/config description, and a simulator version tag. Re-running any
sweep with a warm cache therefore performs zero new simulations, and any
change to the inputs (or a bump of ``SIM_VERSION`` when the simulator's
pricing changes) misses cleanly instead of serving stale numbers.

The digest is taken over the canonical JSON form (sorted keys, no
whitespace), so it is stable across dict insertion orders and across
process boundaries — a worker process and the coordinating process always
agree on the key of a request.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile

# Bump when simulator pricing changes invalidate cached latencies.
# Lint rule RC105 (repro.check.lint) enforces this: it fingerprints the
# sim-semantics sources and fails when they change without a bump here.
# After bumping, run `python -m repro check --update-fingerprint`.
# 2: scatter gathers all ranks' acks at the root (release-protocol fix).
SIM_VERSION = 2

#: Where the shared store lives unless a caller says otherwise.
DEFAULT_CACHE_PATH = os.path.join("results", "cache", "sim_cache.json")


def default_cache_path() -> str:
    """The conventional location of the shared result store."""
    return DEFAULT_CACHE_PATH


def cache_key(payload: dict) -> str:
    """SHA-256 over the canonical JSON form of the measurement request."""
    canon = json.dumps({**payload, "sim_version": SIM_VERSION},
                       sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode()).hexdigest()


class ResultCache:
    """A persistent {digest: latency} store with hit/miss accounting."""

    def __init__(self, path: str | os.PathLike | None = None) -> None:
        self.path = os.fspath(path) if path is not None else None
        self.entries: dict[str, dict] = {}
        self.hits = 0
        self.misses = 0
        if self.path and os.path.exists(self.path):
            with open(self.path) as fh:
                stored = json.load(fh)
            if stored.get("sim_version") == SIM_VERSION:
                self.entries = stored.get("entries", {})

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def get(self, payload: dict) -> float | None:
        entry = self.entries.get(cache_key(payload))
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry["latency_s"]

    def put(self, payload: dict, latency_s: float) -> None:
        self.entries[cache_key(payload)] = {
            "latency_s": latency_s,
            # The request itself is stored alongside for auditability;
            # the digest alone would be write-only.
            "request": payload,
        }

    def save(self) -> None:
        if not self.path:
            return
        directory = os.path.dirname(self.path) or "."
        os.makedirs(directory, exist_ok=True)
        payload = {"sim_version": SIM_VERSION, "entries": self.entries}
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, indent=1, sort_keys=True)
            os.chmod(tmp, 0o644)  # mkstemp creates 0600
            os.replace(tmp, self.path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
