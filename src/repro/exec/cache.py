"""Content-addressed cache of simulation results (promoted from
``repro.tune.cache`` — every entry point shares this store now, not just
the autotuner; ``repro.tune.cache`` remains as a thin re-export shim).

Every measurement is keyed by a digest of *everything that determines it*:
system, collective, message size, rank count, iteration counts, the full
component/config description, and a simulator version tag. Re-running any
sweep with a warm cache therefore performs zero new simulations, and any
change to the inputs (or a bump of ``SIM_VERSION`` when the simulator's
pricing changes) misses cleanly instead of serving stale numbers.

The digest is taken over the canonical JSON form (sorted keys, no
whitespace), so it is stable across dict insertion orders and across
process boundaries — a worker process and the coordinating process always
agree on the key of a request.

Persistence is a sharded, one-file-per-entry store
(:class:`~repro.exec.store.ShardedStore`) under the cache *root*
directory — the single flat JSON file of earlier versions could not
survive millions of entries. Passing a legacy ``*.json`` file path still
works: the root is the file's directory and any flat entries found there
are migrated into the shards once (idempotently, stamped in the ledger).
Corrupt or truncated entries are quarantined with a warning and treated
as misses; writes are atomic (``*.tmp`` + ``os.replace``); the store can
be size-bounded with LRU eviction (see docs/serving.md).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os

from .store import ShardedStore

# Bump when simulator pricing changes invalidate cached latencies.
# Lint rule RC105 (repro.check.lint) enforces this: it fingerprints the
# sim-semantics sources and fails when they change without a bump here.
# After bumping, run `python -m repro check --update-fingerprint`.
# 2: scatter gathers all ranks' acks at the root (release-protocol fix).
# 3: the array engine (RunOptions.engine="array") joins the result cache:
#    its latencies differ from the event engine by the documented
#    approximations (docs/performance.md), so the engine name entered
#    RunRequest.payload() and cached entries must not survive the key
#    change. Event-engine semantics are unchanged — the latency goldens
#    were re-recorded verbatim under the new version.
SIM_VERSION = 3

#: Where the shared store lives unless a caller says otherwise. This is
#: the store *root* directory; entries live in sharded per-entry files
#: underneath it (``objects/v<SIM_VERSION>/<2-hex>/<digest>.json``).
DEFAULT_CACHE_PATH = os.path.join("results", "cache")

#: Name of the legacy flat cache file (pre-sharding) inside a root.
LEGACY_FLAT_NAME = "sim_cache.json"


def default_cache_path() -> str:
    """The conventional location of the shared result store."""
    return DEFAULT_CACHE_PATH


def cache_key(payload: dict) -> str:
    """SHA-256 over the canonical JSON form of the measurement request."""
    canon = json.dumps({**payload, "sim_version": SIM_VERSION},
                       sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode()).hexdigest()


def store_layout(path: str) -> tuple[str, str]:
    """Resolve a cache path to ``(store root, legacy flat file)``.

    Directory paths are store roots; a ``*.json`` path is the legacy
    flat-file spelling and maps to its containing directory, so
    ``results/cache/sim_cache.json`` and ``results/cache`` name the same
    store.
    """
    if path.endswith(".json"):
        return os.path.dirname(path) or ".", path
    return path, os.path.join(path, LEGACY_FLAT_NAME)


@dataclasses.dataclass(frozen=True)
class CacheStats:
    """One coherent snapshot of a :class:`ResultCache`'s accounting —
    what the serve daemon scrapes into its telemetry after every chunk
    (hit/miss totals from this process, eviction/quarantine totals from
    the backing store's lifetime counters)."""

    hits: int
    misses: int
    entries: int
    evictions: int
    quarantined: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {**dataclasses.asdict(self),
                "hit_rate": round(self.hit_rate, 6)}


class ResultCache:
    """A persistent {digest: latency} store with hit/miss accounting.

    The API is unchanged from the flat-file era — ``get``/``put`` by
    payload, ``save()``, ``len()`` — so exec/tune callers are untouched;
    only the on-disk layout moved to sharded per-entry files. ``len()``
    and lookups cover the *current* ``SIM_VERSION`` generation only;
    stale generations are invisible (and reclaimed by eviction).
    """

    def __init__(self, path: str | os.PathLike | None = None, *,
                 max_entries: int | None = None,
                 max_bytes: int | None = None) -> None:
        self.path = os.fspath(path) if path is not None else None
        self.entries: dict[str, dict] = {}
        self._dirty: set[str] = set()
        self.hits = 0
        self.misses = 0
        self.store: ShardedStore | None = None
        if self.path:
            root, legacy_flat = store_layout(self.path)
            self.store = ShardedStore(root, max_entries=max_entries,
                                      max_bytes=max_bytes)
            if os.path.isfile(legacy_flat):
                self.store.migrate_flat(legacy_flat)

    def __len__(self) -> int:
        if self.store is None:
            return len(self.entries)
        return len(self.store.digests(SIM_VERSION)
                   | self._dirty | set(self.entries))

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def get(self, payload: dict) -> float | None:
        digest = cache_key(payload)
        entry = self.entries.get(digest)
        if entry is None and self.store is not None:
            entry = self.store.read(SIM_VERSION, digest)
            if entry is not None:
                if entry.get("sim_version", SIM_VERSION) != SIM_VERSION:
                    entry = None  # stale generation; never serve it
                else:
                    self.entries[digest] = entry
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry["latency_s"]

    def put(self, payload: dict, latency_s: float) -> None:
        digest = cache_key(payload)
        self.entries[digest] = {
            "latency_s": latency_s,
            # The request itself is stored alongside for auditability;
            # the digest alone would be write-only.
            "request": payload,
            "sim_version": SIM_VERSION,
        }
        self._dirty.add(digest)

    def save(self) -> None:
        """Flush dirty entries to the sharded store, run eviction, and
        refresh the ledger. A no-op without a backing path."""
        if self.store is None:
            return
        for digest in sorted(self._dirty):
            self.store.write(SIM_VERSION, digest, self.entries[digest])
        self._dirty.clear()
        self.store.evict()
        self.store.save_ledger()

    def stats(self) -> CacheStats:
        """Cheap accounting snapshot (no filesystem walk; ``entries``
        counts the current ``SIM_VERSION`` generation)."""
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            entries=len(self),
            evictions=(self.store.evictions_total
                       if self.store is not None else 0),
            quarantined=(self.store.quarantined_total
                         if self.store is not None else 0),
        )

    def store_info(self) -> dict | None:
        """Totals + policy of the backing store (``None`` if in-memory)."""
        if self.store is None:
            return None
        count, size = self.store.totals()
        return {
            "root": self.store.root,
            "entries": count,
            "bytes": size,
            "current_version_entries": self.store.count(SIM_VERSION),
            "max_entries": self.store.max_entries,
            "max_bytes": self.store.max_bytes,
            "sim_version": SIM_VERSION,
        }
