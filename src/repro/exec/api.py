"""Convenience entry points over the ambient executor.

Most callers want one of three things: run a single request, run a sweep,
or run one request inline with the live node attached (traces, sanitizer
reports). These helpers route through the ambient
:class:`~repro.exec.executor.Executor`, so a surrounding
:func:`~repro.exec.executor.using_executor` scope — the CLI's
``--parallel``/``--cache`` flags — transparently upgrades every sweep in
the call tree to parallel, cached execution.
"""

from __future__ import annotations

from typing import Sequence

from .executor import Executor, get_executor
from .request import RunRequest, RunResult
from .worker import execute


def run(request: RunRequest, *,
        executor: Executor | None = None) -> RunResult:
    """Run one request through ``executor`` (default: the ambient one)."""
    return (executor or get_executor()).run(request)


def run_many(requests: Sequence[RunRequest], *,
             executor: Executor | None = None) -> "list[RunResult | None]":
    """Run a sweep through ``executor`` (default: the ambient one)."""
    return (executor or get_executor()).run_many(requests)


def run_inline(request: RunRequest) -> RunResult:
    """Execute in this process, bypassing pool and cache, and keep the
    live node on the result — for callers that want spans, stats or
    findings objects, not just the latency."""
    return execute(request, keep_node=True)
