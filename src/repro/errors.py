"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class TopologyError(ReproError):
    """Invalid topology construction or query."""


class SimulationError(ReproError):
    """Engine-level failure (deadlock, bad primitive, double-run...)."""


class DeadlockError(SimulationError):
    """Blocked processes that can never be woken — raised at event-queue
    drain, by the engine watchdog, or proactively under
    ``check='deadlock'``. ``cycle`` names the processes on the wait-for
    cycle (empty when the analysis found a dead-end chain instead)."""

    def __init__(self, message: str, cycle: list[str] | None = None) -> None:
        super().__init__(message)
        self.cycle: list[str] = list(cycle or [])


class MemoryModelError(ReproError):
    """Invalid buffer/cache operation."""


class ShmemError(ReproError):
    """Shared-memory / single-copy mechanism misuse (bad attach, OOB...)."""


class MPIError(ReproError):
    """MPI-layer misuse (bad rank, mismatched collective, bad datatype)."""


class ConfigError(ReproError):
    """Unknown or invalid tuning parameter."""
