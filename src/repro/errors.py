"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class TopologyError(ReproError):
    """Invalid topology construction or query."""


class SimulationError(ReproError):
    """Engine-level failure (deadlock, bad primitive, double-run...)."""


class DeadlockError(SimulationError):
    """The event queue drained while processes were still blocked."""


class MemoryModelError(ReproError):
    """Invalid buffer/cache operation."""


class ShmemError(ReproError):
    """Shared-memory / single-copy mechanism misuse (bad attach, OOB...)."""


class MPIError(ReproError):
    """MPI-layer misuse (bad rank, mismatched collective, bad datatype)."""


class ConfigError(ReproError):
    """Unknown or invalid tuning parameter."""
