"""Registry of the collectives frameworks compared in the paper (SSV-C)."""

from __future__ import annotations

from typing import Callable

from ..errors import ConfigError
from ..mpi.colls import SmColl, Smhc, Tuned, TunedXhc, Ucc, Xbrc
from ..xhc import Xhc

COMPONENTS: dict[str, Callable[[], object]] = {
    "tuned": Tuned,
    "sm": SmColl,
    "ucc": Ucc,
    "smhc-flat": lambda: Smhc(tree=False),
    "smhc-tree": lambda: Smhc(tree=True),
    "xbrc": Xbrc,
    "xhc-flat": lambda: Xhc(hierarchy="flat"),
    "xhc-tree": lambda: Xhc(hierarchy="numa+socket"),
    # Not in the paper's figure sets: uses the decision table produced by
    # ``python -m repro tune`` (falls back to xhc-tree's config without one).
    "xhc-tuned": TunedXhc,
}

# The component sets each figure compares (smhc has no tree variant on the
# single-socket Epyc-1P; xbrc implements only reduction collectives).
BCAST_SET = ["tuned", "sm", "ucc", "smhc-flat", "smhc-tree",
             "xhc-flat", "xhc-tree"]
ALLREDUCE_SET = ["tuned", "sm", "ucc", "xbrc", "xhc-flat", "xhc-tree"]


def component_names(kind: str, system: str) -> list[str]:
    names = list(BCAST_SET if kind == "bcast" else ALLREDUCE_SET)
    if system.lower() == "epyc-1p" and "smhc-tree" in names:
        names.remove("smhc-tree")
    return names


def make_component(name: str):
    try:
        factory = COMPONENTS[name]
    except KeyError:
        raise ConfigError(
            f"unknown component {name!r}; known: {sorted(COMPONENTS)}"
        ) from None
    return factory()
