"""Benchmark harness: OSU-style microbenchmarks and per-figure drivers.

Every table and figure of the paper's evaluation (SSV) has a driver in
:mod:`repro.bench.figures` that regenerates the same rows/series on the
simulated machines; the pytest-benchmark wrappers live in ``benchmarks/``.
"""

from .components import COMPONENTS, make_component, component_names
from .osu import osu_bcast, osu_allreduce, osu_latency, OsuSeries
from .report import render_series_table, render_rows
from .figures import (
    FigureResult,
    table1_systems,
    fig1a_domains,
    fig1b_congestion,
    fig3_mechanisms,
    fig4_atomics,
    fig7_osu_variants,
    fig8_bcast,
    fig9_layout_root,
    table2_message_counts,
    fig10_cacheline,
    fig11_allreduce,
    fig12_pisvm,
    fig13_miniamr,
    fig14_cntk,
)

__all__ = [
    "COMPONENTS", "make_component", "component_names",
    "osu_bcast", "osu_allreduce", "osu_latency", "OsuSeries",
    "render_series_table", "render_rows",
    "FigureResult", "table1_systems",
    "fig1a_domains", "fig1b_congestion", "fig3_mechanisms", "fig4_atomics",
    "fig7_osu_variants", "fig8_bcast", "fig9_layout_root",
    "table2_message_counts", "fig10_cacheline", "fig11_allreduce",
    "fig12_pisvm", "fig13_miniamr", "fig14_cntk",
]
