"""Per-figure/table drivers regenerating the paper's evaluation (SSV).

Every driver returns a :class:`FigureResult` whose ``text`` holds the
rendered rows/series matching the paper's presentation; ``data`` holds the
raw numbers for assertions. Pass ``quick=True`` for a trimmed
configuration (used by the test suite; the full configuration is what the
``benchmarks/`` targets run).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..apps import run_cntk, run_miniamr, run_pisvm
from ..exec import RunRequest, run_many
from ..mpi import World
from ..node import Node
from ..options import RunOptions
from ..shmem.smsc import SmscConfig
from ..sim import primitives as P
from ..sim.syncobj import Flag
from ..topology import Distance, classify_distance, get_system
from ..topology.distance import message_distance_label
from ..topology.objects import ObjKind
from .components import COMPONENTS, component_names, make_component
from .osu import DEFAULT_SIZES, OsuSeries, osu_allreduce, osu_bcast
from .report import render_rows, render_series_table

QUICK_SIZES = (4, 256, 4096, 65536, 1048576)
QUICK_ITERS = dict(warmup=1, iters=2)
FULL_ITERS = dict(warmup=1, iters=5)


@dataclass
class FigureResult:
    name: str
    text: str
    data: dict = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover
        return self.text

    def to_records(self) -> list[dict]:
        """Flatten ``data`` into machine-readable records.

        OsuSeries values expand into one record per (series, size); other
        values become one record per key. Tuple keys turn into
        ``key0, key1, ...`` columns.
        """
        records: list[dict] = []
        for key, value in self.data.items():
            parts = key if isinstance(key, tuple) else (key,)
            base = {f"key{i}": str(p) for i, p in enumerate(parts)}
            if isinstance(value, OsuSeries):
                for size in value.latency:
                    records.append({**base, "size": size,
                                    "latency_s": value.latency[size]})
            elif isinstance(value, dict):
                records.append({**base, **{str(k): v
                                            for k, v in value.items()}})
            elif hasattr(value, "total_time"):  # AppResult
                records.append({**base,
                                "total_s": value.total_time,
                                "collective_s": value.collective_time})
            else:
                records.append({**base, "value": value})
        return records

    def write_csv(self, path) -> None:
        import csv
        records = self.to_records()
        fields: list[str] = []
        for rec in records:
            for k in rec:
                if k not in fields:
                    fields.append(k)
        with open(path, "w", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=fields)
            writer.writeheader()
            writer.writerows(records)


def _iters(quick: bool) -> dict:
    return QUICK_ITERS if quick else FULL_ITERS


def _sizes(quick: bool, sizes=DEFAULT_SIZES):
    return QUICK_SIZES if quick else sizes


def _nranks(system: str, quick: bool) -> int:
    full = get_system(system).n_cores
    if quick and full > 64:
        return 64
    return full


# -- Table I --------------------------------------------------------------


def table1_systems() -> FigureResult:
    rows = []
    for name in ("epyc-1p", "epyc-2p", "arm-n1"):
        topo = get_system(name)
        rows.append([
            topo.name, topo.machine.attrs.get("processor", "?"),
            topo.machine.attrs.get("arch", "?"), topo.n_cores,
            topo.count(ObjKind.NUMA), topo.count(ObjKind.SOCKET),
        ])
    text = render_rows("Table I — Evaluation systems",
                       ["Codename", "Processor", "Arch", "Cores", "NUMA",
                        "Sockets"], rows)
    return FigureResult("table1", text, {"rows": rows})


# -- Fig. 1a: performance across topological domains -------------------------


def _pair_at_distance(system: str, dist: Distance) -> tuple[int, int] | None:
    topo = get_system(system)
    for b in range(1, topo.n_cores):
        if classify_distance(topo, 0, b) is dist:
            return (0, b)
    return None


def _pingpong_request(system, pair, size, *, smsc=None, **iters) -> RunRequest:
    return RunRequest(system=system, collective="pingpong", size=size,
                      nranks=2, component="tuned", mapping=pair,
                      smsc=smsc, **iters)


def fig1a_domains(quick: bool = False, size: int = 1 << 20) -> FigureResult:
    cells = []
    for system in ("epyc-1p", "epyc-2p", "arm-n1"):
        for dist in (Distance.CACHE_LOCAL, Distance.INTRA_NUMA,
                     Distance.CROSS_NUMA, Distance.CROSS_SOCKET):
            pair = _pair_at_distance(system, dist)
            if pair is None:
                continue
            cells.append((system, dist.label,
                          _pingpong_request(system, pair, size,
                                            **_iters(quick))))
    results = run_many([req for _, _, req in cells])
    rows = []
    data: dict = {}
    for (system, label, _req), res in zip(cells, results):
        rows.append([system, label, res.latency_s * 1e6])
        data[(system, label)] = res.latency_s
    text = render_rows("Fig. 1a — One-way latency (1 MB) across domains",
                       ["system", "domain", "latency_us"], rows)
    return FigureResult("fig1a", text, data)


# -- Fig. 1b: fan-out congestion, flat vs hierarchical ------------------------


def fig1b_congestion(quick: bool = False, size: int = 1 << 20,
                     observed_rank: int = 7) -> FigureResult:
    """Concurrent 1 MB copies from a root on Epyc-1P: the observed rank's
    copy time under a flat tree vs a NUMA-wise two-level hierarchy."""
    topo = get_system("epyc-1p")
    counts = (8, 16, 24, 32) if not quick else (8, 32)
    rows = []
    data: dict = {}
    for scheme in ("flat", "hierarchical"):
        for n in counts:
            node = Node(get_system("epyc-1p"),
                        options=RunOptions(data_movement=False))
            spaces = [node.new_address_space(r, r) for r in range(n)]
            src_buf = spaces[0].alloc("src", size)
            bufs = [sp.alloc("dst", size) for sp in spaces]
            numa_first = sorted({
                min(c for c in numa.cpuset() if c < n)
                for numa in node.topo.objects(ObjKind.NUMA)
                if any(c < n for c in numa.cpuset())
            })
            leaders = set(numa_first)
            root_avail = Flag("f1b.root", 0)
            leader_avail = {r: Flag(f"f1b.l{r}", r) for r in leaders}
            durations: dict[int, float] = {}

            def program(r):
                if r == 0:
                    yield P.Copy(src=bufs[0].whole(), dst=src_buf.whole())
                    yield P.SetFlag(root_avail, 1)
                    return
                hierarchical = scheme == "hierarchical"
                my_leader = max(l for l in leaders
                                if node.topo.numa_of_core(l)
                                is node.topo.numa_of_core(r)) \
                    if hierarchical else 0
                if hierarchical and r in leaders:
                    my_leader = 0
                if my_leader == 0:
                    yield P.WaitFlag(root_avail, 1)
                    src = src_buf
                else:
                    yield P.WaitFlag(leader_avail[my_leader], 1)
                    src = bufs[my_leader]
                t0 = node.engine.now
                yield P.Copy(src=src.whole(), dst=bufs[r].whole())
                durations[r] = node.engine.now - t0
                if hierarchical and r in leaders:
                    yield P.SetFlag(leader_avail[r], 1)

            for r in range(n):
                node.engine.spawn(program(r), core=r, name=f"r{r}")
            node.engine.run()
            rows.append([scheme, n, durations[observed_rank] * 1e6])
            data[(scheme, n)] = durations[observed_rank]
    text = render_rows(
        "Fig. 1b — 1 MB copy time of one rank vs participants (Epyc-1P)",
        ["scheme", "ranks", "copy_time_us"], rows)
    return FigureResult("fig1b", text, data)


# -- Fig. 3: single-copy mechanisms -----------------------------------------

MECH_CONFIGS = {
    "xpmem": SmscConfig(mechanism="xpmem"),
    "xpmem-nocache": SmscConfig(mechanism="xpmem", use_regcache=False),
    "knem": SmscConfig(mechanism="knem"),
    "cma": SmscConfig(mechanism="cma"),
    "cico": SmscConfig(mechanism=None),
}

FIG3_SIZES = (16384, 65536, 262144, 1048576, 4194304)


def fig3_mechanisms(quick: bool = False) -> FigureResult:
    sizes = FIG3_SIZES if not quick else (65536, 1048576)
    p2p_requests = [
        _pingpong_request("epyc-2p", (0, 8), size, smsc=cfg, **_iters(quick))
        for cfg in MECH_CONFIGS.values() for size in sizes
    ]
    p2p_results = iter(run_many(p2p_requests))
    p2p_series = []
    bc_series = []
    for mech, cfg in MECH_CONFIGS.items():
        s = OsuSeries(label=mech)
        for size in sizes:
            s.add(size, next(p2p_results).latency_s)
        p2p_series.append(s)
        bc_series.append(osu_bcast(
            "epyc-2p", 64 if not quick else 32, "tuned",
            sizes=sizes, label=mech, smsc=cfg, **_iters(quick)))
    text = (render_series_table(
        "Fig. 3a — Point-to-point latency (us) by copy mechanism (Epyc-2P)",
        p2p_series)
        + "\n\n" + render_series_table(
            "Fig. 3b — Broadcast latency (us) by copy mechanism (Epyc-2P)",
            bc_series))
    data = {("p2p", s.label): s for s in p2p_series}
    data.update({("bcast", s.label): s for s in bc_series})
    return FigureResult("fig3", text, data)


# -- Fig. 4: atomics vs single-writer ----------------------------------------


def fig4_atomics(quick: bool = False, size: int = 4) -> FigureResult:
    counts = (10, 20, 40, 80, 120, 160) if not quick else (10, 80, 160)
    schemes = (("single-writer", "smhc-flat"), ("atomics", "sm"))
    results = iter(run_many([
        RunRequest(system="arm-n1", collective="bcast", size=size,
                   nranks=n, component=comp, **_iters(quick))
        for _label, comp in schemes for n in counts
    ]))
    series = []
    data: dict = {}
    for label, _comp in schemes:
        s = OsuSeries(label=label)
        for n in counts:
            lat = next(results).latency_s
            s.add(n, lat)
            data[(label, n)] = lat
        series.append(s)
    rows = [[n] + [ser.latency[n] * 1e6 for ser in series] for n in counts]
    text = render_rows(
        "Fig. 4 — Broadcast (4 B) latency vs ranks: sync schemes (ARM-N1)",
        ["ranks"] + [s.label + "_us" for s in series], rows)
    return FigureResult("fig4", text, data)


# -- Fig. 7: osu_bcast vs osu_bcast_mb ----------------------------------------


def fig7_osu_variants(quick: bool = False) -> FigureResult:
    n = 64 if not quick else 32
    sizes = _sizes(quick)
    series = []
    for hierarchy, hname in (("flat", "flat"), ("numa+socket", "tree")):
        for modify, mname in ((False, "osu_bcast"), (True, "osu_bcast_mb")):
            series.append(osu_bcast(
                "epyc-2p", n, f"xhc-{hname}", sizes=sizes,
                label=f"{hname}/{mname}", modify=modify, **_iters(quick)))
    text = render_series_table(
        "Fig. 7 — osu_bcast variants, XHC flat vs tree (Epyc-2P, us)",
        series)
    return FigureResult("fig7", text, {s.label: s for s in series})


# -- Fig. 8 / Fig. 11: main microbenchmark comparisons -----------------------


def _component_sweep(kind: str, system: str, quick: bool) -> FigureResult:
    n = _nranks(system, quick)
    sizes = _sizes(quick)
    names = component_names(kind, system)
    runner = osu_bcast if kind == "bcast" else osu_allreduce
    series = [
        runner(system, n, name, sizes=sizes, label=name,
               **_iters(quick))
        for name in names
    ]
    fig = "Fig. 8" if kind == "bcast" else "Fig. 11"
    text = render_series_table(
        f"{fig} — MPI {kind.capitalize()} latency ({system}, "
        f"{n} ranks, us)", series)
    return FigureResult(f"{fig}:{system}", text, {s.label: s for s in series})


def fig8_bcast(system: str, quick: bool = False) -> FigureResult:
    return _component_sweep("bcast", system, quick)


def fig11_allreduce(system: str, quick: bool = False) -> FigureResult:
    return _component_sweep("allreduce", system, quick)


# -- Fig. 9 + Table II: layout and root sensitivity ---------------------------


def fig9_layout_root(quick: bool = False) -> FigureResult:
    n = 64 if not quick else 32
    sizes = _sizes(quick)
    series = []
    for comp in ("tuned", "xhc-tree"):
        for mapping in ("core", "numa"):
            series.append(osu_bcast(
                "epyc-2p", n, comp, sizes=sizes,
                label=f"{comp}/map-{mapping}", mapping=mapping,
                **_iters(quick)))
        series.append(osu_bcast(
            "epyc-2p", n, comp, sizes=sizes,
            label=f"{comp}/root10", root=10 % n, **_iters(quick)))
    text = render_series_table(
        "Fig. 9 — Broadcast under rank layouts and root ranks "
        "(Epyc-2P, us)", series)
    return FigureResult("fig9", text, {s.label: s for s in series})


def _count_messages(system: str, nranks: int, component: str, mapping,
                    root: int, size: int = 1 << 20) -> dict[str, int]:
    node = Node(get_system(system), options=RunOptions(data_movement=False))
    world = World(node, nranks, mapping=mapping)
    comm = world.communicator(make_component(component))

    def program(comm_, ctx):
        buf = ctx.alloc("t2", size)
        yield from comm_.bcast(ctx, buf.whole(), root)

    comm.run(program)
    topo = node.topo
    edges = set()
    for _t, label, meta in node.engine.trace:
        if label == "message":
            edges.add((meta["src_rank"], meta["dst_rank"],
                       meta["src"], meta["dst"]))
    counts = {"intra-numa": 0, "inter-numa": 0, "inter-socket": 0}
    for _sr, _dr, score, dcore in edges:
        counts[message_distance_label(topo, score, dcore)] += 1
    return counts


def table2_message_counts(quick: bool = False) -> FigureResult:
    n = 64
    scenarios = [
        ("tuned", "core", 0, "map-core"),
        ("tuned", "numa", 0, "map-numa"),
        ("tuned", "core", 10, "root=10"),
        ("xhc-tree", "core", 0, "map-core"),
        ("xhc-tree", "numa", 0, "map-numa"),
        ("xhc-tree", "core", 10, "root=10"),
    ]
    rows = []
    data: dict = {}
    for comp, mapping, root, label in scenarios:
        counts = _count_messages("epyc-2p", n, comp, mapping, root)
        rows.append([comp, label, counts["inter-socket"],
                     counts["inter-numa"], counts["intra-numa"]])
        data[(comp, label)] = counts
    text = render_rows(
        "Table II — Number and distance of exchanged messages (Epyc-2P)",
        ["component", "scenario", "inter-socket", "inter-numa",
         "intra-numa"], rows)
    return FigureResult("table2", text, data)


# -- Fig. 10: cache-line sharing of synchronization flags --------------------


def fig10_cacheline(quick: bool = False) -> FigureResult:
    sizes = (4, 16, 64, 256, 1024) if not quick else (4, 256)
    series = []
    for hierarchy, hname in (("flat", "flat"), ("numa+socket", "tree")):
        for layout in ("multi-shared", "multi-separate"):
            spec = ("xhc", {"hierarchy": hierarchy, "flag_layout": layout})
            series.append(osu_bcast(
                "epyc-1p", 32, spec, sizes=sizes,
                label=f"{hname}/{layout.split('-')[1]}", **_iters(quick)))
    text = render_series_table(
        "Fig. 10 — Broadcast: flag cache-line sharing schemes "
        "(Epyc-1P, us)", series)
    return FigureResult("fig10", text, {s.label: s for s in series})


# -- Figs. 12-14: applications ---------------------------------------------

APP_SYSTEMS = ("epyc-1p", "epyc-2p", "arm-n1")


def _app_figure(name: str, title: str, runner, components: Sequence[str],
                quick: bool, **app_kw) -> FigureResult:
    systems = ("epyc-2p",) if quick else APP_SYSTEMS
    rows = []
    data: dict = {}
    for system in systems:
        nranks = 32 if quick else None
        for comp in components:
            res = runner(system, COMPONENTS[comp], comp, nranks=nranks,
                         **app_kw)
            rows.append([system, comp, res.total_time * 1e3,
                         res.collective_time * 1e3,
                         round(100 * res.mpi_fraction, 1)])
            data[(system, comp)] = res
    text = render_rows(title, ["system", "component", "total_ms",
                               "collective_ms", "mpi_%"], rows)
    return FigureResult(name, text, data)


def fig12_pisvm(quick: bool = False) -> FigureResult:
    comps = ["tuned", "ucc", "smhc-flat", "smhc-tree", "xhc-flat",
             "xhc-tree"]
    return _app_figure(
        "fig12", "Fig. 12 — PiSvM performance", run_pisvm, comps, quick,
        iterations=10 if quick else 40)


def fig13_miniamr(config: str = "default", quick: bool = False) -> FigureResult:
    comps = ["tuned", "ucc", "xbrc", "xhc-flat", "xhc-tree"]
    return _app_figure(
        f"fig13:{config}",
        f"Fig. 13 — miniAMR performance ({config})",
        run_miniamr, comps, quick, config=config)


def fig14_cntk(quick: bool = False) -> FigureResult:
    comps = ["tuned", "ucc", "xbrc", "xhc-flat", "xhc-tree"]
    return _app_figure(
        "fig14", "Fig. 14 — CNTK performance (AlexNet-scale SGD)",
        run_cntk, comps, quick,
        minibatches=2 if quick else 8)
