"""OSU-microbenchmark-style drivers (SSV-A).

Each collective benchmark runs warmup + measured iterations inside one
simulation and reports the mean per-rank latency, exactly like
``osu_bcast`` / ``osu_allreduce``. The ``modify`` option is the paper's
``_mb`` variant: the transmitted buffer is rewritten (a *simulated* write,
so caches invalidate) before every iteration — without it the benchmark
measures the unrealistic hot-cache scenario the paper dissects in Fig. 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..mpi import FLOAT, SUM, World
from ..node import Node
from ..options import RunOptions
from ..shmem.smsc import SmscConfig
from ..sim import primitives as P
from ..topology import get_system

DEFAULT_SIZES = (4, 16, 64, 256, 1024, 4096, 16384, 65536,
                 262144, 1048576, 4194304)


@dataclass
class OsuSeries:
    """Mean latency (seconds) per message size for one configuration."""

    label: str
    sizes: list[int] = field(default_factory=list)
    latency: dict[int, float] = field(default_factory=dict)

    def add(self, size: int, value: float) -> None:
        self.sizes.append(size)
        self.latency[size] = value

    def us(self, size: int) -> float:
        return self.latency[size] * 1e6


def _pairwise_sum(x, lo: int, n: int) -> float:
    """numpy's pairwise summation, element-for-element.

    The golden latency fixtures were recorded when this module averaged
    samples with ``np.mean``; numpy is now an optional extra, so the
    mean is computed here — in the exact floating-point operation order
    numpy uses (naive below 8, eight-way unrolled up to a 128 block,
    recursive halving above) — to keep every recorded fixture bit-true.
    math.fsum would be off by an ulp on some cells.
    """
    if n < 8:
        res = 0.0
        for i in range(n):
            res += x[lo + i]
        return res
    if n <= 128:
        r = x[lo:lo + 8]
        i = 8
        while i + 8 <= n:
            for j in range(8):
                r[j] += x[lo + i + j]
            i += 8
        res = ((r[0] + r[1]) + (r[2] + r[3])) + ((r[4] + r[5]) + (r[6] + r[7]))
        while i < n:
            res += x[lo + i]
            i += 1
        return res
    n2 = (n // 2) - ((n // 2) % 8)
    return _pairwise_sum(x, lo, n2) + _pairwise_sum(x, lo + n2, n - n2)


def _mean(samples: "list[float]") -> float:
    return _pairwise_sum(samples, 0, len(samples)) / len(samples)


def _modify(scratch, view):
    """A simulated full rewrite of ``view`` (invalidates peer caches)."""
    return P.Copy(src=scratch.view(0, view.length), dst=view)


def run_collective(
    kind: str,
    system: str,
    nranks: int,
    component_factory: Callable[[], object],
    size: int,
    *,
    warmup: int = 1,
    iters: int = 5,
    modify: bool = True,
    mapping="core",
    root: int = 0,
    smsc: SmscConfig | None = None,
    data_movement: bool = False,
    options: RunOptions | None = None,
    node: Node | None = None,
) -> float:
    """One (configuration, size) cell: mean per-rank collective latency."""
    if node is None:
        if options is None:
            options = RunOptions(data_movement=data_movement)
        node = Node(get_system(system), options=options)
    world = World(node, nranks, mapping=mapping, smsc=smsc)
    comm = world.communicator(component_factory())
    samples: list[float] = []

    def program(comm, ctx):
        me = comm.rank_of(ctx)
        scratch = ctx.alloc("osu.scratch", size)
        if kind == "bcast":
            buf = ctx.alloc("osu.buf", size)
            for it in range(warmup + iters):
                if modify and me == root:
                    yield _modify(scratch, buf.whole())
                t0 = ctx.now
                yield from comm.bcast(ctx, buf.whole(), root)
                if it >= warmup:
                    samples.append(ctx.now - t0)
        elif kind == "allreduce":
            sbuf = ctx.alloc("osu.sbuf", size)
            rbuf = ctx.alloc("osu.rbuf", size)
            for it in range(warmup + iters):
                if modify:
                    yield _modify(scratch, sbuf.whole())
                t0 = ctx.now
                yield from comm.allreduce(ctx, sbuf.whole(), rbuf.whole(),
                                          SUM, FLOAT)
                if it >= warmup:
                    samples.append(ctx.now - t0)
        elif kind == "reduce":
            sbuf = ctx.alloc("osu.sbuf", size)
            rbuf = ctx.alloc("osu.rbuf", size) if me == root else None
            for it in range(warmup + iters):
                if modify:
                    yield _modify(scratch, sbuf.whole())
                t0 = ctx.now
                yield from comm.reduce(
                    ctx, sbuf.whole(),
                    None if rbuf is None else rbuf.whole(),
                    SUM, FLOAT, root)
                if it >= warmup:
                    samples.append(ctx.now - t0)
        elif kind == "barrier":
            for it in range(warmup + iters):
                t0 = ctx.now
                yield from comm.barrier(ctx)
                if it >= warmup:
                    samples.append(ctx.now - t0)
        elif kind == "gather":
            sbuf = ctx.alloc("osu.sbuf", size)
            rbuf = (ctx.alloc("osu.rbuf", size * comm.size)
                    if me == root else None)
            for it in range(warmup + iters):
                if modify:
                    yield _modify(scratch, sbuf.whole())
                t0 = ctx.now
                yield from comm.gather(
                    ctx, sbuf.whole(),
                    None if rbuf is None else rbuf.whole(), root)
                if it >= warmup:
                    samples.append(ctx.now - t0)
        elif kind == "alltoall":
            sbuf = ctx.alloc("osu.sbuf", size * comm.size)
            rbuf = ctx.alloc("osu.rbuf", size * comm.size)
            big_scratch = ctx.alloc("osu.scr2", size * comm.size)
            for it in range(warmup + iters):
                if modify:
                    yield _modify(big_scratch, sbuf.whole())
                t0 = ctx.now
                yield from comm.alltoall(ctx, sbuf.whole(), rbuf.whole())
                if it >= warmup:
                    samples.append(ctx.now - t0)
        else:
            raise ValueError(f"unknown collective kind {kind!r}")

    comm.run(program)
    return _mean(samples)


def _component_spec(component) -> "tuple[str, dict | None] | None":
    """Normalize a sweep's component argument into (name, config).

    Accepts a registry name (``"xhc-tree"``), a ``(name, config_dict)``
    pair, or — the legacy form — an arbitrary factory callable, for which
    ``None`` is returned: un-addressable components cannot go through the
    executor's cache, so they run inline.
    """
    if isinstance(component, str):
        return component, None
    if isinstance(component, tuple) and len(component) == 2 \
            and isinstance(component[0], str):
        return component[0], dict(component[1])
    return None


def _sweep(kind, system, nranks, component, sizes, label,
           executor=None, **kw) -> OsuSeries:
    """Sweep ``sizes`` through :mod:`repro.exec` (parallel + cached when
    the ambient executor says so); factory callables fall back to the
    inline loop."""
    spec = _component_spec(component)
    series = OsuSeries(label=label)
    if spec is None:
        for size in sizes:
            series.add(size, run_collective(kind, system, nranks,
                                            component, size, **kw))
        return series
    from .. import exec as exec_mod
    name, config = spec
    requests = [
        exec_mod.RunRequest(
            system=system, collective=kind, size=size, nranks=nranks,
            component=name, config=config,
            warmup=kw.get("warmup", 1), iters=kw.get("iters", 5),
            modify=kw.get("modify", True), mapping=kw.get("mapping", "core"),
            root=kw.get("root", 0), smsc=kw.get("smsc"),
            options=kw.get("options") or RunOptions(
                data_movement=kw.get("data_movement", False)),
        )
        for size in sizes
    ]
    for size, result in zip(sizes, exec_mod.run_many(requests,
                                                     executor=executor)):
        if result is not None and result.latency_s is not None:
            series.add(size, result.latency_s)
    return series


def osu_bcast(system, nranks, component, sizes=DEFAULT_SIZES,
              label="bcast", **kw) -> OsuSeries:
    return _sweep("bcast", system, nranks, component, sizes, label,
                  **kw)


def osu_allreduce(system, nranks, component, sizes=DEFAULT_SIZES,
                  label="allreduce", **kw) -> OsuSeries:
    return _sweep("allreduce", system, nranks, component, sizes,
                  label, **kw)


def osu_latency(
    system: str,
    cores: tuple[int, int],
    size: int,
    *,
    warmup: int = 1,
    iters: int = 5,
    smsc: SmscConfig | None = None,
    modify: bool = True,
    node: Node | None = None,
) -> float:
    """Ping-pong one-way latency between two pinned ranks (osu_latency)."""
    if node is None:
        node = Node(get_system(system),
                    options=RunOptions(data_movement=False))
    world = World(node, 2, mapping=list(cores), smsc=smsc)
    from ..mpi.colls import Tuned
    comm = world.communicator(Tuned())
    samples: list[float] = []

    def program(comm, ctx):
        me = comm.rank_of(ctx)
        buf = ctx.alloc("pingpong", size)
        scratch = ctx.alloc("pp.scratch", size)
        for it in range(warmup + iters):
            t0 = ctx.now
            if me == 0:
                if modify:
                    yield _modify(scratch, buf.whole())
                yield from comm.send(ctx, buf.whole(), 1)
                yield from comm.recv(ctx, buf.whole(), 1)
                if it >= warmup:
                    samples.append((ctx.now - t0) / 2)
            else:
                yield from comm.recv(ctx, buf.whole(), 0)
                if modify:
                    yield _modify(scratch, buf.whole())
                yield from comm.send(ctx, buf.whole(), 0)

    comm.run(program)
    return _mean(samples)
