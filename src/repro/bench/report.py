"""Plain-text and JSON rendering of benchmark results.

Every text table has a machine-readable mirror: ``render_series_table`` ↔
:func:`series_table_json` and ``render_rows`` ↔ :func:`rows_table_json`,
so scripts can consume exactly what the terminal shows.
"""

from __future__ import annotations

import json
import os
from typing import Sequence

from .osu import OsuSeries


def _fmt_size(size: int) -> str:
    if size >= 1 << 20 and size % (1 << 20) == 0:
        return f"{size >> 20}M"
    if size >= 1 << 10 and size % (1 << 10) == 0:
        return f"{size >> 10}K"
    return str(size)


def render_series_table(title: str, series: Sequence[OsuSeries],
                        unit: str = "us") -> str:
    """Sizes down the rows, one column per series; latencies in Âµs."""
    sizes = list(dict.fromkeys(s for ser in series for s in ser.sizes))
    labels = [ser.label for ser in series]
    widths = [max(8, len("size"))] + [max(10, len(l) + 1) for l in labels]
    lines = [title, "=" * len(title)]
    header = "size".rjust(widths[0]) + "".join(
        l.rjust(w) for l, w in zip(labels, widths[1:])
    )
    lines.append(header)
    lines.append("-" * len(header))
    for size in sizes:
        row = _fmt_size(size).rjust(widths[0])
        for ser, w in zip(series, widths[1:]):
            if size in ser.latency:
                row += f"{ser.latency[size] * 1e6:.2f}".rjust(w)
            else:
                row += "-".rjust(w)
        lines.append(row)
    return "\n".join(lines)


def render_rows(title: str, headers: Sequence[str],
                rows: Sequence[Sequence]) -> str:
    """Generic aligned table."""
    cols = len(headers)
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in str_rows)) + 2
        if str_rows else len(headers[c]) + 2
        for c in range(cols)
    ]
    lines = [title, "=" * len(title)]
    header = "".join(h.rjust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in str_rows:
        lines.append("".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def series_table_json(title: str, series: Sequence[OsuSeries],
                      unit: str = "us") -> dict:
    """JSON mirror of :func:`render_series_table`: same sizes/columns,
    latencies in microseconds, missing cells as ``None``."""
    sizes = list(dict.fromkeys(s for ser in series for s in ser.sizes))
    return {
        "title": title,
        "unit": unit,
        "columns": [ser.label for ser in series],
        "rows": [
            {
                "size": size,
                "values": [
                    ser.latency[size] * 1e6 if size in ser.latency else None
                    for ser in series
                ],
            }
            for size in sizes
        ],
    }


def rows_table_json(title: str, headers: Sequence[str],
                    rows: Sequence[Sequence]) -> dict:
    """JSON mirror of :func:`render_rows`: headers become keys."""
    return {
        "title": title,
        "columns": list(headers),
        "rows": [dict(zip(headers, row)) for row in rows],
    }


def bench_trajectory_json(tag: str, title: str,
                          series: Sequence[OsuSeries], *,
                          system: str, collective: str, nranks: int,
                          warmup: int, iters: int,
                          exec_info: dict | None = None) -> dict:
    """The ``BENCH_<n>.json`` perf-trajectory payload: one record per PR,
    with enough run parameters that a later session can re-run the exact
    sweep and regress against these numbers. ``exec_info`` (executor
    stats, wall times) rides along when the sweep went through
    :mod:`repro.exec`."""
    payload = {
        "bench_schema": 1,
        "tag": tag,
        "title": title,
        "system": system,
        "collective": collective,
        "nranks": nranks,
        "warmup": warmup,
        "iters": iters,
        "unit": "us",
        "series": [
            {
                "label": ser.label,
                "points": [
                    {"size": size, "latency_us": ser.latency[size] * 1e6}
                    for size in ser.sizes if size in ser.latency
                ],
            }
            for ser in series
        ],
    }
    if exec_info is not None:
        payload["exec"] = exec_info
    return payload


def next_bench_path(directory: str | os.PathLike = ".") -> str:
    """The next free ``BENCH_<n>.json`` path in ``directory``.

    Scans existing ``BENCH_*.json`` names and returns one past the highest
    index, so every ``--emit-bench`` run appends to the perf trajectory
    instead of overwriting the previous record.
    """
    import re

    directory = os.fspath(directory)
    highest = -1
    for name in os.listdir(directory or "."):
        m = re.fullmatch(r"BENCH_(\d+)\.json", name)
        if m:
            highest = max(highest, int(m.group(1)))
    filename = f"BENCH_{highest + 1}.json"
    return filename if directory in ("", ".") else \
        os.path.join(directory, filename)


def write_json(path: str | os.PathLike, payload: dict) -> None:
    """Write one JSON document, creating parent directories."""
    path = os.fspath(path)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=False)
        fh.write("\n")


def render_series_chart(title: str, series: Sequence[OsuSeries],
                        width: int = 60) -> str:
    """Log-scale ASCII chart: one row per (size), bars per series.

    A lightweight stand-in for the paper's line plots when only a terminal
    is available; values are latencies, shorter bars are better.
    """
    import math

    sizes = list(dict.fromkeys(s for ser in series for s in ser.sizes))
    values = [ser.latency[s] for ser in series for s in ser.sizes
              if s in ser.latency]
    if not values:
        return title + "\n(no data)"
    lo = min(values)
    hi = max(values)
    span = math.log10(hi / lo) if hi > lo else 1.0

    def bar(value: float) -> str:
        frac = math.log10(value / lo) / span if span else 0.0
        n = max(1, int(round(frac * (width - 1))) + 1)
        return "#" * n

    label_w = max(len(ser.label) for ser in series) + 2
    lines = [title, "=" * len(title),
             f"(log scale, {lo * 1e6:.2f}us .. {hi * 1e6:.2f}us)"]
    for size in sizes:
        lines.append(f"-- {_fmt_size(size)}")
        for ser in series:
            if size not in ser.latency:
                continue
            v = ser.latency[size]
            lines.append(f"  {ser.label.ljust(label_w)}"
                         f"{bar(v)} {v * 1e6:.2f}")
    return "\n".join(lines)
