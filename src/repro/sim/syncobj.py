"""Synchronization state objects: cache lines, flags, atomics.

The paper's XHC synchronizes with control flags that have a *single
writer* and one or more readers, carefully placed on cache lines to avoid
false sharing (SSIII-E). Its `sm`-style baselines use atomic fetch-add
instead, which collapses under contention (Fig. 4). Both behaviours follow
from the :class:`Line` coherence model here:

* a write invalidates all cached copies and makes the writer's caches the
  line's only home;
* a reader missing everywhere fetches from the home point, **serialized**
  (one line transaction at a time — the fan-in queue);
* on machines with shared LLC groups, one group member's fetch deposits
  the line in the group cache, so its LLC peers read it locally — the
  implicit hierarchy-in-hardware of SSV-D1;
* on ARM-N1 there is no such group cache: every reader queues at the
  single home location.
* an atomic RMW needs exclusive ownership: contenders queue at the line
  and each pays the ownership ping-pong from the previous owner.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from .engine import SimProcess


class Line:
    """Coherence state of one cache line (may carry several flags)."""

    _ids = itertools.count()

    __slots__ = ("id", "owner_core", "next_free", "holders", "shared_holders",
                 "pending_rmw", "rmw_ends")

    def __init__(self, owner_core: int) -> None:
        self.id = next(Line._ids)
        # Core whose caches are the line's home after the last write.
        self.owner_core = owner_core
        # Home-point serialization horizon for fetches/atomics.
        self.next_free = 0.0
        # Cores currently holding a valid copy.
        self.holders: set[int] = {owner_core}
        # Shared caches (LLC-group ids) holding a valid copy (Epyc only).
        self.shared_holders: set[int] = set()
        # Concurrent atomic RMWs targeting this line: ownership ping-pong
        # interference grows with the number of contenders.
        self.pending_rmw = 0
        # Array-mode substitute for ``pending_rmw``: end times of
        # in-flight RMW intervals, expired lazily (None until the array
        # engine first touches the line).
        self.rmw_ends: list[float] | None = None

    def on_write(self, core: int) -> None:
        """Writer invalidates everyone else and becomes the home."""
        self.owner_core = core
        self.holders = {core}
        self.shared_holders.clear()


def wait_group(name: str) -> str:
    """The aggregation family of a sync-object name.

    Flag names embed rank numbers (``xhc.avail.3``, ``xhc.ready.3.l2``);
    dropping the purely-numeric dot segments merges all ranks' flags into
    one family (``xhc.avail``, ``xhc.ready.l2``) for wait breakdowns. A
    name whose segments are all numeric is kept as-is.
    """
    if "." not in name:
        return name
    kept = [seg for seg in name.split(".") if not seg.isdigit()]
    return ".".join(kept) if kept else name


class Flag:
    """Single-writer, multi-reader control flag.

    ``owner_core`` is fixed at creation; only the owner may ``SetFlag``.
    Several flags may share one :class:`Line` (the Fig. 10 experiment), in
    which case a write to any of them invalidates readers of all of them.

    ``wait_key`` is the interned wait-breakdown key (computed once here so
    the engine's resume path never allocates strings per blocked wait).
    """

    _ids = itertools.count()
    kind = "flag"

    __slots__ = ("id", "name", "owner_core", "line", "value", "waiters",
                 "wait_key", "hist")

    def __init__(self, name: str, owner_core: int, line: Line | None = None):
        self.id = next(Flag._ids)
        self.name = name
        self.owner_core = owner_core
        self.line = line if line is not None else Line(owner_core)
        self.value = 0
        # Blocked readers: (process, threshold, cmp).
        self.waiters: list[tuple["SimProcess", int, str]] = []
        self.wait_key = "flag " + wait_group(name)
        # Array-mode set history: ``[(time, value), ...]`` in set order.
        # The event engine never touches it; the array engine uses it to
        # resolve *when* a wait's threshold became true, which may be far
        # in a fast process's past (docs/performance.md).
        self.hist: list[tuple[float, int]] | None = None

    def satisfied(self, threshold: int, cmp: str) -> bool:
        return _compare(self.value, threshold, cmp)

    def reset(self, value: int = 0) -> None:
        if self.waiters:
            raise SimulationError(
                f"reset of flag {self.name!r} with blocked waiters"
            )
        self.value = value
        self.hist = None

    def __repr__(self) -> str:
        return f"<Flag {self.name!r} ={self.value} owner=core{self.owner_core}>"


class Atomic:
    """A counter updated with atomic read-modify-write operations."""

    _ids = itertools.count()
    kind = "atomic"

    __slots__ = ("id", "name", "line", "value", "waiters", "wait_key", "hist")

    def __init__(self, name: str, home_core: int, line: Line | None = None):
        self.id = next(Atomic._ids)
        self.name = name
        self.line = line if line is not None else Line(home_core)
        self.value = 0
        self.waiters: list[tuple["SimProcess", int, str]] = []
        self.wait_key = "atomic " + wait_group(name)
        # Array-mode update history, mirroring Flag.hist.
        self.hist: list[tuple[float, int]] | None = None

    def satisfied(self, threshold: int, cmp: str) -> bool:
        return _compare(self.value, threshold, cmp)

    def reset(self, value: int = 0) -> None:
        if self.waiters:
            raise SimulationError(
                f"reset of atomic {self.name!r} with blocked waiters"
            )
        self.value = value
        self.hist = None

    def __repr__(self) -> str:
        return f"<Atomic {self.name!r} ={self.value}>"


def _compare(value: int, threshold: int, cmp: str) -> bool:
    if cmp == ">=":
        return value >= threshold
    if cmp == "==":
        return value == threshold
    raise SimulationError(f"unsupported flag comparison {cmp!r}")
