"""The vectorized array-mode engine (``RunOptions(engine="array")``).

The event engine (:class:`repro.sim.engine.Engine`) prices every
primitive at its own heap event: ~8 events per pipelined chunk, plus one
event per 64 KiB quantum of every large copy. PR 5 showed that after
micro-tuning, that per-event Python *is* the simulator's cost floor.
This module replaces the execution model instead of tuning it:

**Synchronous zero-decision execution.** Each process carries a local
virtual time ``proc.vt``. When dispatched, its generator is resumed in a
tight loop and every *zero-decision* primitive — Copy, CopyBatch,
Reduce, Compute, SetFlag(Group), Syscall, PageFaults, satisfied waits,
AtomicRMW — is accumulated as one *row* with no heap event at all. The
run only returns to the dispatcher when the process genuinely blocks
(unsatisfied wait) or finishes.

**Timed set histories.** Flags and atomics record ``(time, value)``
pairs (``syncobj.Flag.hist``). A wait whose threshold is already true
resolves *when* it became true from the history, so a process running
far behind a producer consumes whole chunk streams in one dispatch —
the waits fuse into priced rows instead of blocking.

**Interval contention sampling.** Transfers book ``[start, end)``
occupancy intervals on their route's
:class:`~repro.sim.resources.Resource`s; bandwidth shares are sampled
per op at the op's virtual time (the event engine's plan time — lazy
expiry bounded by the dispatch epoch) instead of re-priced per 64 KiB
quantum. Large copies are one row priced once.

**Vectorized pricing.** At flush, each op's static terms (from
``Node.copy_terms_span`` / ``Node.reduce_terms`` — the same memo the
event engine uses) are evaluated in a numpy sweep when the op is wide
(CopyBatch, multi-source reduces); a scalar replay with the identical
floating-point expression handles narrow ops, and the two are
bit-identical (pinned by tests/test_array_engine.py), so batch size
never changes results. Lowered chunk runs price their whole timeline in
one closed-form sweep (``_chunkrun_sweep``).

The price of all this is a deliberate numeric model change
(SIM_VERSION 3): no quantum-granularity re-pricing, run-granularity
contention inside lowered chunk runs, dispatch-order atomics, and no
same-core timeslicing of long computes. The deltas against the event engine are pinned per golden
point in tests/golden/ and discussed in docs/performance.md. Array runs
are fully deterministic and the engine name is part of the result-cache
key.

Instrumentation (``observe``/``check``/``record_copies``) is per-event
by nature and refused up front (``Node`` raises ``ConfigError``);
``run(until=...)`` is likewise unsupported.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from typing import Any, Generator, Optional

from ..compat import require_numpy
from ..errors import SimulationError
from . import primitives as P
from .engine import Engine, ProcState, SimProcess

_READY = ProcState.READY
_BLOCKED = ProcState.BLOCKED
_DONE = ProcState.DONE

# Row opcodes for the flush walk.
_XFER = 0      # (op, term_lo, term_hi, const_add, resources, nbytes, in_kernel)
_COMPUTE = 1   # (op, seconds)
_CONST = 2     # (op, cost) — syscall/page-fault style "now + cost" delays
_KSYSCALL = 3  # (op, kind) — CMA/KNEM syscalls, kernel-lock sampled at flush
_SET = 4       # (op, flags, value, cost, wakes)
_WAIT = 5      # (op, obj, t_sat, t_ref)
_ATOMIC = 6    # (op, atom, new_value, prev_owner, wakes)

class ArrayEngine(Engine):
    """Array-mode execution: see the module docstring.

    Public surface matches :class:`Engine` (``spawn``/``run``/``now``/
    ``trace``/``processes``/``alive``); the heap-event internals are
    replaced wholesale.
    """

    engine_kind = "array"
    lower_chunk_runs = True

    #: Minimum number of term rows per flush for the numpy path; below
    #: it a scalar replay of the identical expression runs. Test hook —
    #: forcing it high proves scalar/vector bit-identity.
    ARRAY_VEC_MIN = 16

    def __init__(self, pricer) -> None:
        # `now` is a property on this class; initialize its backing slot
        # and the accumulation marker before Engine.__init__ assigns it.
        self._now = 0.0
        self._acc_proc: Optional[SimProcess] = None
        super().__init__(pricer, record_copies=False, observe=None,
                         check=None)
        self._np = require_numpy("ArrayEngine")
        # Dispatch heap: (virtual time, seq, process).
        self._ready: list[tuple] = []
        # Safe-expiry horizon for interval sampling: the vt of the most
        # recent dispatch — every future sample happens at or after it.
        self._epoch = 0.0
        # Accumulation buffers (cleared at every flush).
        self._ops: list[tuple] = []
        self._terms: list[tuple] = []
        # Run-local pending sets per sync object: obj -> [(op_idx, value)]
        # for resolving waits that are satisfied by a not-yet-flushed set.
        self._local_sets: dict = {}

    # -- time -----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current time: the accumulating process's virtual time (forcing
        a flush so pending rows are priced), or the global horizon."""
        proc = self._acc_proc
        if proc is not None:
            self._flush()
            return proc.vt
        return self._now

    @now.setter
    def now(self, value: float) -> None:
        self._now = value

    # -- public API ------------------------------------------------------

    def spawn(self, gen: Generator, core: int, name: str = "") -> SimProcess:
        proc = SimProcess(name or f"proc{len(self.processes)}", core, gen)
        self.processes.append(proc)
        parent = self._acc_proc
        if parent is not None:
            self._flush()
            proc.vt = parent.vt
        else:
            proc.vt = self._now
        heapq.heappush(self._ready, (proc.vt, next(self._seq), proc))
        return proc

    def run(self, until: float | None = None) -> float:
        if until is not None:
            raise SimulationError(
                "the array engine cannot run to a bounded time "
                "(run(until=...)); use RunOptions(engine='event')"
            )
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        ready = self._ready
        try:
            while ready:
                vt, _, proc = heapq.heappop(ready)
                if proc.state is _DONE:  # pragma: no cover - defensive
                    continue
                self._epoch = vt
                self._dispatch_run(proc)
            self._check_deadlock()
            return self._now
        finally:
            self._running = False

    # -- dispatch --------------------------------------------------------

    def _dispatch_run(self, proc: SimProcess) -> None:
        """Resume ``proc`` and accumulate zero-decision rows until it
        blocks or finishes; flush boundaries price everything pending."""
        if proc.state is _BLOCKED:  # woken by a set resolved at flush
            proc.state = _READY
        self._current_proc = proc
        self._acc_proc = proc
        self._progress += 1
        gen = proc.gen
        acc_step = self._acc_step
        watchdog = self.watchdog_every
        steps = 0
        send_value: Any = None
        try:
            seg = proc.seg
            if seg is not None:
                # Resume a chunk pipeline that parked mid-run.
                proc.seg = None
                if not self._run_chunkrun(proc, seg[0], seg[1]):
                    return
            while True:
                try:
                    prim = gen.send(send_value)
                except StopIteration as stop:
                    self._flush()
                    proc.state = _DONE
                    proc.result = stop.value
                    proc.finish_time = proc.vt
                    if proc.vt > self._now:
                        self._now = proc.vt
                    return
                send_value = None
                steps += 1
                self.events_processed += 1
                cls = prim.__class__
                if cls is P.CopyBatch:
                    for step in prim.steps:
                        acc_step(proc, step)
                elif cls is P.WaitFlag:
                    if not self._acc_wait(proc, prim.flag, prim.value,
                                          prim.cmp):
                        return
                elif cls is P.WaitAtomic:
                    if not self._acc_wait(proc, prim.atom, prim.value,
                                          prim.cmp):
                        return
                elif cls is P.ChunkRun:
                    if not self._run_chunkrun(proc, prim):
                        return
                elif cls is P.AtomicRMW:
                    send_value = self._acc_atomic(proc, prim)
                elif cls is P.Trace:
                    self._flush()
                    self.trace.append((proc.vt, prim.label, prim.meta))
                else:
                    acc_step(proc, prim)
                if steps >= watchdog:
                    self._flush()
                    raise SimulationError(
                        f"watchdog: process {proc.name} accumulated "
                        f"{steps} primitives without blocking at "
                        f"t={proc.vt:.3e} (livelock)"
                    )
        finally:
            self._acc_proc = None
            self._current_proc = None

    # -- accumulation ----------------------------------------------------

    def _acc_step(self, proc: SimProcess, step: Any) -> None:
        """Accumulate one zero-decision primitive as a row. Pricing terms
        and cache/value effects are taken *now* (dispatch order); the
        dynamic bandwidth evaluation waits for the flush."""
        ops = self._ops
        cls = step.__class__
        if cls is P.Copy:
            src = step.src
            dst = step.dst
            nbytes = src.length if src.length < dst.length else dst.length
            entry = self.pricer.copy_terms_span(
                proc.core, src.buf, src.offset, src.length,
                dst.buf, dst.offset, nbytes, step.bw_factor)
            if entry is None:
                return
            terms, resources, complete = entry
            lo = len(self._terms)
            self._terms.append(terms)
            if complete is not None:
                complete()
            ops.append((_XFER, lo, lo + 1, 0.0, resources, nbytes,
                        step.in_kernel))
        elif cls is P.SetFlag:
            self._acc_set(proc, (step.flag,), step.value,
                          self.pricer.store_cost)
        elif cls is P.SetFlagGroup:
            self._acc_set(proc, step.flags, step.value,
                          self.pricer.store_cost * len(step.flags))
        elif cls is P.Compute:
            if step.seconds < 0:
                raise SimulationError("negative compute time")
            ops.append((_COMPUTE, step.seconds))
        elif cls is P.Reduce:
            entry = self.pricer.reduce_terms(proc.core, step)
            if entry is None:
                return
            term_list, reduce_term, resources, complete = entry
            lo = len(self._terms)
            self._terms.extend(term_list)
            if complete is not None:
                complete()
            ops.append((_XFER, lo, lo + len(term_list), reduce_term,
                        resources, step.nbytes, False))
        elif cls is P.Syscall:
            kind = step.kind
            if kind == "cma" or kind == "knem":
                ops.append((_KSYSCALL, kind))
            else:
                ops.append((_CONST, self.pricer.syscall_cost(kind)))
        elif cls is P.PageFaults:
            ops.append((_CONST, self.pricer.page_fault_cost(step.npages)))
        else:
            raise SimulationError(
                f"process {proc.name} yielded non-primitive or unsupported "
                f"step {step!r}"
            )

    def _acc_set(self, proc: SimProcess, flags: tuple, value: int,
                 cost: float) -> None:
        """SetFlag/SetFlagGroup: values and coherence state update now
        (single-writer discipline checked like the event engine); the set
        *time* is assigned at flush, waking any satisfied parked waiter."""
        lines = None
        for flag in flags:
            if proc.core != flag.owner_core:
                raise SimulationError(
                    f"single-writer violation: core {proc.core} wrote flag "
                    f"{flag.name!r} owned by core {flag.owner_core}"
                )
            flag.value = value
            if len(flags) == 1:
                flag.line.on_write(proc.core)
            else:
                if lines is None:
                    lines = []
                if flag.line not in lines:
                    lines.append(flag.line)
        if lines is not None:
            for line in lines:
                line.on_write(proc.core)
        op_idx = len(self._ops)
        wakes = None
        local_sets = self._local_sets
        for flag in flags:
            pend = local_sets.get(flag)
            if pend is None:
                local_sets[flag] = [(op_idx, value)]
            else:
                pend.append((op_idx, value))
            if flag.waiters:
                wakes = self._collect_wakes(flag, wakes)
        self._ops.append((_SET, flags, value, cost, wakes))

    def _collect_wakes(self, obj, wakes):
        """Detach waiters whose threshold the just-written value
        satisfies; they wake at the (flush-resolved) set time."""
        still = None
        val = obj.value
        for entry in obj.waiters:
            wproc, threshold, cmp = entry
            if (val >= threshold) if cmp == ">=" \
                    else obj.satisfied(threshold, cmp):
                if wakes is None:
                    wakes = []
                wakes.append((wproc, obj))
            else:
                if still is None:
                    still = []
                still.append(entry)
        if still is None:
            obj.waiters.clear()
        else:
            obj.waiters[:] = still
        return wakes

    def _acc_atomic(self, proc: SimProcess, prim: P.AtomicRMW) -> int:
        """AtomicRMW: the value updates in dispatch order and the old
        value is returned to the generator immediately; the ownership
        ping-pong (priced from the *previous* owner, with in-flight
        contender interference) is charged at flush."""
        atom = prim.atom
        line = atom.line
        old = atom.value
        atom.value = old + prim.delta
        prev_owner = line.owner_core
        line.on_write(proc.core)
        op_idx = len(self._ops)
        pend = self._local_sets.get(atom)
        if pend is None:
            self._local_sets[atom] = [(op_idx, atom.value)]
        else:
            pend.append((op_idx, atom.value))
        wakes = None
        if atom.waiters:
            wakes = self._collect_wakes(atom, wakes)
        self._ops.append((_ATOMIC, atom, atom.value, prev_owner, wakes))
        return old

    def _acc_wait(self, proc: SimProcess, obj, value: int,
                  cmp: str) -> bool:
        """WaitFlag/WaitAtomic. Satisfied → a row carrying *when* the
        threshold became true (history or run-local set reference);
        returns True to keep accumulating. Unsatisfied → flush, park,
        return False (ends the dispatch)."""
        if (obj.value >= value) if cmp == ">=" else obj.satisfied(value, cmp):
            t_sat = 0.0
            t_ref = -1
            hist = self._pruned_hist(obj)
            found = False
            if hist is not None:
                if cmp == ">=":
                    for t, v in hist:
                        if v >= value:
                            t_sat = t
                            found = True
                            break
                else:
                    for t, v in hist:
                        if v == value:
                            t_sat = t
                            found = True
                            break
            if not found:
                pend = self._local_sets.get(obj)
                if pend is not None:
                    for op_idx, v in pend:
                        if (v >= value) if cmp == ">=" else v == value:
                            t_ref = op_idx
                            found = True
                            break
            # Not found anywhere → satisfied by the initial value: t=0.
            self._ops.append((_WAIT, obj, t_sat, t_ref))
            return True
        self._flush()
        proc.state = _BLOCKED
        proc.blocked_obj = obj
        proc.blocked_value = value
        proc.blocked_since = proc.vt
        obj.waiters.append((proc, value, cmp))
        return False

    def _pruned_hist(self, obj):
        """The object's set history with entries at or before the
        dispatch epoch collapsed into one ``(0.0, max_value)`` sentinel.

        No sample taken by this or any future dispatch can precede the
        epoch, so a threshold reached inside the collapsed prefix
        resolves to "already true when we looked" (t=0, clamped to the
        consumer's own virtual time downstream) — exactly what the full
        history would have yielded — while history scans stay
        O(in-flight sets) instead of O(all sets ever)."""
        hist = obj.hist
        if not hist:
            return hist
        epoch = self._epoch
        if hist[0][0] > epoch:
            return hist
        n = len(hist)
        k = 1
        while k < n and hist[k][0] <= epoch:
            k += 1
        if k > 1:
            vmax = hist[0][1]
            for i in range(1, k):
                v = hist[i][1]
                if v > vmax:
                    vmax = v
            hist[:k] = [(0.0, vmax)]
        return hist

    # -- lowered chunk pipelines (P.ChunkRun) ----------------------------

    def _run_chunkrun(self, proc: SimProcess, prim, done: int = 0) -> bool:
        """Execute a lowered zero-decision chunk pipeline.

        The run's timeline is the classic pipeline recurrence
        ``t_end[i] = max(t_avail[i], t_end[i-1]) + dur[i]`` over the
        producers' publication schedules, which is a prefix-max — so the
        whole admissible prefix prices as one numpy sweep: availability
        times come from ``searchsorted`` over the producers' set
        histories, durations from one chunk-shaped pricing call, and the
        per-chunk flag announcements are stamped back in bulk. When a
        producer has not yet published far enough, the satisfied prefix
        is processed and the process parks on the next threshold with
        its resume state in ``proc.seg``; returns False in that case,
        True when the run completed."""
        self._flush()
        start = prim.start
        stop = prim.stop
        chunk = prim.chunk
        if stop - start <= 0 or chunk <= 0:
            return True
        nchunks = -(-(stop - start) // chunk)
        waits = prim.waits
        park_target = 0
        while done < nchunks:
            # Admissible prefix, from current flag values alone: the
            # chunk ending at e is licensed by spec (flag, base, lo, hi)
            # when min(e, hi) - lo <= flag.value - base.
            n_ok = nchunks - done
            park_flag = None
            for flag, base, lo, hi in waits:
                if hi <= lo:
                    continue
                room = flag.value - base
                span_hi = hi if hi < stop else stop
                if room >= span_hi - lo:
                    continue
                limit = lo + room
                if limit < lo:
                    limit = lo
                cnt = (limit - start) // chunk - done
                if cnt < 0:
                    cnt = 0
                if cnt < n_ok:
                    n_ok = cnt
                    e_next = start + (done + cnt + 1) * chunk
                    if e_next > stop:
                        e_next = stop
                    eff = e_next if e_next < hi else hi
                    park_flag = flag
                    park_target = base + eff - lo
            if n_ok == 0:
                proc.state = _BLOCKED
                proc.blocked_obj = park_flag
                proc.blocked_value = park_target
                proc.blocked_since = proc.vt
                park_flag.waiters.append((proc, park_target, ">="))
                proc.seg = (prim, done)
                return False
            self._chunkrun_sweep(proc, prim, done, n_ok)
            done += n_ok
        return True

    def _chunkrun_sweep(self, proc: SimProcess, prim, done: int,
                        n_ok: int) -> None:
        """Price and commit ``n_ok`` licensed chunks of a ChunkRun."""
        pricer = self.pricer
        core = proc.core
        start = prim.start
        stop = prim.stop
        chunk = prim.chunk
        t_begin = proc.vt
        epoch = self._epoch
        o0 = start + done * chunk
        e_last = start + (done + n_ok) * chunk
        if e_last > stop:
            e_last = stop
        n0 = chunk if o0 + chunk <= stop else stop - o0
        o_last = start + (done + n_ok - 1) * chunk
        n_last = e_last - o_last
        span = e_last - o0
        # Chunk body, priced at the pre-run cache state: one chunk-shaped
        # pricing call covers every full chunk (pipelined streaming
        # through one path is homogeneous — the SIM_VERSION 3 model),
        # plus the odd-sized tail; the cache-ledger effect of the whole
        # span is recorded once in bulk.
        shares: dict = {}
        d_body = 0.0
        d_body_last = None
        resources = ()
        if prim.copy is not None:
            src, dst = prim.copy
            entry = pricer.copy_terms_span(
                core, src.buf, src.offset + o0, n0,
                dst.buf, dst.offset + o0, n0, 1.0)
            if entry is not None:
                terms, resources, _c = entry
                self._fill_shares(terms, shares, t_begin, epoch)
                d_body = self._eval_term_scalar(terms, shares)
            if n_last != n0:
                entry2 = pricer.copy_terms_span(
                    core, src.buf, src.offset + o_last, n_last,
                    dst.buf, dst.offset + o_last, n_last, 1.0)
                if entry2 is not None:
                    terms2, _r2, _c2 = entry2
                    self._fill_shares(terms2, shares, t_begin, epoch)
                    d_body_last = self._eval_term_scalar(terms2, shares)
            pricer.commit_copy_span(core, src, dst, o0, span)
        elif prim.reduce is not None:
            srcs, dstv, rop, rdtype = prim.reduce
            entry = pricer.reduce_terms(core, P.Reduce(
                srcs=tuple(s.sub(o0, n0) for s in srcs),
                dst=dstv.sub(o0, n0), op=rop, dtype=rdtype))
            if entry is not None:
                term_list, reduce_term, resources, _c = entry
                for terms in term_list:
                    self._fill_shares(terms, shares, t_begin, epoch)
                    d_body += self._eval_term_scalar(terms, shares)
                d_body += reduce_term
            if n_last != n0:
                entry2 = pricer.reduce_terms(core, P.Reduce(
                    srcs=tuple(s.sub(o_last, n_last) for s in srcs),
                    dst=dstv.sub(o_last, n_last), op=rop, dtype=rdtype))
                if entry2 is not None:
                    tl2, rt2, _r2, _c2 = entry2
                    d_body_last = 0.0
                    for terms in tl2:
                        self._fill_shares(terms, shares, t_begin, epoch)
                        d_body_last += self._eval_term_scalar(terms,
                                                              shares)
                    d_body_last += rt2
            pricer.commit_reduce_span(core, srcs, dstv, o0, span,
                                      rop, rdtype)
        # Per-chunk fixed costs: producer-flag fetches (one cold fetch up
        # front, then a full-distance re-read every chunk — the
        # producer's set invalidates the line each time; the home-port
        # queueing term is a one-off, charged only in the chunk-0
        # fetch), registration-cache lookups, and announcement stores.
        sync0 = 0.0
        syncw = 0.0
        line_read = pricer.arr_line_read
        model = pricer.model
        epoch0 = self._epoch
        for flag, _b, _lo, _hi in prim.waits:
            line = flag.line
            a1 = line_read(core, line, t_begin, epoch0)
            sync0 += a1 - t_begin
            syncw += model.lat[pricer.distance(core, line.owner_core)]
        set_cost = 0.0
        store = pricer.store_cost
        for flags_t, _b in prim.sets:
            set_cost += store * len(flags_t)
        d_one = d_body + prim.const_cost + set_cost + syncw
        d_last = d_one if d_body_last is None \
            else d_body_last + prim.const_cost + set_cost + syncw
        d0_extra = sync0 - syncw
        has_body = resources != () or prim.copy is not None \
            or prim.reduce is not None
        busy = self._core_busy
        base_floor = t_begin
        if has_body:
            b = busy.get(core, 0.0)
            if b > base_floor:
                base_floor = b
        # Wait specs that can still stall this sweep; per spec the
        # availability time of the chunk ending at ``e`` is the earliest
        # entry of the (pruned, running-max) history reaching
        # ``base + min(e, hi) - lo``.
        last_e = e_last
        specs = []
        for flag, base, lo, hi in prim.waits:
            if hi <= lo:
                continue
            hist = self._pruned_hist(flag)
            if not hist:
                continue
            last_eff = last_e if last_e < hi else hi
            if last_eff <= lo:
                continue
            if hist[0][1] >= base + last_eff - lo \
                    and hist[0][0] <= t_begin:
                # The final threshold was already reached in this
                # process's past: no stalls possible. (The time check
                # matters — producers dispatched earlier may stamp
                # *future* publication times.)
                continue
            specs.append((hist, base, lo, hi, flag.wait_key))
        if n_ok < self.ARRAY_VEC_MIN:
            tl, ends_l, busy_spans = self._sweep_scalar(
                proc, prim, done, n_ok, specs, base_floor,
                d_one, d_last, d0_extra)
        else:
            tl, ends_l, busy_spans = self._sweep_vector(
                proc, prim, done, n_ok, specs, base_floor,
                d_one, d_last, d0_extra)
        vt_new = tl[-1]
        if resources:
            for r in resources:
                for b0, b1 in busy_spans:
                    r.arr_book(b0, b1)
                r.bytes_served += span
        if has_body and vt_new > busy.get(core, 0.0):
            busy[core] = vt_new
        # Publish the per-chunk announcements in bulk and wake whoever
        # they satisfy.
        if prim.sets:
            for flags_t, base in prim.sets:
                vals = [base + (e - start) for e in ends_l]
                final_v = vals[-1]
                for flag in flags_t:
                    if core != flag.owner_core:
                        raise SimulationError(
                            f"single-writer violation: core {core} wrote "
                            f"flag {flag.name!r} owned by core "
                            f"{flag.owner_core}")
                    flag.value = final_v
                    h = flag.hist
                    if h is None:
                        flag.hist = list(zip(tl, vals))
                    else:
                        h.extend(zip(tl, vals))
                    flag.line.on_write(core)
                    if flag.waiters:
                        self._wake_from_schedule(flag, tl, vals)
        proc.vt = vt_new
        if vt_new > self._now:
            self._now = vt_new

    def _sweep_vector(self, proc: SimProcess, prim, done: int, n_ok: int,
                      specs: list, base_floor: float, d_one: float,
                      d_last: float, d0_extra: float):
        """Numpy evaluation of the sweep timeline; returns
        ``(t_end list, chunk-end list, coalesced busy spans)``."""
        np = self._np
        start = prim.start
        stop = prim.stop
        chunk = prim.chunk
        d = np.full(n_ok, d_one)
        d[-1] = d_last
        d[0] += d0_extra
        ends = np.arange(done + 1, done + n_ok + 1,
                         dtype=np.int64) * chunk + start
        if int(ends[-1]) > stop:
            ends[-1] = stop
        ta_list = []
        for hist, base, lo, hi, key in specs:
            eff = np.minimum(ends, hi)
            targets = eff + (base - lo)
            nh = len(hist)
            ht = np.fromiter((p[0] for p in hist), np.float64, nh)
            hv = np.fromiter((p[1] for p in hist), np.int64, nh)
            if nh > 1:
                if (np.diff(ht) < 0.0).any():
                    # Histories are time-ordered per writing process; a
                    # core hosting several writers of one flag could
                    # interleave — sort before the monotone scan.
                    order = np.argsort(ht, kind="stable")
                    ht = ht[order]
                    hv = hv[order]
                np.maximum.accumulate(hv, out=hv)
            pos = np.searchsorted(hv, targets)
            ta = ht[np.minimum(pos, nh - 1)]
            mask = (eff <= lo) | (pos >= nh)
            if mask.any():
                ta = np.where(mask, 0.0, ta)
            ta_list.append((ta, key))
        stackv = None
        if not ta_list:
            a = None
        elif len(ta_list) == 1:
            a = np.maximum(ta_list[0][0], base_floor)
        else:
            stackv = np.stack([t[0] for t in ta_list])
            a = np.maximum(stackv.max(axis=0), base_floor)
        # The pipeline recurrence as a prefix-max:
        #   t_end[i] = c[i] + max_{j<=i}(a[j] - c[j-1]),  c = cumsum(d).
        c = np.add.accumulate(d)
        if a is None:
            t_end = c + base_floor
        else:
            cprev = np.empty_like(c)
            cprev[0] = 0.0
            cprev[1:] = c[:-1]
            t_end = np.maximum.accumulate(a - cprev) + c
            tprev = np.empty_like(t_end)
            tprev[0] = base_floor
            tprev[1:] = t_end[:-1]
            stall = a - tprev
            np.maximum(stall, 0.0, out=stall)
            stall_total = float(stall.sum())
            if stall_total > 0.0:
                proc.wait_time += stall_total
                breakdown = proc.wait_breakdown
                if stackv is None:
                    key = ta_list[0][1]
                    breakdown[key] = breakdown.get(key, 0.0) + stall_total
                else:
                    arg = stackv.argmax(axis=0)
                    for j, (_ta, key) in enumerate(ta_list):
                        s = float(stall[arg == j].sum())
                        if s > 0.0:
                            breakdown[key] = breakdown.get(key, 0.0) + s
        if a is None:
            spans = [(base_floor, float(t_end[-1]))]
        else:
            # Coalesced busy windows: a stall splits the run into groups
            # of back-to-back chunks, and resources are occupied only
            # inside the groups (the event engine holds a transfer's
            # resources only while it runs, not across stalls).
            gap = stall > 0.0
            gap[0] = True
            gs = np.nonzero(gap)[0]
            heads = (t_end - d)[gs]
            tails = t_end[np.append(gs[1:] - 1, n_ok - 1)]
            spans = list(zip(heads.tolist(), tails.tolist()))
        return t_end.tolist(), ends.tolist(), spans

    def _sweep_scalar(self, proc: SimProcess, prim, done: int, n_ok: int,
                      specs: list, base_floor: float, d_one: float,
                      d_last: float, d0_extra: float):
        """Short-sweep replay of :meth:`_sweep_vector` in plain Python.

        Evaluates the identical floating-point operations in the same
        left-to-right order (cumsum, prefix-max, first-max attribution),
        so the two paths are bit-identical and the crossover threshold
        (``ARRAY_VEC_MIN``) never changes simulated times."""
        start = prim.start
        stop = prim.stop
        chunk = prim.chunk
        nspec = len(specs)
        # Per-spec running-max envelope + a forward cursor (thresholds
        # are non-decreasing in the chunk index, so each history is
        # walked at most once across the sweep).
        env = []
        for hist, base, lo, hi, key in specs:
            nh = len(hist)
            if nh > 1:
                mono = True
                prev_t = hist[0][0]
                for p in hist:
                    if p[0] < prev_t:
                        mono = False
                        break
                    prev_t = p[0]
                if not mono:
                    hist = sorted(hist, key=lambda p: p[0])
                ht = [0.0] * nh
                hv = [0] * nh
                vmax = hist[0][1]
                for i, p in enumerate(hist):
                    if p[1] > vmax:
                        vmax = p[1]
                    ht[i] = p[0]
                    hv[i] = vmax
            else:
                ht = [hist[0][0]]
                hv = [hist[0][1]]
            env.append([ht, hv, nh, 0])
        tl = [0.0] * n_ok
        ends_l = [0] * n_ok
        c = 0.0
        m = None  # running max of (a_i - c_{i-1})
        t_prev = base_floor
        stall_total = 0.0
        stall_by = {} if nspec > 1 else None
        first_key = specs[0][4] if nspec == 1 else None
        spans: list[tuple[float, float]] = []
        span_start = base_floor
        for i in range(n_ok):
            e = start + (done + i + 1) * chunk
            if e > stop:
                e = stop
            ends_l[i] = e
            di = d_last if i == n_ok - 1 else d_one
            if i == 0:
                di = di + d0_extra
            if nspec:
                a_i = 0.0
                key_i = None
                for j in range(nspec):
                    _h, base, lo, hi, key = specs[j]
                    eff = e if e < hi else hi
                    if eff <= lo:
                        ta = 0.0
                    else:
                        target = base + eff - lo
                        ht, hv, nh, ptr = env[j]
                        while ptr < nh and hv[ptr] < target:
                            ptr += 1
                        env[j][3] = ptr
                        ta = 0.0 if ptr >= nh else ht[ptr]
                    if key_i is None or ta > a_i:
                        a_i = ta
                        key_i = key
                if a_i < base_floor:
                    a_i = base_floor
                cand = a_i - c
                if m is None or cand > m:
                    m = cand
                c = c + di
                t_end = m + c
                s = a_i - t_prev
                if s > 0.0:
                    stall_total += s
                    if stall_by is not None:
                        stall_by[key_i] = stall_by.get(key_i, 0.0) + s
                    if i:
                        # Same group boundaries (and the same FP
                        # expressions for their endpoints) as the vector
                        # path's coalesced busy windows.
                        spans.append((span_start, t_prev))
                        span_start = t_end - di
                if i == 0:
                    span_start = t_end - di
                t_prev = t_end
            else:
                c = c + di
                t_end = c + base_floor
            tl[i] = t_end
        if stall_total > 0.0:
            proc.wait_time += stall_total
            breakdown = proc.wait_breakdown
            if stall_by is None:
                breakdown[first_key] = \
                    breakdown.get(first_key, 0.0) + stall_total
            else:
                for key, s in stall_by.items():
                    breakdown[key] = breakdown.get(key, 0.0) + s
        spans.append((span_start, tl[-1]))
        return tl, ends_l, spans

    def _wake_from_schedule(self, flag, times: list, values: list) -> None:
        """Wake parked waiters a just-published schedule satisfies; each
        wakes at its earliest satisfying publication time."""
        still = None
        for entry in flag.waiters:
            wproc, threshold, cmp = entry
            idx = -1
            if cmp == ">=":
                if values[-1] >= threshold:
                    idx = bisect_left(values, threshold)
            else:
                for j, v in enumerate(values):
                    if v == threshold:
                        idx = j
                        break
            if idx >= 0:
                self._wake(wproc, flag, times[idx])
            else:
                if still is None:
                    still = []
                still.append(entry)
        if still is None:
            flag.waiters.clear()
        else:
            flag.waiters[:] = still

    @staticmethod
    def _fill_shares(terms: tuple, shares: dict, t0: float,
                     epoch: float) -> None:
        """Sample bandwidth shares for one term row's routes into
        ``shares`` (same expression as the flush-time bulk sample)."""
        for r in terms[3]:
            if r not in shares:
                shares[r] = r.bw / (r.arr_sample(t0, epoch) + 1)
        route2 = terms[7]
        if route2 is not None:
            for r in route2:
                if r not in shares:
                    shares[r] = r.bw / (r.arr_sample(t0, epoch) + 1)

    # -- flush: price everything pending --------------------------------

    def _flush(self) -> None:
        """Evaluate the accumulated rows: a sequential walk advancing the
        process's virtual time — pricing each op's terms at that time
        (vectorized for wide ops), booking core/resource occupancy,
        stamping set histories and waking parked processes."""
        ops = self._ops
        if not ops:
            return
        proc = self._acc_proc
        pricer = self.pricer
        pool = pricer.resources
        terms_list = self._terms
        vt = proc.vt
        core = proc.core
        busy = self._core_busy
        eps = self.CPU_EPSILON
        op_times: list[float] = [0.0] * len(ops)
        for i, op in enumerate(ops):
            code = op[0]
            if code == _XFER:
                _, lo, hi, const_add, resources, nbytes, in_kernel = op
                d = 0.0
                if hi > lo:
                    # Shares sampled at this op's virtual time — the
                    # event engine plans primitive k at now == end of
                    # primitive k-1, which is exactly the walking vt.
                    for x in self._eval_rows(terms_list, lo, hi, vt):
                        d += x
                d += const_add
                if d < eps:
                    start = vt
                else:
                    start = busy.get(core, 0.0)
                    if start < vt:
                        start = vt
                    busy[core] = start + d
                end = start + d
                for r in resources:
                    r.arr_book(start, end)
                    r.bytes_served += nbytes
                if in_kernel:
                    pool.arr_kernel_book(start, end)
                vt = end
            elif code == _COMPUTE:
                d = op[1]
                if d < eps:
                    start = vt
                else:
                    start = busy.get(core, 0.0)
                    if start < vt:
                        start = vt
                    busy[core] = start + d
                vt = start + d
            elif code == _CONST:
                vt = vt + op[1]
            elif code == _KSYSCALL:
                k = pool.arr_kernel_sample(vt, self._epoch)
                saved = pool.kernel_ops
                pool.kernel_ops = k
                cost = pricer.syscall_cost(op[1])
                pool.kernel_ops = saved
                vt = vt + cost
            elif code == _SET:
                _, flags, value, cost, wakes = op
                op_times[i] = vt
                for flag in flags:
                    hist = flag.hist
                    if hist is None:
                        flag.hist = [(vt, value)]
                    else:
                        hist.append((vt, value))
                if wakes is not None:
                    for wproc, wobj in wakes:
                        self._wake(wproc, wobj, vt)
                vt = vt + cost
            elif code == _WAIT:
                _, obj, t_sat, t_ref = op
                if t_ref >= 0:
                    t_sat = op_times[t_ref]
                if t_sat > vt:
                    new_vt = pricer.arr_line_read(core, obj.line, t_sat,
                                                  self._epoch)
                    waited = new_vt - vt
                    proc.wait_time += waited
                    key = obj.wait_key
                    breakdown = proc.wait_breakdown
                    breakdown[key] = breakdown.get(key, 0.0) + waited
                else:
                    new_vt = pricer.arr_line_read(core, obj.line, vt,
                                                  self._epoch)
                vt = new_vt
            else:  # _ATOMIC
                _, atom, new_value, prev_owner, wakes = op
                line = atom.line
                t_issue = vt
                op_times[i] = t_issue
                hist = atom.hist
                if hist is None:
                    atom.hist = [(t_issue, new_value)]
                else:
                    hist.append((t_issue, new_value))
                ends = line.rmw_ends
                if ends is None:
                    ends = line.rmw_ends = []
                while ends and ends[0] <= t_issue:
                    heapq.heappop(ends)
                saved_owner = line.owner_core
                saved_pending = line.pending_rmw
                line.owner_core = prev_owner
                line.pending_rmw = len(ends) + 1
                start, duration = pricer.atomic_cost(core, line, t_issue)
                line.owner_core = saved_owner
                line.pending_rmw = saved_pending
                end = start + duration
                heapq.heappush(ends, end)
                if wakes is not None:
                    for wproc, wobj in wakes:
                        self._wake(wproc, wobj, t_issue)
                vt = end
        proc.vt = vt
        if vt > self._now:
            self._now = vt
        ops.clear()
        self._terms.clear()
        self._local_sets.clear()

    def _wake(self, proc: SimProcess, obj, t_set: float) -> None:
        """Release a parked process: it pays the line fetch from the set
        time and re-enters the dispatch heap at the arrival time."""
        # A set that happened before the waiter managed to block
        # (dispatch-order skew) cannot wake it into its own past: the
        # fetch starts no earlier than the block time.
        t_from = t_set if t_set > proc.blocked_since else proc.blocked_since
        wake_t = self.pricer.arr_line_read(proc.core, obj.line, t_from,
                                           self._epoch)
        waited = wake_t - proc.blocked_since
        proc.wait_time += waited
        key = obj.wait_key
        breakdown = proc.wait_breakdown
        breakdown[key] = breakdown.get(key, 0.0) + waited
        proc.state = _READY
        proc.blocked_obj = None
        proc.waking = False
        proc.vt = wake_t
        if wake_t > self._now:
            self._now = wake_t
        heapq.heappush(self._ready, (wake_t, next(self._seq), proc))

    # -- pricing sweep ---------------------------------------------------

    def _eval_rows(self, terms_list: list, lo: int, hi: int,
                   t0: float) -> list:
        """Durations for one op's term rows ``[lo, hi)``, with bandwidth
        shares sampled at ``t0`` — the op's virtual time, which is the
        event engine's plan time for the same primitive. The numpy sweep
        and the scalar replay evaluate the identical floating-point
        expression (``Node._eval_read``'s grouping), so they are
        bit-identical and memo/batch warmth never changes simulated
        times."""
        epoch = self._epoch
        shares: dict = {}
        rows = terms_list[lo:hi]
        for terms in rows:
            self._fill_shares(terms, shares, t0, epoch)
        if hi - lo < self.ARRAY_VEC_MIN:
            return [self._eval_term_scalar(terms, shares)
                    for terms in rows]
        return self._eval_terms_vector(rows, shares)

    @staticmethod
    def _eval_term_scalar(terms: tuple, shares: dict) -> float:
        """``Node._eval_read`` with shares read from the bulk sample."""
        (lat_term, hit_bytes, bw_cap, route, miss_bytes,
         lat2_term, bw2_cap, route2, _) = terms
        eff_bw = bw_cap
        for r in route:
            share = shares[r]
            if share < eff_bw:
                eff_bw = share
        duration = lat_term + hit_bytes / eff_bw
        if miss_bytes > 0:
            if route2 is not None:
                bw2 = bw2_cap
                for r in route2:
                    share = shares[r]
                    if share < bw2:
                        bw2 = share
                duration = duration + (lat2_term + miss_bytes / bw2)
            else:
                duration = duration + miss_bytes / eff_bw
        return duration

    def _eval_terms_vector(self, terms_list: list, shares: dict) -> list:
        np = self._np
        n = len(terms_list)
        idx: dict = {}
        svals: list[float] = []
        for r in shares:
            idx[r] = len(svals)
            svals.append(shares[r])
        sentinel = len(svals)
        svals.append(float("inf"))
        lat = [0.0] * n
        hit = [0.0] * n
        bwc = [0.0] * n
        miss = [0.0] * n
        lat2 = [0.0] * n
        bw2c = [0.0] * n
        has2 = [False] * n
        flat: list[int] = []
        ptr = [0] * (n + 1)
        flat2: list[int] = []
        ptr2 = [0] * (n + 1)
        for i, terms in enumerate(terms_list):
            (lat[i], hit[i], bwc[i], route, miss[i],
             lat2[i], bw2c[i], route2, _) = terms
            if route:
                for r in route:
                    flat.append(idx[r])
            else:
                flat.append(sentinel)
            ptr[i + 1] = len(flat)
            if route2 is not None:
                has2[i] = True
                for r in route2:
                    flat2.append(idx[r])
            else:
                flat2.append(sentinel)
            ptr2[i + 1] = len(flat2)
        shr = np.array(svals)
        eff = np.minimum(
            np.asarray(bwc),
            np.minimum.reduceat(shr[np.asarray(flat)],
                                np.asarray(ptr[:-1])))
        hit_a = np.asarray(hit)
        dur = np.asarray(lat) + hit_a / eff
        miss_a = np.asarray(miss)
        m = miss_a > 0
        if m.any():
            has2_a = np.asarray(has2)
            extra = np.zeros(n)
            sel = m & has2_a
            if sel.any():
                bw2eff = np.minimum(
                    np.asarray(bw2c),
                    np.minimum.reduceat(shr[np.asarray(flat2)],
                                        np.asarray(ptr2[:-1])))
                extra[sel] = (np.asarray(lat2)[sel]
                              + miss_a[sel] / bw2eff[sel])
            sel2 = m & ~has2_a
            if sel2.any():
                extra[sel2] = miss_a[sel2] / eff[sel2]
            dur = dur + extra
        return dur.tolist()
