"""Yieldable simulation primitives.

A simulated process is a generator; each ``yield`` hands one of these
objects to the engine, which charges the corresponding simulated time and
resumes the generator (``AtomicRMW`` sends the pre-increment value back).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover
    from ..memory.address_space import BufView
    from .syncobj import Atomic, Flag


@dataclass(frozen=True, slots=True)
class Compute:
    """Occupy the CPU for a fixed simulated duration."""

    seconds: float


@dataclass(frozen=True, slots=True)
class Copy:
    """Copy ``nbytes`` from ``src`` to ``dst``, executed by this process's core.

    Priced by where the source bytes currently are (cache model) and the
    contention on the path. ``bw_factor`` scales the achievable bandwidth
    (kernel-assisted copy engines run below user-space memcpy speed).
    ``in_kernel`` marks CMA/KNEM copies that hold kernel locks and thereby
    contribute to (and suffer from) kernel-lock contention.
    """

    src: "BufView"
    dst: "BufView"
    bw_factor: float = 1.0
    in_kernel: bool = False

    @property
    def nbytes(self) -> int:
        return min(self.src.length, self.dst.length)


@dataclass(frozen=True, slots=True)
class CopyBatch:
    """A pipeline segment executed back-to-back inside the engine.

    ``steps`` is a tuple of :class:`Copy` / :class:`Compute` /
    :class:`Reduce` / :class:`SetFlag` / :class:`SetFlagGroup`
    primitives; the engine runs
    each step exactly as if the process had yielded it and started the
    next the instant the previous one completed. A generator yielding the
    same steps one at a time produces the identical event sequence — the
    only thing a batch removes is the zero-simulated-cost generator
    round-trip between steps, so batching can never change simulated
    time. Waits may NOT appear in a batch: a satisfied wait still costs a
    line fetch, so eliding one would change the timeline; primitives that
    send a value back (:class:`AtomicRMW`) are excluded for the same
    reason batches exist — there is no generator frame to receive it.
    For whole pipelined loops (waits included) under the array engine,
    see :class:`ChunkRun`.
    """

    steps: tuple

    @property
    def nbytes(self) -> int:
        return sum(s.nbytes for s in self.steps if isinstance(s, Copy))


@dataclass(frozen=True, slots=True)
class Reduce:
    """Fetch every source view and reduce them into ``dst``.

    Models the single-copy reduction XPMEM permits: operands are read
    directly from peers' buffers (each priced like a :class:`Copy` read)
    and combined at ``reduce_bw``. ``accumulate=True`` reduces the sources
    *into* dst's current contents instead of overwriting.
    """

    srcs: tuple["BufView", ...]
    dst: "BufView"
    op: Callable[..., Any] | None = None  # numpy ufunc, e.g. np.add
    dtype: Any = None                      # element dtype, default float32
    accumulate: bool = False

    @property
    def nbytes(self) -> int:
        return self.dst.length


@dataclass(frozen=True, slots=True)
class SetFlag:
    """Single-writer flag update (store + peer-copy invalidation)."""

    flag: "Flag"
    value: int


@dataclass(frozen=True, slots=True)
class SetFlagGroup:
    """Back-to-back single-writer updates of several same-owner flags.

    Models a tight store loop: each store is charged, but a cache line
    carrying several of the flags is invalidated once (the stores complete
    long before any reader's fetch lands), so readers of a shared line
    keep their LLC-assist (Fig. 10's "shared" layout)."""

    flags: tuple["Flag", ...]
    value: int


@dataclass(frozen=True, slots=True)
class WaitFlag:
    """Block until ``flag`` satisfies ``value`` under ``cmp``.

    ``cmp`` is one of ``">="``, ``"=="``. The waiter pays the line-fetch
    cost on wake-up, serialized at the line's home point when the line is
    not already shared locally.
    """

    flag: "Flag"
    value: int
    cmp: str = ">="


@dataclass(frozen=True, slots=True)
class ChunkRun:
    """A zero-decision pipelined chunk loop, lowered to one primitive.

    This is :class:`CopyBatch` taken to its limit: where a batch removes
    the generator round-trips *within* one chunk, a ChunkRun removes the
    per-chunk resumes of an entire pipelined segment. The payload range
    ``[start, stop)`` is processed in ``chunk``-byte pieces; for the
    chunk ending at payload offset ``e``:

    * every ``(flag, base, lo, hi)`` entry of ``waits`` must first reach
      ``flag >= base + min(e, hi) - lo`` (entries with
      ``min(e, hi) <= lo`` do not gate the chunk) — the clamped form
      expresses a producer responsible for the sub-range ``[lo, hi)``;
    * the chunk body runs: ``copy = (src, dst)`` copies
      ``src.sub(o, n) -> dst.sub(o, n)``, or ``reduce = (srcs, dst, op,
      dtype)`` reduces the same slices, plus ``const_cost`` seconds of
      fixed CPU work (e.g. registration-cache lookups);
    * every ``(flags, base)`` entry of ``sets`` publishes
      ``base + (e - start)`` to each flag.

    Only ``>=`` waits are expressible — that is what makes the segment
    zero-decision: availability counters only grow, so the whole run's
    timeline is a prefix-max recurrence over the producers' publication
    schedules. Components emit a ChunkRun only when the engine
    advertises ``lower_chunk_runs`` (the array engine, which prices the
    run as one vectorized sweep); the event engine refuses it rather
    than approximate the per-chunk event sequence.
    """

    start: int
    stop: int
    chunk: int
    waits: tuple = ()
    sets: tuple = ()
    copy: "tuple | None" = None
    reduce: "tuple | None" = None
    const_cost: float = 0.0

    @property
    def nbytes(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True, slots=True)
class AtomicRMW:
    """Atomic fetch-and-add; the engine sends the *old* value back."""

    atom: "Atomic"
    delta: int = 1


@dataclass(frozen=True, slots=True)
class WaitAtomic:
    """Block until the atomic's value satisfies ``value`` under ``cmp``."""

    atom: "Atomic"
    value: int
    cmp: str = ">="


@dataclass(frozen=True, slots=True)
class Syscall:
    """Enter the kernel. ``kind`` selects the mechanism-specific cost and
    whether the call contends on kernel locks (CMA/KNEM, per [28])."""

    kind: str = "generic"  # generic | cma | knem | xpmem_attach | xpmem_detach


@dataclass(frozen=True, slots=True)
class PageFaults:
    """First-touch page faults of a fresh XPMEM mapping."""

    npages: int


@dataclass(frozen=True, slots=True)
class Trace:
    """Zero-cost annotation recorded in the engine trace (Table II counts)."""

    label: str
    meta: dict = field(default_factory=dict)
