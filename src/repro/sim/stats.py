"""Engine statistics: where did the simulated time go?

Collects per-core busy time, event counts by primitive kind, flag traffic
and XPMEM counters into one report — the first thing to look at when a
collective is slower than expected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..node import Node


@dataclass
class RunStats:
    sim_time: float
    events: int
    processes: int
    processes_done: int
    core_busy: dict[int, float] = field(default_factory=dict)
    xpmem_makes: int = 0
    xpmem_attaches: int = 0
    xpmem_detaches: int = 0
    messages: int = 0
    message_bytes: int = 0

    @property
    def mean_core_utilization(self) -> float:
        if not self.core_busy or self.sim_time <= 0:
            return 0.0
        return (sum(self.core_busy.values())
                / (len(self.core_busy) * self.sim_time))

    def render(self) -> str:
        lines = [
            f"simulated time     {self.sim_time * 1e6:12.2f} us",
            f"events processed   {self.events:12d}",
            f"processes          {self.processes:12d} "
            f"({self.processes_done} finished)",
            f"mean core busy     {100 * self.mean_core_utilization:11.1f} %",
            f"xpmem make/attach  {self.xpmem_makes:6d} /"
            f" {self.xpmem_attaches:6d}",
            f"logical messages   {self.messages:12d} "
            f"({self.message_bytes} bytes)",
        ]
        return "\n".join(lines)


def collect_stats(node: "Node") -> RunStats:
    """Snapshot the node's engine/transport counters."""
    engine = node.engine
    busy = dict(engine._core_busy)
    msgs = [m for _t, label, m in engine.trace if label == "message"]
    done = sum(1 for p in engine.processes
               if p.finish_time is not None)
    return RunStats(
        sim_time=engine.now,
        events=engine.events_processed,
        processes=len(engine.processes),
        processes_done=done,
        core_busy={c: min(t, engine.now) for c, t in busy.items()},
        xpmem_makes=node.xpmem.makes,
        xpmem_attaches=node.xpmem.attaches,
        xpmem_detaches=node.xpmem.detaches,
        messages=len(msgs),
        message_bytes=sum(m.get("nbytes", 0) for m in msgs),
    )
