"""Engine statistics: where did the simulated time go?

Collects per-core busy time, event counts by primitive kind, flag traffic
and XPMEM counters into one report — the first thing to look at when a
collective is slower than expected. On an observed run (``Node(...,
observe=True)``) the report also carries the full metrics-registry
snapshot, so every counter any subsystem registered rides along without
this module having to know about it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..node import Node


@dataclass
class RunStats:
    sim_time: float
    events: int
    processes: int
    processes_done: int
    core_busy: dict[int, float] = field(default_factory=dict)
    xpmem_makes: int = 0
    xpmem_attaches: int = 0
    xpmem_detaches: int = 0
    messages: int = 0
    message_bytes: int = 0
    # Blocked time per wait family, merged across all processes by the
    # interned ``wait_key`` (``flag xhc.avail``, ``atomic sm.ctr`` — rank
    # suffixes already stripped), so one family is one row.
    wait_breakdown: dict[str, float] = field(default_factory=dict)
    # Metrics-registry snapshot (empty unless the run was observed).
    metrics: dict[str, object] = field(default_factory=dict)

    @property
    def mean_core_utilization(self) -> float:
        if not self.core_busy or self.sim_time <= 0:
            return 0.0
        return (sum(self.core_busy.values())
                / (len(self.core_busy) * self.sim_time))

    def render(self) -> str:
        lines = [
            f"simulated time     {self.sim_time * 1e6:12.2f} us",
            f"events processed   {self.events:12d}",
            f"processes          {self.processes:12d} "
            f"({self.processes_done} finished)",
            f"mean core busy     {100 * self.mean_core_utilization:11.1f} %",
            f"xpmem make/attach  {self.xpmem_makes:6d} /"
            f" {self.xpmem_attaches:6d}",
            f"xpmem detaches     {self.xpmem_detaches:12d}",
            f"logical messages   {self.messages:12d} "
            f"({self.message_bytes} bytes)",
        ]
        if self.wait_breakdown:
            lines.append("")
            lines.append("blocked time by wait family")
            rows = sorted(self.wait_breakdown.items(),
                          key=lambda kv: -kv[1])
            for key, t in rows[:8]:
                lines.append(f"  {key:<34}{t * 1e6:14.2f} us")
        if self.metrics:
            lines.append("")
            lines.append(f"metrics ({len(self.metrics)} registered)")
            for name in sorted(self.metrics):
                lines.append(f"  {name:<34}"
                             f"{_metric_cell(self.metrics[name]):>18}")
        return "\n".join(lines)


def _metric_cell(value) -> str:
    """Compact one snapshot entry for the text report."""
    if isinstance(value, dict):
        if value.get("type") == "histogram":
            mean = value.get("mean")
            mean_s = f"{mean:.3g}" if isinstance(mean, float) else "-"
            return f"n={value.get('count', 0)} mean={mean_s}"
        return str(value.get("value", value))
    return str(value)


def collect_stats(node: "Node") -> RunStats:
    """Snapshot the node's engine/transport counters."""
    engine = node.engine
    busy = dict(engine._core_busy)
    msgs = [m for _t, label, m in engine.trace if label == "message"]
    done = sum(1 for p in engine.processes
               if p.finish_time is not None)
    waits: dict[str, float] = {}
    for proc in engine.processes:
        for key, t in proc.wait_breakdown.items():
            waits[key] = waits.get(key, 0.0) + t
    obs = engine.obs
    return RunStats(
        sim_time=engine.now,
        events=engine.events_processed,
        processes=len(engine.processes),
        processes_done=done,
        core_busy={c: min(t, engine.now) for c, t in busy.items()},
        xpmem_makes=node.xpmem.makes,
        xpmem_attaches=node.xpmem.attaches,
        xpmem_detaches=node.xpmem.detaches,
        messages=len(msgs),
        message_bytes=sum(m.get("nbytes", 0) for m in msgs),
        wait_breakdown=waits,
        metrics=obs.metrics.snapshot() if obs.enabled else {},
    )
