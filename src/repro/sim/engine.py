"""The discrete-event engine.

The engine owns the event queue and the simulated processes; pricing of
memory traffic is delegated to a *pricer* (the :class:`repro.node.Node`),
which implements:

``plan_copy(core, prim, now)``
    -> ``(duration, [resources], complete_cb)``
``plan_reduce(core, prim, now)``
    -> same shape
``line_read(core, line, t)``
    -> absolute completion time of a line fetch started at ``t``
``syscall_cost(kind)``, ``page_fault_cost(npages)``, ``store_cost``,
``atomic_cost(core, line, now)`` -> ``(start, duration)``
"""

from __future__ import annotations

import enum
import heapq
import itertools
from typing import Any, Callable, Generator

from ..errors import DeadlockError, SimulationError
from ..obs.spans import NULL_OBSERVER, NullObserver, Observer
from . import primitives as P
from .syncobj import Atomic, Flag


class ProcState(enum.Enum):
    READY = "ready"
    BLOCKED = "blocked"
    DONE = "done"


class SimProcess:
    """One simulated flow of control, pinned to a core."""

    _ids = itertools.count()

    __slots__ = ("pid", "name", "core", "gen", "state", "result",
                 "finish_time", "blocked_on", "blocked_obj", "waking",
                 "blocked_since", "wait_time", "wait_breakdown")

    def __init__(self, name: str, core: int,
                 gen: Generator[Any, Any, Any]) -> None:
        self.pid = next(SimProcess._ids)
        self.name = name
        self.core = core
        self.gen = gen
        self.state = ProcState.READY
        self.result: Any = None
        self.finish_time: float | None = None
        self.blocked_on: str | None = None
        # The Flag/Atomic this process is blocked on (deadlock analysis
        # needs the object, not just the display string), and whether a
        # satisfying write already scheduled its resume — a proc with
        # ``waking`` set is still BLOCKED but no longer waiting on anyone.
        self.blocked_obj: Any = None
        self.waking: bool = False
        self.blocked_since: float = 0.0
        # Total time spent blocked on flags/atomics, and a breakdown by
        # the waited object's name prefix (e.g. "xhc.avail") — the first
        # place to look when asking *why* a rank was slow.
        self.wait_time: float = 0.0
        self.wait_breakdown: dict[str, float] = {}

    def __repr__(self) -> str:
        return f"<proc {self.name} core={self.core} {self.state.value}>"


class Engine:
    """Deterministic event loop.

    Observability is opt-in through the single ``observe`` knob:

    * ``None``/``False`` (default) — no recording beyond zero-cost
      ``Trace`` annotations; the hot paths pay one boolean check.
    * ``True`` / ``"full"`` — attach an :class:`~repro.obs.spans.Observer`
      recording spans, waits (with wakers), copy spans and metrics; also
      enables the legacy per-copy trace records.
    * ``"spans"`` — spans/waits/metrics without per-copy spans (lower
      volume for long runs).
    * an :class:`Observer` instance — bring your own (rebound to this
      engine).

    ``record_copies`` is the legacy subset (completion records in
    ``engine.trace`` for :class:`repro.sim.trace.Timeline`); it grows the
    trace list by one tuple per transfer, so leave it (and ``observe``)
    off for large sweeps — overhead numbers are in docs/observability.md.

    Correctness checking is opt-in through the ``check`` knob, mirroring
    ``observe``:

    * ``None``/``False`` (default) — no happens-before tracking; the hot
      paths pay one boolean check. The drain-time deadlock report and the
      run-loop watchdog stay on — a hung simulation is a bug regardless.
    * ``'race'`` — vector-clock race detection plus the XPMEM attachment
      protocol (:mod:`repro.check.race`); findings in ``checker.report()``.
    * ``'deadlock'`` — proactive wait-for-graph analysis at every block,
      raising :class:`~repro.errors.DeadlockError` the moment a cycle
      closes instead of at queue drain.
    * ``'full'``/``True`` — both.
    """

    def __init__(self, pricer, record_copies: bool = False,
                 observe: "bool | str | Observer | None" = None,
                 check: "bool | str | None" = None) -> None:
        self.pricer = pricer
        self.now = 0.0
        self._seq = itertools.count()
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self.processes: list[SimProcess] = []
        self.trace: list[tuple[float, str, dict]] = []
        self.record_copies = record_copies
        self.events_processed = 0
        self._running = False
        self._current_proc: SimProcess | None = None
        if observe is None or observe is False:
            self.obs: "Observer | NullObserver" = NULL_OBSERVER
        elif observe is True or observe == "full":
            self.obs = Observer(self, record_copies=True)
        elif observe == "spans":
            self.obs = Observer(self, record_copies=False)
        elif isinstance(observe, Observer):
            self.obs = observe
            self.obs.engine = self
        else:
            raise SimulationError(
                f"unknown observe mode {observe!r}; expected True, False, "
                f"'full', 'spans' or an Observer"
            )
        self._observe = self.obs.enabled
        if self._observe and self.obs.record_copies:
            self.record_copies = True
        if check is True:
            check = "full"
        if check is None or check is False:
            self.checker = None
            self._dl_proactive = False
        elif check in ("race", "deadlock", "full"):
            from ..check.race import RaceChecker
            self.checker = (RaceChecker(self) if check in ("race", "full")
                            else None)
            self._dl_proactive = check in ("deadlock", "full")
        else:
            raise SimulationError(
                f"unknown check mode {check!r}; expected None, 'race', "
                f"'deadlock' or 'full'"
            )
        self._race = self.checker is not None
        # Progress counter for the watchdog: bumped every time a process
        # generator actually advances. A window of watchdog_every events
        # with no progress means the run is spinning (livelock) or every
        # process is unwakeably blocked (deadlock) — raise instead of
        # hanging the caller.
        self._progress = 0
        self.watchdog_every = 1_000_000
        metrics = self.obs.metrics
        self._m_flag_sets = metrics.counter(
            "flags.sets", "single-writer flag stores")
        self._m_wakeups = metrics.counter(
            "flags.wakeups", "blocked waiters released by a write")
        self._m_atomics = metrics.counter(
            "atomics.rmw", "atomic read-modify-write operations")
        # CPU occupancy horizon per core: several logical tasks may be
        # pinned to one core (nonblocking sends, XHC's reducer/monitor
        # roles), but their compute/copy work serializes on the core just
        # as it does inside a real single-threaded progress loop.
        self._core_busy: dict[int, float] = {}

    # CPU work shorter than this slips between booked work for free: a
    # few hundred nanoseconds of cache lookup or flag handling interleaves
    # with a compute phase without waiting for a scheduling slot.
    CPU_EPSILON = 2e-6

    def _cpu_start(self, core: int, duration: float) -> float:
        if duration < self.CPU_EPSILON:
            return self.now
        start = max(self.now, self._core_busy.get(core, 0.0))
        self._core_busy[core] = start + duration
        return start

    # -- public API -----------------------------------------------------------

    def spawn(self, gen: Generator, core: int, name: str = "") -> SimProcess:
        proc = SimProcess(name or f"proc{len(self.processes)}", core, gen)
        self.processes.append(proc)
        if self._race:
            self.checker.on_spawn(
                self._current_proc if self._running else None, proc)
        self._schedule(self.now, lambda: self._resume(proc, None))
        return proc

    def run(self, until: float | None = None) -> float:
        """Run to quiescence (or ``until``); returns the final time."""
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        progress_mark = self._progress
        next_watch = self.events_processed + self.watchdog_every
        try:
            while self._heap:
                t, _, fn = heapq.heappop(self._heap)
                if until is not None and t > until:
                    heapq.heappush(self._heap, (t, next(self._seq), fn))
                    self.now = until
                    return self.now
                if t < self.now - 1e-18:
                    raise SimulationError("time went backwards")  # pragma: no cover
                self.now = t
                self.events_processed += 1
                fn()
                if self.events_processed >= next_watch:
                    if self._progress == progress_mark:
                        self._watchdog_fire()
                    progress_mark = self._progress
                    next_watch = self.events_processed + self.watchdog_every
            self._check_deadlock()
            return self.now
        finally:
            self._running = False

    def alive(self) -> list[SimProcess]:
        return [p for p in self.processes if p.state is not ProcState.DONE]

    # -- internals -------------------------------------------------------------

    def _schedule(self, t: float, fn: Callable[[], None]) -> None:
        heapq.heappush(self._heap, (t, next(self._seq), fn))

    def _check_deadlock(self) -> None:
        stuck = self.alive()
        if stuck:
            from ..check.deadlock import find_deadlock
            info = find_deadlock(self)
            detail = ", ".join(
                f"{p.name}(on {p.blocked_on})" for p in stuck[:8]
            )
            msg = (
                f"{len(stuck)} process(es) still blocked at t={self.now:.3e}: "
                f"{detail}"
            )
            cycle: list[str] = []
            if info is not None:
                msg += f"; {info.describe()}"
                cycle = info.cycle_names
            raise DeadlockError(msg, cycle=cycle)

    def _watchdog_fire(self) -> None:
        """No generator progressed for a whole watchdog window: decide
        between an unwakeable-blocked deadlock and a pure event spin."""
        from ..check.deadlock import find_deadlock
        info = find_deadlock(self)
        if info is not None:
            raise DeadlockError(
                f"watchdog: no process progressed in {self.watchdog_every} "
                f"events at t={self.now:.3e}; {info.describe()}",
                cycle=info.cycle_names,
            )
        raise SimulationError(
            f"watchdog: livelock — {self.watchdog_every} events at "
            f"t={self.now:.3e} without any process advancing (an unbounded "
            f"compute or a self-rescheduling event chain)"
        )

    def _deadlock_probe(self) -> None:
        """Proactive analysis at a block (check='deadlock'/'full'): raise
        the moment a wait-for cycle closes, while the rest still runs."""
        from ..check.deadlock import find_deadlock
        info = find_deadlock(self)
        if info is not None:
            raise DeadlockError(
                f"deadlock at t={self.now:.3e}: {info.describe()}",
                cycle=info.cycle_names,
            )

    def _resume(self, proc: SimProcess, send_value: Any) -> None:
        if proc.state is ProcState.BLOCKED:
            waited = self.now - proc.blocked_since
            proc.wait_time += waited
            key = (proc.blocked_on or "?").split(">")[0].strip()
            key = key.rsplit(".", 1)[0] if "." in key else key
            proc.wait_breakdown[key] = \
                proc.wait_breakdown.get(key, 0.0) + waited
            if self._observe:
                self.obs.end_wait(proc)
        proc.state = ProcState.READY
        proc.blocked_on = None
        proc.blocked_obj = None
        proc.waking = False
        self._progress += 1
        self._current_proc = proc
        try:
            prim = proc.gen.send(send_value)
        except StopIteration as stop:
            proc.state = ProcState.DONE
            proc.result = stop.value
            proc.finish_time = self.now
            return
        self._dispatch(proc, prim)

    # -- primitive dispatch ------------------------------------------------

    def _dispatch(self, proc: SimProcess, prim: Any) -> None:
        handler = self._HANDLERS.get(type(prim))
        if handler is None:
            raise SimulationError(
                f"process {proc.name} yielded non-primitive {prim!r}"
            )
        handler(self, proc, prim)

    # Long compute phases are booked in slices so that concurrent tasks on
    # the same core (nonblocking-collective progress, XHC's helper roles)
    # interleave with them — the effect of an application driving MPI
    # progress periodically, or of OS timeslicing a progress thread.
    COMPUTE_QUANTUM = 50e-6

    def _h_compute(self, proc: SimProcess, prim: P.Compute) -> None:
        if prim.seconds < 0:
            raise SimulationError("negative compute time")
        if prim.seconds <= self.COMPUTE_QUANTUM:
            start = self._cpu_start(proc.core, prim.seconds)
            self._schedule(start + prim.seconds,
                           lambda: self._resume(proc, None))
            return
        self._compute_slice(proc, prim.seconds)

    def _compute_slice(self, proc: SimProcess, remaining: float) -> None:
        slice_ = min(self.COMPUTE_QUANTUM, remaining)
        start = self._cpu_start(proc.core, slice_)

        def finish() -> None:
            left = remaining - slice_
            if left > 1e-15:
                self._compute_slice(proc, left)
            else:
                self._resume(proc, None)

        self._schedule(start + slice_, finish)

    # Long copies are re-priced in quanta so bandwidth shares track the
    # changing set of concurrent users (approximate fluid fair sharing).
    COPY_QUANTUM = 64 * 1024

    def _h_copy(self, proc: SimProcess, prim: P.Copy) -> None:
        if self._race:
            self.checker.on_copy(proc, prim)
        if prim.nbytes > self.COPY_QUANTUM:
            self._copy_quantum(proc, prim, 0)
            return
        duration, resources, complete = self.pricer.plan_copy(
            proc.core, prim, self.now
        )
        self._start_transfer(proc, prim, duration, resources, complete)

    def _copy_quantum(self, proc: SimProcess, prim: P.Copy, done: int) -> None:
        total = prim.nbytes
        n = min(self.COPY_QUANTUM, total - done)
        sub = P.Copy(src=prim.src.sub(done, n), dst=prim.dst.sub(done, n),
                     bw_factor=prim.bw_factor, in_kernel=prim.in_kernel)
        duration, resources, complete = self.pricer.plan_copy(
            proc.core, sub, self.now
        )
        pool = self.pricer.resources
        start = self._cpu_start(proc.core, duration)

        def begin() -> None:
            for res in resources:
                res.acquire()
            if prim.in_kernel:
                pool.kernel_ops += 1

        def finish() -> None:
            for res in resources:
                res.release()
                res.bytes_served += n
            if prim.in_kernel:
                pool.kernel_ops -= 1
            if complete is not None:
                complete()
            if done + n < total:
                self._copy_quantum(proc, prim, done + n)
            else:
                if self.record_copies:
                    self.trace.append(
                        (self.now, "copy",
                         {"core": proc.core, "nbytes": total})
                    )
                self._resume(proc, None)

        if self._observe and self.obs.record_copies:
            self.obs.record(proc, "copy", "copy", start, start + duration,
                            nbytes=n)
        if start > self.now:
            self._schedule(start, begin)
        else:
            begin()
        self._schedule(start + duration, finish)

    def _h_reduce(self, proc: SimProcess, prim: P.Reduce) -> None:
        if self._race:
            self.checker.on_reduce(proc, prim)
        duration, resources, complete = self.pricer.plan_reduce(
            proc.core, prim, self.now
        )
        self._start_transfer(proc, prim, duration, resources, complete)

    def _start_transfer(self, proc, prim, duration, resources, complete) -> None:
        """Book the core, then hold the path resources only while the
        transfer actually runs — a transfer queued behind other work on
        its core must not inflate everyone else's contention meanwhile."""
        in_kernel = getattr(prim, "in_kernel", False)
        pool = self.pricer.resources
        start = self._cpu_start(proc.core, duration)

        def begin() -> None:
            for res in resources:
                res.acquire()
            if in_kernel:
                pool.kernel_ops += 1

        def finish() -> None:
            for res in resources:
                res.release()
                res.bytes_served += prim.nbytes
            if in_kernel:
                pool.kernel_ops -= 1
            if complete is not None:
                complete()
            if self.record_copies:
                self.trace.append(
                    (self.now, "copy",
                     {"core": proc.core, "nbytes": prim.nbytes})
                )
            self._resume(proc, None)

        if self._observe and self.obs.record_copies:
            self.obs.record(
                proc, "reduce" if isinstance(prim, P.Reduce) else "copy",
                "copy", start, start + duration, nbytes=prim.nbytes)
        if start > self.now:
            self._schedule(start, begin)
        else:
            begin()
        self._schedule(start + duration, finish)

    def _h_set_flag(self, proc: SimProcess, prim: P.SetFlag) -> None:
        flag = prim.flag
        if proc.core != flag.owner_core:
            raise SimulationError(
                f"single-writer violation: core {proc.core} wrote flag "
                f"{flag.name!r} owned by core {flag.owner_core}"
            )
        flag.value = prim.value
        flag.line.on_write(proc.core)
        if self._observe:
            self._m_flag_sets.inc()
        if self._race:
            self.checker.on_release(proc, flag)
        self._wake_waiters(flag)
        self._schedule(
            self.now + self.pricer.store_cost, lambda: self._resume(proc, None)
        )

    def _h_set_flag_group(self, proc: SimProcess,
                          prim: P.SetFlagGroup) -> None:
        lines = []
        for flag in prim.flags:
            if proc.core != flag.owner_core:
                raise SimulationError(
                    f"single-writer violation: core {proc.core} wrote flag "
                    f"{flag.name!r} owned by core {flag.owner_core}"
                )
            flag.value = prim.value
            if flag.line not in lines:
                lines.append(flag.line)
        for line in lines:
            line.on_write(proc.core)
        if self._observe:
            self._m_flag_sets.inc(len(prim.flags))
        for flag in prim.flags:
            if self._race:
                self.checker.on_release(proc, flag)
            self._wake_waiters(flag)
        cost = self.pricer.store_cost * len(prim.flags)
        self._schedule(self.now + cost, lambda: self._resume(proc, None))

    def _h_wait_flag(self, proc: SimProcess, prim: P.WaitFlag) -> None:
        flag = prim.flag
        if flag.satisfied(prim.value, prim.cmp):
            if self._race:
                self.checker.on_acquire(proc, flag)
            t = self.pricer.line_read(proc.core, flag.line, self.now)
            self._schedule(t, lambda: self._resume(proc, None))
        else:
            proc.state = ProcState.BLOCKED
            proc.blocked_on = f"flag {flag.name}>={prim.value}"
            proc.blocked_obj = flag
            proc.blocked_since = self.now
            if self._observe:
                self.obs.begin_wait(proc, flag.name, "flag")
            flag.waiters.append((proc, prim.value, prim.cmp))
            if self._dl_proactive:
                self._deadlock_probe()

    def _h_atomic_rmw(self, proc: SimProcess, prim: P.AtomicRMW) -> None:
        atom = prim.atom
        line = atom.line
        line.pending_rmw += 1
        if self._observe:
            self._m_atomics.inc()
        if self._race:
            self.checker.on_rmw(proc, atom)
        start, duration = self.pricer.atomic_cost(proc.core, line, self.now)
        old = atom.value
        atom.value = old + prim.delta
        line.on_write(proc.core)
        self._wake_waiters(atom)

        def finish() -> None:
            line.pending_rmw -= 1
            self._resume(proc, old)

        self._schedule(start + duration, finish)

    def _h_wait_atomic(self, proc: SimProcess, prim: P.WaitAtomic) -> None:
        atom = prim.atom
        if atom.satisfied(prim.value, prim.cmp):
            if self._race:
                self.checker.on_acquire(proc, atom)
            t = self.pricer.line_read(proc.core, atom.line, self.now)
            self._schedule(t, lambda: self._resume(proc, None))
        else:
            proc.state = ProcState.BLOCKED
            proc.blocked_on = f"atomic {atom.name}>={prim.value}"
            proc.blocked_obj = atom
            proc.blocked_since = self.now
            if self._observe:
                self.obs.begin_wait(proc, atom.name, "atomic")
            atom.waiters.append((proc, prim.value, prim.cmp))
            if self._dl_proactive:
                self._deadlock_probe()

    def _wake_waiters(self, obj: Flag | Atomic) -> None:
        if not obj.waiters:
            return
        still_blocked = []
        for proc, threshold, cmp in obj.waiters:
            if obj.satisfied(threshold, cmp):
                if self._observe:
                    self.obs.note_waker(proc, self._current_proc)
                    self._m_wakeups.inc()
                if self._race:
                    self.checker.on_acquire(proc, obj)
                proc.waking = True
                t = self.pricer.line_read(proc.core, obj.line, self.now)
                self._schedule(t, lambda p=proc: self._resume(p, None))
            else:
                still_blocked.append((proc, threshold, cmp))
        obj.waiters[:] = still_blocked

    def _h_syscall(self, proc: SimProcess, prim: P.Syscall) -> None:
        cost = self.pricer.syscall_cost(prim.kind)
        self._schedule(self.now + cost, lambda: self._resume(proc, None))

    def _h_page_faults(self, proc: SimProcess, prim: P.PageFaults) -> None:
        cost = self.pricer.page_fault_cost(prim.npages)
        self._schedule(self.now + cost, lambda: self._resume(proc, None))

    def _h_trace(self, proc: SimProcess, prim: P.Trace) -> None:
        self.trace.append((self.now, prim.label, prim.meta))
        if self._observe:
            self.obs.instant(proc, prim.label, prim.meta)
        self._resume(proc, None)

    _HANDLERS: dict[type, Callable] = {}


Engine._HANDLERS = {
    P.Compute: Engine._h_compute,
    P.Copy: Engine._h_copy,
    P.Reduce: Engine._h_reduce,
    P.SetFlag: Engine._h_set_flag,
    P.SetFlagGroup: Engine._h_set_flag_group,
    P.WaitFlag: Engine._h_wait_flag,
    P.AtomicRMW: Engine._h_atomic_rmw,
    P.WaitAtomic: Engine._h_wait_atomic,
    P.Syscall: Engine._h_syscall,
    P.PageFaults: Engine._h_page_faults,
    P.Trace: Engine._h_trace,
}
