"""The discrete-event engine.

The engine owns the event queue and the simulated processes; pricing of
memory traffic is delegated to a *pricer* (the :class:`repro.node.Node`),
which implements:

``plan_copy(core, prim, now)``
    -> ``(duration, [resources], complete_cb)``
``plan_reduce(core, prim, now)``
    -> same shape
``line_read(core, line, t)``
    -> absolute completion time of a line fetch started at ``t``
``syscall_cost(kind)``, ``page_fault_cost(npages)``, ``store_cost``,
``atomic_cost(core, line, now)`` -> ``(start, duration)``

A pricer may additionally expose ``plan_copy_span(core, src_buf, src_off,
src_len, dst_buf, dst_off, nbytes, bw_factor)`` — the allocation-free copy
pricing entry the fast path uses to split oversized copies without
materializing per-quantum ``Copy``/``BufView`` objects. It must price
exactly like ``plan_copy`` over the equivalent sub-views (the golden
latency tests pin this); pricers without it fall back to ``plan_copy``.

Event-loop layout (see docs/performance.md): heap entries are
``(time, seq, payload)`` where the payload is either a callback or a
:class:`SimProcess` — a process payload means "resume with ``None``",
which covers the overwhelming majority of events without allocating a
closure per event. Handler dispatch goes through one of two tables:
``_HANDLERS`` carries the observe/race/record hooks, ``_HANDLERS_FAST``
is the branch-free variant selected when all of those are off.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from typing import Any, Callable, Generator, Optional

from ..errors import DeadlockError, SimulationError
from ..obs.spans import NULL_OBSERVER, NullObserver, Observer
from . import primitives as P
from .syncobj import Atomic, Flag


class ProcState(enum.Enum):
    READY = "ready"
    BLOCKED = "blocked"
    DONE = "done"


_READY = ProcState.READY
_BLOCKED = ProcState.BLOCKED
_DONE = ProcState.DONE


class SimProcess:
    """One simulated flow of control, pinned to a core."""

    _ids = itertools.count()

    __slots__ = ("pid", "name", "core", "gen", "state", "result",
                 "finish_time", "blocked_obj", "blocked_value", "waking",
                 "blocked_since", "wait_time", "wait_breakdown", "vt",
                 "seg")

    def __init__(self, name: str, core: int,
                 gen: Generator[Any, Any, Any]) -> None:
        self.pid = next(SimProcess._ids)
        self.name = name
        self.core = core
        self.gen = gen
        self.state = ProcState.READY
        # Local virtual time, used only by the array engine (the event
        # engine keeps one global clock; see repro.sim.array_engine).
        self.vt = 0.0
        # In-progress lowered chunk pipeline (array engine only): the
        # ``(ChunkRun, chunks_done)`` pair to resume after a mid-run park.
        self.seg: Any = None
        self.result: Any = None
        self.finish_time: float | None = None
        # The Flag/Atomic this process is blocked on (deadlock analysis
        # needs the object, not just a display string) plus the threshold
        # it waits for, and whether a satisfying write already scheduled
        # its resume — a proc with ``waking`` set is still BLOCKED but no
        # longer waiting on anyone.
        self.blocked_obj: Any = None
        self.blocked_value: int = 0
        self.waking: bool = False
        self.blocked_since: float = 0.0
        # Total time spent blocked on flags/atomics, and a breakdown by
        # the waited object's interned name family (``Flag.wait_key``,
        # e.g. "flag xhc.avail") — the first place to look when asking
        # *why* a rank was slow.
        self.wait_time: float = 0.0
        self.wait_breakdown: dict[str, float] = {}

    @property
    def blocked_on(self) -> str | None:
        """Display string of the blocked target (None when not blocked)."""
        obj = self.blocked_obj
        if obj is None:
            return None
        return f"{obj.kind} {obj.name}>={self.blocked_value}"

    def __repr__(self) -> str:
        return f"<proc {self.name} core={self.core} {self.state.value}>"


class Engine:
    """Deterministic event loop.

    Observability is opt-in through the single ``observe`` knob:

    * ``None``/``False`` (default) — no recording beyond zero-cost
      ``Trace`` annotations; the hot paths run the branch-free fast
      handler table.
    * ``True`` / ``"full"`` — attach an :class:`~repro.obs.spans.Observer`
      recording spans, waits (with wakers), copy spans and metrics; also
      enables the legacy per-copy trace records.
    * ``"spans"`` — spans/waits/metrics without per-copy spans (lower
      volume for long runs).
    * an :class:`Observer` instance — bring your own (rebound to this
      engine).

    ``record_copies`` is the legacy subset (completion records in
    ``engine.trace`` for :class:`repro.sim.trace.Timeline`); it grows the
    trace list by one tuple per transfer, so leave it (and ``observe``)
    off for large sweeps — overhead numbers are in docs/observability.md.

    Correctness checking is opt-in through the ``check`` knob, mirroring
    ``observe``:

    * ``None``/``False`` (default) — no happens-before tracking; the hot
      paths pay nothing. The drain-time deadlock report and the run-loop
      watchdog stay on — a hung simulation is a bug regardless.
    * ``'race'`` — vector-clock race detection plus the XPMEM attachment
      protocol (:mod:`repro.check.race`); findings in ``checker.report()``.
    * ``'deadlock'`` — proactive wait-for-graph analysis at every block,
      raising :class:`~repro.errors.DeadlockError` the moment a cycle
      closes instead of at queue drain.
    * ``'full'``/``True`` — both.
    """

    #: Which execution model this class implements; the array-mode
    #: subclass (:class:`repro.sim.array_engine.ArrayEngine`) overrides
    #: this to ``"array"``. Matches ``RunOptions.engine``.
    engine_kind = "event"

    #: Whether components may lower zero-decision pipelined loops to
    #: :class:`~repro.sim.primitives.ChunkRun`. The event engine prices
    #: per chunk by design, so it refuses the lowered form (an unknown
    #: primitive raises in the handler table) and components must keep
    #: yielding the per-chunk stream when this is False.
    lower_chunk_runs = False

    def __init__(self, pricer, record_copies: bool = False,
                 observe: "bool | str | Observer | None" = None,
                 check: "bool | str | None" = None) -> None:
        self.pricer = pricer
        self.now = 0.0
        self._seq = itertools.count()
        self._heap: list[tuple] = []
        self.processes: list[SimProcess] = []
        self.trace: list[tuple[float, str, dict]] = []
        self.record_copies = record_copies
        self.events_processed = 0
        self._running = False
        self._current_proc: SimProcess | None = None
        # Allocation-free copy pricing, when the pricer provides it.
        self._plan_span = getattr(pricer, "plan_copy_span", None)
        if observe is None or observe is False:
            self.obs: "Observer | NullObserver" = NULL_OBSERVER
        elif observe is True or observe == "full":
            self.obs = Observer(self, record_copies=True)
        elif observe == "spans":
            self.obs = Observer(self, record_copies=False)
        elif isinstance(observe, Observer):
            self.obs = observe
            self.obs.engine = self
        else:
            raise SimulationError(
                f"unknown observe mode {observe!r}; expected True, False, "
                f"'full', 'spans' or an Observer"
            )
        self._observe = self.obs.enabled
        if self._observe and self.obs.record_copies:
            self.record_copies = True
        if check is True:
            check = "full"
        if check is None or check is False:
            self.checker = None
            self._dl_proactive = False
        elif check in ("race", "deadlock", "full"):
            from ..check.race import RaceChecker
            self.checker = (RaceChecker(self) if check in ("race", "full")
                            else None)
            self._dl_proactive = check in ("deadlock", "full")
        else:
            raise SimulationError(
                f"unknown check mode {check!r}; expected None, 'race', "
                f"'deadlock' or 'full'"
            )
        self._race = self.checker is not None
        self._handlers = self._pick_handlers()
        # Progress counter for the watchdog: bumped every time a process
        # generator actually advances. A window of watchdog_every events
        # with no progress means the run is spinning (livelock) or every
        # process is unwakeably blocked (deadlock) — raise instead of
        # hanging the caller.
        self._progress = 0
        self.watchdog_every = 1_000_000
        metrics = self.obs.metrics
        self._m_flag_sets = metrics.counter(
            "flags.sets", "single-writer flag stores")
        self._m_wakeups = metrics.counter(
            "flags.wakeups", "blocked waiters released by a write")
        self._m_atomics = metrics.counter(
            "atomics.rmw", "atomic read-modify-write operations")
        # CPU occupancy horizon per core: several logical tasks may be
        # pinned to one core (nonblocking sends, XHC's reducer/monitor
        # roles), but their compute/copy work serializes on the core just
        # as it does inside a real single-threaded progress loop.
        self._core_busy: dict[int, float] = {}

    def _pick_handlers(self) -> dict:
        """The fast table only when every per-event hook is off."""
        if (self._observe or self._race or self._dl_proactive
                or self.record_copies):
            return self._HANDLERS
        return self._HANDLERS_FAST

    # CPU work shorter than this slips between booked work for free: a
    # few hundred nanoseconds of cache lookup or flag handling interleaves
    # with a compute phase without waiting for a scheduling slot.
    CPU_EPSILON = 2e-6

    def _cpu_start(self, core: int, duration: float) -> float:  # hot-path
        if duration < self.CPU_EPSILON:
            return self.now
        busy = self._core_busy
        start = busy.get(core, 0.0)
        if start < self.now:
            start = self.now
        busy[core] = start + duration
        return start

    # -- public API -----------------------------------------------------------

    def spawn(self, gen: Generator, core: int, name: str = "") -> SimProcess:
        proc = SimProcess(name or f"proc{len(self.processes)}", core, gen)
        self.processes.append(proc)
        if self._race:
            self.checker.on_spawn(
                self._current_proc if self._running else None, proc)
        heapq.heappush(self._heap, (self.now, next(self._seq), proc))
        return proc

    def run(self, until: float | None = None) -> float:
        """Run to quiescence (or ``until``); returns the final time."""
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        self._handlers = self._pick_handlers()
        progress_mark = self._progress
        next_watch = self.events_processed + self.watchdog_every
        heap = self._heap
        pop = heapq.heappop
        resume = self._resume
        try:
            if until is None:
                # The common drain-to-quiescence loop, with the bounded
                # variant's per-event `until` comparison compiled out.
                while heap:
                    t, _, fn = pop(heap)
                    if t < self.now - 1e-18:
                        raise SimulationError("time went backwards")  # pragma: no cover
                    self.now = t
                    self.events_processed += 1
                    if fn.__class__ is SimProcess:
                        resume(fn, None)
                    else:
                        fn()
                    if self.events_processed >= next_watch:
                        if self._progress == progress_mark:
                            self._watchdog_fire()
                        progress_mark = self._progress
                        next_watch = (self.events_processed
                                      + self.watchdog_every)
            else:
                while heap:
                    t, _, fn = pop(heap)
                    if t > until:
                        heapq.heappush(heap, (t, next(self._seq), fn))
                        self.now = until
                        return self.now
                    if t < self.now - 1e-18:
                        raise SimulationError("time went backwards")  # pragma: no cover
                    self.now = t
                    self.events_processed += 1
                    if fn.__class__ is SimProcess:
                        resume(fn, None)
                    else:
                        fn()
                    if self.events_processed >= next_watch:
                        if self._progress == progress_mark:
                            self._watchdog_fire()
                        progress_mark = self._progress
                        next_watch = (self.events_processed
                                      + self.watchdog_every)
            self._check_deadlock()
            return self.now
        finally:
            self._running = False

    def alive(self) -> list[SimProcess]:
        return [p for p in self.processes if p.state is not ProcState.DONE]

    # -- internals -------------------------------------------------------------

    def _schedule(self, t: float, fn) -> None:  # hot-path
        """Queue ``fn`` at ``t``: a callback, or a SimProcess to resume."""
        heapq.heappush(self._heap, (t, next(self._seq), fn))

    def _check_deadlock(self) -> None:
        stuck = self.alive()
        if stuck:
            from ..check.deadlock import find_deadlock
            info = find_deadlock(self)
            detail = ", ".join(
                f"{p.name}(on {p.blocked_on})" for p in stuck[:8]
            )
            msg = (
                f"{len(stuck)} process(es) still blocked at t={self.now:.3e}: "
                f"{detail}"
            )
            cycle: list[str] = []
            if info is not None:
                msg += f"; {info.describe()}"
                cycle = info.cycle_names
            raise DeadlockError(msg, cycle=cycle)

    def _watchdog_fire(self) -> None:
        """No generator progressed for a whole watchdog window: decide
        between an unwakeable-blocked deadlock and a pure event spin."""
        from ..check.deadlock import find_deadlock
        info = find_deadlock(self)
        if info is not None:
            raise DeadlockError(
                f"watchdog: no process progressed in {self.watchdog_every} "
                f"events at t={self.now:.3e}; {info.describe()}",
                cycle=info.cycle_names,
            )
        raise SimulationError(
            f"watchdog: livelock — {self.watchdog_every} events at "
            f"t={self.now:.3e} without any process advancing (an unbounded "
            f"compute or a self-rescheduling event chain)"
        )

    def _deadlock_probe(self) -> None:
        """Proactive analysis at a block (check='deadlock'/'full'): raise
        the moment a wait-for cycle closes, while the rest still runs."""
        from ..check.deadlock import find_deadlock
        info = find_deadlock(self)
        if info is not None:
            raise DeadlockError(
                f"deadlock at t={self.now:.3e}: {info.describe()}",
                cycle=info.cycle_names,
            )

    def _resume(self, proc: SimProcess, send_value: Any) -> None:  # hot-path
        if proc.state is _BLOCKED:
            waited = self.now - proc.blocked_since
            proc.wait_time += waited
            obj = proc.blocked_obj
            key = obj.wait_key if obj is not None else "?"
            breakdown = proc.wait_breakdown
            breakdown[key] = breakdown.get(key, 0.0) + waited
            if self._observe:
                self.obs.end_wait(proc)
        proc.state = _READY
        proc.blocked_obj = None
        proc.waking = False
        self._progress += 1
        self._current_proc = proc
        try:
            prim = proc.gen.send(send_value)
        except StopIteration as stop:
            proc.state = _DONE
            proc.result = stop.value
            proc.finish_time = self.now
            return
        handler = self._handlers.get(prim.__class__)
        if handler is None:
            self._unknown_primitive(proc, prim)
            return
        handler(self, proc, prim)

    # -- primitive dispatch ------------------------------------------------

    def _dispatch(self, proc: SimProcess, prim: Any) -> None:  # hot-path
        handler = self._handlers.get(prim.__class__)
        if handler is None:
            self._unknown_primitive(proc, prim)
            return
        handler(self, proc, prim)

    def _unknown_primitive(self, proc: SimProcess, prim: Any) -> None:
        raise SimulationError(
            f"process {proc.name} yielded non-primitive {prim!r}"
        )

    # Long compute phases are booked in slices so that concurrent tasks on
    # the same core (nonblocking-collective progress, XHC's helper roles)
    # interleave with them — the effect of an application driving MPI
    # progress periodically, or of OS timeslicing a progress thread.
    COMPUTE_QUANTUM = 50e-6

    def _h_compute(self, proc: SimProcess, prim: P.Compute) -> None:  # hot-path
        seconds = prim.seconds
        if seconds < 0:
            raise SimulationError("negative compute time")
        if seconds <= self.COMPUTE_QUANTUM:
            start = self._cpu_start(proc.core, seconds)
            self._schedule(start + seconds, proc)
            return
        self._compute_slice(proc, seconds)

    def _compute_slice(self, proc: SimProcess, remaining: float,
                       then: Optional[Callable[[], None]] = None) -> None:
        slice_ = min(self.COMPUTE_QUANTUM, remaining)
        start = self._cpu_start(proc.core, slice_)

        def finish() -> None:
            left = remaining - slice_
            if left > 1e-15:
                self._compute_slice(proc, left, then)
            elif then is None:
                self._resume(proc, None)
            else:
                then()

        self._schedule(start + slice_, finish)

    # Long copies are re-priced in quanta so bandwidth shares track the
    # changing set of concurrent users (approximate fluid fair sharing).
    COPY_QUANTUM = 64 * 1024

    # -- copy: full path (observe/race/record hooks live here) -------------

    def _h_copy(self, proc: SimProcess, prim: P.Copy) -> None:
        self._full_copy(proc, prim, None)

    def _full_copy(self, proc: SimProcess, prim: P.Copy,
                   then: Optional[Callable[[], None]]) -> None:
        if self._race:
            self.checker.on_copy(proc, prim)
        if prim.nbytes > self.COPY_QUANTUM:
            self._copy_quantum(proc, prim, 0, then)
            return
        duration, resources, complete = self.pricer.plan_copy(
            proc.core, prim, self.now
        )
        self._start_transfer(proc, prim, duration, resources, complete, then)

    def _copy_quantum(self, proc: SimProcess, prim: P.Copy, done: int,
                      then: Optional[Callable[[], None]] = None) -> None:
        total = prim.nbytes
        n = min(self.COPY_QUANTUM, total - done)
        sub = P.Copy(src=prim.src.sub(done, n), dst=prim.dst.sub(done, n),
                     bw_factor=prim.bw_factor, in_kernel=prim.in_kernel)
        duration, resources, complete = self.pricer.plan_copy(
            proc.core, sub, self.now
        )
        pool = self.pricer.resources
        start = self._cpu_start(proc.core, duration)

        def begin() -> None:
            for res in resources:
                res.acquire()
            if prim.in_kernel:
                pool.kernel_ops += 1

        def finish() -> None:
            for res in resources:
                res.release()
                res.bytes_served += n
            if prim.in_kernel:
                pool.kernel_ops -= 1
            if complete is not None:
                complete()
            if done + n < total:
                self._copy_quantum(proc, prim, done + n, then)
            else:
                if self.record_copies:
                    self.trace.append(
                        (self.now, "copy",
                         {"core": proc.core, "nbytes": total})
                    )
                if then is None:
                    self._resume(proc, None)
                else:
                    then()

        if self._observe and self.obs.record_copies:
            self.obs.record(proc, "copy", "copy", start, start + duration,
                            nbytes=n)
        if start > self.now:
            self._schedule(start, begin)
        else:
            begin()
        self._schedule(start + duration, finish)

    def _h_reduce(self, proc: SimProcess, prim: P.Reduce) -> None:
        if self._race:
            self.checker.on_reduce(proc, prim)
        duration, resources, complete = self.pricer.plan_reduce(
            proc.core, prim, self.now
        )
        self._start_transfer(proc, prim, duration, resources, complete, None)

    def _start_transfer(self, proc, prim, duration, resources, complete,
                        then) -> None:
        """Book the core, then hold the path resources only while the
        transfer actually runs — a transfer queued behind other work on
        its core must not inflate everyone else's contention meanwhile."""
        in_kernel = getattr(prim, "in_kernel", False)
        pool = self.pricer.resources
        start = self._cpu_start(proc.core, duration)

        def begin() -> None:
            for res in resources:
                res.acquire()
            if in_kernel:
                pool.kernel_ops += 1

        def finish() -> None:
            for res in resources:
                res.release()
                res.bytes_served += prim.nbytes
            if in_kernel:
                pool.kernel_ops -= 1
            if complete is not None:
                complete()
            if self.record_copies:
                self.trace.append(
                    (self.now, "copy",
                     {"core": proc.core, "nbytes": prim.nbytes})
                )
            if then is None:
                self._resume(proc, None)
            else:
                then()

        if self._observe and self.obs.record_copies:
            self.obs.record(
                proc, "reduce" if isinstance(prim, P.Reduce) else "copy",
                "copy", start, start + duration, nbytes=prim.nbytes)
        if start > self.now:
            self._schedule(start, begin)
        else:
            begin()
        self._schedule(start + duration, finish)

    # -- copy: fast path (observe/check/record all off) ---------------------
    #
    # Identical event schedule and pricing calls to the full path, minus
    # the per-event hook branches and per-quantum Copy/BufView allocations.
    # Bit-identity of the simulated times is pinned by the golden latency
    # tests and the fast/full equivalence tests.

    def _hf_copy(self, proc: SimProcess, prim: P.Copy) -> None:  # hot-path
        self._fast_copy(proc, prim, None)

    def _fast_copy(self, proc: SimProcess, prim: P.Copy,
                   then: Optional[Callable[[], None]]) -> None:  # hot-path
        src = prim.src
        dst = prim.dst
        nbytes = src.length
        if dst.length < nbytes:
            nbytes = dst.length
        plan_span = self._plan_span
        if plan_span is None:
            self._full_copy(proc, prim, then)
            return
        if nbytes > self.COPY_QUANTUM:
            self._fast_quantum(proc, prim, nbytes, 0, then)
            return
        duration, resources, complete = plan_span(
            proc.core, src.buf, src.offset, src.length,
            dst.buf, dst.offset, nbytes, prim.bw_factor)
        self._fast_transfer(proc, prim.in_kernel, nbytes, duration,
                            resources, complete, then)

    def _fast_quantum(self, proc: SimProcess, prim: P.Copy, total: int,
                      done: int, then) -> None:  # hot-path
        n = total - done
        if n > self.COPY_QUANTUM:
            n = self.COPY_QUANTUM
        src = prim.src
        dst = prim.dst
        duration, resources, complete = self._plan_span(
            proc.core, src.buf, src.offset + done, n,
            dst.buf, dst.offset + done, n, prim.bw_factor)
        in_kernel = prim.in_kernel
        pool = self.pricer.resources
        start = self._cpu_start(proc.core, duration)

        def finish() -> None:
            for res in resources:
                res.release()
                res.bytes_served += n
            if in_kernel:
                pool.kernel_ops -= 1
            if complete is not None:
                complete()
            if done + n < total:
                self._fast_quantum(proc, prim, total, done + n, then)
            elif then is None:
                self._resume(proc, None)
            else:
                then()

        if start > self.now:
            def begin() -> None:
                for res in resources:
                    res.acquire()
                if in_kernel:
                    pool.kernel_ops += 1
            self._schedule(start, begin)
        else:
            for res in resources:
                res.acquire()
            if in_kernel:
                pool.kernel_ops += 1
        self._schedule(start + duration, finish)

    def _fast_transfer(self, proc, in_kernel, nbytes, duration, resources,
                       complete, then) -> None:  # hot-path
        pool = self.pricer.resources
        start = self._cpu_start(proc.core, duration)

        def finish() -> None:
            for res in resources:
                res.release()
                res.bytes_served += nbytes
            if in_kernel:
                pool.kernel_ops -= 1
            if complete is not None:
                complete()
            if then is None:
                self._resume(proc, None)
            else:
                then()

        heap = self._heap
        seq = self._seq
        if start > self.now:
            def begin() -> None:
                for res in resources:
                    res.acquire()
                if in_kernel:
                    pool.kernel_ops += 1
            heapq.heappush(heap, (start, next(seq), begin))
        else:
            for res in resources:
                res.acquire()
            if in_kernel:
                pool.kernel_ops += 1
        heapq.heappush(heap, (start + duration, next(seq), finish))

    # -- copy batches --------------------------------------------------------

    def _h_copy_batch(self, proc: SimProcess, prim: P.CopyBatch) -> None:
        if not prim.steps:
            self._resume(proc, None)
            return
        self._batch_step(proc, prim.steps, 0)

    def _batch_step(self, proc: SimProcess, steps: tuple, i: int) -> None:  # hot-path
        """Run step ``i``, continuing into ``i+1`` the instant it
        completes — exactly the schedule a generator yielding the steps
        one by one would produce, minus the generator round-trips. The
        final step runs with ``then=None``, so its completion resumes the
        process directly instead of bouncing through a closing
        continuation."""
        step = steps[i]
        self._current_proc = proc
        if i + 1 == len(steps):
            then = None
        else:
            # One continuation per non-final step; a batch replaces the
            # same number of generator resumes, so this is
            # allocation-neutral at worst.
            then = lambda: self._batch_step(proc, steps, i + 1)  # noqa: E731
        cls = step.__class__
        if cls is P.Copy:
            if self._handlers is self._HANDLERS_FAST:
                self._fast_copy(proc, step, then)
            else:
                self._full_copy(proc, step, then)
        elif cls is P.SetFlag:
            self._set_flag_exec(proc, step, then)
        elif cls is P.SetFlagGroup:
            self._set_flag_group_exec(proc, step, then)
        elif cls is P.Compute:
            seconds = step.seconds
            if seconds < 0:
                raise SimulationError("negative compute time")
            if seconds <= self.COMPUTE_QUANTUM:
                start = self._cpu_start(proc.core, seconds)
                self._schedule(start + seconds,
                               proc if then is None else then)
            else:
                self._compute_slice(proc, seconds, then)
        elif cls is P.Reduce:
            if self._race:
                self.checker.on_reduce(proc, step)
            duration, resources, complete = self.pricer.plan_reduce(
                proc.core, step, self.now
            )
            self._start_transfer(proc, step, duration, resources, complete,
                                 then)
        else:
            raise SimulationError(
                f"CopyBatch steps must be Copy/Compute/Reduce/SetFlag/"  # lint: disable=RC106
                f"SetFlagGroup, got {step!r}"
            )

    # -- flags ---------------------------------------------------------------

    def _h_set_flag(self, proc: SimProcess, prim: P.SetFlag) -> None:  # hot-path
        self._set_flag_exec(proc, prim, None)

    def _set_flag_exec(self, proc: SimProcess, prim: P.SetFlag,
                       then) -> None:  # hot-path
        flag = prim.flag
        if proc.core != flag.owner_core:
            raise SimulationError(
                f"single-writer violation: core {proc.core} wrote flag "  # lint: disable=RC106
                f"{flag.name!r} owned by core {flag.owner_core}"
            )
        flag.value = prim.value
        flag.line.on_write(proc.core)
        if self._observe:
            self._m_flag_sets.inc()
        if self._race:
            self.checker.on_release(proc, flag)
        if flag.waiters:
            self._wake_waiters(flag)
        heapq.heappush(self._heap,
                       (self.now + self.pricer.store_cost, next(self._seq),
                        proc if then is None else then))

    def _h_set_flag_group(self, proc: SimProcess,
                          prim: P.SetFlagGroup) -> None:
        self._set_flag_group_exec(proc, prim, None)

    def _set_flag_group_exec(self, proc: SimProcess, prim: P.SetFlagGroup,
                             then) -> None:
        lines = []
        for flag in prim.flags:
            if proc.core != flag.owner_core:
                raise SimulationError(
                    f"single-writer violation: core {proc.core} wrote flag "
                    f"{flag.name!r} owned by core {flag.owner_core}"
                )
            flag.value = prim.value
            if flag.line not in lines:
                lines.append(flag.line)
        for line in lines:
            line.on_write(proc.core)
        if self._observe:
            self._m_flag_sets.inc(len(prim.flags))
        for flag in prim.flags:
            if self._race:
                self.checker.on_release(proc, flag)
            if flag.waiters:
                self._wake_waiters(flag)
        cost = self.pricer.store_cost * len(prim.flags)
        self._schedule(self.now + cost, proc if then is None else then)

    def _h_wait_flag(self, proc: SimProcess, prim: P.WaitFlag) -> None:
        flag = prim.flag
        if flag.satisfied(prim.value, prim.cmp):
            if self._race:
                self.checker.on_acquire(proc, flag)
            t = self.pricer.line_read(proc.core, flag.line, self.now)
            self._schedule(t, proc)
        else:
            proc.state = _BLOCKED
            proc.blocked_obj = flag
            proc.blocked_value = prim.value
            proc.blocked_since = self.now
            if self._observe:
                self.obs.begin_wait(proc, flag.name, "flag")
            flag.waiters.append((proc, prim.value, prim.cmp))
            if self._dl_proactive:
                self._deadlock_probe()

    def _hf_wait_flag(self, proc: SimProcess, prim: P.WaitFlag) -> None:  # hot-path
        flag = prim.flag
        value = prim.value
        cmp = prim.cmp
        # Inlined Flag.satisfied for the ubiquitous ">=" compare.
        if (flag.value >= value) if cmp == ">=" else flag.satisfied(value, cmp):
            t = self.pricer.line_read(proc.core, flag.line, self.now)
            heapq.heappush(self._heap, (t, next(self._seq), proc))
        else:
            proc.state = _BLOCKED
            proc.blocked_obj = flag
            proc.blocked_value = value
            proc.blocked_since = self.now
            flag.waiters.append((proc, value, cmp))

    def _h_atomic_rmw(self, proc: SimProcess, prim: P.AtomicRMW) -> None:
        atom = prim.atom
        line = atom.line
        line.pending_rmw += 1
        if self._observe:
            self._m_atomics.inc()
        if self._race:
            self.checker.on_rmw(proc, atom)
        start, duration = self.pricer.atomic_cost(proc.core, line, self.now)
        old = atom.value
        atom.value = old + prim.delta
        line.on_write(proc.core)
        if atom.waiters:
            self._wake_waiters(atom)

        def finish() -> None:
            line.pending_rmw -= 1
            self._resume(proc, old)

        self._schedule(start + duration, finish)

    def _h_wait_atomic(self, proc: SimProcess, prim: P.WaitAtomic) -> None:
        atom = prim.atom
        if atom.satisfied(prim.value, prim.cmp):
            if self._race:
                self.checker.on_acquire(proc, atom)
            t = self.pricer.line_read(proc.core, atom.line, self.now)
            self._schedule(t, proc)
        else:
            proc.state = _BLOCKED
            proc.blocked_obj = atom
            proc.blocked_value = prim.value
            proc.blocked_since = self.now
            if self._observe:
                self.obs.begin_wait(proc, atom.name, "atomic")
            atom.waiters.append((proc, prim.value, prim.cmp))
            if self._dl_proactive:
                self._deadlock_probe()

    def _hf_wait_atomic(self, proc: SimProcess, prim: P.WaitAtomic) -> None:  # hot-path
        atom = prim.atom
        value = prim.value
        cmp = prim.cmp
        if (atom.value >= value) if cmp == ">=" else atom.satisfied(value, cmp):
            t = self.pricer.line_read(proc.core, atom.line, self.now)
            heapq.heappush(self._heap, (t, next(self._seq), proc))
        else:
            proc.state = _BLOCKED
            proc.blocked_obj = atom
            proc.blocked_value = value
            proc.blocked_since = self.now
            atom.waiters.append((proc, value, cmp))

    def _wake_waiters(self, obj: Flag | Atomic) -> None:  # hot-path
        still_blocked = None
        val = obj.value
        line = obj.line
        now = self.now
        heap = self._heap
        seq = self._seq
        line_read = self.pricer.line_read
        observe = self._observe
        race = self._race
        for entry in obj.waiters:
            proc, threshold, cmp = entry
            if (val >= threshold) if cmp == ">=" \
                    else obj.satisfied(threshold, cmp):
                if observe:
                    self.obs.note_waker(proc, self._current_proc)
                    self._m_wakeups.inc()
                if race:
                    self.checker.on_acquire(proc, obj)
                proc.waking = True
                heapq.heappush(
                    heap, (line_read(proc.core, line, now), next(seq), proc))
            else:
                if still_blocked is None:
                    still_blocked = []  # lint: disable=RC106
                still_blocked.append(entry)
        if still_blocked is None:
            obj.waiters.clear()
        else:
            obj.waiters[:] = still_blocked

    def _h_syscall(self, proc: SimProcess, prim: P.Syscall) -> None:  # hot-path
        cost = self.pricer.syscall_cost(prim.kind)
        heapq.heappush(self._heap,
                       (self.now + cost, next(self._seq), proc))

    def _h_page_faults(self, proc: SimProcess, prim: P.PageFaults) -> None:
        cost = self.pricer.page_fault_cost(prim.npages)
        self._schedule(self.now + cost, proc)

    def _h_trace(self, proc: SimProcess, prim: P.Trace) -> None:
        self.trace.append((self.now, prim.label, prim.meta))
        if self._observe:
            self.obs.instant(proc, prim.label, prim.meta)
        self._resume(proc, None)

    _HANDLERS: dict = {}
    _HANDLERS_FAST: dict = {}


Engine._HANDLERS = {
    P.Compute: Engine._h_compute,
    P.Copy: Engine._h_copy,
    P.CopyBatch: Engine._h_copy_batch,
    P.Reduce: Engine._h_reduce,
    P.SetFlag: Engine._h_set_flag,
    P.SetFlagGroup: Engine._h_set_flag_group,
    P.WaitFlag: Engine._h_wait_flag,
    P.AtomicRMW: Engine._h_atomic_rmw,
    P.WaitAtomic: Engine._h_wait_atomic,
    P.Syscall: Engine._h_syscall,
    P.PageFaults: Engine._h_page_faults,
    P.Trace: Engine._h_trace,
}

# The fast table shares every handler that carries no per-event hook and
# swaps in stripped variants for the four hottest ones.
Engine._HANDLERS_FAST = dict(Engine._HANDLERS)
Engine._HANDLERS_FAST.update({
    P.Copy: Engine._hf_copy,
    P.WaitFlag: Engine._hf_wait_flag,
    P.WaitAtomic: Engine._hf_wait_atomic,
})
