"""Trace analysis: message accounting, timelines, utilization.

The engine records zero-cost :class:`~repro.sim.primitives.Trace` events
(collectives emit one ``"message"`` per logical transfer) and, with
``record_copies=True``, every completed copy. This module turns those
records into the reports the paper's methodology needs:

* :func:`message_matrix` / :func:`count_message_distances` — the Table II
  analysis, for any run;
* :class:`Timeline` — per-rank activity spans, renderable as a text Gantt
  chart for debugging pipelining behaviour;
* :func:`resource_report` — peak concurrency and bytes served per
  contention point (which link actually bottlenecked).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..topology.distance import message_distance_label

if TYPE_CHECKING:  # pragma: no cover
    from ..node import Node
    from .engine import Engine


def messages(engine: "Engine") -> list[dict]:
    """All logical-message records of a run."""
    return [meta for _t, label, meta in engine.trace if label == "message"]


def message_matrix(engine: "Engine", nranks: int) -> list[list[int]]:
    """matrix[src][dst] = number of logical messages sent."""
    matrix = [[0] * nranks for _ in range(nranks)]
    for meta in messages(engine):
        matrix[meta["src_rank"]][meta["dst_rank"]] += 1
    return matrix


def count_message_distances(node: "Node",
                            unique_edges: bool = True) -> dict[str, int]:
    """Table II's classification: message counts per distance class.

    ``unique_edges`` counts each (src, dst) pair once (the paper counts
    tree edges, not per-segment traffic).
    """
    topo = node.topo
    counts: Counter = Counter({"intra-numa": 0, "inter-numa": 0,
                               "inter-socket": 0})
    seen: set = set()
    for meta in messages(node.engine):
        key = (meta["src_rank"], meta["dst_rank"])
        if unique_edges:
            if key in seen:
                continue
            seen.add(key)
        counts[message_distance_label(topo, meta["src"], meta["dst"])] += 1
    return dict(counts)


def bytes_by_distance(node: "Node") -> dict[str, int]:
    """Total logical-message payload per distance class."""
    topo = node.topo
    out: Counter = Counter()
    for meta in messages(node.engine):
        label = message_distance_label(topo, meta["src"], meta["dst"])
        out[label] += meta.get("nbytes", 0)
    return dict(out)


@dataclass
class Span:
    start: float
    end: float
    label: str


@dataclass
class Timeline:
    """Per-core activity spans assembled from copy records."""

    spans: dict[int, list[Span]] = field(default_factory=dict)
    end_time: float = 0.0

    @classmethod
    def from_engine(cls, engine: "Engine") -> "Timeline":
        """Build from copy records (requires ``record_copies=True``)."""
        tl = cls()
        for t, label, meta in engine.trace:
            if label != "copy":
                continue
            core = meta["core"]
            tl.spans.setdefault(core, []).append(
                Span(start=t, end=t, label=f"{meta['nbytes']}B")
            )
            tl.end_time = max(tl.end_time, t)
        return tl

    def busy_events(self, core: int) -> int:
        return len(self.spans.get(core, []))

    def render(self, width: int = 72, cores: list[int] | None = None) -> str:
        """A coarse text Gantt: one row per core, '#' where copies landed."""
        if not self.spans or self.end_time <= 0:
            return "(no copy records; run with record_copies=True)"
        rows = []
        selected = sorted(self.spans) if cores is None else cores
        for core in selected:
            cells = [" "] * width
            for span in self.spans.get(core, []):
                idx = min(width - 1, int(width * span.start / self.end_time))
                cells[idx] = "#"
            rows.append(f"core {core:4d} |{''.join(cells)}|")
        return "\n".join(rows)


def wait_report(engine: "Engine", top: int = 10) -> list[dict]:
    """Where ranks spent their blocked time, aggregated by wait family.

    Keys are the interned ``wait_key`` families computed once at sync-
    object creation (``flag xhc.avail``, rank suffixes stripped by
    :func:`~repro.sim.syncobj.wait_group`), so every rank's wait on the
    same flag family lands in one row — no per-block string formatting in
    the engine, and no duplicate rows differing only by rank suffix.

    The first diagnostic for "why is this collective slow": a dominant
    ``xhc.avail`` entry means ranks starve on fan-out progress, a dominant
    ``p2p.fin`` means senders stall on rendezvous completion, etc.
    """
    agg: dict[str, float] = {}
    for proc in engine.processes:
        for key, t in proc.wait_breakdown.items():
            agg[key] = agg.get(key, 0.0) + t
    out = [{"target": k, "total_wait_s": v} for k, v in agg.items()]
    out.sort(key=lambda r: -r["total_wait_s"])
    return out[:top]


def resource_report(node: "Node") -> list[dict]:
    """Peak concurrency + bytes served for every contention resource."""
    out = []
    for res in node.resources.all_resources():
        if res.peak_active or res.bytes_served:
            out.append({
                "name": res.name,
                "bw": res.bw,
                "peak_active": res.peak_active,
                "bytes_served": res.bytes_served,
            })
    out.sort(key=lambda r: -r["bytes_served"])
    return out
