"""Deterministic discrete-event simulation engine.

Simulated MPI processes are Python generators pinned to cores; they yield
:mod:`primitives <repro.sim.primitives>` (copies, flag waits, atomics,
syscalls, compute) and the engine charges simulated time for each according
to the machine's memory model, with bandwidth contention resolved through
shared :mod:`resources <repro.sim.resources>`.

Two runs of the same scenario produce identical event timelines: the event
queue is ordered by ``(time, sequence)`` and no wall-clock or RNG state is
consulted anywhere in the engine.
"""

from .primitives import (
    AtomicRMW,
    Compute,
    Copy,
    PageFaults,
    Reduce,
    SetFlag,
    Syscall,
    Trace,
    WaitAtomic,
    WaitFlag,
)
from .syncobj import Atomic, Flag, Line
from .resources import Resource, ResourcePool
from .engine import Engine, SimProcess

__all__ = [
    "Compute", "Copy", "Reduce", "SetFlag", "WaitFlag", "AtomicRMW",
    "WaitAtomic", "Syscall", "PageFaults", "Trace",
    "Flag", "Atomic", "Line",
    "Resource", "ResourcePool",
    "Engine", "SimProcess",
]
