"""Shared bandwidth resources and contention accounting.

Every bulk transfer passes through one or more bottleneck resources — the
DRAM channels of the source NUMA node, the read port of a source LLC group,
the socket fabric, the inter-socket link, or the ARM system-level cache.
A resource divides its bandwidth equally among concurrent users (sampled at
transfer start; chunk-granularity operation keeps the approximation close
to fluid fair sharing). This is what produces the fan-in congestion of
Fig. 1b and the localized-traffic benefit of hierarchical algorithms.
"""

from __future__ import annotations

import heapq

from ..errors import SimulationError
from ..topology.objects import ObjKind, Topology
from ..memory.model import MachineModel


class Resource:
    """A shared bandwidth point.

    The event engine tracks concurrency with the ``acquire``/``release``
    counter, sampled at every transfer (re-)pricing. The array engine
    instead *books intervals*: each flushed transfer deposits its
    ``[start, end)`` occupancy window and contention is sampled in bulk at
    flush time via :meth:`arr_sample` (lazy expiry, see
    docs/performance.md). The two accountings never mix — a Node owns
    exactly one engine.
    """

    __slots__ = ("name", "bw", "active", "peak_active", "bytes_served",
                 "arr_ivals")

    def __init__(self, name: str, bw: float) -> None:
        if bw <= 0:
            raise SimulationError(f"resource {name!r} needs positive bandwidth")
        self.name = name
        self.bw = bw
        self.active = 0
        self.peak_active = 0
        self.bytes_served = 0
        # Array-mode occupancy intervals as an ``(end, start)`` min-heap.
        # A dispatched process may sample at times ahead of processes the
        # engine has not dispatched yet, so expiry is bounded by the
        # *epoch* (the dispatch heap's minimum virtual time — no future
        # sample can precede it), not by the sample time itself.
        self.arr_ivals: list[tuple[float, float]] = []

    def acquire(self) -> None:
        self.active += 1
        if self.active > self.peak_active:
            self.peak_active = self.active

    def release(self) -> None:
        if self.active <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        self.active -= 1

    def effective_bw(self) -> float:
        """Share available to one more/current user."""
        return self.bw / max(1, self.active)

    # -- array-mode interval accounting ---------------------------------

    def arr_book(self, start: float, end: float) -> None:
        """Deposit one transfer's occupancy window."""
        heapq.heappush(self.arr_ivals, (end, start))

    def arr_sample(self, t: float, epoch: float) -> int:
        """Transfers occupying this resource at time ``t``.

        ``epoch`` is the array engine's safe-expiry horizon: intervals
        ending at or before it can never be seen by a later sample and
        are dropped; the survivors (few — the set of in-flight transfers)
        are scanned for overlap with ``t``.
        """
        ivals = self.arr_ivals
        while ivals and ivals[0][0] <= epoch:
            heapq.heappop(ivals)
        n = 0
        for end, start in ivals:
            if start <= t < end:
                n += 1
        if n > self.peak_active:
            self.peak_active = n
        return n

    def __repr__(self) -> str:
        return f"<Resource {self.name} bw={self.bw:.2e} active={self.active}>"


class ResourcePool:
    """All contention points of one machine, indexed by topology object."""

    def __init__(self, topo: Topology, model: MachineModel) -> None:
        self.topo = topo
        self.model = model
        self.dram: dict[int, Resource] = {
            numa.index: Resource(f"dram:numa{numa.index}", model.numa_mem_bw)
            for numa in topo.objects(ObjKind.NUMA)
        }
        self.llc_port: dict[int, Resource] = {}
        if model.llc_port_bw > 0:
            for llc in topo.objects(ObjKind.LLC):
                self.llc_port[llc.index] = Resource(
                    f"llcport:llc{llc.index}", model.llc_port_bw
                )
        self.fabric: dict[int, Resource] = {
            sock.index: Resource(f"fabric:sock{sock.index}", model.socket_fabric_bw)
            for sock in topo.objects(ObjKind.SOCKET)
        }
        self.slc: dict[int, Resource] = {}
        if model.slc_bw > 0:
            for sock in topo.objects(ObjKind.SOCKET):
                self.slc[sock.index] = Resource(
                    f"slc:sock{sock.index}", model.slc_bw
                )
        self.xlink = Resource("xlink", model.inter_socket_bw)
        # Number of in-flight kernel-assisted (CMA/KNEM) operations; drives
        # the kernel-lock contention term of [28].
        self.kernel_ops = 0
        # Array-mode equivalent: kernel-mode occupancy intervals, sampled
        # like Resource.arr_sample (the counter above stays untouched).
        self._kernel_ivals: list[tuple[float, float]] = []

    def arr_kernel_book(self, start: float, end: float) -> None:
        heapq.heappush(self._kernel_ivals, (end, start))

    def arr_kernel_sample(self, t: float, epoch: float) -> int:
        ivals = self._kernel_ivals
        while ivals and ivals[0][0] <= epoch:
            heapq.heappop(ivals)
        n = 0
        for end, start in ivals:
            if start <= t < end:
                n += 1
        return n

    def all_resources(self) -> list[Resource]:
        out: list[Resource] = []
        out.extend(self.dram.values())
        out.extend(self.llc_port.values())
        out.extend(self.fabric.values())
        out.extend(self.slc.values())
        out.append(self.xlink)
        return out

    def reset_stats(self) -> None:
        for res in self.all_resources():
            res.peak_active = 0
            res.bytes_served = 0
            res.arr_ivals.clear()
        self._kernel_ivals.clear()
