"""LogGP-style closed forms over the machine model.

For a transfer at distance class ``d`` the simulator charges roughly
``L_d + m * G_d`` (latency plus gap-per-byte), with shared resources
capping aggregate throughput. The estimators below apply the same
constants analytically. They deliberately ignore second-order effects the
simulator *does* capture (cache reuse, port queueing, pipeline fill skew),
so agreement is expected within a band, not exactly — see
``tests/test_analysis.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..memory.model import MachineModel
from ..topology.distance import Distance, classify_distance
from ..topology.objects import Topology


@dataclass(frozen=True)
class LogGPParams:
    """Latency (s) and gap (s/byte) for one distance class."""

    L: float
    G: float

    def transfer(self, nbytes: int) -> float:
        return self.L + nbytes * self.G


def loggp_of(model: MachineModel, dist: Distance) -> LogGPParams:
    return LogGPParams(L=model.lat[dist], G=1.0 / model.bw[dist])


def _pair_params(topo: Topology, model: MachineModel,
                 core_a: int, core_b: int) -> LogGPParams:
    return loggp_of(model, classify_distance(topo, core_a, core_b))


def p2p_estimate(topo: Topology, model: MachineModel, core_a: int,
                 core_b: int, nbytes: int) -> float:
    """One-way single-copy transfer between two pinned cores."""
    return _pair_params(topo, model, core_a, core_b).transfer(nbytes)


def flat_bcast_estimate(topo: Topology, model: MachineModel,
                        cores: list[int], root_core: int,
                        nbytes: int) -> float:
    """Flat single-source fan-out: the root's serving point caps the
    aggregate; each reader also pays its own distance latency."""
    readers = [c for c in cores if c != root_core]
    if not readers:
        return 0.0
    # Aggregate bytes through the root's serving resources.
    serve_bw = min(model.llc_port_bw or math.inf,
                   model.numa_mem_bw,
                   model.slc_bw or math.inf)
    aggregate = len(readers) * nbytes / serve_bw
    per_reader = max(
        _pair_params(topo, model, root_core, c).transfer(nbytes)
        for c in readers
    )
    return max(aggregate, per_reader)


def chain_bcast_estimate(topo: Topology, model: MachineModel,
                         cores: list[int], nbytes: int,
                         segment: int) -> float:
    """Store-and-forward chain with segment pipelining: fill along the
    chain plus the drain of the remaining segments at the slowest hop."""
    if len(cores) < 2:
        return 0.0
    hops = [
        _pair_params(topo, model, a, b)
        for a, b in zip(cores, cores[1:])
    ]
    nseg = max(1, math.ceil(nbytes / segment))
    seg = min(segment, nbytes)
    fill = sum(h.transfer(seg) for h in hops)
    slowest = max(h.transfer(seg) for h in hops)
    return fill + (nseg - 1) * slowest


def hierarchical_bcast_estimate(topo: Topology, model: MachineModel,
                                level_dists: list[Distance], nbytes: int,
                                chunk: int) -> float:
    """Pipelined multi-level pull: the slowest level streams the whole
    message; the others contribute one chunk of fill each."""
    if not level_dists:
        return 0.0
    params = [loggp_of(model, d) for d in level_dists]
    nchunk = max(1, math.ceil(nbytes / chunk))
    ch = min(chunk, nbytes)
    stream = max(p.L * nchunk + nbytes * p.G for p in params)
    fill = sum(p.transfer(ch) for p in params) - max(
        p.transfer(ch) for p in params)
    return stream + fill


def ring_allreduce_estimate(topo: Topology, model: MachineModel,
                            cores: list[int], nbytes: int,
                            overhead_per_step: float = 0.0) -> float:
    """Ring reduce-scatter + allgather: 2(N-1) neighbour steps of one
    slice each, paced by the slowest ring hop."""
    n = len(cores)
    if n < 2:
        return 0.0
    slice_bytes = nbytes / n
    hop = max(
        _pair_params(topo, model, cores[i], cores[(i + 1) % n])
        .transfer(slice_bytes)
        for i in range(n)
    )
    return 2 * (n - 1) * (hop + overhead_per_step)
