"""LogGP-style closed forms over the machine model.

For a transfer at distance class ``d`` the simulator charges roughly
``L_d + m * G_d`` (latency plus gap-per-byte), with shared resources
capping aggregate throughput. The estimators below apply the same
constants analytically. They deliberately ignore second-order effects the
simulator *does* capture (cache reuse, port queueing, pipeline fill skew),
so agreement is expected within a band, not exactly — see
``tests/test_analysis.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..memory.model import MachineModel
from ..topology.distance import Distance, classify_distance
from ..topology.objects import Topology


@dataclass(frozen=True)
class LogGPParams:
    """Latency (s) and gap (s/byte) for one distance class."""

    L: float
    G: float

    def transfer(self, nbytes: int) -> float:
        return self.L + nbytes * self.G


def loggp_of(model: MachineModel, dist: Distance) -> LogGPParams:
    return LogGPParams(L=model.lat[dist], G=1.0 / model.bw[dist])


def _pair_params(topo: Topology, model: MachineModel,
                 core_a: int, core_b: int) -> LogGPParams:
    return loggp_of(model, classify_distance(topo, core_a, core_b))


def p2p_estimate(topo: Topology, model: MachineModel, core_a: int,
                 core_b: int, nbytes: int) -> float:
    """One-way single-copy transfer between two pinned cores."""
    return _pair_params(topo, model, core_a, core_b).transfer(nbytes)


def flat_bcast_estimate(topo: Topology, model: MachineModel,
                        cores: list[int], root_core: int,
                        nbytes: int) -> float:
    """Flat single-source fan-out: the root's serving point caps the
    aggregate; each reader also pays its own distance latency."""
    readers = [c for c in cores if c != root_core]
    if not readers:
        return 0.0
    # Aggregate bytes through the root's serving resources.
    serve_bw = min(model.llc_port_bw or math.inf,
                   model.numa_mem_bw,
                   model.slc_bw or math.inf)
    aggregate = len(readers) * nbytes / serve_bw
    per_reader = max(
        _pair_params(topo, model, root_core, c).transfer(nbytes)
        for c in readers
    )
    return max(aggregate, per_reader)


def chain_bcast_estimate(topo: Topology, model: MachineModel,
                         cores: list[int], nbytes: int,
                         segment: int) -> float:
    """Store-and-forward chain with segment pipelining: fill along the
    chain plus the drain of the remaining segments at the slowest hop."""
    if len(cores) < 2:
        return 0.0
    hops = [
        _pair_params(topo, model, a, b)
        for a, b in zip(cores, cores[1:])
    ]
    nseg = max(1, math.ceil(nbytes / segment))
    seg = min(segment, nbytes)
    fill = sum(h.transfer(seg) for h in hops)
    slowest = max(h.transfer(seg) for h in hops)
    return fill + (nseg - 1) * slowest


def _per_level(chunk: "int | Sequence[int]", n_levels: int) -> list[int]:
    """Expand a scalar-or-per-level chunk spec to one value per level."""
    if isinstance(chunk, int):
        return [chunk] * n_levels
    sizes = list(chunk)
    if not sizes:
        raise ValueError("need at least one chunk size")
    # Clamp like XhcConfig.chunk_for_level: reuse the last entry.
    while len(sizes) < n_levels:
        sizes.append(sizes[-1])
    return sizes[:n_levels]


def hierarchical_bcast_estimate(topo: Topology, model: MachineModel,
                                level_dists: list[Distance], nbytes: int,
                                chunk: "int | Sequence[int]") -> float:
    """Pipelined multi-level pull: the slowest level streams the whole
    message; the others contribute one chunk of fill each.

    ``chunk`` is either one pipeline chunk for all levels or one value per
    level, innermost first (SSIII-B: each level can match its link).
    """
    if not level_dists:
        return 0.0
    params = [loggp_of(model, d) for d in level_dists]
    chunks = _per_level(chunk, len(params))
    stream = max(
        p.L * max(1, math.ceil(nbytes / c)) + nbytes * p.G
        for p, c in zip(params, chunks)
    )
    fills = [p.transfer(min(c, nbytes)) for p, c in zip(params, chunks)]
    fill = sum(fills) - max(fills)
    return stream + fill


def cico_flag_fanout_estimate(model: MachineModel, fanout: int,
                              flag_layout: str = "single") -> float:
    """Time for ``fanout`` members to observe a leader's progress flag.

    Every fetch that misses is served out of the writer's caches and
    queues at that core's port (``line_occupancy``); replicating the flag
    per member ("multi-*") removes the invalidation storm of a re-written
    shared line but adds one store per member for the writer.
    """
    if fanout <= 0:
        return 0.0
    serve = fanout * model.line_occupancy
    if flag_layout == "single":
        return model.store_cost + serve
    # One store per replicated flag; "multi-shared" packs them on one
    # line (amortized fetches), "multi-separate" pays one line each.
    stores = fanout * model.store_cost
    if flag_layout == "multi-shared":
        serve = max(1, (fanout + 7) // 8) * model.line_occupancy \
            * max(1, fanout // 2)
    return stores + serve


def cico_bcast_estimate(model: MachineModel, level_dists: list[Distance],
                        level_fanouts: list[int], nbytes: int,
                        flag_layout: str = "single") -> float:
    """Small-message copy-in-copy-out fan-out: at each level the members
    poll the leader's flag, then copy the payload out of its staging slot.
    Dominated by flag propagation, not bandwidth (SSIII-D)."""
    total = 0.0
    for dist, fanout in zip(level_dists, level_fanouts):
        p = loggp_of(model, dist)
        total += cico_flag_fanout_estimate(model, fanout, flag_layout)
        total += p.L + nbytes * p.G + model.copy_issue_cost
    return total


def hierarchical_allreduce_estimate(topo: Topology, model: MachineModel,
                                    level_dists: list[Distance],
                                    level_fanouts: list[int], nbytes: int,
                                    chunk: "int | Sequence[int]",
                                    reduce_min: int = 512) -> float:
    """Hierarchical reduce + pipelined fan-out (SSIV-B).

    Per level, a group's non-leader members partition the message and each
    reduces its share from all ``fanout + 1`` contribution buffers; the
    reduce phases of successive levels pipeline chunk-wise, so the total
    charges the slowest level's full stream plus one chunk of fill at the
    others — mirroring :func:`hierarchical_bcast_estimate` — followed by
    the broadcast of the result.
    """
    if not level_dists:
        return 0.0
    chunks = _per_level(chunk, len(level_dists))
    costs = []
    for dist, fanout, c in zip(level_dists, level_fanouts, chunks):
        p = loggp_of(model, dist)
        workers = max(1, min(fanout, max(1, nbytes // max(1, reduce_min))))
        share = nbytes / workers
        nsrcs = fanout + 1
        per_byte = max(nsrcs / model.reduce_bw, nsrcs * p.G)
        nchunk = max(1, math.ceil(share / c))
        costs.append((p.L * nchunk + share * per_byte,
                      p.transfer(min(c, nbytes))))
    stream = max(c[0] for c in costs)
    fills = [c[1] for c in costs]
    reduce_phase = stream + sum(fills) - max(fills)
    return reduce_phase + hierarchical_bcast_estimate(
        topo, model, level_dists, nbytes, chunk)


def ring_allreduce_estimate(topo: Topology, model: MachineModel,
                            cores: list[int], nbytes: int,
                            overhead_per_step: float = 0.0) -> float:
    """Ring reduce-scatter + allgather: 2(N-1) neighbour steps of one
    slice each, paced by the slowest ring hop."""
    n = len(cores)
    if n < 2:
        return 0.0
    slice_bytes = nbytes / n
    hop = max(
        _pair_params(topo, model, cores[i], cores[(i + 1) % n])
        .transfer(slice_bytes)
        for i in range(n)
    )
    return 2 * (n - 1) * (hop + overhead_per_step)
