"""Analytical cross-checks for the simulator.

Closed-form LogGP-style estimates derived *directly from the machine
parameters*, used to sanity-check the event simulation: if simulated times
drift far from first-principles arithmetic on the same constants, a model
bug is more likely than a discovery. `tests/test_analysis.py` holds the
agreement bands.
"""

from .loggp import (LogGPParams, chain_bcast_estimate, cico_bcast_estimate,
                    cico_flag_fanout_estimate, flat_bcast_estimate,
                    hierarchical_allreduce_estimate,
                    hierarchical_bcast_estimate, loggp_of, p2p_estimate,
                    ring_allreduce_estimate)

__all__ = [
    "LogGPParams", "loggp_of", "p2p_estimate", "flat_bcast_estimate",
    "chain_bcast_estimate", "hierarchical_bcast_estimate",
    "hierarchical_allreduce_estimate", "cico_bcast_estimate",
    "cico_flag_fanout_estimate", "ring_allreduce_estimate",
]
