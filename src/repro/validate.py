"""Component validation harness.

A downstream user writing a new collectives component needs the same
correctness battery our test suite applies to the built-in ones. This
module packages it as a public API::

    from repro.validate import validate_component
    report = validate_component(lambda: MyComponent())
    assert report.ok, report.render()

Checks (each on a fresh simulated machine, with a real numpy data plane):

* broadcast delivers the root's exact bytes for small/medium/large sizes,
  several rank counts, and non-zero roots;
* allreduce computes the right elementwise sum for float32;
* repeated operations on one communicator don't corrupt one another;
* all ranks terminate (no deadlock) — enforced by the engine itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .errors import ReproError
from .mpi import FLOAT, SUM, World
from .node import Node
from .sim import primitives as P
from .topology import build_symmetric


@dataclass
class Check:
    name: str
    passed: bool
    detail: str = ""


@dataclass
class ValidationReport:
    checks: list[Check] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.passed for c in self.checks)

    def render(self) -> str:
        lines = []
        for c in self.checks:
            mark = "PASS" if c.passed else "FAIL"
            line = f"[{mark}] {c.name}"
            if c.detail and not c.passed:
                line += f" — {c.detail}"
            lines.append(line)
        return "\n".join(lines)


def _topo():
    return build_symmetric("validate", 2, 2, 4, 2)


def _check_bcast(factory, nranks, size, root, iters) -> Check:
    name = f"bcast n={nranks} size={size} root={root} iters={iters}"
    try:
        node = Node(_topo())
        world = World(node, nranks)
        comm = world.communicator(factory())
        bad: list[str] = []

        def program(comm_, ctx):
            me = comm_.rank_of(ctx)
            buf = ctx.alloc("b", size)
            scratch = ctx.alloc("scr", size)
            for it in range(iters):
                if me == root:
                    yield P.Copy(src=scratch.whole(), dst=buf.whole())
                    buf.data[:] = (np.arange(size) + it) % 251
                yield from comm_.bcast(ctx, buf.whole(), root)
                expect = (np.arange(size) + it) % 251
                if not np.array_equal(buf.data, expect):
                    bad.append(f"rank {me} iter {it}")
        comm.run(program)
        if bad:
            return Check(name, False, f"corrupt payload at {bad[:3]}")
        return Check(name, True)
    except ReproError as exc:
        return Check(name, False, f"{type(exc).__name__}: {exc}")


def _check_allreduce(factory, nranks, size, iters) -> Check:
    name = f"allreduce n={nranks} size={size} iters={iters}"
    try:
        node = Node(_topo())
        world = World(node, nranks)
        comm = world.communicator(factory())
        bad: list[str] = []

        def program(comm_, ctx):
            me = comm_.rank_of(ctx)
            s = ctx.alloc("s", size)
            r = ctx.alloc("r", size)
            for it in range(iters):
                s.view().as_dtype(np.float32)[:] = me + 1 + it
                yield from comm_.allreduce(ctx, s.whole(), r.whole(),
                                           SUM, FLOAT)
                expect = sum(range(1, nranks + 1)) + it * nranks
                if not np.all(r.view().as_dtype(np.float32) == expect):
                    bad.append(f"rank {me} iter {it}")
        comm.run(program)
        if bad:
            return Check(name, False, f"wrong sum at {bad[:3]}")
        return Check(name, True)
    except ReproError as exc:
        return Check(name, False, f"{type(exc).__name__}: {exc}")


def validate_component(
    factory: Callable[[], object],
    *,
    bcast: bool = True,
    allreduce: bool = True,
    quick: bool = False,
) -> ValidationReport:
    """Run the correctness battery against a component factory."""
    report = ValidationReport()
    sizes = [16, 4096, 100_000] if not quick else [16, 4096]
    nranks_list = [2, 7, 16] if not quick else [7]
    if bcast:
        for nranks in nranks_list:
            for size in sizes:
                report.checks.append(
                    _check_bcast(factory, nranks, size, root=0, iters=2))
        report.checks.append(
            _check_bcast(factory, 16 if not quick else 7, 4096,
                         root=3, iters=2))
    if allreduce:
        for nranks in nranks_list:
            for size in sizes:
                size -= size % 4
                report.checks.append(
                    _check_allreduce(factory, nranks, max(size, 4), iters=2))
    return report
