"""Plain shared-memory segments (the CICO substrate).

Each process allocates a segment at communicator creation; peers attach
once and cache the attachment for the communicator's lifetime (SSIV-C), so
steady-state CICO transfers carry no kernel cost — only the two copies.
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING

from ..errors import ShmemError

if TYPE_CHECKING:  # pragma: no cover
    from ..memory.address_space import AddressSpace, Buffer, BufView


class SharedSegment:
    """A shared allocation carved into named sub-regions.

    Collectives reserve disjoint regions up front (data slots, per-peer
    mailboxes); :meth:`region` hands out views by name.
    """

    # buf.id -> segment, weakly, so repro.check can name the region an
    # offset falls in ("r0:xhc.cico.0:data.3[...]") without every
    # allocation site having to register with the checker.
    _by_buf: "weakref.WeakValueDictionary[int, SharedSegment]" = \
        weakref.WeakValueDictionary()

    def __init__(self, space: "AddressSpace", name: str, size: int) -> None:
        self.owner_rank = space.rank
        self.buf: "Buffer" = space.alloc(name, size, shared=True)
        self._regions: dict[str, tuple[int, int]] = {}
        self._cursor = 0
        SharedSegment._by_buf[self.buf.id] = self

    @property
    def size(self) -> int:
        return self.buf.size

    def reserve(self, name: str, size: int, align: int = 64) -> "BufView":
        """Carve a new region off the end of the segment."""
        if name in self._regions:
            raise ShmemError(f"region {name!r} already reserved")
        start = -(-self._cursor // align) * align
        if start + size > self.buf.size:
            raise ShmemError(
                f"segment {self.buf.name!r} overflow reserving {name!r} "
                f"({start + size} > {self.buf.size})"
            )
        self._regions[name] = (start, size)
        self._cursor = start + size
        return self.buf.view(start, size)

    def region(self, name: str) -> "BufView":
        try:
            start, size = self._regions[name]
        except KeyError:
            raise ShmemError(f"unknown region {name!r}") from None
        return self.buf.view(start, size)

    def has_region(self, name: str) -> bool:
        return name in self._regions

    def region_at(self, offset: int) -> str | None:
        """Name of the reserved region containing ``offset``, if any."""
        for name, (start, size) in self._regions.items():
            if start <= offset < start + size:
                return name
        return None

    @classmethod
    def lookup(cls, buf: "Buffer") -> "SharedSegment | None":
        """The segment backing ``buf``, when one exists."""
        return cls._by_buf.get(buf.id)
