"""Registration cache for XPMEM attachments.

Keeps already-established inter-process mappings so they can be re-used
(SSII-B). Keyed by the target buffer; evicts nothing by default (real
implementations bound the cache, which we support via ``capacity``).
Hit-ratio statistics back the paper's observation that the three HPC
applications all exceed 99% hits (SSV-D3).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..memory.address_space import Buffer


class RegistrationCache:
    """Per-process cache of established XPMEM attachments."""

    def __init__(self, capacity: int | None = None, metrics=None) -> None:
        self.capacity = capacity
        self._entries: OrderedDict[int, "Buffer"] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        if metrics is None:
            from ..obs.metrics import NULL_METRICS
            metrics = NULL_METRICS
        self._m_hits = metrics.counter(
            "regcache.hits", "registration-cache lookup hits")
        self._m_misses = metrics.counter(
            "regcache.misses", "registration-cache lookup misses")
        self._m_evictions = metrics.counter(
            "regcache.evictions", "registration-cache LRU evictions")

    def contains(self, buf: "Buffer") -> bool:
        """Pure peek: cached-ness without touching LRU or statistics.

        Used by batch-planning fast paths that must decide whether a
        lookup *would* hit before committing to the accounted
        :meth:`lookup` call."""
        return buf.id in self._entries

    def lookup(self, buf: "Buffer") -> bool:
        """True (and refresh LRU) if an attachment to ``buf`` is cached."""
        if buf.id in self._entries:
            self._entries.move_to_end(buf.id)
            self.hits += 1
            self._m_hits.inc()
            return True
        self.misses += 1
        self._m_misses.inc()
        return False

    def insert(self, buf: "Buffer") -> None:
        self._entries[buf.id] = buf
        self._entries.move_to_end(buf.id)
        if self.capacity is not None:
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                self._m_evictions.inc()

    def invalidate(self, buf: "Buffer") -> bool:
        return self._entries.pop(buf.id, None) is not None

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._entries),
            "hit_ratio": self.hit_ratio,
        }
