"""Shared-memory and kernel-assisted single-copy mechanisms.

The paper's transport choices (SSII-B, SSIII-C/D):

* **XPMEM** — a process exposes address ranges; peers attach once (syscall +
  page faults) and then access them with plain loads/stores, including
  *reducing directly from peers' buffers*. Pays off only with a
  registration cache that amortizes the attach cost.
* **CMA / KNEM** — per-operation kernel copy calls; no mapping reuse, and
  kernel-lock contention grows with node occupancy [28]. Copy-only: no
  direct reduction.
* **CICO** — plain shared segments with copy-in/copy-out; two copies per
  transfer but no kernel involvement, which wins for small messages.

The :class:`SmscEndpoint` mirrors OpenMPI's shared-memory-single-copy
(SMSC) component: a per-process service that the p2p layer and the
collectives delegate single-copy transfers to, configured for one of the
mechanisms above.
"""

from .regcache import RegistrationCache
from .xpmem import XpmemService
from .segment import SharedSegment
from .smsc import SmscConfig, SmscEndpoint

__all__ = [
    "RegistrationCache",
    "XpmemService",
    "SharedSegment",
    "SmscConfig",
    "SmscEndpoint",
]
