"""XPMEM (Cross-Partition Memory) service.

Exposure (``xpmem_make``) is a one-time syscall by the owner. Attachment
(``xpmem_get`` + ``xpmem_attach``) by a peer costs a syscall plus page
faults over the mapped range; the mapping is then reusable with ordinary
loads/stores until detached (SSII-B). Pages faulted on first touch are
tracked so a re-attach after a detach pays the faults again.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..errors import ShmemError
from ..sim import primitives as P

if TYPE_CHECKING:  # pragma: no cover
    from ..memory.address_space import Buffer
    from ..node import Node


class XpmemService:
    """Node-global registry of exposed address ranges."""

    def __init__(self, node: "Node") -> None:
        self.node = node
        self._exposed: set[int] = set()
        self.makes = 0
        self.attaches = 0
        self.detaches = 0
        # Metric handles resolve to shared no-ops when the node is not
        # observed, so the hot paths below pay one call per event.
        metrics = node.engine.obs.metrics
        self._m_makes = metrics.counter(
            "xpmem.makes", "xpmem_make exposures")
        self._m_attaches = metrics.counter(
            "xpmem.attaches", "xpmem_get/attach mappings")
        self._m_detaches = metrics.counter(
            "xpmem.detaches", "xpmem_detach unmappings")

    def expose(self, buf: "Buffer") -> Iterator:
        """Owner publishes ``buf`` (xpmem_make). Idempotent after the first."""
        if buf.id in self._exposed:
            return
        self._exposed.add(buf.id)
        self.makes += 1
        self._m_makes.inc()
        yield P.Syscall("generic")

    def is_exposed(self, buf: "Buffer") -> bool:
        return buf.id in self._exposed

    def attach(self, buf: "Buffer") -> Iterator:
        """Peer maps ``buf`` (xpmem_get/attach + first-touch page faults)."""
        if buf.id not in self._exposed and not buf.shared:
            raise ShmemError(
                f"attach to unexposed buffer {buf.name!r}; owner must "
                f"expose() it first"
            )
        self.attaches += 1
        self._m_attaches.inc()
        checker = self.node.engine.checker
        if checker is not None:
            checker.on_attach(self.node.engine._current_proc, buf)
        with self.node.obs.span("xpmem.attach", cat="shmem",
                                nbytes=buf.size):
            yield P.Syscall("xpmem_attach")
            yield P.PageFaults(self.node.pages_of(buf.size))

    def detach(self, buf: "Buffer") -> Iterator:
        self.detaches += 1
        self._m_detaches.inc()
        checker = self.node.engine.checker
        if checker is not None:
            checker.on_detach(self.node.engine._current_proc, buf)
        yield P.Syscall("xpmem_detach")
