"""SMSC — the shared-memory-single-copy component.

Mirrors OpenMPI's smsc framework: a per-process endpoint that performs
single-copy transfers from (or reductions over) peer buffers, using one of
the configured mechanisms:

* ``"xpmem"``  — attach once (cached by the registration cache unless
  disabled), then plain-load copies and direct reductions.
* ``"cma"`` / ``"knem"`` — per-operation kernel copy; no reuse, kernel-lock
  contention, and **no** direct reduction (copy-only semantics, SSII-B).
* ``None`` — SMSC disabled; callers must fall back to copy-in-copy-out.

All methods are generators to be driven with ``yield from`` inside a
simulated process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterator, Sequence

from ..errors import ShmemError
from ..sim import primitives as P
from .regcache import RegistrationCache

if TYPE_CHECKING:  # pragma: no cover
    from ..memory.address_space import BufView
    from ..node import Node
    from .xpmem import XpmemService

MECHANISMS = ("xpmem", "cma", "knem", None)


@dataclass(frozen=True)
class SmscConfig:
    mechanism: str | None = "xpmem"
    use_regcache: bool = True
    regcache_capacity: int | None = None

    def __post_init__(self) -> None:
        if self.mechanism not in MECHANISMS:
            raise ShmemError(
                f"unknown smsc mechanism {self.mechanism!r}; "
                f"choose from {MECHANISMS}"
            )


class SmscEndpoint:
    """Per-process single-copy service."""

    def __init__(self, node: "Node", rank: int,
                 config: SmscConfig | None = None) -> None:
        self.node = node
        self.rank = rank
        self.config = config or SmscConfig()
        metrics = node.engine.obs.metrics
        self.regcache = RegistrationCache(self.config.regcache_capacity,
                                          metrics=metrics)
        self._m_copies = metrics.counter(
            "smsc.copies", "single-copy transfers issued")
        self._m_bytes = metrics.counter(
            "smsc.bytes", "bytes moved by single-copy transfers")
        self._m_reduces = metrics.counter(
            "smsc.reduces", "direct reductions over peer buffers")
        # Hoisted hot-loop constants: the mechanism never changes after
        # construction, and the regcache-hit Compute primitive is frozen,
        # so one shared instance serves every pipelined chunk.
        self._mech = self.config.mechanism
        self._lookup_prim = P.Compute(node.model.regcache_lookup_cost)

    @property
    def xpmem(self) -> "XpmemService":
        return self.node.xpmem

    @property
    def enabled(self) -> bool:
        return self.config.mechanism is not None

    @property
    def can_reduce(self) -> bool:
        """Only XPMEM permits reducing directly from peers' buffers."""
        return self.config.mechanism == "xpmem"

    # -- mapping ------------------------------------------------------------

    def map_peer(self, view: "BufView") -> Iterator:
        """Ensure ``view.buf`` is addressable; pays XPMEM attach on miss."""
        mech = self.config.mechanism
        if mech != "xpmem":
            return  # CMA/KNEM need no mapping; CICO segments are pre-mapped.
        buf = view.buf
        if buf.owner_rank == self.rank or buf.shared:
            return
        if self.config.use_regcache:
            if not self.regcache.lookup(buf):
                yield from self.xpmem.attach(buf)
                self.regcache.insert(buf)
            else:
                yield P.Compute(self.node.model.regcache_lookup_cost)
        else:
            yield from self.xpmem.attach(buf)

    def _unmap_if_uncached(self, view: "BufView") -> Iterator:
        if (self.config.mechanism == "xpmem"
                and not self.config.use_regcache
                and view.buf.owner_rank != self.rank
                and not view.buf.shared):
            yield from self.xpmem.detach(view.buf)

    # -- transfers -----------------------------------------------------------

    def copy_from_steps(self, src: "BufView",
                        dst: "BufView") -> "tuple | None":
        """The pull as a tuple of primitives, when no kernel transition is
        needed — the peer buffer is our own, pre-mapped shared memory, or
        an attachment already in the registration cache.

        Emits exactly what :meth:`copy_from` would yield in those cases
        (so callers may splice the steps into a
        :class:`~repro.sim.primitives.CopyBatch` without changing the
        simulated timeline); returns None — with **no** side effects —
        whenever the slow generator path (attach/detach, kernel copy)
        must run instead.
        """
        if self._mech != "xpmem":
            return None
        buf = src.buf
        if buf.owner_rank == self.rank or buf.shared:
            self._m_copies.inc()
            self._m_bytes.inc(src.length)
            return (P.Copy(src=src, dst=dst),)
        if self.config.use_regcache and self.regcache.contains(buf):
            self.regcache.lookup(buf)  # accounted hit + LRU refresh
            self._m_copies.inc()
            self._m_bytes.inc(src.length)
            return (self._lookup_prim, P.Copy(src=src, dst=dst))
        return None

    # -- lowered chunk runs (array engine) -----------------------------------

    def chunk_run_lowerable(self, src: "BufView") -> bool:
        """True when *every* chunk of a pipelined pull from ``src`` would
        take the spliceable fast path — own/pre-mapped shared memory, or
        XPMEM with the registration cache on (one attach up front via
        :meth:`map_peer`, then per-chunk cache hits). Kernel-assisted
        mechanisms re-enter the kernel per chunk and stay un-lowered."""
        if self._mech != "xpmem":
            return False
        buf = src.buf
        return (buf.owner_rank == self.rank or buf.shared
                or self.config.use_regcache)

    def chunk_run_account(self, src: "BufView", nchunks: int,
                          nbytes: int) -> float:
        """Bulk accounting for a lowered ``nchunks``-chunk pull: the
        metric counts :meth:`copy_from_steps` would have accumulated, one
        LRU refresh for the whole run, and the per-chunk fixed CPU cost
        (the registration-cache lookup every chunk of the event flow
        pays) for the :class:`~repro.sim.primitives.ChunkRun` to charge.
        Call only after :meth:`map_peer` ensured the attachment."""
        self._m_copies.inc(nchunks)
        self._m_bytes.inc(nbytes)
        buf = src.buf
        if buf.owner_rank == self.rank or buf.shared:
            return 0.0
        if self.config.use_regcache:
            self.regcache.lookup(buf)
            return self.node.model.regcache_lookup_cost
        return 0.0

    def reduce_run_lowerable(self, srcs: Sequence["BufView"],
                             dst: "BufView") -> bool:
        """:meth:`chunk_run_lowerable` for a direct-reduction run — every
        operand (sources and destination) must stay on the fast path."""
        if self._mech != "xpmem":
            return False
        rank = self.rank
        if self.config.use_regcache:
            return True
        for view in srcs:
            buf = view.buf
            if not (buf.owner_rank == rank or buf.shared):
                return False
        buf = dst.buf
        return buf.owner_rank == rank or buf.shared

    def reduce_run_account(self, srcs: Sequence["BufView"], dst: "BufView",
                           nchunks: int) -> float:
        """Bulk accounting for a lowered reduction run; returns the
        per-chunk fixed CPU cost (one regcache lookup per foreign
        operand, exactly what :meth:`reduce_from_steps` charges)."""
        self._m_reduces.inc(nchunks)
        lookups = 0
        rank = self.rank
        regcache = self.regcache
        for view in srcs:
            buf = view.buf
            if not (buf.owner_rank == rank or buf.shared):
                regcache.lookup(buf)
                lookups += 1
        buf = dst.buf
        if not (buf.owner_rank == rank or buf.shared):
            regcache.lookup(buf)
            lookups += 1
        return lookups * self.node.model.regcache_lookup_cost

    def reduce_from_steps(self, srcs: Sequence["BufView"], dst: "BufView",
                          op: Callable[..., Any] | None = None,
                          dtype: Any = None,
                          accumulate: bool = False) -> "tuple | None":
        """The direct reduction as a tuple of primitives, when every
        operand is already addressable (own/shared memory or a cached
        attachment) — the batch-spliceable analogue of
        :meth:`reduce_from`, mirroring :meth:`copy_from_steps`. Returns
        None with no side effects when any operand would need the slow
        attach path."""
        if self._mech != "xpmem":
            return None
        rank = self.rank
        use_rc = self.config.use_regcache
        regcache = self.regcache
        lookups = 0
        for view in srcs:
            buf = view.buf
            if buf.owner_rank == rank or buf.shared:
                continue
            if use_rc and regcache.contains(buf):
                lookups += 1
                continue
            return None
        buf = dst.buf
        if not (buf.owner_rank == rank or buf.shared):
            if use_rc and regcache.contains(buf):
                lookups += 1
            else:
                return None
        # Commit: account the hits exactly as map_peer would have.
        for view in srcs:
            buf = view.buf
            if not (buf.owner_rank == rank or buf.shared):
                regcache.lookup(buf)
        buf = dst.buf
        if not (buf.owner_rank == rank or buf.shared):
            regcache.lookup(buf)
        self._m_reduces.inc()
        reduce = P.Reduce(srcs=tuple(srcs), dst=dst, op=op, dtype=dtype,
                          accumulate=accumulate)
        if lookups == 0:
            return (reduce,)
        return (self._lookup_prim,) * lookups + (reduce,)

    def copy_from(self, src: "BufView", dst: "BufView") -> Iterator:
        """Single-copy ``src`` (a peer's buffer) into local ``dst``."""
        mech = self.config.mechanism
        if mech is None:
            raise ShmemError("SMSC disabled; use a CICO path instead")
        self._m_copies.inc()
        self._m_bytes.inc(src.length)
        if mech == "xpmem":
            buf = src.buf
            if buf.owner_rank == self.rank or buf.shared:
                # Pre-mapped: no attach, no detach — skip the generator
                # delegation entirely (hot on every pipelined pull).
                yield P.Copy(src=src, dst=dst)
                return
            yield from self.map_peer(src)
            yield P.Copy(src=src, dst=dst)
            yield from self._unmap_if_uncached(src)
        elif mech == "cma":
            yield P.Syscall("cma")
            yield P.Copy(src=src, dst=dst,
                         bw_factor=self.node.model.cma_bw_factor,
                         in_kernel=True)
        elif mech == "knem":
            yield P.Syscall("knem")
            yield P.Copy(src=src, dst=dst,
                         bw_factor=self.node.model.knem_bw_factor,
                         in_kernel=True)

    def copy_to(self, src: "BufView", dst: "BufView") -> Iterator:
        """Single-copy local ``src`` into a peer's ``dst`` (write-side)."""
        mech = self.config.mechanism
        if mech is None:
            raise ShmemError("SMSC disabled; use a CICO path instead")
        if mech == "xpmem":
            self._m_copies.inc()
            self._m_bytes.inc(src.length)
            yield from self.map_peer(dst)
            yield P.Copy(src=src, dst=dst)
            yield from self._unmap_if_uncached(dst)
        else:
            yield from self.copy_from(src, dst)  # kernel copies are symmetric

    def reduce_from(
        self,
        srcs: Sequence["BufView"],
        dst: "BufView",
        op: Callable[..., Any] | None = None,
        dtype: Any = None,
        accumulate: bool = False,
    ) -> Iterator:
        """Reduce peers' buffers directly into ``dst`` (XPMEM only)."""
        if not self.can_reduce:
            raise ShmemError(
                f"direct reduction requires xpmem, not "
                f"{self.config.mechanism!r}; copy-in first"
            )
        self._m_reduces.inc()
        for src in srcs:
            yield from self.map_peer(src)
        yield from self.map_peer(dst)
        yield P.Reduce(srcs=tuple(srcs), dst=dst, op=op, dtype=dtype,
                       accumulate=accumulate)
