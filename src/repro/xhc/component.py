"""The XHC collectives component (SSIV).

Control-flow notes
------------------

* All progress/ack flags carry **monotonic cumulative values** (total bytes
  ever made available, total ops completed). Every rank maintains an
  identical local ledger of everyone's cumulative counters, updated at each
  op with the same deterministic rule — so flag values never reset and no
  reset races exist. This mirrors the sequence tagging of the real
  implementation.

* A rank is one simulated process. Roles that the real implementation
  interleaves inside one progress loop (reducing its own index range,
  monitoring members' counters, pulling broadcast data) are expressed as
  concurrent helper tasks pinned to the same core.

* Buffers published for single-copy access are re-registered every op.
  On the single-copy path, the hierarchical acknowledgment step (SSIV-A,
  finalization) guarantees a parent's readers finished before it returns
  — acks are posted the moment a rank's own receipt completes (they
  protect the *parent's* buffer only), so successive operations wave-
  pipeline down the tree. On the CICO path the staging slots are
  component-owned, so ack collection defers to the slot ring's reuse
  point instead.
"""

from __future__ import annotations

from typing import Iterator

from ..errors import MPIError
from ..mpi.colls.base import CollComponent, partition
from ..shmem.segment import SharedSegment
from ..sim import primitives as P
from ..sim.syncobj import Flag, Line
from .config import XhcConfig
from .hierarchy import Group, Hierarchy, build_hierarchy


class Xhc(CollComponent):
    name = "xhc"

    def __init__(self, config: XhcConfig | None = None, **kw) -> None:
        super().__init__()
        self.cfg = config if config is not None else XhcConfig(**kw)

    # -- setup -----------------------------------------------------------------

    def _setup(self, comm) -> None:
        cfg = self.cfg
        n = comm.size
        self._hier_cache: dict[int, Hierarchy] = {}
        h0 = self._hierarchy(comm, 0)
        self.n_levels = h0.n_levels
        cfg.validate_depth(self.n_levels)
        # Ledgers are per component instance, not per communicator:
        # several Xhc instances may serve one communicator (the TunedXhc
        # dispatcher), and their flag counters must not mix.
        self._rank_state: list[dict] = [dict() for _ in comm.ranks]
        # CICO segments: contribution + result/staging regions in a
        # K-deep ring (K = cfg.cico_ring) indexed by operation number, so
        # acknowledgment collection defers to a slot's next reuse K-1 ops
        # later (overlapping the ack fan-in with the application instead
        # of serializing every small-message operation on it).
        cico = max(cfg.cico_threshold, 64)
        ring = cfg.cico_ring
        self.cico_ctb = []
        self.cico_res = []
        for ctx in comm.ranks:
            seg = SharedSegment(ctx.space, f"xhc.cico.{ctx.rank}",
                                2 * ring * cico)
            self.cico_ctb.append(tuple(
                seg.reserve(f"ctb{k}", cico) for k in range(ring)))
            self.cico_res.append(tuple(
                seg.reserve(f"res{k}", cico) for k in range(ring)))
        # Flags. `avail` drives fan-out; `ready[level]` drives reduction
        # readiness; `done` tracks reducer progress; `ack` finalization.
        self.avail = [Flag(f"xhc.avail.{c.rank}", c.core) for c in comm.ranks]
        self.done = [Flag(f"xhc.done.{c.rank}", c.core) for c in comm.ranks]
        # Ack flags of LLC-group peers share a cache line: the writers are
        # neighbours (false sharing is cheap within a CCX) and a leader
        # scanning acknowledgments fetches one line per group instead of
        # one per member. Flags are placed on separate lines only "where
        # that is necessary" (SSIII-E) — i.e. on machines without LLC
        # groups, where line sharing would couple distant writers.
        topo = comm.node.topo
        ack_lines: dict[int, Line] = {}
        self.ack = []
        for c in comm.ranks:
            llc = topo.llc_of_core(c.core)
            line = None
            if llc is not None:
                line = ack_lines.get(llc.index)
                if line is None:
                    line = Line(c.core)
                    ack_lines[llc.index] = line
            self.ack.append(Flag(f"xhc.ack.{c.rank}", c.core, line))
        self.ready = [
            [Flag(f"xhc.ready.{c.rank}.l{l}", c.core)
             for l in range(self.n_levels + 1)]
            for c in comm.ranks
        ]
        # Replicated per-member avail flags for the Fig. 10 layouts,
        # created lazily per leader with the configured line placement.
        self._avail_multi: dict[tuple[int, int], Flag] = {}
        self._multi_lines: dict[int, Line] = {}
        # Per-op published buffer views (identity shared through the
        # component object, exactly like address exchange over shm).
        self._pub_fan: dict[int, object] = {}
        self._pub_ctb: dict[int, object] = {}
        self._pub_res: dict[int, object] = {}
        self._scratch: dict[int, object] = {}
        # Per-op-shape memos (all keyed on immutable shape parameters;
        # hierarchies and their groups live as long as the component, so
        # id() keys are stable): reduction partitions, per-rank
        # assignments, and the per-op ledger increment, which is a pure
        # function of (hierarchy, nbytes, dtype, fan_out) but was being
        # rederived — partitions included — on every operation.
        self._part_memo: dict = {}
        self._assign_memo: dict = {}
        self._ledger_delta_memo: dict = {}

    def _hierarchy(self, comm, root: int) -> Hierarchy:
        h = self._hier_cache.get(root)
        if h is None:
            cores = [ctx.core for ctx in comm.ranks]
            h = build_hierarchy(comm.node.topo, cores, self.cfg.tokens(),
                                root, obs=comm.node.obs)
            self._hier_cache[root] = h
        return h

    def _ledger(self, comm, me: int) -> dict:
        st = self._rank_state[me]
        if not st:
            n = comm.size
            st["avail"] = [0] * n
            st["done"] = [0] * n
            st["ack"] = [0] * n
            st["arrive"] = [0] * n
            st["ready"] = [[0] * (self.n_levels + 1) for _ in range(n)]
            st["cico_ops"] = 0
            # Last value of each peer's ack flag we actually observed; a
            # deferred slot-reuse check is skipped entirely when the value
            # seen last time already proves the slot free.
            st["ack_seen"] = [0] * n
        return st

    def _scratch_view(self, ctx, size: int):
        buf = self._scratch.get(ctx.rank)
        if buf is None or buf.size < size:
            buf = ctx.alloc(f"xhc.scratch.{size}", size)
            self._scratch[ctx.rank] = buf
        return buf.view(0, size)

    # -- avail flag layouts (Fig. 10) -------------------------------------

    def _multi_flag(self, comm, leader: int, child: int) -> Flag:
        key = (leader, child)
        flag = self._avail_multi.get(key)
        if flag is None:
            owner_core = comm.core_of(leader)
            line = None
            if self.cfg.flag_layout == "multi-shared":
                line = self._multi_lines.get(leader)
                if line is None:
                    line = Line(owner_core)
                    self._multi_lines[leader] = line
            flag = Flag(f"xhc.availm.{leader}.{child}", owner_core, line)
            self._avail_multi[key] = flag
        return flag

    def _avail_prim(self, comm, hier: Hierarchy, me: int, value: int):
        """The primitive :meth:`_set_avail` would yield, or None (multi
        layout with no children). Lets the pipelined hot loops splice the
        availability announcement into a :class:`~repro.sim.primitives.
        CopyBatch` instead of delegating to a generator per chunk."""
        if self.cfg.flag_layout == "single":
            return P.SetFlag(self.avail[me], value)
        flags = tuple(self._multi_flag(comm, me, child)
                      for child, _level in hier.children(me))
        if flags:
            return P.SetFlagGroup(flags, value)
        return None

    def _avail_flags(self, comm, hier: Hierarchy, me: int) -> tuple:
        """The flags :meth:`_avail_prim` would write — lowered chunk runs
        stamp them directly instead of yielding per-chunk sets."""
        if self.cfg.flag_layout == "single":
            return (self.avail[me],)
        return tuple(self._multi_flag(comm, me, child)
                     for child, _level in hier.children(me))

    def _set_avail(self, comm, hier: Hierarchy, me: int,
                   value: int) -> Iterator:
        prim = self._avail_prim(comm, hier, me, value)
        if prim is not None:
            yield prim

    def _wait_avail(self, comm, parent: int, me: int, value: int) -> Iterator:
        if self.cfg.flag_layout == "single":
            yield P.WaitFlag(self.avail[parent], value)
        else:
            yield P.WaitFlag(self._multi_flag(comm, parent, me), value)

    # -- broadcast (SSIV-A) -----------------------------------------------

    def bcast(self, comm, ctx, view, root) -> Iterator:
        if comm.size == 1 or view.length == 0:
            return
        yield from comm.node.obs.wrap(
            self._bcast_impl(comm, ctx, view, root), "xhc.bcast",
            cat="coll", nbytes=view.length, root=root)

    def _bcast_impl(self, comm, ctx, view, root) -> Iterator:
        me = comm.rank_of(ctx)
        led = self._ledger(comm, me)
        hier = self._hierarchy(comm, root)
        nbytes = view.length
        small = nbytes <= self.cfg.cico_threshold
        parent = hier.parent(me)
        if parent is not None:
            yield P.Trace("message", {
                "src": comm.core_of(parent), "dst": ctx.core,
                "src_rank": parent, "dst_rank": me,
                "nbytes": nbytes, "proto": "xhc",
            })
        parity = led["cico_ops"] % self.cfg.cico_ring
        if small:
            yield from self._cico_entry(comm, hier, me, led)
        if me == root:
            if small:
                copy = P.Copy(src=view,
                              dst=self.cico_res[me][parity].sub(0, nbytes))
                prim = self._avail_prim(comm, hier, me,
                                        led["avail"][me] + nbytes)
                if prim is None:
                    yield copy
                else:
                    yield P.CopyBatch((copy, prim))
            else:
                self._pub_fan[me] = view
                yield from comm.node.xpmem.expose(view.buf)
                yield from self._set_avail(comm, hier, me,
                                           led["avail"][me] + nbytes)
        else:
            if not small and hier.children(me):
                self._pub_fan[me] = view
                yield from comm.node.xpmem.expose(view.buf)
            yield from self._fanout_pull(comm, ctx, me, hier, nbytes, small,
                                         view, led, parity)
        # Single-copy exposes the user buffer, so the op must not return
        # before the subtree acknowledged; the double-buffered CICO path
        # defers that collection to the slot's next use (_cico_entry).
        yield from self._finalize(comm, hier, me, led,
                                  wait_children=not small)
        self._update_fan_ledger(comm, hier, me, led, nbytes)
        if small:
            led["cico_ops"] += 1

    def _cico_entry(self, comm, hier: Hierarchy, me: int,
                    led: dict) -> Iterator:
        """Deferred finalization of the CICO path: before overwriting a
        ring slot, make sure its previous users (ring-1 ops ago)
        acknowledged. The last observed value of each child's flag is
        cached, so with a ring of depth K each child's flag is actually
        fetched only ~every K ops — the fan-in amortization that keeps the
        flat tree's small-message latency low."""
        with comm.node.obs.span("xhc.cico_gate", rank=me):
            slack = self.cfg.cico_ring - 1
            for child, _level in hier.children(me):
                target = led["ack"][child] - slack
                if target <= 0 or led["ack_seen"][child] >= target:
                    continue
                yield P.WaitFlag(self.ack[child], target)
                # The fetch that satisfied the wait read the line's current
                # value; remember it to skip future checks.
                led["ack_seen"][child] = self.ack[child].value

    def _fanout_pull(self, comm, ctx, me: int, hier: Hierarchy, nbytes: int,
                     small: bool, dst_view, led: dict,
                     parity: int = 0) -> Iterator:
        """Pull-based, pipelined fan-out: chunks stream from the parent's
        buffer into ours, republished level by level (Fig. 5)."""
        parent = hier.parent(me)
        assert parent is not None
        level = hier.pull_level(me)
        chunk = self.cfg.chunk_for_level(level)
        has_children = bool(hier.children(me))
        avail_base_p = led["avail"][parent]
        avail_base_me = led["avail"][me]
        # The per-chunk wait flag and availability primitive never change
        # across the loop, so resolve them once and yield the primitives
        # directly — delegating to the _wait_avail/_set_avail generators
        # costs two round-trips per chunk at zero simulated time.
        if self.cfg.flag_layout == "single":
            wait_flag = self.avail[parent]
            my_avail = self.avail[me]
            mk_avail = ((lambda v: P.SetFlag(my_avail, v))
                        if has_children else None)
        else:
            wait_flag = self._multi_flag(comm, parent, me)
            my_flags = tuple(self._multi_flag(comm, me, child)
                             for child, _level in hier.children(me))
            mk_avail = ((lambda v: P.SetFlagGroup(my_flags, v))
                        if my_flags else None)
        got = 0
        with comm.node.obs.span("xhc.fanout", rank=me, parent=parent,
                                level=level, nbytes=nbytes, chunk=chunk):
            if (not small and comm.node.engine.lower_chunk_runs
                    and ctx.smsc.enabled):
                # Lowered form (array engine): the wait/copy/announce loop
                # is zero-decision, so after the first chunk's wait (which
                # licenses reading the parent's publication) the whole
                # stream goes down as one ChunkRun. The attach that the
                # first per-chunk pull would have paid happens via
                # map_peer up front.
                n0 = min(chunk, nbytes)
                yield P.WaitFlag(wait_flag, avail_base_p + n0)
                pview = self._pub_fan[parent]
                if ctx.smsc.chunk_run_lowerable(pview):
                    yield from ctx.smsc.map_peer(pview)
                    nchunks = -(-nbytes // chunk)
                    const = ctx.smsc.chunk_run_account(pview, nchunks,
                                                       nbytes)
                    if self.cfg.flag_layout == "single":
                        avail_flags = (my_avail,) if has_children else ()
                    else:
                        avail_flags = my_flags
                    sets = (((avail_flags, avail_base_me),)
                            if avail_flags else ())
                    yield P.ChunkRun(
                        start=0, stop=nbytes, chunk=chunk,
                        waits=((wait_flag, avail_base_p, 0, nbytes),),
                        sets=sets, copy=(pview, dst_view),
                        const_cost=const)
                    return
                # Not lowerable (e.g. regcache off): fall through to the
                # per-chunk loop; re-waiting chunk 0 is a satisfied wait.
            while got < nbytes:
                n = min(chunk, nbytes - got)
                yield P.WaitFlag(wait_flag, avail_base_p + got + n)
                if small:
                    src = self.cico_res[parent][parity].sub(got, n)
                    if has_children:
                        mine = self.cico_res[me][parity]
                        got += n
                        steps = [P.Copy(src=src,
                                        dst=mine.sub(got - n, n))]
                        if mk_avail is not None:
                            steps.append(mk_avail(avail_base_me + got))
                        steps.append(P.Copy(src=mine.sub(got - n, n),
                                            dst=dst_view.sub(got - n, n)))
                        yield P.CopyBatch(tuple(steps))
                    else:
                        yield P.Copy(src=src, dst=dst_view.sub(got, n))
                        got += n
                else:
                    pview = self._pub_fan[parent]
                    src = pview.sub(got, n)
                    dst = dst_view.sub(got, n)
                    steps = ctx.smsc.copy_from_steps(src, dst)
                    if steps is None:
                        yield from ctx.smsc.copy_from(src, dst)
                        got += n
                        if mk_avail is not None:
                            yield mk_avail(avail_base_me + got)
                    else:
                        got += n
                        if mk_avail is not None:
                            steps = steps + (mk_avail(avail_base_me + got),)
                        if len(steps) == 1:
                            yield steps[0]
                        else:
                            yield P.CopyBatch(steps)

    def _finalize(self, comm, hier: Hierarchy, me: int, led: dict,
                  wait_children: bool = True) -> Iterator:
        """Hierarchical acknowledgment (SSIV-A).

        A rank's ack tells its *parent* that the parent's buffer is no
        longer being read — it is posted as soon as our own receipt is
        complete, **not** after our children finish (our buffer's readers
        are our direct children, whose acks we gather before returning).
        This keeps the acknowledgment local to each tree edge, so
        successive operations overlap down the hierarchy in a wave. The
        CICO path skips the gather here entirely (it happens lazily in
        :meth:`_cico_entry`)."""
        with comm.node.obs.span("xhc.finalize", rank=me):
            if hier.parent(me) is not None:
                yield P.SetFlag(self.ack[me], led["ack"][me] + 1)
            if wait_children:
                for child, _level in hier.children(me):
                    yield P.WaitFlag(self.ack[child], led["ack"][child] + 1)

    def _update_fan_ledger(self, comm, hier: Hierarchy, me: int, led: dict,
                           nbytes: int) -> None:
        for q in range(comm.size):
            if hier.children(q) or q == hier.root:
                led["avail"][q] += nbytes
            if hier.parent(q) is not None:
                led["ack"][q] += 1

    # -- allreduce (SSIV-B) -------------------------------------------------

    def allreduce(self, comm, ctx, sview, rview, op, dtype) -> Iterator:
        yield from comm.node.obs.wrap(
            self._reduce_impl(comm, ctx, sview, rview, op, dtype,
                              root=0, fan_out=True),
            "xhc.allreduce", cat="coll", nbytes=sview.length)

    def reduce(self, comm, ctx, sview, rview, op, dtype, root) -> Iterator:
        yield from comm.node.obs.wrap(
            self._reduce_impl(comm, ctx, sview, rview, op, dtype,
                              root=root, fan_out=False),
            "xhc.reduce", cat="coll", nbytes=sview.length, root=root)

    def _reduce_impl(self, comm, ctx, sview, rview, op, dtype, root,
                     fan_out) -> Iterator:
        if comm.size == 1:
            if rview is not None:
                yield P.Copy(src=sview, dst=rview)
            return
        me = comm.rank_of(ctx)
        led = self._ledger(comm, me)
        hier = self._hierarchy(comm, root)
        nbytes = sview.length
        if nbytes == 0:
            return
        small = nbytes <= self.cfg.cico_threshold
        parity = led["cico_ops"] % self.cfg.cico_ring

        # Step 1 — preparation: publish buffers, announce source readiness.
        result = rview
        if result is None:
            if not fan_out and me != root:
                result = self._scratch_view(ctx, nbytes) \
                    if hier.led_groups[me] else None
            else:
                raise MPIError("root reduce/allreduce needs a receive buffer")
        if small:
            yield from self._cico_entry(comm, hier, me, led)
            yield P.Copy(src=sview,
                         dst=self.cico_ctb[me][parity].sub(0, nbytes))
        else:
            self._pub_ctb[me] = sview
            yield from comm.node.xpmem.expose(sview.buf)
            if result is not None:
                self._pub_res[me] = result
                # The result buffer doubles as the fan-out source when the
                # final broadcast streams it down the hierarchy (step 3).
                self._pub_fan[me] = result
                yield from comm.node.xpmem.expose(result.buf)
        yield P.SetFlag(self.ready[me][0], led["ready"][me][0] + nbytes)

        # Steps 2a/2b — concurrent roles (the real implementation folds
        # these into one progress loop on the same core).
        engine = comm.node.engine
        joins: list[Flag] = []

        def _spawn(gen, tag):
            flag = Flag(f"xhc.join.{me}.{tag}", ctx.core)

            def runner():
                yield from gen
                yield P.SetFlag(flag, 1)

            engine.spawn(runner(), core=ctx.core, name=f"xhc.{tag}.{me}")
            joins.append(flag)

        group = hier.member_group[me]
        if group is not None:
            rng = self._assignment(group, me, nbytes, dtype)
            if rng is not None:
                _spawn(self._reducer(comm, ctx, me, hier, group, rng, nbytes,
                                     small, op, dtype, led, parity), "red")
        for g in hier.led_groups[me]:
            _spawn(self._monitor(comm, ctx, me, hier, g, nbytes, small,
                                 fan_out, dtype, led, parity), "mon")

        # Step 3 — broadcast of the reduced data (allreduce only).
        if fan_out:
            if me != hier.root:
                yield from self._fanout_pull(comm, ctx, me, hier, nbytes,
                                             small, rview, led, parity)
            else:
                yield P.WaitFlag(self.avail[me], led["avail"][me] + nbytes)
            if small:
                # CICO: the final result sits in our staging region.
                if me == hier.root:
                    yield P.Copy(
                        src=self.cico_res[me][parity].sub(0, nbytes),
                        dst=rview.sub(0, nbytes))
        else:
            # Reduce: wait for the root to announce completion.
            yield P.WaitFlag(self.avail[hier.root],
                             led["avail"][hier.root] + nbytes)
            if small and me == root:
                yield P.Copy(src=self.cico_res[me][parity].sub(0, nbytes),
                             dst=rview.sub(0, nbytes))

        for flag in joins:
            yield P.WaitFlag(flag, 1)
        yield from self._finalize(comm, hier, me, led,
                                  wait_children=not small)
        self._update_reduce_ledger(comm, hier, me, led, nbytes, dtype,
                                   fan_out)
        if small:
            led["cico_ops"] += 1

    # -- allreduce helper roles ------------------------------------------

    def _ranges(self, nbytes: int, nworkers: int,
                itemsize: int) -> list[tuple[int, int]]:
        """Memoized reduction partition (hot: once per op per group)."""
        key = (nbytes, nworkers, itemsize)
        ranges = self._part_memo.get(key)
        if ranges is None:
            ranges = partition(nbytes, nworkers,
                               minimum=self.cfg.reduce_min,
                               align=itemsize)
            self._part_memo[key] = ranges
        return ranges

    def _assignment(self, group: Group, rank: int, nbytes: int,
                    dtype) -> tuple[int, int] | None:
        """The (offset, end) byte range ``rank`` reduces within its group."""
        key = (id(group), nbytes, dtype.itemsize)
        table = self._assign_memo.get(key)
        if table is None:
            workers = group.nonleaders
            ranges = self._ranges(nbytes, len(workers), dtype.itemsize)
            table = {}
            for idx, (off, n) in enumerate(ranges):
                table[workers[idx]] = (off, off + n)
            self._assign_memo[key] = table
        return table.get(rank)

    def _contrib(self, comm, rank: int, level: int, nbytes: int, small: bool,
                 parity: int):
        """Rank's contribution buffer at a hierarchy level (SSIV-B):
        its source data at level 0, its aggregation buffer above."""
        if small:
            region = (self.cico_ctb[rank] if level == 0
                      else self.cico_res[rank])[parity]
            return region.sub(0, nbytes)
        return (self._pub_ctb[rank] if level == 0
                else self._pub_res[rank]).sub(0, nbytes)

    def _result(self, comm, rank: int, nbytes: int, small: bool,
                parity: int):
        if small:
            return self.cico_res[rank][parity].sub(0, nbytes)
        return self._pub_res[rank].sub(0, nbytes)

    def _reducer(self, comm, ctx, me: int, hier: Hierarchy, group: Group,
                 rng: tuple[int, int], nbytes: int, small: bool, op, dtype,
                 led: dict, parity: int = 0) -> Iterator:
        """Step 2a: reduce all group members' data on our indices, placing
        the result in the leader's buffer; advance our done counter."""
        lo, hi = rng
        level = group.level
        chunk = self.cfg.chunk_for_level(level)
        peers = group.members
        ready_bases = {p: led["ready"][p][level] for p in peers}
        done_base = led["done"][me]
        done_flag = self.done[me]
        ufunc = op.ufunc
        np_dtype = dtype.np_dtype
        src_bases = None
        pos = lo
        with comm.node.obs.span("xhc.reduce.work", rank=me, level=level,
                                lo=lo, hi=hi):
            if (not small and comm.node.engine.lower_chunk_runs
                    and ctx.smsc.can_reduce):
                # Lowered form: wait for the first chunk (so every peer's
                # publication exists), resolve the operand views, then
                # reduce the whole assigned range as one ChunkRun.
                n0 = min(chunk, hi - lo)
                for p in peers:
                    yield P.WaitFlag(self.ready[p][level],
                                     ready_bases[p] + lo + n0)
                src_bases = [
                    self._contrib(comm, p, level, nbytes, small, parity)
                    for p in peers
                ]
                dst_base = self._result(comm, group.leader, nbytes,
                                        small, parity)
                if ctx.smsc.reduce_run_lowerable(src_bases, dst_base):
                    for v in src_bases:
                        yield from ctx.smsc.map_peer(v)
                    yield from ctx.smsc.map_peer(dst_base)
                    nchunks = -(-(hi - lo) // chunk)
                    const = ctx.smsc.reduce_run_account(
                        src_bases, dst_base, nchunks)
                    yield P.ChunkRun(
                        start=lo, stop=hi, chunk=chunk,
                        waits=tuple((self.ready[p][level], ready_bases[p],
                                     0, hi) for p in peers),
                        sets=(((done_flag,), done_base),),
                        reduce=(tuple(src_bases), dst_base, ufunc,
                                np_dtype),
                        const_cost=const)
                    return
                # Fall through: the loop re-waits chunk 0 (satisfied) and
                # skips the operand resolution (src_bases already set).
            while pos < hi:
                n = min(chunk, hi - pos)
                for p in peers:
                    yield P.WaitFlag(self.ready[p][level],
                                     ready_bases[p] + pos + n)
                if src_bases is None:
                    # Buffer lookups happen only after the first readiness
                    # waits (the leader's publication precedes its first
                    # ready announcement); the published views themselves
                    # are per-op constants, so resolve them once.
                    src_bases = [
                        self._contrib(comm, p, level, nbytes, small, parity)
                        for p in peers
                    ]
                    dst_base = self._result(comm, group.leader, nbytes,
                                            small, parity)
                srcs = [base.sub(pos, n) for base in src_bases]
                dst = dst_base.sub(pos, n)
                pos += n
                done_prim = P.SetFlag(done_flag, done_base + (pos - lo))
                if small:
                    yield P.CopyBatch((
                        P.Reduce(srcs=tuple(srcs), dst=dst, op=ufunc,
                                 dtype=np_dtype),
                        done_prim))
                else:
                    steps = ctx.smsc.reduce_from_steps(srcs, dst, op=ufunc,
                                                       dtype=np_dtype)
                    if steps is None:
                        yield from ctx.smsc.reduce_from(srcs, dst, op=ufunc,
                                                        dtype=np_dtype)
                        yield done_prim
                    else:
                        yield P.CopyBatch(steps + (done_prim,))

    def _monitor(self, comm, ctx, me: int, hier: Hierarchy, group: Group,
                 nbytes: int, small: bool, fan_out: bool, dtype,
                 led: dict, parity: int = 0) -> Iterator:
        """Step 2b: poll members' done counters; as prefixes complete,
        propagate readiness to the next level (or trigger the broadcast at
        the top, SSIV-B step 3)."""
        level = group.level
        next_level = level + 1
        is_top = (me == hier.root and group is hier.levels[-1][0])
        chunk = self.cfg.chunk_for_level(min(next_level, hier.n_levels - 1))
        workers = group.nonleaders
        ranges = self._ranges(nbytes, len(workers) or 1, dtype.itemsize)
        assigned = list(zip(workers, ranges))
        done_bases = {w: led["done"][w] for w in workers}
        ready_base_own = led["ready"][me][level]
        ready_base_next = led["ready"][me][next_level]
        avail_base = led["avail"][me]
        c = 0
        with comm.node.obs.span("xhc.reduce.monitor", rank=me,
                                level=level, top=is_top):
            if not small and comm.node.engine.lower_chunk_runs:
                # Lowered form: the poll-and-propagate loop is pure
                # clamped waits plus per-chunk announcements — exactly
                # the shape ChunkRun's (flag, base, lo, hi) specs encode.
                if workers:
                    waits = tuple((self.done[w], done_bases[w], off,
                                   off + n)
                                  for w, (off, n) in assigned)
                    body = None
                else:
                    waits = ((self.ready[me][level], ready_base_own,
                              0, nbytes),)
                    body = None
                    if level == 0:
                        body = (self._contrib(comm, me, 0, nbytes, small,
                                              parity),
                                self._result(comm, me, nbytes, small,
                                             parity))
                sets = []
                if is_top:
                    if fan_out:
                        avail_flags = self._avail_flags(comm, hier, me)
                        if avail_flags:
                            sets.append((avail_flags, avail_base))
                        if self.cfg.flag_layout != "single":
                            sets.append(((self.avail[me],), avail_base))
                    else:
                        sets.append(((self.avail[me],), avail_base))
                else:
                    sets.append(((self.ready[me][next_level],),
                                 ready_base_next))
                yield P.ChunkRun(start=0, stop=nbytes, chunk=chunk,
                                 waits=waits, sets=tuple(sets), copy=body)
                return
            while c < nbytes:
                c_end = min(c + chunk, nbytes)
                for w, (off, n) in assigned:
                    need = min(off + n, c_end) - off
                    if need > 0:
                        yield P.WaitFlag(self.done[w], done_bases[w] + need)
                if not workers:
                    # Singleton group: forward our own contribution.
                    yield P.WaitFlag(self.ready[me][level],
                                     ready_base_own + c_end)
                    if level == 0:
                        src = self._contrib(comm, me, 0, nbytes, small,
                                            parity)
                        dst = self._result(comm, me, nbytes, small, parity)
                        yield P.Copy(src=src.sub(c, c_end - c),
                                     dst=dst.sub(c, c_end - c))
                if is_top:
                    if fan_out:
                        yield from self._set_avail(comm, hier, me,
                                                   avail_base + c_end)
                        if self.cfg.flag_layout != "single":
                            # The root's own fan-out wait uses the single
                            # flag.
                            yield P.SetFlag(self.avail[me],
                                            avail_base + c_end)
                    else:
                        yield P.SetFlag(self.avail[me], avail_base + c_end)
                else:
                    yield P.SetFlag(self.ready[me][next_level],
                                    ready_base_next + c_end)
                c = c_end

    def _update_reduce_ledger(self, comm, hier: Hierarchy, me: int, led: dict,
                              nbytes: int, dtype, fan_out: bool) -> None:
        # The increment is identical for every op of the same shape;
        # compute it once and replay the sparse delta afterwards.
        key = (id(hier), nbytes, dtype.itemsize, fan_out)
        delta = self._ledger_delta_memo.get(key)
        if delta is None:
            size = comm.size
            done = [0] * size
            avail = [0] * size
            ack = [0] * size
            ready: list[tuple[int, int, int]] = []
            for q in range(size):
                ready.append((q, 0, nbytes))
                group = hier.member_group[q]
                if group is not None:
                    rng = self._assignment(group, q, nbytes, dtype)
                    if rng is not None:
                        done[q] += rng[1] - rng[0]
                    ack[q] += 1
                for g in hier.led_groups[q]:
                    is_top = (q == hier.root and g is hier.levels[-1][0])
                    if is_top:
                        avail[q] += nbytes
                    else:
                        ready.append((q, g.level + 1, nbytes))
                if fan_out and hier.children(q) and q != hier.root:
                    avail[q] += nbytes
            delta = ([(q, v) for q, v in enumerate(done) if v],
                     [(q, v) for q, v in enumerate(avail) if v],
                     [(q, v) for q, v in enumerate(ack) if v],
                     ready)
            self._ledger_delta_memo[key] = delta
        d_done, d_avail, d_ack, d_ready = delta
        led_done = led["done"]
        for q, v in d_done:
            led_done[q] += v
        led_avail = led["avail"]
        for q, v in d_avail:
            led_avail[q] += v
        led_ack = led["ack"]
        for q, v in d_ack:
            led_ack[q] += v
        led_ready = led["ready"]
        for q, lvl, v in d_ready:
            led_ready[q][lvl] += v

    # -- gather / scatter / allgather (shared-address-space extensions) ----
    #
    # The paper's follow-up line of work (Hashmi et al. [47]) extends
    # single-copy designs to more primitives; these implementations follow
    # that recipe: publish the user buffer, let the consumers read exactly
    # the bytes they need directly, and release through the same
    # monotonic-flag machinery the Bcast/Allreduce paths use.

    def gather(self, comm, ctx, sview, rview, root) -> Iterator:
        """Every rank publishes its block; the root copies each straight
        out of the owner's buffer (one copy per block, no staging)."""
        if comm.size == 1:
            if rview is not None:
                yield P.Copy(src=sview, dst=rview)
            return
        me = comm.rank_of(ctx)
        led = self._ledger(comm, me)
        hier = self._hierarchy(comm, root)
        block = sview.length
        self._pub_ctb[me] = sview
        yield from comm.node.xpmem.expose(sview.buf)
        yield P.SetFlag(self.ready[me][0], led["ready"][me][0] + block)
        if me == root:
            for r in range(comm.size):
                if r == me:
                    yield P.Copy(src=sview, dst=rview.sub(r * block, block))
                    continue
                yield P.WaitFlag(self.ready[r][0],
                                 led["ready"][r][0] + block)
                yield from ctx.smsc.copy_from(
                    self._pub_ctb[r].sub(0, block),
                    rview.sub(r * block, block))
            # Release: senders' buffers are free for reuse.
            yield from self._set_avail(comm, hier, me,
                                       led["avail"][me] + block)
        else:
            yield from self._wait_avail(comm, root, me,
                                        led["avail"][root] + block)
        for q in range(comm.size):
            led["ready"][q][0] += block
        led["avail"][root] += block

    def scatter(self, comm, ctx, sview, rview, root) -> Iterator:
        """The root publishes its send buffer; every rank pulls its own
        block directly (disjoint single-copy reads, SSIV-A's pull style)."""
        if comm.size == 1:
            if sview is not None:
                yield P.Copy(src=sview, dst=rview)
            return
        me = comm.rank_of(ctx)
        led = self._ledger(comm, me)
        hier = self._hierarchy(comm, root)
        block = rview.length
        total = block * comm.size
        if me == root:
            self._pub_fan[me] = sview
            yield from comm.node.xpmem.expose(sview.buf)
            yield from self._set_avail(comm, hier, me,
                                       led["avail"][me] + total)
            yield P.Copy(src=sview.sub(me * block, block), dst=rview)
        else:
            yield from self._wait_avail(comm, root, me,
                                        led["avail"][root] + total)
            src = self._pub_fan[root]
            yield from ctx.smsc.copy_from(src.sub(me * block, block), rview)
        # Release: unlike the pipelined fan-out, *every* rank read the
        # root's buffer directly, so the per-tree-edge acknowledgment of
        # _finalize is not enough — the root would return after its direct
        # children acked while grandchildren were still reading. The root
        # must gather everyone's ack before its send buffer is reusable.
        with comm.node.obs.span("xhc.finalize", rank=me):
            if me == root:
                for q in range(comm.size):
                    if q != root:
                        yield P.WaitFlag(self.ack[q], led["ack"][q] + 1)
            else:
                yield P.SetFlag(self.ack[me], led["ack"][me] + 1)
        self._update_fan_ledger(comm, hier, me, led, total)

    def allgather(self, comm, ctx, sview, rview) -> Iterator:
        """Publish, then pull every peer's block from its owner — reads are
        spread across all sources, so no single point congests."""
        me = comm.rank_of(ctx)
        block = sview.length
        yield P.Copy(src=sview, dst=rview.sub(me * block, block))
        if comm.size == 1:
            return
        led = self._ledger(comm, me)
        self._pub_ctb[me] = sview
        yield from comm.node.xpmem.expose(sview.buf)
        yield P.SetFlag(self.ready[me][0], led["ready"][me][0] + block)
        ready_bases = [led["ready"][q][0] for q in range(comm.size)]
        for q in range(comm.size):
            led["ready"][q][0] += block
        for off in range(1, comm.size):
            r = (me + off) % comm.size   # start from different sources
            yield P.WaitFlag(self.ready[r][0], ready_bases[r] + block)
            yield from ctx.smsc.copy_from(
                self._pub_ctb[r].sub(0, block),
                rview.sub(r * block, block))
        # Everyone read everyone: full fence before buffers are reused.
        yield from self.barrier(comm, ctx)

    def alltoall(self, comm, ctx, sview, rview) -> Iterator:
        """Personalized exchange: every rank reads its addressed block
        straight out of each peer's send buffer."""
        size = comm.size
        me = comm.rank_of(ctx)
        block = sview.length // size
        yield P.Copy(src=sview.sub(me * block, block),
                     dst=rview.sub(me * block, block))
        if size == 1:
            return
        led = self._ledger(comm, me)
        self._pub_ctb[me] = sview
        yield from comm.node.xpmem.expose(sview.buf)
        yield P.SetFlag(self.ready[me][0], led["ready"][me][0] + block)
        ready_bases = [led["ready"][q][0] for q in range(size)]
        for q in range(size):
            led["ready"][q][0] += block
        for off in range(1, size):
            r = (me + off) % size
            yield P.WaitFlag(self.ready[r][0], ready_bases[r] + block)
            yield from ctx.smsc.copy_from(
                self._pub_ctb[r].sub(me * block, block),
                rview.sub(r * block, block))
        yield from self.barrier(comm, ctx)

    def reduce_scatter_block(self, comm, ctx, sview, rview, op,
                             dtype) -> Iterator:
        """Shared-address-space reduce-scatter: each rank reduces its own
        output block directly out of every peer's send buffer — the
        embarrassingly parallel core of the XBRC design, kept because each
        output block is independent (hierarchy buys nothing here)."""
        size = comm.size
        me = comm.rank_of(ctx)
        block = rview.length
        if size == 1:
            yield P.Copy(src=sview, dst=rview)
            return
        led = self._ledger(comm, me)
        self._pub_ctb[me] = sview
        yield from comm.node.xpmem.expose(sview.buf)
        yield P.SetFlag(self.ready[me][0], led["ready"][me][0] + block)
        ready_bases = [led["ready"][q][0] for q in range(size)]
        for q in range(size):
            led["ready"][q][0] += block
        for q in range(size):
            if q != me:
                yield P.WaitFlag(self.ready[q][0], ready_bases[q] + block)
        chunk = self.cfg.chunk_for_level(0)
        pos = 0
        while pos < block:
            n = min(chunk, block - pos)
            srcs = [
                (sview if q == me else self._pub_ctb[q])
                .sub(me * block + pos, n)
                for q in range(size)
            ]
            yield from ctx.smsc.reduce_from(srcs, rview.sub(pos, n),
                                            op=op.ufunc,
                                            dtype=dtype.np_dtype)
            pos += n
        yield from self.barrier(comm, ctx)

    # -- barrier (SSVII extension) ------------------------------------------

    def barrier(self, comm, ctx) -> Iterator:
        if comm.size == 1:
            return
        yield from comm.node.obs.wrap(
            self._barrier_impl(comm, ctx), "xhc.barrier", cat="coll")

    def _barrier_impl(self, comm, ctx) -> Iterator:
        me = comm.rank_of(ctx)
        led = self._ledger(comm, me)
        hier = self._hierarchy(comm, 0)
        # Fan-in: gather children's arrival (the ack flags double as
        # arrival flags; their ledger counts completed participations).
        for child, _level in hier.children(me):
            yield P.WaitFlag(self.ack[child], led["ack"][child] + 1)
        if hier.parent(me) is not None:
            yield P.SetFlag(self.ack[me], led["ack"][me] + 1)
        # Fan-out: release cascades down the hierarchy.
        if me == hier.root:
            yield from self._set_avail(comm, hier, me, led["avail"][me] + 1)
        else:
            yield from self._wait_avail(comm, hier.parent(me), me,
                                        led["avail"][hier.parent(me)] + 1)
            if hier.children(me):
                yield from self._set_avail(comm, hier, me,
                                           led["avail"][me] + 1)
        for q in range(comm.size):
            if hier.parent(q) is not None:
                led["ack"][q] += 1
            if hier.children(q) or q == hier.root:
                led["avail"][q] += 1
