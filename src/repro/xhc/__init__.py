"""XHC — XPMEM-based Hierarchical Collectives (the paper's contribution).

The component groups neighbouring cores into an n-level topology-aware
hierarchy (SSIII-A), moves bulk data with single-copy XPMEM transfers
(SSIII-C) pipelined across hierarchy levels (SSIII-B), switches to a
copy-in-copy-out path below a size threshold (SSIII-D), and synchronizes
through single-writer/multiple-reader flags (SSIII-E).

Primitives: Broadcast and Allreduce (SSIV), plus the Reduce and Barrier
extensions the paper lists as ongoing work (SSVII).
"""

from .config import XhcConfig
from .hierarchy import Group, Hierarchy, build_hierarchy
from .component import Xhc

__all__ = ["XhcConfig", "Group", "Hierarchy", "build_hierarchy", "Xhc"]
