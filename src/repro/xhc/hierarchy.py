"""Hierarchy construction from the node topology (SSIII-A, Fig. 2).

Ranks are grouped by their core's ancestor object for each sensitivity
token (innermost first); each group elects a leader, and the leaders form
the next level's population, until a single top group remains. The group
containing the operation's root always elects the root, so the root is the
top-level leader regardless of which rank it is — this is what keeps
XHC-tree's traffic pattern invariant under root changes (Fig. 9b,
Table II).

Levels whose grouping is degenerate (every group a singleton) are dropped;
this is how ``numa+socket`` yields 3 levels on the dual-socket systems but
2 on Epyc-1P (SSV-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from ..errors import TopologyError
from ..topology.objects import ObjKind, Topology


@dataclass
class Group:
    """One communication group: a leader and its members at one level."""

    level: int
    index: int
    members: list[int]          # comm ranks, sorted
    leader: int

    @cached_property
    def nonleaders(self) -> list[int]:
        # Membership never changes after construction; this is on the
        # per-chunk monitor path, so compute it once.
        return [m for m in self.members if m != self.leader]

    def __repr__(self) -> str:
        return (f"<Group L{self.level}#{self.index} leader={self.leader} "
                f"members={self.members}>")


class Hierarchy:
    """The full n-level structure plus per-rank navigation tables."""

    def __init__(self, levels: list[list[Group]], nranks: int,
                 root: int) -> None:
        if not levels:
            raise TopologyError("hierarchy needs at least one level")
        self.levels = levels
        self.nranks = nranks
        self.root = root
        self.n_levels = len(levels)
        # The single group where each rank is a non-leader member (None for
        # the top leader == root).
        self.member_group: dict[int, Group | None] = {r: None
                                                      for r in range(nranks)}
        # Groups each rank leads, ascending level.
        self.led_groups: dict[int, list[Group]] = {r: []
                                                   for r in range(nranks)}
        for level in levels:
            for group in level:
                self.led_groups[group.leader].append(group)
                for member in group.nonleaders:
                    if self.member_group[member] is not None:
                        raise TopologyError(
                            f"rank {member} is a non-leader member of two "
                            f"groups"
                        )
                    self.member_group[member] = group

    # -- navigation -----------------------------------------------------------

    def parent(self, rank: int) -> int | None:
        """The rank this one pulls from in fan-out (None for the root)."""
        group = self.member_group[rank]
        return None if group is None else group.leader

    def pull_level(self, rank: int) -> int:
        """The hierarchy level at which ``rank`` pulls from its parent."""
        group = self.member_group[rank]
        return 0 if group is None else group.level

    def children(self, rank: int) -> list[tuple[int, int]]:
        """(child_rank, level) pairs across all groups ``rank`` leads."""
        out = []
        for group in self.led_groups[rank]:
            out.extend((m, group.level) for m in group.nonleaders)
        return out

    def leaders(self) -> set[int]:
        """Ranks leading at least one group (includes the root)."""
        return {r for r, gs in self.led_groups.items() if gs}

    def describe(self) -> str:
        parts = []
        for i, level in enumerate(self.levels):
            sizes = [len(g.members) for g in level]
            parts.append(f"L{i}: {len(level)} group(s) of {sizes}")
        return "; ".join(parts)


def build_hierarchy(
    topo: Topology,
    rank_cores: list[int],
    tokens: list[ObjKind],
    root: int = 0,
    obs=None,
) -> Hierarchy:
    """Build the hierarchy for ranks pinned to ``rank_cores``.

    ``tokens`` are sensitivity kinds innermost-first ([] gives a flat
    single-group hierarchy). The returned levels are indexed from the
    innermost (level 0) to the top. ``obs`` (an observer) records the
    construction in the metrics registry when given.
    """
    nranks = len(rank_cores)
    if not 0 <= root < nranks:
        raise TopologyError(f"root {root} out of range")
    levels: list[list[Group]] = []
    current = list(range(nranks))

    def make_level(groups_ranks: list[list[int]]) -> list[Group]:
        level_groups = []
        for members in groups_ranks:
            members = sorted(members)
            leader = root if root in members else members[0]
            level_groups.append(
                Group(level=len(levels), index=len(level_groups),
                      members=members, leader=leader)
            )
        return level_groups

    for kind in tokens:
        buckets: dict[int, list[int]] = {}
        for r in current:
            obj = topo.ancestor_of_core(rank_cores[r], kind)
            key = obj.index if obj is not None else -1
            buckets.setdefault(key, []).append(r)
        grouped = [buckets[k] for k in sorted(buckets)]
        if all(len(g) == 1 for g in grouped):
            continue  # degenerate level: adds serialization, no locality
        level = make_level(grouped)
        levels.append(level)
        current = [g.leader for g in level]
        if len(current) == 1:
            break

    if len(current) > 1:
        levels.append(make_level([current]))
        current = [levels[-1][0].leader]

    if not levels:
        # Single rank, or tokens empty (flat): one group of everyone.
        levels.append(make_level([list(range(nranks))]))

    top_leader = levels[-1][0].leader if len(levels[-1]) == 1 else None
    if top_leader != root and nranks > 1:
        raise TopologyError(
            f"internal error: top leader {top_leader} is not root {root}"
        )  # pragma: no cover
    hier = Hierarchy(levels, nranks, root)
    if obs is not None and obs.enabled:
        obs.metrics.counter(
            "xhc.hierarchies_built",
            "hierarchy constructions (one per distinct root)").inc()
        obs.metrics.gauge(
            "xhc.hierarchy_levels", "depth of the last-built hierarchy",
        ).set(hier.n_levels)
    return hier
