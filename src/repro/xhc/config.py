"""XHC runtime configuration (the MCA-parameter surface of the real
component, SSIII-B/D)."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..topology.objects import SENSITIVITY_TOKENS, ObjKind

FLAG_LAYOUTS = ("single", "multi-shared", "multi-separate")


@dataclass(frozen=True)
class XhcConfig:
    """All tunables of the XHC component.

    ``hierarchy``
        ``"+"``-separated sensitivity tokens (``numa``, ``socket``, ``l3``)
        from innermost to outermost, or ``"flat"`` for a single-level tree.
        The paper's XHC-tree is ``"numa+socket"``.
    ``chunk_size``
        Pipeline chunk in bytes; either one value for all levels or a tuple
        with one value per level (innermost first) — each level can match
        its link (SSIII-B, Fig. 5).
    ``cico_threshold``
        Messages at or below this size use the copy-in-copy-out path
        (default 1 KB, SSIV-C).
    ``flag_layout``
        Placement of the leader-to-members progress flags: the production
        design uses one flag per leader (``"single"``); the Fig. 10
        variants replicate it per member on a shared or separate cache
        line.
    ``reduce_min``
        Minimum bytes of reduction work per member (the "minimum index
        limit" of SSIV-B): small messages are reduced by a single member.
    ``cico_ring``
        Depth of the CICO slot ring. Leaders defer acknowledgment
        collection until a slot is about to be reused (ring-1 operations
        later), amortizing the fan-in of member flags.
    """

    hierarchy: str = "numa+socket"
    chunk_size: int | tuple[int, ...] = 16 * 1024
    cico_threshold: int = 1024
    flag_layout: str = "single"
    reduce_min: int = 512
    cico_ring: int = 4

    def __post_init__(self) -> None:
        ntokens = len(self.tokens())  # validates
        if self.flag_layout not in FLAG_LAYOUTS:
            raise ConfigError(
                f"flag_layout {self.flag_layout!r} not in {FLAG_LAYOUTS}"
            )
        sizes = (self.chunk_size,) if isinstance(self.chunk_size, int) \
            else self.chunk_size
        if not sizes or any(s <= 0 for s in sizes):
            raise ConfigError("chunk sizes must be positive")
        if isinstance(self.chunk_size, tuple):
            # A hierarchy of t tokens yields at most t+1 levels on any
            # topology (the extra one joins the surviving leaders); a
            # flat hierarchy always has exactly one. Topology-dependent
            # exact matching happens in :meth:`validate_depth`.
            max_depth = (ntokens + 1) if ntokens else 1
            if len(sizes) > max_depth:
                raise ConfigError(
                    f"chunk_size has {len(sizes)} per-level entries but "
                    f"hierarchy {self.hierarchy!r} can build at most "
                    f"{max_depth} level(s)"
                )
        if self.cico_threshold < 0:
            raise ConfigError("cico_threshold must be >= 0")
        if self.reduce_min < 1:
            raise ConfigError("reduce_min must be >= 1")
        if self.cico_ring < 2:
            raise ConfigError("cico_ring must be >= 2")

    def tokens(self) -> list[ObjKind]:
        """Sensitivity tokens as topology kinds ([] for flat)."""
        if self.hierarchy == "flat":
            return []
        kinds = []
        for token in self.hierarchy.split("+"):
            token = token.strip().lower()
            if token not in SENSITIVITY_TOKENS:
                raise ConfigError(
                    f"unknown hierarchy token {token!r}; "
                    f"known: {sorted(SENSITIVITY_TOKENS)} or 'flat'"
                )
            kinds.append(SENSITIVITY_TOKENS[token])
        return kinds

    def validate_depth(self, n_levels: int) -> None:
        """Check a per-level ``chunk_size`` tuple against the depth of the
        hierarchy actually built on a topology.

        The number of levels depends on the machine (degenerate levels are
        dropped, a top level may be added), so this runs where the
        hierarchy is known — component setup — rather than in
        ``__post_init__``. Scalar chunk sizes apply to every depth.
        """
        if isinstance(self.chunk_size, tuple) \
                and len(self.chunk_size) != n_levels:
            raise ConfigError(
                f"chunk_size has {len(self.chunk_size)} per-level entries "
                f"but hierarchy {self.hierarchy!r} builds {n_levels} "
                f"level(s) on this topology; pass one value per level "
                f"(innermost first) or a single int"
            )

    def chunk_for_level(self, level: int) -> int:
        if isinstance(self.chunk_size, int):
            return self.chunk_size
        return self.chunk_size[min(level, len(self.chunk_size) - 1)]
