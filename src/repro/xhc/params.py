"""XHC's MCA-parameter surface.

OpenMPI exposes component tuning through MCA parameters
(``--mca coll_xhc_chunk_size 16384 ...``); this module declares the
equivalent registry so harnesses can configure XHC from flat key/value
settings (CLI flags, sweep files) instead of constructing
:class:`XhcConfig` by hand::

    from repro.params import ParamSet
    from repro.xhc.params import XHC_PARAMS, config_from_params

    ps = ParamSet(XHC_PARAMS, {"coll_xhc_cico_max": 4096})
    cfg = config_from_params(ps)
"""

from __future__ import annotations

from ..params import Param, ParamRegistry, ParamSet, non_negative, positive
from .config import FLAG_LAYOUTS, XhcConfig

XHC_PARAMS = ParamRegistry([
    Param("coll_xhc_hierarchy", "numa+socket",
          "sensitivity tokens, '+'-separated, or 'flat'"),
    Param("coll_xhc_chunk_size", 16 * 1024,
          "pipeline chunk bytes (uniform across levels)", positive),
    Param("coll_xhc_cico_max", 1024,
          "use the copy-in-copy-out path at or below this size",
          non_negative),
    Param("coll_xhc_flag_layout", "single",
          "progress-flag placement: " + " | ".join(FLAG_LAYOUTS),
          lambda v: v in FLAG_LAYOUTS),
    Param("coll_xhc_reduce_min", 512,
          "minimum reduction bytes per member (SSIV-B)", positive),
    Param("coll_xhc_cico_ring", 4,
          "depth of the CICO staging-slot ring",
          lambda v: isinstance(v, int) and v >= 2),
])


def config_from_params(params: ParamSet) -> XhcConfig:
    """Materialize an :class:`XhcConfig` from an MCA-style parameter set."""
    return XhcConfig(
        hierarchy=params["coll_xhc_hierarchy"],
        chunk_size=params["coll_xhc_chunk_size"],
        cico_threshold=params["coll_xhc_cico_max"],
        flag_layout=params["coll_xhc_flag_layout"],
        reduce_min=params["coll_xhc_reduce_min"],
        cico_ring=params["coll_xhc_cico_ring"],
    )


def config_from_mca(**settings) -> XhcConfig:
    """Shorthand: ``config_from_mca(coll_xhc_cico_max=4096)``."""
    return config_from_params(ParamSet(XHC_PARAMS, settings))
