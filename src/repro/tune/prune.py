"""Analytical pruning of candidate configs before simulation.

The LogGP closed forms of :mod:`repro.analysis.loggp` run in microseconds
per candidate where the simulator takes seconds, so the tuner scores the
whole space analytically and only simulates the survivors. The estimates
deliberately ignore second-order effects (cache reuse, port queueing,
pipeline fill skew), so pruning keeps a generous margin around the
analytic best rather than trusting its argmin — see ``docs/tuning.md`` for
how this can still mislead.
"""

from __future__ import annotations

from ..analysis.loggp import (cico_bcast_estimate,
                              hierarchical_allreduce_estimate,
                              hierarchical_bcast_estimate)
from ..memory.model import MachineModel
from ..topology.distance import Distance, classify_distance
from ..topology.objects import Topology
from ..xhc.config import XhcConfig
from ..xhc.hierarchy import Hierarchy, build_hierarchy

DEFAULT_MARGIN = 2.5
DEFAULT_KEEP = 10


def _level_shape(topo: Topology, hier: Hierarchy
                 ) -> tuple[list[Distance], list[int]]:
    """Per-level (worst member-to-leader distance, widest fan-out)."""
    dists: list[Distance] = []
    fanouts: list[int] = []
    for level in hier.levels:
        worst = Distance.SELF
        fan = 0
        for group in level:
            fan = max(fan, len(group.nonleaders))
            for member in group.nonleaders:
                worst = max(worst, classify_distance(
                    topo, group.leader, member))
        dists.append(worst)
        fanouts.append(fan)
    return dists, fanouts


def estimate_cost(topo: Topology, model: MachineModel, cfg: XhcConfig,
                  collective: str, size: int, nranks: int) -> float:
    """Closed-form latency estimate of one config at one point (seconds)."""
    cores = list(range(min(nranks, topo.n_cores)))
    hier = build_hierarchy(topo, cores, cfg.tokens(), 0)
    dists, fanouts = _level_shape(topo, hier)
    chunks = [cfg.chunk_for_level(l) for l in range(hier.n_levels)]
    small = size <= cfg.cico_threshold
    if collective == "bcast":
        if small:
            return cico_bcast_estimate(model, dists, fanouts, size,
                                       cfg.flag_layout)
        return hierarchical_bcast_estimate(topo, model, dists, size, chunks)
    if collective == "allreduce":
        est = hierarchical_allreduce_estimate(
            topo, model, dists, fanouts, size, chunks,
            reduce_min=cfg.reduce_min)
        if small:
            # The CICO path replaces per-op buffer publication with
            # staging copies; flag propagation still paces it.
            est += cico_bcast_estimate(model, dists, fanouts, size,
                                       cfg.flag_layout)
        return est
    raise ValueError(f"no analytic form for collective {collective!r}")


def prune(candidates: list[XhcConfig], topo: Topology, model: MachineModel,
          collective: str, size: int, nranks: int, *,
          margin: float = DEFAULT_MARGIN, keep: int | None = DEFAULT_KEEP,
          always_keep: tuple[XhcConfig, ...] = ()) -> list[XhcConfig]:
    """Discard candidates the closed forms call dominated.

    Keeps every candidate scoring within ``margin`` of the analytic best,
    capped at the ``keep`` best scores; ``always_keep`` configs (the paper
    default, a warm-start from an earlier table) survive unconditionally.
    """
    scored = sorted(
        ((estimate_cost(topo, model, cfg, collective, size, nranks), i, cfg)
         for i, cfg in enumerate(candidates)),
        key=lambda t: (t[0], t[1]),
    )
    if not scored:
        return []
    best = scored[0][0]
    survivors = [cfg for score, _i, cfg in scored if score <= best * margin]
    if keep is not None:
        survivors = survivors[:keep]
    for cfg in always_keep:
        if cfg in candidates and cfg not in survivors:
            survivors.append(cfg)
    return survivors
