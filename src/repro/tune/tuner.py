"""The tuning loop: space → prune → simulate → decide → persist.

For every (system, collective, size) point the tuner generates the
topology-derived candidate space, discards analytically dominated configs,
simulates the survivors (cache-backed, optionally in parallel), and
records the winner in a :class:`~repro.tune.table.DecisionTable` next to
the paper-default baseline it replaced. The paper default is always
simulated, so a tuned table is never slower than the hand-tuned
configuration at any swept point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..memory.model import model_for
from ..topology import get_system
from ..xhc.config import XhcConfig
from .cache import ResultCache
from .evaluate import EVAL_ITERS, QUICK_ITERS, Evaluator
from .prune import DEFAULT_KEEP, DEFAULT_MARGIN, prune
from .space import PAPER_DEFAULT, config_to_dict, generate_space
from .table import DecisionTable, bucket_of

SWEEP_SIZES = (256, 1024, 4096, 16384, 65536, 262144, 1048576)
QUICK_SIZES = (1024, 65536, 1048576)
COLLECTIVES = ("bcast", "allreduce")


@dataclass
class TunePoint:
    """Outcome of tuning one (system, collective, size) cell."""

    system: str
    collective: str
    size: int
    nranks: int
    candidates: int          # generated space size
    survivors: int           # after analytic pruning
    baseline_s: float | None
    best_s: float | None
    best_config: XhcConfig | None
    skipped: str | None = None

    @property
    def speedup(self) -> float | None:
        if not self.baseline_s or not self.best_s:
            return None
        return self.baseline_s / self.best_s

    def to_record(self) -> dict:
        return {
            "system": self.system,
            "collective": self.collective,
            "size": self.size,
            "nranks": self.nranks,
            "candidates": self.candidates,
            "survivors": self.survivors,
            "default_us": None if self.baseline_s is None
            else self.baseline_s * 1e6,
            "tuned_us": None if self.best_s is None else self.best_s * 1e6,
            "speedup": self.speedup,
            "config": None if self.best_config is None
            else config_to_dict(self.best_config),
            "skipped": self.skipped,
        }


@dataclass
class TuneResult:
    table: DecisionTable
    points: list[TunePoint] = field(default_factory=list)
    simulations: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


def tune(systems=("epyc-1p", "epyc-2p", "arm-n1"),
         collectives=COLLECTIVES,
         sizes=None,
         *,
         quick: bool = False,
         nranks: int | None = None,
         budget: int | None = None,
         workers: int | None = None,
         cache: ResultCache | None = None,
         table: DecisionTable | None = None,
         resume: bool = False,
         margin: float = DEFAULT_MARGIN,
         keep: int | None = None,
         progress=None) -> TuneResult:
    """Tune every (system, collective, size) point and return the table.

    ``table`` (with ``resume=True``) skips already-decided buckets;
    ``budget`` caps new simulations across the whole run; ``quick`` trims
    the sweep, the candidate grids, and the rank counts the way the
    figure drivers do.
    """
    if sizes is None:
        sizes = QUICK_SIZES if quick else SWEEP_SIZES
    if keep is None:
        keep = 6 if quick else DEFAULT_KEEP
    iters = QUICK_ITERS if quick else EVAL_ITERS
    table = table if table is not None else DecisionTable()
    evaluator = Evaluator(cache=cache, workers=workers, budget=budget)
    result = TuneResult(table=table)

    for system in systems:
        topo = get_system(system)
        model = model_for(topo)
        n = nranks if nranks is not None else topo.n_cores
        if quick:
            n = min(n, 64)
        for collective in collectives:
            for size in sizes:
                point = TunePoint(system=system, collective=collective,
                                  size=size, nranks=n, candidates=0,
                                  survivors=0, baseline_s=None, best_s=None,
                                  best_config=None)
                result.points.append(point)
                if resume and (system, collective, bucket_of(size)) in table:
                    point.skipped = "already tuned (resume)"
                    continue
                space = generate_space(topo, n, collective, size,
                                       quick=quick)
                point.candidates = len(space)
                survivors = prune(space, topo, model, collective, size, n,
                                  margin=margin, keep=keep,
                                  always_keep=(PAPER_DEFAULT,))
                point.survivors = len(survivors)
                # Baseline first: even a budget-truncated evaluation then
                # measures the paper default, so "best" never regresses.
                if PAPER_DEFAULT in survivors:
                    survivors = [PAPER_DEFAULT] + [
                        c for c in survivors if c != PAPER_DEFAULT]
                if progress is not None:
                    progress(f"{system} {collective} {size}B: "
                             f"{len(space)} candidates, "
                             f"{len(survivors)} survive pruning")
                scores = evaluator.evaluate(system, collective, size, n,
                                            survivors, iters=iters)
                if not scores:
                    point.skipped = "budget exhausted"
                    continue
                baseline = scores.get(PAPER_DEFAULT)
                best_cfg = min(sorted(scores, key=repr),
                               key=lambda c: scores[c])
                point.baseline_s = baseline
                point.best_s = scores[best_cfg]
                point.best_config = best_cfg
                table.record(system, collective, size, best_cfg,
                             scores[best_cfg], baseline_s=baseline,
                             nranks=n)

    result.simulations = evaluator.simulations
    result.cache_hits = evaluator.cache.hits
    result.cache_misses = evaluator.cache.misses
    evaluator.close()
    return result
