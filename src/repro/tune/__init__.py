"""Autotuning over XHC's configuration space (``python -m repro tune``).

The paper hand-tunes XHC per machine (SSIII-B/D); this package derives
those choices instead:

1. :mod:`~repro.tune.space` generates candidate :class:`XhcConfig`\\ s
   from the topology (valid hierarchy orderings, per-level chunk tuples,
   CICO thresholds, flag layouts);
2. :mod:`~repro.tune.prune` discards analytically dominated candidates
   using the :mod:`repro.analysis.loggp` closed forms;
3. :mod:`~repro.tune.evaluate` simulates the survivors through the
   shared :class:`repro.exec.Executor` (parallel, behind the repo-wide
   content-addressed cache; :mod:`~repro.tune.cache` is a compatibility
   shim over :mod:`repro.exec.cache`);
4. :mod:`~repro.tune.table` persists the winners as a JSON decision
   table that :class:`repro.mpi.colls.tunedxhc.TunedXhc` dispatches from
   at run time.
"""

from .cache import SIM_VERSION, ResultCache, cache_key
from .evaluate import Evaluator, measurement_request, simulate_payload
from .prune import estimate_cost, prune
from .space import (PAPER_DEFAULT, config_from_dict, config_to_dict,
                    generate_space, hierarchy_candidates, hierarchy_depth)
from .table import DecisionTable, bucket_of, default_table_path
from .tuner import (COLLECTIVES, QUICK_SIZES, SWEEP_SIZES, TunePoint,
                    TuneResult, tune)

__all__ = [
    "SIM_VERSION", "ResultCache", "cache_key", "Evaluator",
    "measurement_request", "simulate_payload",
    "estimate_cost", "prune", "PAPER_DEFAULT", "config_from_dict",
    "config_to_dict", "generate_space", "hierarchy_candidates",
    "hierarchy_depth", "DecisionTable", "bucket_of", "default_table_path",
    "COLLECTIVES", "QUICK_SIZES", "SWEEP_SIZES", "TunePoint", "TuneResult",
    "tune",
]
