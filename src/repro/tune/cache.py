"""Deprecated shim — the result cache now lives in :mod:`repro.exec.cache`.

The cache was promoted out of the tuner so that every sweep entry point
(bench, figures, tune, check, obs) shares one content-addressed store.
This module re-exports the public names so existing imports keep working;
new code should import from ``repro.exec`` (see docs/api.md).
"""

from ..exec.cache import (  # noqa: F401
    DEFAULT_CACHE_PATH,
    SIM_VERSION,
    ResultCache,
    cache_key,
    default_cache_path,
)

__all__ = [
    "DEFAULT_CACHE_PATH",
    "SIM_VERSION",
    "ResultCache",
    "cache_key",
    "default_cache_path",
]
