"""Candidate evaluation on top of the shared executor.

Each candidate runs the same OSU-style measurement the benchmarks use, as
a :class:`~repro.exec.RunRequest` through :class:`~repro.exec.Executor` —
so tuned numbers are directly comparable with every figure the repo
regenerates, and tuning shares the one content-addressed
:class:`~repro.exec.ResultCache` with every other entry point.
"""

from __future__ import annotations

from ..exec.cache import ResultCache
from ..exec.executor import Executor
from ..exec.request import RunRequest
from ..xhc.config import XhcConfig
from .space import config_from_dict, config_to_dict

EVAL_ITERS = dict(warmup=1, iters=3)
QUICK_ITERS = dict(warmup=1, iters=2)


def measurement_request(system: str, collective: str, size: int, nranks: int,
                        cfg: XhcConfig, iters: dict) -> RunRequest:
    """The candidate's measurement as an executor request."""
    return RunRequest(system=system, collective=collective, size=size,
                      nranks=nranks, component="xhc",
                      config=config_to_dict(cfg), **iters)


def measurement_payload(system: str, collective: str, size: int, nranks: int,
                        cfg: XhcConfig, iters: dict) -> dict:
    """Deprecated alias: the cache payload of :func:`measurement_request`."""
    return measurement_request(system, collective, size, nranks, cfg,
                               iters).payload()


def simulate_payload(payload: dict) -> float:
    """Run one measurement described by a request payload (inline)."""
    from ..exec.worker import execute
    request = RunRequest(
        system=payload["system"], collective=payload["collective"],
        size=payload["size"], nranks=payload["nranks"],
        component=payload.get("component", "xhc"),
        config=config_to_dict(config_from_dict(payload["config"])),
        warmup=payload["warmup"], iters=payload["iters"],
        modify=payload.get("modify", True),
        mapping=payload.get("mapping", "core"),
        root=payload.get("root", 0),
    )
    result = execute(request)
    if result.latency_s is None:
        raise RuntimeError(f"simulation failed: {result.error}")
    return result.latency_s


class BudgetExhausted(RuntimeError):
    """Raised internally when the simulation budget hits zero."""


class Evaluator:
    """Cached, optionally-parallel scoring of candidate configs.

    A thin adapter that phrases candidates as run requests and delegates
    scheduling to :class:`~repro.exec.Executor`. ``workers=0`` evaluates
    inline (tests, deterministic debugging); ``workers=None`` picks a
    process count from the CPU. ``budget`` caps the number of *new*
    simulations across the evaluator's lifetime — cached results are
    always free.
    """

    def __init__(self, cache: ResultCache | None = None,
                 workers: int | None = None,
                 budget: int | None = None) -> None:
        self.executor = Executor(workers=workers, cache=cache, budget=budget)

    @property
    def cache(self) -> ResultCache:
        return self.executor.cache

    @property
    def workers(self) -> int | None:
        return self.executor.workers

    @property
    def budget(self) -> int | None:
        return self.executor.budget

    @property
    def simulations(self) -> int:
        return self.executor.simulations

    @property
    def budget_left(self) -> int | None:
        return self.executor.budget_left

    def close(self) -> None:
        """Shut the executor's worker pool down and persist the cache."""
        self.executor.close()

    def evaluate(self, system: str, collective: str, size: int, nranks: int,
                 configs: list[XhcConfig], *,
                 iters: dict = EVAL_ITERS) -> dict[XhcConfig, float]:
        """Latency per config; silently drops configs past the budget."""
        requests = [
            measurement_request(system, collective, size, nranks, cfg, iters)
            for cfg in configs
        ]
        results: dict[XhcConfig, float] = {}
        for cfg, result in zip(configs, self.executor.run_many(requests)):
            if result is not None and result.latency_s is not None:
                results[cfg] = result.latency_s
        return results
