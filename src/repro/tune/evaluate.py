"""Parallel candidate evaluation through the simulator.

Each candidate runs the same OSU-style measurement the benchmarks use
(:func:`repro.bench.osu.run_collective`), so tuned numbers are directly
comparable with every figure the repo regenerates. Simulations are pure
CPU-bound Python, so parallelism uses processes; results flow through the
:class:`~repro.tune.cache.ResultCache` so only never-seen candidates cost
anything.
"""

from __future__ import annotations

import concurrent.futures
import os

from ..xhc import Xhc
from ..xhc.config import XhcConfig
from .cache import ResultCache
from .space import config_from_dict, config_to_dict

EVAL_ITERS = dict(warmup=1, iters=3)
QUICK_ITERS = dict(warmup=1, iters=2)


def measurement_payload(system: str, collective: str, size: int, nranks: int,
                        cfg: XhcConfig, iters: dict) -> dict:
    return {
        "system": system,
        "collective": collective,
        "size": size,
        "nranks": nranks,
        "mapping": "core",
        "config": config_to_dict(cfg),
        **iters,
    }


def simulate_payload(payload: dict) -> float:
    """Run one measurement (top-level so worker processes can pickle it)."""
    from ..bench.osu import run_collective
    cfg = config_from_dict(payload["config"])
    return run_collective(
        payload["collective"], payload["system"], payload["nranks"],
        lambda: Xhc(config=cfg), payload["size"],
        warmup=payload["warmup"], iters=payload["iters"],
        mapping=payload["mapping"],
    )


class BudgetExhausted(RuntimeError):
    """Raised internally when the simulation budget hits zero."""


class Evaluator:
    """Cached, optionally-parallel scoring of candidate configs.

    ``workers=0`` evaluates inline (tests, deterministic debugging);
    ``workers=None`` picks a process count from the CPU. ``budget`` caps
    the number of *new* simulations across the evaluator's lifetime —
    cached results are always free.
    """

    def __init__(self, cache: ResultCache | None = None,
                 workers: int | None = None,
                 budget: int | None = None) -> None:
        self.cache = cache if cache is not None else ResultCache()
        self.workers = workers
        self.budget = budget
        self.simulations = 0

    @property
    def budget_left(self) -> int | None:
        if self.budget is None:
            return None
        return max(0, self.budget - self.simulations)

    def _effective_workers(self, njobs: int) -> int:
        if self.workers is not None:
            return min(self.workers, njobs)
        return min(njobs, max(1, min(8, (os.cpu_count() or 2) - 1)))

    def evaluate(self, system: str, collective: str, size: int, nranks: int,
                 configs: list[XhcConfig], *,
                 iters: dict = EVAL_ITERS) -> dict[XhcConfig, float]:
        """Latency per config; silently drops configs past the budget."""
        results: dict[XhcConfig, float] = {}
        todo: list[tuple[XhcConfig, dict]] = []
        for cfg in configs:
            payload = measurement_payload(system, collective, size, nranks,
                                          cfg, iters)
            cached = self.cache.get(payload)
            if cached is not None:
                results[cfg] = cached
            else:
                todo.append((cfg, payload))
        if self.budget is not None:
            todo = todo[:self.budget_left]
        if not todo:
            return results
        nworkers = self._effective_workers(len(todo))
        if nworkers <= 1:
            for cfg, payload in todo:
                latency = simulate_payload(payload)
                self._record(cfg, payload, latency, results)
        else:
            with concurrent.futures.ProcessPoolExecutor(nworkers) as pool:
                futures = {
                    pool.submit(simulate_payload, payload): (cfg, payload)
                    for cfg, payload in todo
                }
                for future in concurrent.futures.as_completed(futures):
                    cfg, payload = futures[future]
                    self._record(cfg, payload, future.result(), results)
        return results

    def _record(self, cfg: XhcConfig, payload: dict, latency: float,
                results: dict[XhcConfig, float]) -> None:
        self.simulations += 1
        self.cache.put(payload, latency)
        results[cfg] = latency
