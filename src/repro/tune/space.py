"""Search-space generation over :class:`repro.xhc.config.XhcConfig`.

The space is *derived from the topology*, not hard-coded: hierarchy
candidates are every inner-to-outer ordering of the sensitivity tokens the
machine actually has (plus ``"flat"``), per-level chunk tuples match the
depth each hierarchy builds on that machine, and the CICO/flag dimensions
are only opened where they can matter for the message size being tuned
(SSIII-D: the CICO path's benefit is confined to small messages; chunking
only matters once a message spans multiple chunks).
"""

from __future__ import annotations

import itertools

from ..topology.objects import ObjKind, Topology
from ..xhc.config import FLAG_LAYOUTS, XhcConfig
from ..xhc.hierarchy import build_hierarchy

# Candidate grids (bytes). Kept intentionally coarse: the pruner and the
# simulator refine, the grid only has to bracket the interesting regimes.
CHUNK_GRID = (4096, 16384, 65536, 262144)
QUICK_CHUNK_GRID = (16384, 65536)
CICO_GRID = (0, 256, 1024, 4096)
QUICK_CICO_GRID = (0, 1024)

# Messages at or below this are "small": flag layout and CICO threshold
# dominate, pipeline chunking cannot matter.
SMALL_CUTOFF = 4096

PAPER_DEFAULT = XhcConfig()


def hierarchy_candidates(topo: Topology, *, quick: bool = False) -> list[str]:
    """Every valid ``"+"``-separated token ordering for this machine.

    Tokens are only offered when the corresponding object level exists and
    actually partitions the cores (a single-socket machine still accepts
    ``socket`` — it degenerates harmlessly — but offering it would only
    duplicate the shallower hierarchy, so it is skipped). Orderings are
    inner-to-outer by construction; anything else ("socket+numa") nests
    invalid groups and is never generated.
    """
    available: list[str] = []        # innermost first
    if topo.count(ObjKind.LLC) > 1:
        available.append("l3")
    if topo.count(ObjKind.NUMA) > 1:
        available.append("numa")
    if topo.count(ObjKind.SOCKET) > 1:
        available.append("socket")
    out = ["flat"]
    for r in range(1, len(available) + 1):
        for combo in itertools.combinations(available, r):
            out.append("+".join(combo))
    if quick:
        keep = {"flat", "numa", "numa+socket", "l3+numa"}
        out = [h for h in out if h in keep]
    return out


def hierarchy_depth(topo: Topology, hierarchy: str, nranks: int) -> int:
    """Levels the hierarchy builds for ``nranks`` ranks mapped by core."""
    cfg = XhcConfig(hierarchy=hierarchy)
    cores = list(range(min(nranks, topo.n_cores)))
    return build_hierarchy(topo, cores, cfg.tokens(), 0).n_levels


def chunk_candidates(depth: int, size: int,
                     *, quick: bool = False) -> list[int | tuple[int, ...]]:
    """Chunk specs worth trying for a ``depth``-level hierarchy at one
    message size: uniform scalars, plus (full mode) every per-level tuple
    from the grid. Chunks larger than the message collapse to the same
    unpipelined schedule, so at most one oversized value is kept."""
    grid = QUICK_CHUNK_GRID if quick else CHUNK_GRID
    values = [c for c in grid if c < size]
    oversized = [c for c in grid if c >= size]
    if oversized:
        values.append(oversized[0])
    out: list[int | tuple[int, ...]] = list(values)
    if depth > 1 and not quick and len(values) > 1:
        out.extend(
            combo for combo in itertools.product(values, repeat=depth)
            if len(set(combo)) > 1      # uniform tuples == scalar entries
        )
    return out


def generate_space(topo: Topology, nranks: int, collective: str, size: int,
                   *, quick: bool = False) -> list[XhcConfig]:
    """All candidate configs for one (machine, collective, size) point.

    The paper's hand-tuned default is always included, so downstream
    "best of space" can never regress against it.
    """
    small = size <= SMALL_CUTOFF
    cico_grid = QUICK_CICO_GRID if quick else CICO_GRID
    layouts = ("single",) if (quick or not small) else FLAG_LAYOUTS
    thresholds = (
        sorted({t for t in cico_grid} | {PAPER_DEFAULT.cico_threshold})
        if small else (PAPER_DEFAULT.cico_threshold,)
    )
    configs: list[XhcConfig] = [PAPER_DEFAULT]
    for hierarchy in hierarchy_candidates(topo, quick=quick):
        depth = hierarchy_depth(topo, hierarchy, nranks)
        chunks: list[int | tuple[int, ...]]
        if small:
            chunks = [PAPER_DEFAULT.chunk_size]
        else:
            chunks = chunk_candidates(depth, size, quick=quick)
        for chunk in chunks:
            for threshold in thresholds:
                for layout in layouts:
                    cfg = XhcConfig(hierarchy=hierarchy, chunk_size=chunk,
                                    cico_threshold=threshold,
                                    flag_layout=layout)
                    if cfg not in configs:
                        configs.append(cfg)
    return configs


# -- serialization ---------------------------------------------------------


def config_to_dict(cfg: XhcConfig) -> dict:
    """JSON-safe dict form (tuples become lists)."""
    chunk = cfg.chunk_size
    return {
        "hierarchy": cfg.hierarchy,
        "chunk_size": list(chunk) if isinstance(chunk, tuple) else chunk,
        "cico_threshold": cfg.cico_threshold,
        "flag_layout": cfg.flag_layout,
        "reduce_min": cfg.reduce_min,
        "cico_ring": cfg.cico_ring,
    }


def config_from_dict(d: dict) -> XhcConfig:
    chunk = d["chunk_size"]
    return XhcConfig(
        hierarchy=d["hierarchy"],
        chunk_size=tuple(chunk) if isinstance(chunk, list) else chunk,
        cico_threshold=d["cico_threshold"],
        flag_layout=d["flag_layout"],
        reduce_min=d.get("reduce_min", PAPER_DEFAULT.reduce_min),
        cico_ring=d.get("cico_ring", PAPER_DEFAULT.cico_ring),
    )
